//! The engine's type system: type ids, scalar values, and the `Date` type.
//!
//! The reproduction supports the types the paper's discussion actually needs:
//! booleans, four integer widths, double-precision floats, UTF-8 strings and
//! dates. NULL is *not* a type: following Vectorwise's design, NULLability is
//! tracked as a separate boolean "indicator" column next to a value column
//! holding a "safe" value in NULL positions (see `vw-exec::vector`).

use crate::date::{days_from_ymd, ymd_from_days};
use crate::error::{Result, VwError};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Identifier of a concrete column/value type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TypeId {
    /// Boolean (`TRUE`/`FALSE`).
    Bool,
    /// 8-bit signed integer (`TINYINT`).
    I8,
    /// 16-bit signed integer (`SMALLINT`).
    I16,
    /// 32-bit signed integer (`INTEGER`).
    I32,
    /// 64-bit signed integer (`BIGINT`).
    I64,
    /// Double-precision float (`DOUBLE`); also stands in for DECIMAL.
    F64,
    /// UTF-8 string (`VARCHAR`).
    Str,
    /// Calendar date, stored as days since 1970-01-01 (`DATE`).
    Date,
}

impl TypeId {
    /// All types, in promotion order for the numeric ones.
    pub const ALL: [TypeId; 8] = [
        TypeId::Bool,
        TypeId::I8,
        TypeId::I16,
        TypeId::I32,
        TypeId::I64,
        TypeId::F64,
        TypeId::Str,
        TypeId::Date,
    ];

    /// The SQL spelling used by the parser and `EXPLAIN` output.
    pub fn sql_name(self) -> &'static str {
        match self {
            TypeId::Bool => "BOOLEAN",
            TypeId::I8 => "TINYINT",
            TypeId::I16 => "SMALLINT",
            TypeId::I32 => "INTEGER",
            TypeId::I64 => "BIGINT",
            TypeId::F64 => "DOUBLE",
            TypeId::Str => "VARCHAR",
            TypeId::Date => "DATE",
        }
    }

    /// Parse a SQL type name (several aliases accepted).
    pub fn from_sql_name(name: &str) -> Option<TypeId> {
        Some(match name.to_ascii_uppercase().as_str() {
            "BOOL" | "BOOLEAN" => TypeId::Bool,
            "TINYINT" | "INT1" => TypeId::I8,
            "SMALLINT" | "INT2" => TypeId::I16,
            "INT" | "INTEGER" | "INT4" => TypeId::I32,
            "BIGINT" | "INT8" => TypeId::I64,
            "DOUBLE" | "FLOAT" | "FLOAT8" | "REAL" | "DECIMAL" | "NUMERIC" => TypeId::F64,
            "VARCHAR" | "CHAR" | "TEXT" | "STRING" => TypeId::Str,
            "DATE" => TypeId::Date,
            _ => return None,
        })
    }

    /// Width in bytes of the in-memory fixed representation
    /// (strings report the pointer-ish width used for costing only).
    pub fn fixed_width(self) -> usize {
        match self {
            TypeId::Bool | TypeId::I8 => 1,
            TypeId::I16 => 2,
            TypeId::I32 | TypeId::Date => 4,
            TypeId::I64 | TypeId::F64 => 8,
            TypeId::Str => 16,
        }
    }

    /// Is this one of the signed integer types?
    pub fn is_integer(self) -> bool {
        matches!(self, TypeId::I8 | TypeId::I16 | TypeId::I32 | TypeId::I64)
    }

    /// Is this a type arithmetic can be performed on?
    pub fn is_numeric(self) -> bool {
        self.is_integer() || self == TypeId::F64
    }

    /// The common type two numeric operands are promoted to, if any.
    /// Mirrors the usual SQL ladder: i8 < i16 < i32 < i64 < f64.
    pub fn promote(a: TypeId, b: TypeId) -> Option<TypeId> {
        if a == b && (a.is_numeric() || a == TypeId::Str || a == TypeId::Date || a == TypeId::Bool)
        {
            return Some(a);
        }
        if a.is_numeric() && b.is_numeric() {
            return Some(a.max(b));
        }
        None
    }

    /// Can `from` be implicitly cast to `self` without information loss
    /// concerns (the binder inserts these casts automatically)?
    pub fn implicit_from(self, from: TypeId) -> bool {
        if self == from {
            return true;
        }
        from.is_numeric() && self.is_numeric() && from < self
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A calendar date stored as days since the Unix epoch (1970-01-01).
///
/// Supports years 1..=9999; arithmetic is proleptic Gregorian.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Date(pub i32);

impl Date {
    /// Build a date from year/month/day, validating ranges.
    pub fn from_ymd(y: i32, m: u32, d: u32) -> Result<Date> {
        days_from_ymd(y, m, d).map(Date)
    }

    /// Decompose into (year, month, day).
    pub fn ymd(self) -> (i32, u32, u32) {
        ymd_from_days(self.0)
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Result<Date> {
        let err = || VwError::InvalidCast(format!("'{s}' is not a valid DATE (want YYYY-MM-DD)"));
        let mut it = s.split('-');
        let y: i32 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let m: u32 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let d: u32 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if it.next().is_some() {
            return Err(err());
        }
        Date::from_ymd(y, m, d)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// A single scalar value, as it appears in rows, literals and constants.
///
/// `Null` is a member so that row-oriented code (the Volcano baseline, query
/// results, the catalog) can carry NULLs directly; the vectorized kernel
/// never materializes `Value`s on its hot path.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 8-bit integer.
    I8(i8),
    /// 16-bit integer.
    I16(i16),
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// Double float.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Calendar date.
    Date(Date),
}

impl Value {
    /// The type of this value; `None` for NULL (NULL is typed by context).
    pub fn type_id(&self) -> Option<TypeId> {
        Some(match self {
            Value::Null => return None,
            Value::Bool(_) => TypeId::Bool,
            Value::I8(_) => TypeId::I8,
            Value::I16(_) => TypeId::I16,
            Value::I32(_) => TypeId::I32,
            Value::I64(_) => TypeId::I64,
            Value::F64(_) => TypeId::F64,
            Value::Str(_) => TypeId::Str,
            Value::Date(_) => TypeId::Date,
        })
    }

    /// Is this SQL NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The "safe value" stored in the value column at NULL positions for a
    /// given type — the trick Vectorwise uses so that NULL-oblivious kernels
    /// can run over NULLable data without faulting.
    pub fn safe_default(ty: TypeId) -> Value {
        match ty {
            TypeId::Bool => Value::Bool(false),
            TypeId::I8 => Value::I8(0),
            TypeId::I16 => Value::I16(0),
            TypeId::I32 => Value::I32(0),
            TypeId::I64 => Value::I64(0),
            TypeId::F64 => Value::F64(0.0),
            TypeId::Str => Value::Str(String::new()),
            TypeId::Date => Value::Date(Date(0)),
        }
    }

    /// Numeric value widened to i64; error if not an integer type.
    pub fn as_i64(&self) -> Result<i64> {
        Ok(match self {
            Value::I8(v) => *v as i64,
            Value::I16(v) => *v as i64,
            Value::I32(v) => *v as i64,
            Value::I64(v) => *v,
            Value::Bool(b) => *b as i64,
            Value::Date(d) => d.0 as i64,
            other => return Err(VwError::InvalidCast(format!("cannot read {other:?} as integer"))),
        })
    }

    /// Numeric value widened to f64; error for non-numerics.
    pub fn as_f64(&self) -> Result<f64> {
        Ok(match self {
            Value::F64(v) => *v,
            other => other.as_i64()? as f64,
        })
    }

    /// Borrow as &str; error for non-strings.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(VwError::InvalidCast(format!("cannot read {other:?} as string"))),
        }
    }

    /// Borrow as bool; error for non-booleans.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(VwError::InvalidCast(format!("cannot read {other:?} as boolean"))),
        }
    }

    /// Cast to `target`, following SQL-ish conversion rules; overflow and
    /// unparseable strings are reported as errors, never silently wrapped.
    pub fn cast_to(&self, target: TypeId) -> Result<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        if self.type_id() == Some(target) {
            return Ok(self.clone());
        }
        let overflow = |v: &dyn fmt::Debug| {
            VwError::InvalidCast(format!("{v:?} out of range for {}", target.sql_name()))
        };
        macro_rules! to_int {
            ($variant:ident, $ty:ty) => {{
                match self {
                    Value::F64(f) => {
                        let r = f.round();
                        if r < <$ty>::MIN as f64 || r > <$ty>::MAX as f64 || r.is_nan() {
                            return Err(overflow(f));
                        }
                        Ok(Value::$variant(r as $ty))
                    }
                    Value::Str(s) => {
                        s.trim().parse::<$ty>().map(Value::$variant).map_err(|_| {
                            VwError::InvalidCast(format!("'{s}' is not a valid integer"))
                        })
                    }
                    v => {
                        let i = v.as_i64()?;
                        <$ty>::try_from(i).map(Value::$variant).map_err(|_| overflow(&i))
                    }
                }
            }};
        }
        match target {
            TypeId::Bool => match self {
                Value::Str(s) => match s.to_ascii_lowercase().as_str() {
                    "true" | "t" | "1" => Ok(Value::Bool(true)),
                    "false" | "f" | "0" => Ok(Value::Bool(false)),
                    _ => Err(VwError::InvalidCast(format!("'{s}' is not a boolean"))),
                },
                v => Ok(Value::Bool(v.as_i64()? != 0)),
            },
            TypeId::I8 => to_int!(I8, i8),
            TypeId::I16 => to_int!(I16, i16),
            TypeId::I32 => to_int!(I32, i32),
            TypeId::I64 => to_int!(I64, i64),
            TypeId::F64 => match self {
                Value::Str(s) => s
                    .trim()
                    .parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| VwError::InvalidCast(format!("'{s}' is not a valid number"))),
                v => Ok(Value::F64(v.as_f64()?)),
            },
            TypeId::Str => Ok(Value::Str(self.to_string())),
            TypeId::Date => match self {
                Value::Str(s) => Date::parse(s).map(Value::Date),
                Value::I32(d) => Ok(Value::Date(Date(*d))),
                v => Err(VwError::InvalidCast(format!("cannot cast {v:?} to DATE"))),
            },
        }
    }

    /// SQL comparison. NULL compares as NULL (returns `None`); floats use
    /// total ordering so sorting is well-defined.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(match (self, other) {
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (F64(a), F64(b)) => a.total_cmp(b),
            (a, b) => {
                // All-integer comparisons stay exact — f64 widening loses
                // precision above 2^53, which would make BIGINT compares
                // disagree with the typed kernels (and with themselves
                // after constant folding).
                let int_of = |v: &Value| match v {
                    I8(x) => Some(*x as i64),
                    I16(x) => Some(*x as i64),
                    I32(x) => Some(*x as i64),
                    I64(x) => Some(*x),
                    _ => None,
                };
                if let (Some(x), Some(y)) = (int_of(a), int_of(b)) {
                    x.cmp(&y)
                } else {
                    // Mixed numeric classes compare via widening.
                    match (a.as_f64(), b.as_f64()) {
                        (Ok(x), Ok(y)) => x.total_cmp(&y),
                        _ => return None,
                    }
                }
            }
        })
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // NULL != NULL under SQL, but for hash-table/group-by purposes we
        // need structural equality, which is what this impl provides; SQL
        // three-valued comparison lives in `sql_cmp`.
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (I8(a), I8(b)) => a == b,
            (I16(a), I16(b)) => a == b,
            (I32(a), I32(b)) => a == b,
            (I64(a), I64(b)) => a == b,
            (F64(a), F64(b)) => a.to_bits() == b.to_bits(),
            (Str(a), Str(b)) => a == b,
            (Date(a), Date(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::I8(v) => v.hash(state),
            Value::I16(v) => v.hash(state),
            Value::I32(v) => v.hash(state),
            Value::I64(v) => v.hash(state),
            Value::F64(v) => v.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Date(d) => d.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "true" } else { "false" }),
            Value::I8(v) => write!(f, "{v}"),
            Value::I16(v) => write!(f, "{v}"),
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => f.write_str(s),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_ladder() {
        assert_eq!(TypeId::promote(TypeId::I8, TypeId::I64), Some(TypeId::I64));
        assert_eq!(TypeId::promote(TypeId::I32, TypeId::F64), Some(TypeId::F64));
        assert_eq!(TypeId::promote(TypeId::Str, TypeId::Str), Some(TypeId::Str));
        assert_eq!(TypeId::promote(TypeId::Str, TypeId::I32), None);
        assert_eq!(TypeId::promote(TypeId::Date, TypeId::I32), None);
    }

    #[test]
    fn sql_names_roundtrip() {
        for ty in TypeId::ALL {
            assert_eq!(TypeId::from_sql_name(ty.sql_name()), Some(ty));
        }
        assert_eq!(TypeId::from_sql_name("int"), Some(TypeId::I32));
        assert_eq!(TypeId::from_sql_name("nosuch"), None);
    }

    #[test]
    fn cast_int_overflow_detected() {
        let v = Value::I64(300);
        assert!(matches!(v.cast_to(TypeId::I8), Err(VwError::InvalidCast(_))));
        let v = Value::I64(127);
        assert_eq!(v.cast_to(TypeId::I8).unwrap(), Value::I8(127));
    }

    #[test]
    fn cast_string_parsing() {
        assert_eq!(Value::Str("42".into()).cast_to(TypeId::I32).unwrap(), Value::I32(42));
        assert_eq!(Value::Str(" 3.5 ".into()).cast_to(TypeId::F64).unwrap(), Value::F64(3.5));
        assert!(Value::Str("xyz".into()).cast_to(TypeId::I32).is_err());
        assert_eq!(
            Value::Str("1996-03-13".into()).cast_to(TypeId::Date).unwrap(),
            Value::Date(Date::from_ymd(1996, 3, 13).unwrap())
        );
    }

    #[test]
    fn cast_null_is_null() {
        for ty in TypeId::ALL {
            assert!(Value::Null.cast_to(ty).unwrap().is_null());
        }
    }

    #[test]
    fn float_to_int_rounds_and_checks() {
        assert_eq!(Value::F64(2.6).cast_to(TypeId::I32).unwrap(), Value::I32(3));
        assert!(Value::F64(1e30).cast_to(TypeId::I32).is_err());
        assert!(Value::F64(f64::NAN).cast_to(TypeId::I32).is_err());
    }

    #[test]
    fn sql_cmp_three_valued() {
        assert_eq!(Value::Null.sql_cmp(&Value::I32(1)), None);
        assert_eq!(Value::I32(1).sql_cmp(&Value::I64(2)), Some(Ordering::Less));
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Str("b".into())), Some(Ordering::Less));
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::I32(1)), None);
    }

    #[test]
    fn date_parse_display_roundtrip() {
        let d = Date::parse("1998-12-01").unwrap();
        assert_eq!(d.to_string(), "1998-12-01");
        assert!(Date::parse("1998-13-01").is_err());
        assert!(Date::parse("1998-12").is_err());
        assert!(Date::parse("abc").is_err());
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::I32(-7).to_string(), "-7");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
    }

    #[test]
    fn safe_defaults_typed() {
        for ty in TypeId::ALL {
            assert_eq!(Value::safe_default(ty).type_id(), Some(ty));
        }
    }
}
