//! Property tests: every codec must round-trip arbitrary i64 data exactly.

use proptest::prelude::*;
use vw_compress::{compress_auto, compress_with, decompress_into, Encoding};

fn roundtrip_ok(values: &[i64], enc: Encoding) -> bool {
    let c = match compress_with(values, enc) {
        Ok(c) => c,
        // Dict may legitimately refuse high cardinality.
        Err(_) => return enc == Encoding::Dict,
    };
    let mut out = Vec::new();
    decompress_into(&c, &mut out).unwrap();
    out == values
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn raw_roundtrip(values in proptest::collection::vec(any::<i64>(), 0..512)) {
        prop_assert!(roundtrip_ok(&values, Encoding::Raw));
    }

    #[test]
    fn bitpack_roundtrip(values in proptest::collection::vec(any::<i64>(), 0..512)) {
        prop_assert!(roundtrip_ok(&values, Encoding::BitPack));
    }

    #[test]
    fn pfor_roundtrip(values in proptest::collection::vec(any::<i64>(), 0..512)) {
        prop_assert!(roundtrip_ok(&values, Encoding::Pfor));
    }

    #[test]
    fn pfor_delta_roundtrip(values in proptest::collection::vec(any::<i64>(), 0..512)) {
        prop_assert!(roundtrip_ok(&values, Encoding::PforDelta));
    }

    #[test]
    fn rle_roundtrip(values in proptest::collection::vec(any::<i64>(), 0..512)) {
        prop_assert!(roundtrip_ok(&values, Encoding::Rle));
    }

    #[test]
    fn dict_roundtrip_small_domain(values in proptest::collection::vec(-20i64..20, 0..512)) {
        prop_assert!(roundtrip_ok(&values, Encoding::Dict));
    }

    #[test]
    fn auto_roundtrip(values in proptest::collection::vec(any::<i64>(), 0..512)) {
        let c = compress_auto(&values);
        let mut out = Vec::new();
        decompress_into(&c, &mut out).unwrap();
        prop_assert_eq!(out, values);
    }

    #[test]
    fn auto_roundtrip_skewed(
        values in proptest::collection::vec(
            prop_oneof![
                3 => 0i64..100,
                1 => any::<i64>(),
                2 => Just(7i64),
            ],
            0..1024,
        )
    ) {
        let c = compress_auto(&values);
        let mut out = Vec::new();
        decompress_into(&c, &mut out).unwrap();
        prop_assert_eq!(out, values);
    }

    #[test]
    fn auto_roundtrip_sorted(mut values in proptest::collection::vec(any::<i64>(), 0..512)) {
        values.sort_unstable();
        let c = compress_auto(&values);
        let mut out = Vec::new();
        decompress_into(&c, &mut out).unwrap();
        prop_assert_eq!(out, values);
    }

    #[test]
    fn string_dict_roundtrip(
        values in proptest::collection::vec("[a-z]{0,8}", 0..256)
    ) {
        let sd = vw_compress::dict::encode_strings(&values);
        let mut out = Vec::new();
        vw_compress::dict::decode_strings(&sd, &mut out).unwrap();
        prop_assert_eq!(out, values);
    }

    #[test]
    fn decoder_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        len in 0usize..300,
        tag in 0u8..6,
    ) {
        let c = vw_compress::Compressed {
            encoding: Encoding::from_tag(tag).unwrap(),
            len,
            bytes,
        };
        let mut out = Vec::new();
        // Must return Ok or Err — never panic, never loop forever.
        let _ = decompress_into(&c, &mut out);
    }
}
