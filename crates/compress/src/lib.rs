//! # vw-compress — super-scalar RAM-CPU cache compression
//!
//! Reproduction of the light-weight compression schemes of
//! *Super-Scalar RAM-CPU Cache Compression* (Zukowski, Héman, Nes, Boncz,
//! ICDE 2006) — reference \[8\] of the Vectorwise paper. These schemes trade
//! compression ratio for *decompression speed*: decoding must run at a rate
//! comparable to RAM bandwidth so that compressed disk/RAM pages can be
//! expanded into CPU-cache-resident vectors on the fly.
//!
//! Implemented schemes:
//!
//! * [`bitpack`] — fixed-width bit packing against a frame-of-reference base,
//! * [`pfor`] — **PFOR** (Patched Frame-Of-Reference): bit packing where
//!   outliers ("exceptions") are patched in after decoding, so the bit width
//!   can be chosen for the *common* values instead of the extremes,
//! * [`pfor`] — **PFOR-DELTA**: PFOR over successive differences, the scheme
//!   of choice for sorted or clustered data,
//! * [`dict`] — **PDICT**: dictionary encoding with packed codes, for
//!   low-cardinality integer and string columns,
//! * [`rle`] — run-length encoding, for long constant runs.
//!
//! [`compress_auto`] mirrors Vectorwise's per-block scheme selection: it
//! inspects the data and picks the cheapest encoding by estimated size.
//!
//! All integer codecs operate on `i64` (the storage layer widens narrower
//! column types before encoding and narrows after decoding); deltas and
//! frame subtraction use wrapping `u64` arithmetic, so the full `i64` domain
//! round-trips exactly.

pub mod bitpack;
pub mod dict;
pub mod io;
pub mod pfor;
pub mod rle;

use crate::io::{ByteReader, ByteWriter};
use vw_common::{Result, VwError};

/// Identifies the scheme used for a compressed block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// Uncompressed little-endian values.
    Raw,
    /// Frame-of-reference + fixed-width bit packing.
    BitPack,
    /// Patched frame-of-reference.
    Pfor,
    /// PFOR over deltas of consecutive values.
    PforDelta,
    /// Dictionary coding with packed codes.
    Dict,
    /// Run-length encoding.
    Rle,
}

impl Encoding {
    /// Stable on-disk tag.
    pub fn tag(self) -> u8 {
        match self {
            Encoding::Raw => 0,
            Encoding::BitPack => 1,
            Encoding::Pfor => 2,
            Encoding::PforDelta => 3,
            Encoding::Dict => 4,
            Encoding::Rle => 5,
        }
    }

    /// Inverse of [`Encoding::tag`].
    pub fn from_tag(t: u8) -> Result<Encoding> {
        Ok(match t {
            0 => Encoding::Raw,
            1 => Encoding::BitPack,
            2 => Encoding::Pfor,
            3 => Encoding::PforDelta,
            4 => Encoding::Dict,
            5 => Encoding::Rle,
            _ => return Err(VwError::Corruption(format!("unknown encoding tag {t}"))),
        })
    }

    /// Human-readable name (bench output, EXPLAIN).
    pub fn name(self) -> &'static str {
        match self {
            Encoding::Raw => "RAW",
            Encoding::BitPack => "BITPACK",
            Encoding::Pfor => "PFOR",
            Encoding::PforDelta => "PFOR-DELTA",
            Encoding::Dict => "PDICT",
            Encoding::Rle => "RLE",
        }
    }
}

/// A compressed block of `i64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Compressed {
    /// Scheme used.
    pub encoding: Encoding,
    /// Number of values encoded.
    pub len: usize,
    /// Encoded payload (scheme-specific layout).
    pub bytes: Vec<u8>,
}

impl Compressed {
    /// Compression ratio = uncompressed bytes / compressed bytes.
    pub fn ratio(&self) -> f64 {
        if self.bytes.is_empty() {
            return 1.0;
        }
        (self.len * 8) as f64 / self.bytes.len() as f64
    }
}

/// Compress `values` with an explicitly chosen scheme.
///
/// Returns an error only for schemes with applicability limits
/// (e.g. [`Encoding::Dict`] refuses cardinality > 4096 per block).
pub fn compress_with(values: &[i64], encoding: Encoding) -> Result<Compressed> {
    let mut w = ByteWriter::new();
    match encoding {
        Encoding::Raw => {
            for &v in values {
                w.put_u64(v as u64);
            }
        }
        Encoding::BitPack => bitpack::encode_for(values, &mut w),
        Encoding::Pfor => pfor::encode_pfor(values, &mut w),
        Encoding::PforDelta => pfor::encode_pfor_delta(values, &mut w),
        Encoding::Dict => dict::encode_i64(values, &mut w)?,
        Encoding::Rle => rle::encode(values, &mut w),
    }
    Ok(Compressed { encoding, len: values.len(), bytes: w.into_bytes() })
}

/// Decompress into `out` (cleared first). `out`'s capacity is reused, keeping
/// steady-state decompression allocation-free.
pub fn decompress_into(c: &Compressed, out: &mut Vec<i64>) -> Result<()> {
    out.clear();
    out.reserve(c.len);
    let mut r = ByteReader::new(&c.bytes);
    match c.encoding {
        Encoding::Raw => {
            for _ in 0..c.len {
                out.push(r.get_u64()? as i64);
            }
        }
        Encoding::BitPack => bitpack::decode_for(&mut r, c.len, out)?,
        Encoding::Pfor => pfor::decode_pfor(&mut r, c.len, out)?,
        Encoding::PforDelta => pfor::decode_pfor_delta(&mut r, c.len, out)?,
        Encoding::Dict => dict::decode_i64(&mut r, c.len, out)?,
        Encoding::Rle => rle::decode(&mut r, c.len, out)?,
    }
    if out.len() != c.len {
        return Err(VwError::Corruption(format!(
            "decoded {} values, expected {}",
            out.len(),
            c.len
        )));
    }
    Ok(())
}

/// Lightweight statistics driving automatic scheme choice.
#[derive(Debug, Clone, Copy)]
pub struct BlockStats {
    /// Number of values.
    pub n: usize,
    /// Number of (value, next) pairs that are non-decreasing.
    pub sorted_pairs: usize,
    /// Number of runs (maximal segments of equal values).
    pub runs: usize,
    /// Distinct-count estimate, capped at `DICT_PROBE_LIMIT + 1`.
    pub distinct_cap: usize,
}

const DICT_PROBE_LIMIT: usize = 4096;

/// Scan `values` once and collect the statistics used by [`choose_encoding`].
pub fn analyze(values: &[i64]) -> BlockStats {
    let mut sorted_pairs = 0usize;
    let mut runs = if values.is_empty() { 0 } else { 1 };
    let mut distinct = vw_common::hash::FxHashSet::default();
    for w in values.windows(2) {
        if w[0] <= w[1] {
            sorted_pairs += 1;
        }
        if w[0] != w[1] {
            runs += 1;
        }
    }
    let mut overflowed = false;
    for &v in values {
        distinct.insert(v);
        if distinct.len() > DICT_PROBE_LIMIT {
            overflowed = true;
            break;
        }
    }
    BlockStats {
        n: values.len(),
        sorted_pairs,
        runs,
        distinct_cap: if overflowed { DICT_PROBE_LIMIT + 1 } else { distinct.len() },
    }
}

/// Pick an encoding for this block the way Vectorwise does: estimate the
/// encoded size of each applicable scheme and take the smallest, with RAW as
/// the fallback when nothing compresses.
pub fn choose_encoding(values: &[i64]) -> Encoding {
    if values.len() < 16 {
        return Encoding::Raw;
    }
    let stats = analyze(values);
    let n = stats.n as f64;
    let mut best = (Encoding::Raw, n * 8.0);
    // RLE: each run costs 12 bytes.
    let rle_cost = stats.runs as f64 * 12.0 + 8.0;
    if rle_cost < best.1 {
        best = (Encoding::Rle, rle_cost);
    }
    // PDICT: dictionary entries + code bits.
    if stats.distinct_cap <= DICT_PROBE_LIMIT {
        let code_bits = bits_for(stats.distinct_cap.max(1) as u64 - 1).max(1) as f64;
        let dict_cost = stats.distinct_cap as f64 * 8.0 + n * code_bits / 8.0 + 16.0;
        if dict_cost < best.1 {
            best = (Encoding::Dict, dict_cost);
        }
    }
    // PFOR: cost from the actual width histogram.
    let pfor_cost = pfor::estimate_bytes(values) as f64;
    if pfor_cost < best.1 {
        best = (Encoding::Pfor, pfor_cost);
    }
    // PFOR-DELTA: only meaningfully sorted data benefits; estimate on deltas.
    if stats.sorted_pairs * 10 >= (stats.n.saturating_sub(1)) * 9 {
        let deltas: Vec<i64> = values.windows(2).map(|w| w[1].wrapping_sub(w[0])).collect();
        let delta_cost = pfor::estimate_bytes(&deltas) as f64 + 8.0;
        if delta_cost < best.1 {
            best = (Encoding::PforDelta, delta_cost);
        }
    }
    best.0
}

/// Compress with the automatically chosen scheme.
pub fn compress_auto(values: &[i64]) -> Compressed {
    let enc = choose_encoding(values);
    match compress_with(values, enc) {
        Ok(c) => c,
        // Applicability limit hit after estimation (e.g. dict overflow on the
        // unsampled tail): fall back to RAW, which cannot fail.
        Err(_) => compress_with(values, Encoding::Raw).expect("raw cannot fail"),
    }
}

/// Number of bits needed to represent `v` (0 for 0).
#[inline]
pub fn bits_for(v: u64) -> u32 {
    64 - v.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[i64], enc: Encoding) {
        let c = compress_with(values, enc).unwrap();
        let mut out = Vec::new();
        decompress_into(&c, &mut out).unwrap();
        assert_eq!(out, values, "roundtrip failed for {:?}", enc);
    }

    #[test]
    fn all_schemes_roundtrip_simple() {
        let values: Vec<i64> = (0..1000).map(|i| (i % 97) - 40).collect();
        for enc in [
            Encoding::Raw,
            Encoding::BitPack,
            Encoding::Pfor,
            Encoding::PforDelta,
            Encoding::Dict,
            Encoding::Rle,
        ] {
            roundtrip(&values, enc);
        }
    }

    #[test]
    fn all_schemes_roundtrip_empty_and_single() {
        for enc in [
            Encoding::Raw,
            Encoding::BitPack,
            Encoding::Pfor,
            Encoding::PforDelta,
            Encoding::Dict,
            Encoding::Rle,
        ] {
            roundtrip(&[], enc);
            roundtrip(&[42], enc);
            roundtrip(&[i64::MIN, i64::MAX], enc);
        }
    }

    #[test]
    fn extreme_values_roundtrip() {
        let values = vec![i64::MIN, -1, 0, 1, i64::MAX, i64::MIN, i64::MAX];
        for enc in [Encoding::BitPack, Encoding::Pfor, Encoding::PforDelta, Encoding::Rle] {
            roundtrip(&values, enc);
        }
    }

    #[test]
    fn auto_compresses_constant_extremely() {
        // For a constant block PFOR with width 0 (13 bytes total) beats even
        // RLE (20 bytes); either way the ratio must be enormous.
        let values = vec![7i64; 10_000];
        let c = compress_auto(&values);
        assert!(c.ratio() > 1000.0, "ratio {}", c.ratio());
    }

    #[test]
    fn auto_picks_rle_for_long_runs_of_wide_values() {
        // 100 runs of 100 copies of irregular 60-bit values: PFOR needs
        // ~64 bits/value, PDICT ~7 bits/value, RLE 12 bytes/run.
        let mut values = Vec::new();
        for r in 0..100i64 {
            let v = r.wrapping_mul(0x9E3779B97F4A7C15u64 as i64);
            values.extend(std::iter::repeat_n(v, 100));
        }
        assert_eq!(choose_encoding(&values), Encoding::Rle);
        let c = compress_auto(&values);
        assert!(c.ratio() > 50.0, "ratio {}", c.ratio());
    }

    #[test]
    fn auto_picks_delta_for_sorted() {
        let values: Vec<i64> = (0..10_000).map(|i| 1_000_000_000 + i * 3).collect();
        let enc = choose_encoding(&values);
        assert_eq!(enc, Encoding::PforDelta);
        let c = compress_auto(&values);
        assert!(c.ratio() > 8.0, "ratio {}", c.ratio());
    }

    #[test]
    fn auto_picks_dict_for_low_cardinality_wide_values() {
        // Few distinct but huge-magnitude scattered values: dict beats pfor.
        let dict = [i64::MIN, 0, i64::MAX, 123_456_789_123];
        let values: Vec<i64> = (0..10_000).map(|i| dict[(i * 7) % 4]).collect();
        assert_eq!(choose_encoding(&values), Encoding::Dict);
    }

    #[test]
    fn auto_never_fails() {
        let values: Vec<i64> = (0..5000)
            .map(|i| ((i as i64).wrapping_mul(0x9E3779B97F4A7C15u64 as i64)) >> (i % 63))
            .collect();
        let c = compress_auto(&values);
        let mut out = Vec::new();
        decompress_into(&c, &mut out).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn tags_roundtrip() {
        for enc in [
            Encoding::Raw,
            Encoding::BitPack,
            Encoding::Pfor,
            Encoding::PforDelta,
            Encoding::Dict,
            Encoding::Rle,
        ] {
            assert_eq!(Encoding::from_tag(enc.tag()).unwrap(), enc);
        }
        assert!(Encoding::from_tag(99).is_err());
    }

    #[test]
    fn corrupted_length_detected() {
        let values: Vec<i64> = (0..100).collect();
        let mut c = compress_with(&values, Encoding::Rle).unwrap();
        c.len = 101;
        let mut out = Vec::new();
        assert!(decompress_into(&c, &mut out).is_err());
    }
}
