//! Little-endian byte cursors used by every codec.
//!
//! Reads are bounds-checked and surface [`VwError::Corruption`] rather than
//! panicking: a corrupted block must fail the query, not the process.

use vw_common::{Result, VwError};

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian u32.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u64.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write raw bytes.
    #[inline]
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Finish, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian byte cursor.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(VwError::Corruption(format!(
                "unexpected end of block: wanted {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    #[inline]
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u32.
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32> {
        // Infallible: take(4) is exactly 4 bytes or a Corruption error.
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    #[inline]
    pub fn get_u64(&mut self) -> Result<u64> {
        // Infallible: take(8) is exactly 8 bytes or a Corruption error.
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read `n` raw bytes.
    #[inline]
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEADBEEF);
        w.put_u64(u64::MAX - 1);
        w.put_bytes(b"abc");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_bytes(3).unwrap(), b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn overrun_is_corruption_not_panic() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(r.get_u32(), Err(VwError::Corruption(_))));
        // Failed read consumes nothing.
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u8().unwrap(), 1);
    }
}
