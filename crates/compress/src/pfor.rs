//! PFOR and PFOR-DELTA — patched frame-of-reference compression.
//!
//! Plain frame-of-reference must size its bit width for the *largest*
//! residual, so one outlier ruins a whole block. PFOR instead picks the
//! width that covers the bulk of the values and stores the outliers as
//! *exceptions* that are patched over the decoded output in a separate,
//! branch-free loop. The ICDE'06 paper stores exception offsets inside the
//! unused code slots as a linked list; we store (position, value) arrays
//! after the packed payload — the same decode structure (tight unpack loop +
//! patch loop), simpler framing.
//!
//! PFOR-DELTA applies PFOR to the differences of consecutive values, which
//! turns sorted/clustered columns (keys, dates, foreign keys) into tiny
//! residuals. Deltas are computed with wrapping arithmetic so the full i64
//! domain round-trips.

use crate::bitpack;
use crate::bits_for;
use crate::io::{ByteReader, ByteWriter};
use vw_common::{Result, VwError};

/// Fraction of values that should be covered by the packed width; the
/// remainder become exceptions. 1/32 ≈ 3% exceptions is the classic
/// operating point reported for PFOR.
const EXCEPTION_BUDGET_DIV: usize = 32;

/// Decide (base, bits, exception_count) for PFOR over `values`.
///
/// Builds the residual-width histogram and chooses the width minimizing
/// `n*bits + exceptions*(4+8)*8` bits, i.e. actual encoded size.
fn plan(values: &[i64]) -> (u64, u32, usize) {
    let base = values.iter().copied().min().unwrap_or(0) as u64;
    let mut width_hist = [0usize; 65];
    for &v in values {
        width_hist[bits_for((v as u64).wrapping_sub(base)) as usize] += 1;
    }
    // exc_at[b] = number of values whose residual needs more than b bits,
    // i.e. the exception count if we pack at width b.
    let mut best_bits = 64u32;
    let mut best_cost = u64::MAX;
    let mut exc_at = [0usize; 65];
    let mut above = 0usize;
    for b in (0..=64usize).rev() {
        if b < 64 {
            above += width_hist[b + 1];
        }
        exc_at[b] = above;
    }
    for b in 0..=64u32 {
        let exc = exc_at[b as usize];
        let cost = values.len() as u64 * b as u64 + exc as u64 * 96;
        if cost < best_cost {
            best_cost = cost;
            best_bits = b;
        }
    }
    // Clamp the exception rate: extremely exception-heavy plans decode
    // slower, prefer widening until within budget.
    let budget = values.len() / EXCEPTION_BUDGET_DIV + 1;
    let mut bits = best_bits;
    while bits < 64 && exc_at[bits as usize] > budget {
        bits += 1;
    }
    (base, bits, exc_at[bits as usize])
}

/// Encode `values` with PFOR.
///
/// Layout: `base u64 | bits u8 | n_exc u32 | packed residuals | exc positions
/// (u32 each) | exc values (u64 each)`.
pub fn encode_pfor(values: &[i64], w: &mut ByteWriter) {
    if values.is_empty() {
        return;
    }
    let (base, bits, n_exc) = plan(values);
    let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    w.put_u64(base);
    w.put_u8(bits as u8);
    w.put_u32(n_exc as u32);
    let mut residuals = Vec::with_capacity(values.len());
    let mut exc_pos: Vec<u32> = Vec::with_capacity(n_exc);
    let mut exc_val: Vec<u64> = Vec::with_capacity(n_exc);
    for (i, &v) in values.iter().enumerate() {
        let resid = (v as u64).wrapping_sub(base);
        if bits < 64 && bits_for(resid) > bits {
            exc_pos.push(i as u32);
            exc_val.push(resid);
            residuals.push(resid & mask); // truncated; patched on decode
        } else {
            residuals.push(resid);
        }
    }
    debug_assert_eq!(exc_pos.len(), n_exc);
    bitpack::pack(&residuals, bits, w);
    for &p in &exc_pos {
        w.put_u32(p);
    }
    for &v in &exc_val {
        w.put_u64(v);
    }
}

/// Decode a PFOR block of `n` values into `out`.
pub fn decode_pfor(r: &mut ByteReader, n: usize, out: &mut Vec<i64>) -> Result<()> {
    if n == 0 {
        return Ok(());
    }
    let base = r.get_u64()?;
    let bits = r.get_u8()? as u32;
    if bits > 64 {
        return Err(VwError::Corruption(format!("pfor width {bits} > 64")));
    }
    let n_exc = r.get_u32()? as usize;
    if n_exc > n {
        return Err(VwError::Corruption(format!("pfor exceptions {n_exc} > n {n}")));
    }
    let start = out.len();
    // Tight unpack loop (branch-free per value)...
    let mut residuals = Vec::with_capacity(n);
    bitpack::unpack(r, n, bits, &mut residuals)?;
    out.extend(residuals.iter().map(|&d| base.wrapping_add(d) as i64));
    // ...then the patch loop.
    let exc_pos = r.get_bytes(n_exc * 4)?;
    let exc_val = r.get_bytes(n_exc * 8)?;
    for i in 0..n_exc {
        // Infallible: get_bytes(n_exc * 4/8) above guarantees both slices
        // are exactly that long, so every 4/8-byte window exists.
        let p = u32::from_le_bytes(exc_pos[i * 4..i * 4 + 4].try_into().unwrap()) as usize;
        let v = u64::from_le_bytes(exc_val[i * 8..i * 8 + 8].try_into().unwrap());
        if p >= n {
            return Err(VwError::Corruption(format!("pfor exception position {p} >= {n}")));
        }
        out[start + p] = base.wrapping_add(v) as i64;
    }
    Ok(())
}

/// Encode with PFOR-DELTA: `first u64 | pfor(deltas of values[1..])`.
pub fn encode_pfor_delta(values: &[i64], w: &mut ByteWriter) {
    if values.is_empty() {
        return;
    }
    w.put_u64(values[0] as u64);
    if values.len() == 1 {
        return;
    }
    let deltas: Vec<i64> = values.windows(2).map(|p| p[1].wrapping_sub(p[0])).collect();
    encode_pfor(&deltas, w);
}

/// Decode a PFOR-DELTA block of `n` values into `out`.
pub fn decode_pfor_delta(r: &mut ByteReader, n: usize, out: &mut Vec<i64>) -> Result<()> {
    if n == 0 {
        return Ok(());
    }
    let first = r.get_u64()? as i64;
    out.push(first);
    if n == 1 {
        return Ok(());
    }
    let mut deltas = Vec::with_capacity(n - 1);
    decode_pfor(r, n - 1, &mut deltas)?;
    let mut cur = first;
    for &d in &deltas {
        cur = cur.wrapping_add(d);
        out.push(cur);
    }
    Ok(())
}

/// Estimated encoded byte size of PFOR for this data (scheme selection).
pub fn estimate_bytes(values: &[i64]) -> usize {
    if values.is_empty() {
        return 0;
    }
    let (_, bits, n_exc) = plan(values);
    13 + (values.len() * bits as usize).div_ceil(8) + n_exc * 12
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_pfor(values: &[i64]) -> usize {
        let mut w = ByteWriter::new();
        encode_pfor(values, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let mut out = Vec::new();
        decode_pfor(&mut r, values.len(), &mut out).unwrap();
        assert_eq!(out, values);
        bytes.len()
    }

    fn roundtrip_delta(values: &[i64]) -> usize {
        let mut w = ByteWriter::new();
        encode_pfor_delta(values, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let mut out = Vec::new();
        decode_pfor_delta(&mut r, values.len(), &mut out).unwrap();
        assert_eq!(out, values);
        bytes.len()
    }

    #[test]
    fn outliers_do_not_ruin_block() {
        // 4095 small values + 1 huge one: plain FOR needs 64 bits/value,
        // PFOR should stay near 7 bits/value.
        let mut values: Vec<i64> = (0..4096).map(|i| i % 100).collect();
        values[1234] = i64::MAX;
        let size = roundtrip_pfor(&values);
        assert!(size < 4096 * 2, "pfor size {size} should be ~1 byte/value");
    }

    #[test]
    fn exception_heavy_block_still_roundtrips() {
        // Alternating tiny/huge: exception budget forces a wide bit width.
        let values: Vec<i64> =
            (0..2048).map(|i| if i % 2 == 0 { i } else { i64::MAX - i }).collect();
        roundtrip_pfor(&values);
    }

    #[test]
    fn sorted_data_compresses_with_delta() {
        let values: Vec<i64> = (0..8192).map(|i| 1_000_000 + i * 7).collect();
        let pfor_size = roundtrip_pfor(&values);
        let delta_size = roundtrip_delta(&values);
        assert!(
            delta_size * 2 < pfor_size,
            "delta {delta_size} should clearly beat pfor {pfor_size} on sorted data"
        );
    }

    #[test]
    fn delta_handles_descending_and_wrapping() {
        let values: Vec<i64> = (0..1000).map(|i| 1_000_000 - i * 13).collect();
        roundtrip_delta(&values);
        let values = vec![i64::MAX, i64::MIN, i64::MAX, 0, i64::MIN];
        roundtrip_delta(&values);
    }

    #[test]
    fn empty_and_singleton() {
        roundtrip_pfor(&[]);
        roundtrip_pfor(&[-7]);
        roundtrip_delta(&[]);
        roundtrip_delta(&[i64::MIN]);
    }

    #[test]
    fn estimate_close_to_actual() {
        let values: Vec<i64> = (0..4096).map(|i| (i * i) % 1000).collect();
        let mut w = ByteWriter::new();
        encode_pfor(&values, &mut w);
        let actual = w.len();
        let est = estimate_bytes(&values);
        let diff = actual.abs_diff(est);
        assert!(diff * 10 < actual, "estimate {est} too far from actual {actual}");
    }

    #[test]
    fn corrupted_exception_position_detected() {
        let mut values: Vec<i64> = (0..100).collect();
        values[50] = i64::MAX;
        let mut w = ByteWriter::new();
        encode_pfor(&values, &mut w);
        let mut bytes = w.into_bytes();
        // Exception position lives after the packed payload; stomp the last
        // 12 bytes (pos+val) with an absurd position.
        let n = bytes.len();
        bytes[n - 12..n - 8].copy_from_slice(&5000u32.to_le_bytes());
        let mut r = ByteReader::new(&bytes);
        let mut out = Vec::new();
        assert!(decode_pfor(&mut r, values.len(), &mut out).is_err());
    }

    #[test]
    fn corrupted_width_detected() {
        let values: Vec<i64> = (0..100).collect();
        let mut w = ByteWriter::new();
        encode_pfor(&values, &mut w);
        let mut bytes = w.into_bytes();
        bytes[8] = 200; // width byte
        let mut r = ByteReader::new(&bytes);
        let mut out = Vec::new();
        assert!(decode_pfor(&mut r, values.len(), &mut out).is_err());
    }
}
