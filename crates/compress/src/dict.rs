//! PDICT — dictionary compression for low-cardinality columns.
//!
//! Values are replaced by codes into a per-block dictionary; codes are
//! bit-packed at `ceil(log2(|dict|))` bits. Works for integers (this module)
//! and strings ([`encode_strings`]/[`decode_strings`]), which is how
//! Vectorwise stores enumerated VARCHAR columns like `l_returnflag`.

use crate::bitpack;
use crate::bits_for;
use crate::io::{ByteReader, ByteWriter};
use vw_common::hash::FxHashMap;
use vw_common::{Result, VwError};

/// Maximum dictionary entries per block; beyond this PDICT stops paying off
/// and the scheme chooser falls back to PFOR/RAW.
pub const MAX_DICT: usize = 4096;

/// Encode integers via dictionary. Errors if cardinality exceeds [`MAX_DICT`].
///
/// Layout: `dict_len u32 | dict values (u64)* | packed codes`.
/// The dictionary is sorted, so decoded blocks also expose min/max cheaply.
pub fn encode_i64(values: &[i64], w: &mut ByteWriter) -> Result<()> {
    let mut dict: Vec<i64> = values.to_vec();
    dict.sort_unstable();
    dict.dedup();
    if dict.len() > MAX_DICT {
        return Err(VwError::Unsupported(format!(
            "dictionary too large: {} > {MAX_DICT}",
            dict.len()
        )));
    }
    let index: FxHashMap<i64, u32> = dict.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
    w.put_u32(dict.len() as u32);
    for &v in &dict {
        w.put_u64(v as u64);
    }
    let bits = code_bits(dict.len());
    let codes: Vec<u64> = values.iter().map(|v| index[v] as u64).collect();
    bitpack::pack(&codes, bits, w);
    Ok(())
}

/// Decode a PDICT integer block of `n` values.
pub fn decode_i64(r: &mut ByteReader, n: usize, out: &mut Vec<i64>) -> Result<()> {
    let dict_len = r.get_u32()? as usize;
    if dict_len == 0 {
        return if n == 0 {
            Ok(())
        } else {
            Err(VwError::Corruption("empty dictionary for nonempty block".into()))
        };
    }
    // Guard the allocation: a corrupted header must not trigger a huge
    // reserve before the reads below would fail anyway.
    if dict_len.saturating_mul(8) > r.remaining() {
        return Err(VwError::Corruption(format!(
            "dictionary of {dict_len} entries larger than block payload"
        )));
    }
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        dict.push(r.get_u64()? as i64);
    }
    let bits = code_bits(dict_len);
    let mut codes = Vec::with_capacity(n);
    bitpack::unpack(r, n, bits, &mut codes)?;
    for c in codes {
        let v = *dict
            .get(c as usize)
            .ok_or_else(|| VwError::Corruption(format!("dict code {c} out of range {dict_len}")))?;
        out.push(v);
    }
    Ok(())
}

/// Bits per code for a dictionary of `len` entries (at least 1 so that a
/// single-entry dictionary still emits decodable codes).
fn code_bits(len: usize) -> u32 {
    bits_for(len.saturating_sub(1) as u64).max(1)
}

/// A dictionary-compressed string block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringDict {
    /// Sorted distinct strings.
    pub dict: Vec<String>,
    /// Packed codes (one per row) referencing `dict`.
    pub bytes: Vec<u8>,
    /// Number of rows.
    pub len: usize,
}

impl StringDict {
    /// Compressed size in bytes (dictionary + codes).
    pub fn compressed_bytes(&self) -> usize {
        self.dict.iter().map(|s| s.len() + 4).sum::<usize>() + self.bytes.len()
    }
}

/// Dictionary-encode strings. Unlike the integer path this never fails:
/// string blocks with huge cardinality simply get a big dictionary (the
/// storage layer decides whether that is acceptable by inspecting the ratio).
pub fn encode_strings(values: &[String]) -> StringDict {
    let mut dict: Vec<String> = values.to_vec();
    dict.sort_unstable();
    dict.dedup();
    let index: FxHashMap<&str, u32> =
        dict.iter().enumerate().map(|(i, s)| (s.as_str(), i as u32)).collect();
    let bits = code_bits(dict.len());
    let codes: Vec<u64> = values.iter().map(|s| index[s.as_str()] as u64).collect();
    let mut w = ByteWriter::new();
    bitpack::pack(&codes, bits, &mut w);
    StringDict { dict, bytes: w.into_bytes(), len: values.len() }
}

/// Decode a string dictionary block into owned strings, reusing the
/// caller's buffer as a string arena: `out`'s existing `String`
/// allocations are overwritten in place (`clone_into`), so a scan that
/// hands the same buffer back pack after pack is allocation-free in
/// steady state (no fresh `String` per value per pack).
pub fn decode_strings(sd: &StringDict, out: &mut Vec<String>) -> Result<()> {
    if sd.len == 0 {
        out.clear();
        return Ok(());
    }
    if sd.dict.is_empty() {
        return Err(VwError::Corruption("empty string dictionary".into()));
    }
    let mut codes = Vec::with_capacity(sd.len);
    decode_codes(sd, &mut codes)?;
    materialize_codes(&codes, &sd.dict, out);
    Ok(())
}

/// Unpack only the codes of a string dictionary block — the compressed
/// execution entry: the scan keeps the codes + shared dictionary and never
/// inflates the strings. Codes are validated against the dictionary.
pub fn decode_codes(sd: &StringDict, out: &mut Vec<u32>) -> Result<()> {
    out.clear();
    if sd.len == 0 {
        return Ok(());
    }
    if sd.dict.is_empty() {
        return Err(VwError::Corruption("empty string dictionary".into()));
    }
    let bits = code_bits(sd.dict.len());
    let mut r = ByteReader::new(&sd.bytes);
    let mut wide = Vec::with_capacity(sd.len);
    bitpack::unpack(&mut r, sd.len, bits, &mut wide)?;
    let dict_len = sd.dict.len() as u64;
    out.reserve(sd.len);
    for c in wide {
        if c >= dict_len {
            return Err(VwError::Corruption(format!("string code {c} out of range {dict_len}")));
        }
        out.push(c as u32);
    }
    Ok(())
}

/// Materialize dictionary codes into `out`, reusing its existing `String`
/// allocations (arena-style). `codes` must already be validated against
/// `dict` — both decode entries above guarantee that.
pub fn materialize_codes(codes: &[u32], dict: &[String], out: &mut Vec<String>) {
    let reuse = out.len().min(codes.len());
    for (slot, &c) in out[..reuse].iter_mut().zip(codes) {
        dict[c as usize].clone_into(slot);
    }
    out.truncate(codes.len());
    out.extend(codes[reuse..].iter().map(|&c| dict[c as usize].clone()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_dict_roundtrip() {
        let dict_vals = [10i64, -3, 1_000_000, 0];
        let values: Vec<i64> = (0..5000).map(|i| dict_vals[i % 4]).collect();
        let mut w = ByteWriter::new();
        encode_i64(&values, &mut w).unwrap();
        let bytes = w.into_bytes();
        // 4 entries → 2 bits/code.
        assert!(bytes.len() < 4 + 32 + 5000 / 4 + 16);
        let mut r = ByteReader::new(&bytes);
        let mut out = Vec::new();
        decode_i64(&mut r, values.len(), &mut out).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn single_value_dict() {
        let values = vec![42i64; 1000];
        let mut w = ByteWriter::new();
        encode_i64(&values, &mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let mut out = Vec::new();
        decode_i64(&mut r, 1000, &mut out).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn oversized_dict_rejected() {
        let values: Vec<i64> = (0..(MAX_DICT as i64 + 1)).collect();
        let mut w = ByteWriter::new();
        assert!(encode_i64(&values, &mut w).is_err());
    }

    #[test]
    fn string_dict_roundtrip() {
        let flags = ["A", "N", "R"];
        let values: Vec<String> = (0..999).map(|i| flags[i % 3].to_string()).collect();
        let sd = encode_strings(&values);
        assert_eq!(sd.dict, vec!["A".to_string(), "N".into(), "R".into()]);
        assert!(sd.compressed_bytes() < 999); // ~2 bits per row
        let mut out = Vec::new();
        decode_strings(&sd, &mut out).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn string_dict_empty_and_unique() {
        let sd = encode_strings(&[]);
        let mut out = vec!["junk".to_string()];
        decode_strings(&sd, &mut out).unwrap();
        assert!(out.is_empty());

        let values: Vec<String> = (0..100).map(|i| format!("s{i}")).collect();
        let sd = encode_strings(&values);
        decode_strings(&sd, &mut out).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn decode_codes_matches_decode_strings() {
        let flags = ["A", "N", "R"];
        let values: Vec<String> = (0..500).map(|i| flags[i % 3].to_string()).collect();
        let sd = encode_strings(&values);
        let mut codes = Vec::new();
        decode_codes(&sd, &mut codes).unwrap();
        assert_eq!(codes.len(), values.len());
        let decoded: Vec<String> = codes.iter().map(|&c| sd.dict[c as usize].clone()).collect();
        assert_eq!(decoded, values);
    }

    #[test]
    fn decode_strings_reuses_arena() {
        let values: Vec<String> = (0..64).map(|i| format!("value-{:02}", i % 7)).collect();
        let sd = encode_strings(&values);
        // Pre-fill the arena with strings of ample capacity, then record
        // their buffer addresses: a second decode must write into the same
        // allocations instead of replacing them.
        let mut out = Vec::new();
        decode_strings(&sd, &mut out).unwrap();
        assert_eq!(out, values);
        let addrs: Vec<*const u8> = out.iter().map(|s| s.as_ptr()).collect();
        decode_strings(&sd, &mut out).unwrap();
        assert_eq!(out, values);
        let addrs2: Vec<*const u8> = out.iter().map(|s| s.as_ptr()).collect();
        assert_eq!(addrs, addrs2);
    }

    #[test]
    fn corrupt_code_detected() {
        let values = vec![1i64, 2, 1, 2];
        let mut w = ByteWriter::new();
        encode_i64(&values, &mut w).unwrap();
        let mut bytes = w.into_bytes();
        // dict_len=2 → 1 bit codes; flip packed bits to all-ones is still
        // in-range, so instead shrink the dictionary claim.
        bytes[0] = 1; // dict_len = 1 → every code must be 0, but codes contain 1s
        let mut r = ByteReader::new(&bytes);
        let mut out = Vec::new();
        assert!(decode_i64(&mut r, 4, &mut out).is_err());
    }
}
