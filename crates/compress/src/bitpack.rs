//! Fixed-width bit packing with a frame-of-reference base.
//!
//! The workhorse under PFOR, PFOR-DELTA and PDICT codes. Values are reduced
//! to `v - base` (wrapping, in `u64` space) and the residuals stored in `b`
//! bits each, packed little-endian into 64-bit words. The inner loops are
//! branch-free per value — the "super-scalar" property the ICDE'06 paper is
//! named for — so the compiler can keep multiple packs in flight.

use crate::bits_for;
use crate::io::{ByteReader, ByteWriter};
use vw_common::Result;

/// Pack `values` (already reduced residuals) with `bits` bits each.
/// `bits == 0` writes nothing (all residuals are zero);
/// `bits == 64` degenerates to raw words.
pub fn pack(values: &[u64], bits: u32, w: &mut ByteWriter) {
    debug_assert!(bits <= 64);
    if bits == 0 {
        return;
    }
    let mut acc: u64 = 0;
    let mut filled: u32 = 0;
    for &v in values {
        debug_assert!(bits == 64 || v < (1u64 << bits));
        acc |= v << filled;
        let used = 64 - filled;
        if bits >= used {
            w.put_u64(acc);
            // `v >> used` is UB-free because used > 0 here (filled < 64).
            acc = if used == 64 { 0 } else { v >> used };
            filled = bits - used;
        } else {
            filled += bits;
        }
    }
    if filled > 0 {
        w.put_u64(acc);
    }
}

/// Unpack `n` residuals of `bits` bits each, appending to `out`.
pub fn unpack(r: &mut ByteReader, n: usize, bits: u32, out: &mut Vec<u64>) -> Result<()> {
    debug_assert!(bits <= 64);
    if bits == 0 {
        out.resize(out.len() + n, 0);
        return Ok(());
    }
    let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    let mut acc: u64 = 0;
    let mut avail: u32 = 0;
    for _ in 0..n {
        let v = if avail >= bits {
            let v = acc & mask;
            acc >>= bits;
            avail -= bits;
            v
        } else {
            let next = r.get_u64()?;
            let lo_bits = avail;
            let v = (acc | (next << lo_bits)) & mask;
            // Take the remaining (bits - lo_bits) from `next`.
            let taken = bits - lo_bits;
            acc = if taken == 64 { 0 } else { next >> taken };
            avail = 64 - taken;
            v
        };
        out.push(v);
    }
    Ok(())
}

/// Encode with frame-of-reference: header = (base, bits), then packed
/// residuals `v.wrapping_sub(base)`.
pub fn encode_for(values: &[i64], w: &mut ByteWriter) {
    if values.is_empty() {
        return;
    }
    // Infallible: the empty frame returned above, so min()/max() see >= 1.
    let base = *values.iter().min().unwrap();
    // Residuals are computed in wrapping u64 space so i64::MIN..=i64::MAX
    // frames work; the max residual determines the width.
    let max_resid = values.iter().map(|&v| (v as u64).wrapping_sub(base as u64)).max().unwrap();
    let bits = bits_for(max_resid);
    w.put_u64(base as u64);
    w.put_u8(bits as u8);
    let residuals: Vec<u64> =
        values.iter().map(|&v| (v as u64).wrapping_sub(base as u64)).collect();
    pack(&residuals, bits, w);
}

/// Decode a frame-of-reference block of `n` values.
pub fn decode_for(r: &mut ByteReader, n: usize, out: &mut Vec<i64>) -> Result<()> {
    if n == 0 {
        return Ok(());
    }
    let base = r.get_u64()?;
    let bits = r.get_u8()? as u32;
    let mut residuals = Vec::with_capacity(n);
    unpack(r, n, bits.min(64), &mut residuals)?;
    out.extend(residuals.iter().map(|&d| base.wrapping_add(d) as i64));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_bits(values: &[u64], bits: u32) {
        let mut w = ByteWriter::new();
        pack(values, bits, &mut w);
        let bytes = w.into_bytes();
        let expected_words =
            if bits == 0 { 0 } else { (values.len() * bits as usize).div_ceil(64) };
        assert_eq!(bytes.len(), expected_words * 8, "packed size for {bits} bits");
        let mut r = ByteReader::new(&bytes);
        let mut out = Vec::new();
        unpack(&mut r, values.len(), bits, &mut out).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn pack_every_width() {
        for bits in 0..=64u32 {
            let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
            let values: Vec<u64> =
                (0..257u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) & mask).collect();
            roundtrip_bits(&values, bits);
        }
    }

    #[test]
    fn pack_empty() {
        roundtrip_bits(&[], 13);
    }

    #[test]
    fn for_negative_range() {
        let values: Vec<i64> = (-500..500).collect();
        let mut w = ByteWriter::new();
        encode_for(&values, &mut w);
        let bytes = w.into_bytes();
        // base (8) + bits (1) + 1000 values at 10 bits.
        assert!(bytes.len() < 9 + (1000 * 10 / 8) + 16);
        let mut r = ByteReader::new(&bytes);
        let mut out = Vec::new();
        decode_for(&mut r, values.len(), &mut out).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn for_full_i64_domain() {
        let values = vec![i64::MIN, i64::MAX, 0, -1, 1];
        let mut w = ByteWriter::new();
        encode_for(&values, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let mut out = Vec::new();
        decode_for(&mut r, values.len(), &mut out).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn constant_column_is_one_header() {
        let values = vec![123_456i64; 4096];
        let mut w = ByteWriter::new();
        encode_for(&values, &mut w);
        // base + bits byte, zero payload.
        assert_eq!(w.len(), 9);
    }

    #[test]
    fn truncated_input_detected() {
        let values: Vec<i64> = (0..100).collect();
        let mut w = ByteWriter::new();
        encode_for(&values, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..bytes.len() - 1]);
        let mut out = Vec::new();
        assert!(decode_for(&mut r, values.len(), &mut out).is_err());
    }
}
