//! Run-length encoding for long constant stretches.
//!
//! Vectorwise uses RLE-style coding for columns dominated by repeated values
//! (flags, status codes, denormalized dimensions). Layout:
//! `n_runs u32 | (value u64, run_len u32)*`.

use crate::io::{ByteReader, ByteWriter};
use vw_common::{Result, VwError};

/// Encode `values` as runs.
pub fn encode(values: &[i64], w: &mut ByteWriter) {
    if values.is_empty() {
        w.put_u32(0);
        return;
    }
    let mut runs: Vec<(i64, u32)> = Vec::new();
    let mut cur = values[0];
    let mut len = 1u32;
    for &v in &values[1..] {
        if v == cur && len < u32::MAX {
            len += 1;
        } else {
            runs.push((cur, len));
            cur = v;
            len = 1;
        }
    }
    runs.push((cur, len));
    w.put_u32(runs.len() as u32);
    for (v, l) in runs {
        w.put_u64(v as u64);
        w.put_u32(l);
    }
}

/// Decode `n` values from runs into `out`.
pub fn decode(r: &mut ByteReader, n: usize, out: &mut Vec<i64>) -> Result<()> {
    let n_runs = r.get_u32()? as usize;
    let mut total = 0usize;
    for _ in 0..n_runs {
        let v = r.get_u64()? as i64;
        let l = r.get_u32()? as usize;
        total += l;
        if total > n {
            return Err(VwError::Corruption(format!("rle runs decode to more than {n} values")));
        }
        out.resize(out.len() + l, v);
    }
    Ok(())
}

/// Decode the run list itself — `(value, run_len)` pairs summing to at most
/// `n` — without expanding it. The compressed execution path keeps the runs
/// as a predicate sidecar (accept/reject whole runs) next to the expanded
/// column.
pub fn decode_runs(r: &mut ByteReader, n: usize) -> Result<Vec<(i64, u32)>> {
    let n_runs = r.get_u32()? as usize;
    let mut runs = Vec::with_capacity(n_runs.min(n));
    let mut total = 0usize;
    for _ in 0..n_runs {
        let v = r.get_u64()? as i64;
        let l = r.get_u32()?;
        total += l as usize;
        if total > n {
            return Err(VwError::Corruption(format!("rle runs decode to more than {n} values")));
        }
        runs.push((v, l));
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[i64]) -> usize {
        let mut w = ByteWriter::new();
        encode(values, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let mut out = Vec::new();
        decode(&mut r, values.len(), &mut out).unwrap();
        assert_eq!(out, values);
        bytes.len()
    }

    #[test]
    fn constant_is_one_run() {
        let size = roundtrip(&vec![5i64; 100_000]);
        assert_eq!(size, 4 + 12);
    }

    #[test]
    fn alternating_degrades_gracefully() {
        let values: Vec<i64> = (0..100).map(|i| i % 2).collect();
        let size = roundtrip(&values);
        assert_eq!(size, 4 + 100 * 12);
    }

    #[test]
    fn blocks_of_runs() {
        let mut values = Vec::new();
        for v in 0..50i64 {
            values.extend(std::iter::repeat_n(v, 37));
        }
        roundtrip(&values);
    }

    #[test]
    fn empty() {
        assert_eq!(roundtrip(&[]), 4);
    }

    #[test]
    fn decode_runs_matches_expansion() {
        let mut values = Vec::new();
        for v in 0..5i64 {
            values.extend(std::iter::repeat_n(v, 17));
        }
        let mut w = ByteWriter::new();
        encode(&values, &mut w);
        let bytes = w.into_bytes();
        let runs = decode_runs(&mut ByteReader::new(&bytes), values.len()).unwrap();
        assert_eq!(runs.len(), 5);
        let expanded: Vec<i64> =
            runs.iter().flat_map(|&(v, l)| std::iter::repeat_n(v, l as usize)).collect();
        assert_eq!(expanded, values);
    }

    #[test]
    fn oversized_run_detected() {
        let mut w = ByteWriter::new();
        w.put_u32(1);
        w.put_u64(9);
        w.put_u32(1000); // claims 1000 values
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let mut out = Vec::new();
        assert!(decode(&mut r, 10, &mut out).is_err());
    }
}
