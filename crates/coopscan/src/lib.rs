//! # vw-coopscan — Cooperative Scans: dynamic bandwidth sharing
//!
//! Reproduction of *Cooperative Scans: Dynamic Bandwidth Sharing in a DBMS*
//! (Zukowski, Héman, Nes, Boncz, VLDB 2007) — reference \[7\] of the
//! Vectorwise paper.
//!
//! ## The problem
//!
//! Concurrent sequential scans over the same table, each with its own cursor
//! and an LRU buffer pool, destroy each other's locality: with `k` scans at
//! different positions the device re-reads the table up to `k` times
//! ("scan thrashing"). Classic mitigations *attach* new scans to a running
//! scan's position (elevator order). Cooperative Scans go further: scans
//! declare their interest to an **Active Buffer Manager (ABM)**, which
//! decides globally *which chunk to load next* and *which to evict*, based
//! on chunk **relevance** — how many active scans still need it — serving
//! cached chunks to every interested scan before they are evicted.
//!
//! Scans must therefore tolerate out-of-order chunk delivery, which
//! analytical operators (aggregation, join builds) do naturally.
//!
//! ## This module
//!
//! [`Abm`] implements three policies over a generic [`ChunkSource`]:
//!
//! * [`ScanPolicy::Naive`] — per-scan sequential order, shared cache,
//!   LRU-ish eviction (the strawman),
//! * [`ScanPolicy::Attach`] — new scans start at the most advanced active
//!   cursor and wrap around (circular/elevator sharing),
//! * [`ScanPolicy::Relevance`] — full cooperative scheduling: load the
//!   highest-relevance chunk, evict the lowest-relevance one, serve cached
//!   chunks eagerly.
//!
//! [`TableChunkSource`] adapts a [`vw_storage::TableStorage`] so the
//! experiments run against real compressed packs on the simulated disk.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vw_common::{ColData, Result, VwError};
use vw_storage::{BufferPool, TableStorage};

/// Provider of equally-important, independently-loadable chunks.
pub trait ChunkSource: Send + Sync {
    /// The data one chunk decodes to.
    type Chunk: Send + Sync;
    /// Total number of chunks.
    fn n_chunks(&self) -> usize;
    /// Load chunk `idx` (charged against the underlying device).
    fn load(&self, idx: usize) -> Result<Self::Chunk>;
}

/// Scheduling policy for concurrent scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanPolicy {
    /// Independent sequential cursors over a shared cache.
    Naive,
    /// New scans attach at the most advanced cursor, wrapping circularly.
    Attach,
    /// Cooperative relevance-driven scheduling (the paper's contribution).
    Relevance,
}

impl ScanPolicy {
    /// Display name used in bench tables.
    pub fn name(self) -> &'static str {
        match self {
            ScanPolicy::Naive => "naive-lru",
            ScanPolicy::Attach => "attach",
            ScanPolicy::Relevance => "relevance",
        }
    }
}

struct CacheEntry<C> {
    data: Arc<C>,
    /// Scans that still need this chunk.
    interest: usize,
    /// Monotonic touch tick for LRU in the non-cooperative policies.
    touched: u64,
}

struct AbmState<C> {
    /// Cached chunks.
    cache: HashMap<usize, CacheEntry<C>>,
    /// Chunks currently being loaded (by some scan's thread).
    loading: std::collections::HashSet<usize>,
    /// Per-scan remaining-needed chunk sets.
    needs: HashMap<u64, Vec<bool>>,
    /// Per-scan remaining count.
    remaining: HashMap<u64, usize>,
    /// Per-scan circular cursor (attach policy).
    cursor: HashMap<u64, usize>,
    /// Most advanced cursor, for attach placement.
    last_attach: usize,
    tick: u64,
}

/// The Active Buffer Manager: shared scheduler for concurrent scans.
pub struct Abm<S: ChunkSource> {
    source: S,
    policy: ScanPolicy,
    cache_capacity: usize,
    state: Mutex<AbmState<S::Chunk>>,
    cond: Condvar,
    next_scan_id: AtomicU64,
    loads: AtomicU64,
    served_from_cache: AtomicU64,
}

impl<S: ChunkSource> Abm<S> {
    /// Create an ABM over `source` caching at most `cache_chunks` chunks.
    pub fn new(source: S, cache_chunks: usize, policy: ScanPolicy) -> Arc<Abm<S>> {
        assert!(cache_chunks >= 1, "cache must hold at least one chunk");
        Arc::new(Abm {
            source,
            policy,
            cache_capacity: cache_chunks,
            state: Mutex::new(AbmState {
                cache: HashMap::new(),
                loading: std::collections::HashSet::new(),
                needs: HashMap::new(),
                remaining: HashMap::new(),
                cursor: HashMap::new(),
                last_attach: 0,
                tick: 0,
            }),
            cond: Condvar::new(),
            next_scan_id: AtomicU64::new(1),
            loads: AtomicU64::new(0),
            served_from_cache: AtomicU64::new(0),
        })
    }

    /// Register a new scan over all chunks. Returns its handle.
    pub fn register(self: &Arc<Self>) -> ScanHandle<S> {
        let id = self.next_scan_id.fetch_add(1, Ordering::Relaxed);
        let n = self.source.n_chunks();
        let mut st = self.state.lock();
        st.needs.insert(id, vec![true; n]);
        st.remaining.insert(id, n);
        // Attach policy: start at the most advanced position so the new scan
        // rides along with the current wavefront.
        let start = match self.policy {
            ScanPolicy::Attach => st.last_attach % n.max(1),
            _ => 0,
        };
        st.cursor.insert(id, start);
        // A newly registered scan raises the interest of cached chunks.
        for (idx, e) in st.cache.iter_mut() {
            let _ = idx;
            e.interest += 1;
        }
        ScanHandle { abm: self.clone(), id, finished: false }
    }

    /// (disk chunk loads, chunks served from cache) so far.
    pub fn io_stats(&self) -> (u64, u64) {
        (self.loads.load(Ordering::Relaxed), self.served_from_cache.load(Ordering::Relaxed))
    }

    /// Pick the cached chunk this scan should consume next, if any.
    fn cached_choice(&self, st: &AbmState<S::Chunk>, id: u64) -> Option<usize> {
        let needs = st.needs.get(&id)?;
        match self.policy {
            ScanPolicy::Relevance => {
                // Most endangered first: among cached chunks this scan needs,
                // take the one with the LOWEST interest (it will be evicted
                // soonest); ties broken by index.
                st.cache
                    .iter()
                    .filter(|(idx, _)| needs[**idx])
                    .min_by_key(|(idx, e)| (e.interest, **idx))
                    .map(|(idx, _)| *idx)
            }
            ScanPolicy::Naive | ScanPolicy::Attach => {
                // Strict cursor order: only the chunk at the cursor counts.
                let cur = st.cursor[&id];
                if needs.get(cur).copied().unwrap_or(false) && st.cache.contains_key(&cur) {
                    Some(cur)
                } else {
                    None
                }
            }
        }
    }

    /// Pick the chunk to load for this scan per policy.
    fn load_choice(&self, st: &AbmState<S::Chunk>, id: u64) -> Option<usize> {
        let needs = st.needs.get(&id)?;
        let n = needs.len();
        match self.policy {
            ScanPolicy::Naive | ScanPolicy::Attach => {
                let start = st.cursor[&id];
                (0..n)
                    .map(|k| (start + k) % n)
                    .find(|&idx| needs[idx] && !st.loading.contains(&idx))
            }
            ScanPolicy::Relevance => {
                // Relevance = number of scans still needing the chunk.
                let mut best: Option<(usize, usize)> = None; // (relevance, idx)
                for (idx, &needed) in needs.iter().enumerate() {
                    if !needed || st.loading.contains(&idx) || st.cache.contains_key(&idx) {
                        continue;
                    }
                    let relevance = st
                        .needs
                        .values()
                        .filter(|other| other.get(idx).copied().unwrap_or(false))
                        .count();
                    match best {
                        Some((r, i))
                            if (relevance, std::cmp::Reverse(idx)) <= (r, std::cmp::Reverse(i)) => {
                        }
                        _ => best = Some((relevance, idx)),
                    }
                }
                best.map(|(_, idx)| idx)
            }
        }
    }

    fn evict_if_needed(&self, st: &mut AbmState<S::Chunk>) {
        while st.cache.len() >= self.cache_capacity {
            let victim = match self.policy {
                ScanPolicy::Relevance => st
                    .cache
                    .iter()
                    .min_by_key(|(idx, e)| (e.interest, e.touched, **idx))
                    .map(|(idx, _)| *idx),
                _ => st.cache.iter().min_by_key(|(idx, e)| (e.touched, **idx)).map(|(idx, _)| *idx),
            };
            match victim {
                Some(v) => {
                    st.cache.remove(&v);
                }
                None => break,
            }
        }
    }

    fn consume(&self, st: &mut AbmState<S::Chunk>, id: u64, idx: usize) -> Arc<S::Chunk> {
        let needs = st.needs.get_mut(&id).expect("registered scan");
        debug_assert!(needs[idx]);
        needs[idx] = false;
        *st.remaining.get_mut(&id).unwrap() -= 1;
        st.tick += 1;
        let tick = st.tick;
        // Advance cursor past consumed chunks (naive/attach).
        let n = needs.len();
        let mut cur = st.cursor[&id];
        let needs = &st.needs[&id];
        for _ in 0..n {
            if needs[cur] {
                break;
            }
            cur = (cur + 1) % n;
        }
        st.cursor.insert(id, cur);
        st.last_attach = cur;
        let e = st.cache.get_mut(&idx).expect("cached");
        e.interest = e.interest.saturating_sub(1);
        e.touched = tick;
        e.data.clone()
    }

    /// Next chunk for scan `id`; None when the scan has seen every chunk.
    fn next_chunk(&self, id: u64) -> Result<Option<(usize, Arc<S::Chunk>)>> {
        loop {
            let mut st = self.state.lock();
            if st.remaining.get(&id).copied().unwrap_or(0) == 0 {
                return Ok(None);
            }
            // 1) Serve from cache if allowed by policy.
            if let Some(idx) = self.cached_choice(&st, id) {
                self.served_from_cache.fetch_add(1, Ordering::Relaxed);
                let data = self.consume(&mut st, id, idx);
                return Ok(Some((idx, data)));
            }
            // 2) Choose a chunk to load.
            if let Some(idx) = self.load_choice(&st, id) {
                st.loading.insert(idx);
                drop(st);
                let loaded = self.source.load(idx);
                let mut st = self.state.lock();
                st.loading.remove(&idx);
                let data = match loaded {
                    Ok(d) => Arc::new(d),
                    Err(e) => {
                        self.cond.notify_all();
                        return Err(e);
                    }
                };
                self.loads.fetch_add(1, Ordering::Relaxed);
                self.evict_if_needed(&mut st);
                let interest = st
                    .needs
                    .values()
                    .filter(|needs| needs.get(idx).copied().unwrap_or(false))
                    .count();
                st.tick += 1;
                let tick = st.tick;
                st.cache.insert(idx, CacheEntry { data, interest, touched: tick });
                self.cond.notify_all();
                // Loop back: the loaded chunk may or may not be this scan's
                // policy choice (relevance may prefer another cached chunk).
                continue;
            }
            // 3) Everything this scan needs is being loaded by others: wait.
            self.cond.wait(&mut st);
        }
    }

    fn deregister(&self, id: u64) {
        let mut st = self.state.lock();
        if let Some(needs) = st.needs.remove(&id) {
            // Drop this scan's interest from cached chunks.
            let interested: Vec<usize> =
                needs.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
            for idx in interested {
                if let Some(e) = st.cache.get_mut(&idx) {
                    e.interest = e.interest.saturating_sub(1);
                }
            }
        }
        st.remaining.remove(&id);
        st.cursor.remove(&id);
        self.cond.notify_all();
    }
}

/// A registered scan; yields every chunk exactly once, possibly out of order.
pub struct ScanHandle<S: ChunkSource> {
    abm: Arc<Abm<S>>,
    id: u64,
    finished: bool,
}

impl<S: ChunkSource> ScanHandle<S> {
    /// Fetch the next chunk, or `None` once all chunks were delivered.
    pub fn next_chunk(&mut self) -> Result<Option<(usize, Arc<S::Chunk>)>> {
        if self.finished {
            return Ok(None);
        }
        let r = self.abm.next_chunk(self.id)?;
        if r.is_none() {
            self.finished = true;
        }
        Ok(r)
    }
}

impl<S: ChunkSource> Drop for ScanHandle<S> {
    fn drop(&mut self) {
        self.abm.deregister(self.id);
    }
}

/// Adapter: each pack of a [`TableStorage`] is one coop-scan chunk, decoded
/// into the requested columns.
pub struct TableChunkSource {
    table: Arc<TableStorage>,
    pool: Arc<BufferPool>,
    columns: Vec<usize>,
}

impl TableChunkSource {
    /// Scan `columns` of `table` through `pool`.
    pub fn new(table: Arc<TableStorage>, pool: Arc<BufferPool>, columns: Vec<usize>) -> Self {
        TableChunkSource { table, pool, columns }
    }
}

impl ChunkSource for TableChunkSource {
    type Chunk = Vec<(ColData, Option<Vec<bool>>)>;

    fn n_chunks(&self) -> usize {
        self.table.n_packs()
    }

    fn load(&self, idx: usize) -> Result<Self::Chunk> {
        if idx >= self.table.n_packs() {
            return Err(VwError::Storage(format!("chunk {idx} out of range")));
        }
        self.table.read_pack(&self.pool, idx, &self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    /// A source that counts loads and can simulate latency.
    struct CountingSource {
        n: usize,
        delay: Duration,
        loads: AtomicUsize,
    }

    impl ChunkSource for CountingSource {
        type Chunk = usize;
        fn n_chunks(&self) -> usize {
            self.n
        }
        fn load(&self, idx: usize) -> Result<usize> {
            self.loads.fetch_add(1, Ordering::Relaxed);
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            Ok(idx * 10)
        }
    }

    fn src(n: usize) -> CountingSource {
        CountingSource { n, delay: Duration::ZERO, loads: AtomicUsize::new(0) }
    }

    fn run_scan<S: ChunkSource + 'static>(abm: &Arc<Abm<S>>) -> Vec<usize> {
        let mut h = abm.register();
        let mut seen = Vec::new();
        while let Some((idx, _)) = h.next_chunk().unwrap() {
            seen.push(idx);
        }
        seen
    }

    #[test]
    fn single_scan_sees_everything_once_all_policies() {
        for policy in [ScanPolicy::Naive, ScanPolicy::Attach, ScanPolicy::Relevance] {
            let abm = Abm::new(src(20), 4, policy);
            let mut seen = run_scan(&abm);
            seen.sort_unstable();
            assert_eq!(seen, (0..20).collect::<Vec<_>>(), "{policy:?}");
        }
    }

    #[test]
    fn naive_scan_is_in_order() {
        let abm = Abm::new(src(10), 3, ScanPolicy::Naive);
        let seen = run_scan(&abm);
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn attach_scan_starts_at_wavefront_and_wraps() {
        let abm = Abm::new(src(10), 3, ScanPolicy::Attach);
        // First scan consumes 4 chunks, then a second registers.
        let mut h1 = abm.register();
        for _ in 0..4 {
            h1.next_chunk().unwrap();
        }
        let seen2 = run_scan(&abm);
        // Scan 2 began at the wavefront (~4) and wrapped around.
        assert_eq!(seen2.len(), 10);
        assert!(seen2[0] >= 3, "attach should start near the wavefront, got {:?}", seen2);
        let mut sorted = seen2.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_scans_all_complete() {
        for policy in [ScanPolicy::Naive, ScanPolicy::Attach, ScanPolicy::Relevance] {
            let abm = Abm::new(
                CountingSource {
                    n: 30,
                    delay: Duration::from_micros(200),
                    loads: AtomicUsize::new(0),
                },
                8,
                policy,
            );
            let mut handles = Vec::new();
            for _ in 0..4 {
                let abm = abm.clone();
                handles.push(std::thread::spawn(move || run_scan(&abm)));
            }
            for h in handles {
                let mut seen = h.join().unwrap();
                seen.sort_unstable();
                assert_eq!(seen, (0..30).collect::<Vec<_>>(), "{policy:?}");
            }
        }
    }

    #[test]
    fn relevance_shares_io_between_concurrent_scans() {
        // 24 chunks, cache 8, 3 concurrent scans with slow loads: the
        // cooperative policy should perform far fewer loads than 3 full
        // passes (72); naive with a small cache thrashes.
        let run = |policy| {
            let abm = Abm::new(
                CountingSource {
                    n: 24,
                    delay: Duration::from_micros(500),
                    loads: AtomicUsize::new(0),
                },
                8,
                policy,
            );
            let mut handles = Vec::new();
            for _ in 0..3 {
                let abm = abm.clone();
                handles.push(std::thread::spawn(move || run_scan(&abm)));
            }
            for h in handles {
                assert_eq!(h.join().unwrap().len(), 24);
            }
            abm.io_stats().0
        };
        let coop_loads = run(ScanPolicy::Relevance);
        let naive_loads = run(ScanPolicy::Naive);
        assert!(
            coop_loads < naive_loads,
            "relevance ({coop_loads} loads) should beat naive ({naive_loads} loads)"
        );
        assert!(coop_loads < 48, "coop should share most reads, got {coop_loads}");
    }

    #[test]
    fn dropped_scan_releases_interest() {
        let abm = Abm::new(src(10), 4, ScanPolicy::Relevance);
        {
            let mut h = abm.register();
            h.next_chunk().unwrap();
            // Dropped mid-scan.
        }
        // A fresh scan must still complete.
        let mut seen = run_scan(&abm);
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn table_chunk_source_decodes_packs() {
        use vw_common::{Field, Schema, TypeId};
        use vw_storage::{Layout, SimulatedDisk};
        let disk = SimulatedDisk::instant();
        let pool = BufferPool::new(disk.clone(), 1 << 20);
        let schema = Schema::new(vec![Field::not_null("v", TypeId::I64)]).unwrap();
        let mut t = TableStorage::new(disk, schema, Layout::Dsm);
        let col = ColData::I64((0..1000).collect());
        t.append_columns(&[col], &[None], 100).unwrap();
        let source = TableChunkSource::new(Arc::new(t), pool, vec![0]);
        let abm = Abm::new(source, 4, ScanPolicy::Relevance);
        let mut h = abm.register();
        let mut total = 0i64;
        let mut chunks = 0;
        while let Some((_, data)) = h.next_chunk().unwrap() {
            let (col, nulls) = &data[0];
            assert!(nulls.is_none());
            total += col.as_i64().iter().sum::<i64>();
            chunks += 1;
        }
        assert_eq!(chunks, 10);
        assert_eq!(total, (0..1000).sum::<i64>());
    }
}
