//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so this crate implements the
//! API subset the workspace benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `BenchmarkGroup`
//! configuration chaining, `Bencher::iter`, `black_box` — with a simple
//! warm-up + timed-window mean instead of criterion's full statistics. The
//! printed `name: mean ns/iter (iters)` lines are enough to compare
//! implementations; swap in real criterion when a registry is reachable.

use std::hint;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported like criterion's.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Measurement markers (only wall-clock time is supported).
pub mod measurement {
    /// Wall-clock measurement marker.
    pub struct WallTime;
}

/// Per-invocation timing state handed to `bench_function` closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Call `f` repeatedly within the measurement budget, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call warms caches and page-faults allocations in.
        black_box(f());
        let start = Instant::now();
        loop {
            black_box(f());
            self.iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.budget {
                self.total = elapsed;
                break;
            }
        }
    }

    fn mean_ns(&self) -> f64 {
        if self.iters == 0 {
            return 0.0;
        }
        self.total.as_nanos() as f64 / self.iters as f64
    }
}

/// A named group of related benchmarks with shared configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    measurement: Duration,
    warm_up: Duration,
    _criterion: PhantomData<&'a mut Criterion>,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of samples (accepted for API compatibility; unused).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Total time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Warm-up duration before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Run one benchmark and print its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Warm-up pass: run the closure with a tiny budget, discard results.
        let mut warm = Bencher { total: Duration::ZERO, iters: 0, budget: self.warm_up };
        f(&mut warm);
        let mut b = Bencher { total: Duration::ZERO, iters: 0, budget: self.measurement };
        f(&mut b);
        println!("{}/{}: {:>12.1} ns/iter ({} iters)", self.name, id, b.mean_ns(), b.iters);
        self
    }

    /// End the group (separator line; criterion parity).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement: Duration::from_millis(500),
            warm_up: Duration::from_millis(100),
            _criterion: PhantomData,
            _measurement: PhantomData,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Define a group-runner function invoking each benchmark fn in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("t");
        g.measurement_time(Duration::from_millis(10)).warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }
}
