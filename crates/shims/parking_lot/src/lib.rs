//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no network access, so the workspace vendors the
//! minimal lock API surface it actually uses: `Mutex::lock`, `RwLock::read`
//! / `write`, and `Condvar::wait(&mut guard)` / `notify_*`. Semantics match
//! parking_lot's: no lock poisoning (a panicked holder does not wedge the
//! lock for everyone else).

use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

/// A mutex whose `lock` returns the guard directly (no poison `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]; a `take`-able inner guard lets [`Condvar::wait`]
/// bridge std's by-value wait API.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning like parking_lot does.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside Condvar::wait")
    }
}

/// A reader-writer lock with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Try to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(TryLockError::Poisoned(e)) => Some(RwLockReadGuard(e.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable whose `wait` re-acquires through `&mut` guard,
/// matching parking_lot's signature.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing the mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            *done = true;
            c.notify_all();
            drop(done);
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }
}
