//! Offline stand-in for the `crossbeam` crate (channel module only).
//!
//! The workspace uses exactly `crossbeam::channel::{bounded, Receiver}` with
//! cloneable senders; `std::sync::mpsc::sync_channel` provides the same
//! semantics (bounded capacity, blocking send, cloneable `SyncSender`), so
//! this shim is a thin re-wrap that keeps the crossbeam names.

/// Multi-producer channels with bounded capacity.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half; cloneable like crossbeam's `Sender`.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving side has disconnected.
    pub use std::sync::mpsc::{RecvError, SendError};

    /// Error returned by [`Sender::try_send`], matching crossbeam's shape.
    pub enum TrySendError<T> {
        /// The channel is at capacity; the value comes back to the caller.
        Full(T),
        /// The receiving side has disconnected.
        Disconnected(T),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Block until the value is enqueued or the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }

        /// Non-blocking send: enqueue if there is capacity, hand the value
        /// back otherwise. Pool-scheduled producers use this so a full
        /// channel parks the *task* instead of blocking a pool worker.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator over received values.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// A bounded channel holding at most `cap` queued values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, TrySendError};

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded::<u32>(1);
        assert!(tx.try_send(1).is_ok());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(tx.try_send(3).is_ok());
        drop(rx);
        assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
    }

    #[test]
    fn bounded_multi_producer() {
        let (tx, rx) = bounded::<u32>(4);
        let tx2 = tx.clone();
        let h1 = std::thread::spawn(move || (0..10).for_each(|i| tx.send(i).unwrap()));
        let h2 = std::thread::spawn(move || (10..20).for_each(|i| tx2.send(i).unwrap()));
        let mut got: Vec<u32> = (0..20).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
        h1.join().unwrap();
        h2.join().unwrap();
        assert!(rx.recv().is_err(), "all senders dropped closes the channel");
    }
}
