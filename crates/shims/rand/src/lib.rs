//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses — `SmallRng::seed_from_u64`,
//! `gen_range` over integer/float ranges, `gen_bool`, `gen` — on top of
//! xoshiro256** seeded via splitmix64 (the same construction real
//! `SmallRng` uses on 64-bit targets). Deterministic for a given seed,
//! which is all the benchmarks and tests require.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a range.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)`; `inclusive` widens to `[low, high]`.
    fn sample(rng: &mut dyn RngCore, low: Self, high: Self, inclusive: bool) -> Self;
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample(rng, lo, hi, true)
    }
}

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// A uniformly random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types constructible from raw bits (`Rng::gen`).
pub trait Standard {
    /// Draw a uniformly random value.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn from_rng(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn from_rng(rng: &mut dyn RngCore) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, low: $t, high: $t, inclusive: bool) -> $t {
                let hi = if inclusive { high as i128 } else { high as i128 - 1 };
                let lo = low as i128;
                assert!(hi >= lo, "empty sample range");
                let span = (hi - lo + 1) as u128;
                // Modulo bias is < 2^-64 for every span the workspace uses.
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo + r as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample(rng: &mut dyn RngCore, low: f64, high: f64, _inclusive: bool) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// Generator namespaces mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — small, fast, good-quality; same family as real
    /// `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(1..=50i64);
            assert!((1..=50).contains(&v));
            let f = rng.gen_range(900.0..=11000.0);
            assert!((900.0..=11000.0).contains(&f));
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "biased: {heads}");
    }
}
