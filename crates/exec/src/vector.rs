//! Vectors and batches — the unit of data flow between operators.

use vw_common::{ColData, Result, Schema, SelVec, TypeId, Value, VwError};

/// A typed value vector with the Vectorwise two-column NULL representation:
/// `data` always holds a well-typed ("safe") value at every position, and
/// `nulls`, when present, flags the positions that are SQL NULL.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    /// The values.
    pub data: ColData,
    /// NULL indicator; `None` means "no NULLs in this vector".
    pub nulls: Option<Vec<bool>>,
}

impl Vector {
    /// A non-nullable vector.
    pub fn new(data: ColData) -> Vector {
        Vector { data, nulls: None }
    }

    /// A vector with an explicit indicator (normalized: all-false → None).
    pub fn with_nulls(data: ColData, nulls: Option<Vec<bool>>) -> Vector {
        let nulls = nulls.filter(|m| m.iter().any(|&b| b));
        Vector { data, nulls }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.len() == 0
    }

    /// The type.
    pub fn type_id(&self) -> TypeId {
        self.data.type_id()
    }

    /// Is position `i` NULL?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.as_ref().is_some_and(|m| m[i])
    }

    /// Value at `i` as a [`Value`] (NULL-aware slow path).
    pub fn get(&self, i: usize) -> Value {
        if self.is_null(i) {
            Value::Null
        } else {
            self.data.get_value(i)
        }
    }

    /// Approximate heap bytes held by this vector (value buffer plus NULL
    /// indicator) — the unit the memory governor
    /// (`vw-exec::partition::MemBudget`) charges for staged build rows.
    pub fn byte_size(&self) -> usize {
        self.data.byte_size() + self.nulls.as_ref().map_or(0, |m| m.len())
    }

    /// Append a [`Value`] (NULL extends the indicator).
    pub fn push(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            let n = self.len();
            self.nulls.get_or_insert_with(|| vec![false; n]).push(true);
            self.data.push_safe_default();
        } else {
            if let Some(m) = &mut self.nulls {
                m.push(false);
            }
            self.data.push_value(v)?;
        }
        Ok(())
    }

    /// Overwrite position `i` (PDT modification overlay during scans).
    pub fn set(&mut self, i: usize, v: &Value) -> Result<()> {
        if v.is_null() {
            let n = self.len();
            self.nulls.get_or_insert_with(|| vec![false; n])[i] = true;
            self.data.set_value(i, &Value::Null)?;
        } else {
            if let Some(m) = &mut self.nulls {
                m[i] = false;
            }
            self.data.set_value(i, v)?;
        }
        Ok(())
    }

    /// Gather `positions` into a new vector.
    pub fn gather(&self, positions: &SelVec) -> Vector {
        let mut data = ColData::with_capacity(self.type_id(), positions.len());
        data.extend_gather(&self.data, positions.iter());
        let nulls =
            self.nulls.as_ref().map(|m| positions.iter().map(|p| m[p]).collect::<Vec<bool>>());
        Vector::with_nulls(data, nulls)
    }

    /// Gather arbitrary row indices — unsorted and repeatable, unlike
    /// [`Vector::gather`]'s sorted [`SelVec`] — into a new vector. The join
    /// output assembler uses this: one probe row matching N build rows
    /// repeats its index N times.
    pub fn gather_indices(&self, idx: &[u32]) -> Vector {
        let mut data = ColData::with_capacity(self.type_id(), idx.len());
        data.extend_gather(&self.data, idx.iter().map(|&i| i as usize));
        let nulls =
            self.nulls.as_ref().map(|m| idx.iter().map(|&i| m[i as usize]).collect::<Vec<bool>>());
        Vector::with_nulls(data, nulls)
    }

    /// Like [`Vector::gather_indices`], but lanes equal to `sentinel`
    /// produce SQL NULL (left-outer-join padding for unmatched probe rows).
    pub fn gather_indices_padded(&self, idx: &[u32], sentinel: u32) -> Vector {
        let mut data = ColData::with_capacity(self.type_id(), idx.len());
        data.extend_gather_padded(&self.data, idx, sentinel);
        let nulls: Vec<bool> =
            idx.iter().map(|&i| i == sentinel || self.is_null(i as usize)).collect();
        Vector::with_nulls(data, Some(nulls))
    }

    /// Append the lanes of `src` selected by `sel` (vectorized hash-build
    /// append: batch rows flow into the contiguous build-side vectors).
    pub fn extend_gather_sel(&mut self, src: &Vector, sel: &SelVec) {
        match (&mut self.nulls, &src.nulls) {
            (Some(a), Some(b)) => a.extend(sel.iter().map(|p| b[p])),
            (Some(a), None) => a.extend(std::iter::repeat_n(false, sel.len())),
            (None, Some(b)) => {
                if sel.iter().any(|p| b[p]) {
                    let mut m = vec![false; self.len()];
                    m.extend(sel.iter().map(|p| b[p]));
                    self.nulls = Some(m);
                }
            }
            (None, None) => {}
        }
        self.data.extend_gather(&src.data, sel.iter());
    }

    /// Clear values in place, keeping the data buffer's capacity — the
    /// [`BatchPool`](crate::morsel::BatchPool) recycling primitive. The
    /// NULL indicator is dropped, not kept: a cleared vector that reads as
    /// NULL-free must also *be* `nulls: None`, or every downstream
    /// `nulls.is_none()` fast path would be permanently demoted to the
    /// NULL-aware route once a buffer ever carried an indicator.
    pub fn clear_keep_capacity(&mut self) {
        self.data.clear();
        self.nulls = None;
    }

    /// [`Vector::gather`] into a caller-owned vector (cleared first),
    /// reusing its buffers — the pooled-output variant.
    pub fn gather_into(&self, positions: &SelVec, dst: &mut Vector) {
        debug_assert_eq!(self.type_id(), dst.type_id());
        dst.data.clear();
        dst.data.extend_gather(&self.data, positions.iter());
        fill_gathered_nulls(&mut dst.nulls, self.nulls.as_deref(), positions.iter());
    }

    /// [`Vector::gather_indices`] into a caller-owned vector (cleared
    /// first), reusing its buffers.
    pub fn gather_indices_into(&self, idx: &[u32], dst: &mut Vector) {
        debug_assert_eq!(self.type_id(), dst.type_id());
        dst.data.clear();
        dst.data.extend_gather(&self.data, idx.iter().map(|&i| i as usize));
        fill_gathered_nulls(&mut dst.nulls, self.nulls.as_deref(), idx.iter().map(|&i| i as usize));
    }

    /// [`Vector::gather_indices_padded`] into a caller-owned vector
    /// (cleared first), reusing its buffers; lanes equal to `sentinel`
    /// produce SQL NULL. When no lane is padded and the source carries no
    /// NULLs (every inner-join batch), no indicator is materialized, so
    /// downstream NULL-free fast paths keep firing.
    pub fn gather_indices_padded_into(&self, idx: &[u32], sentinel: u32, dst: &mut Vector) {
        debug_assert_eq!(self.type_id(), dst.type_id());
        dst.data.clear();
        dst.data.extend_gather_padded(&self.data, idx, sentinel);
        if self.nulls.is_none() && !idx.contains(&sentinel) {
            dst.nulls = None;
            return;
        }
        let m = dst.nulls.get_or_insert_with(Vec::new);
        m.clear();
        m.extend(idx.iter().map(|&i| i == sentinel || self.is_null(i as usize)));
    }

    /// Copy `src` wholesale into this vector (cleared first), reusing the
    /// buffers — the pooled replacement for `src.clone()`.
    pub fn clone_from_vector(&mut self, src: &Vector) {
        debug_assert_eq!(self.type_id(), src.type_id());
        self.clear_keep_capacity();
        self.extend_range(src, 0, src.len());
    }

    /// Concatenate `other[start..end]` onto this vector.
    pub fn extend_range(&mut self, other: &Vector, start: usize, end: usize) {
        match (&mut self.nulls, &other.nulls) {
            (Some(a), Some(b)) => a.extend_from_slice(&b[start..end]),
            (Some(a), None) => a.extend(std::iter::repeat_n(false, end - start)),
            (None, Some(b)) => {
                if b[start..end].iter().any(|&x| x) {
                    let mut m = vec![false; self.len()];
                    m.extend_from_slice(&b[start..end]);
                    self.nulls = Some(m);
                }
            }
            (None, None) => {}
        }
        self.data.extend_from_range(&other.data, start, end);
    }
}

/// Fill `dst`'s NULL indicator for a gather of `positions` out of a source
/// with indicator `src`. A NULL-free source leaves `dst` at `None` (a
/// stale destination buffer is dropped rather than kept all-false, which
/// would demote every downstream `nulls.is_none()` fast path); a
/// destination buffer is reused when both sides carry indicators.
fn fill_gathered_nulls(
    dst: &mut Option<Vec<bool>>,
    src: Option<&[bool]>,
    positions: impl Iterator<Item = usize>,
) {
    match (dst.as_mut(), src) {
        (Some(d), Some(m)) => {
            d.clear();
            d.extend(positions.map(|p| m[p]));
        }
        (Some(_), None) => *dst = None,
        (None, Some(m)) => *dst = Some(positions.map(|p| m[p]).collect()),
        (None, None) => {}
    }
}

/// A batch: equally-long vectors plus an optional selection vector marking
/// the *live* rows (the X100 way of representing filtered data without
/// copying).
#[derive(Debug, Clone, Default)]
pub struct Batch {
    /// The column vectors.
    pub columns: Vec<Vector>,
    /// Live positions; `None` = all rows live.
    pub sel: Option<SelVec>,
}

impl Batch {
    /// A batch from columns, no selection.
    pub fn new(columns: Vec<Vector>) -> Batch {
        debug_assert!(columns.windows(2).all(|w| w[0].len() == w[1].len()));
        Batch { columns, sel: None }
    }

    /// Empty batch of a given schema (0 rows).
    pub fn empty(schema: &Schema) -> Batch {
        Batch {
            columns: schema.fields.iter().map(|f| Vector::new(ColData::new(f.ty))).collect(),
            sel: None,
        }
    }

    /// Physical length of the vectors (including filtered-out rows).
    pub fn capacity(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Number of *live* rows.
    pub fn rows(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.capacity(),
        }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Iterate live positions. Returns a concrete iterator — a boxed
    /// `dyn Iterator` here would heap-allocate on every call, and `live()`
    /// sits inside per-batch operator loops.
    pub fn live(&self) -> LiveIter<'_> {
        match &self.sel {
            Some(s) => LiveIter { sel: Some(s.as_slice()), pos: 0, end: s.len() },
            None => LiveIter { sel: None, pos: 0, end: self.capacity() },
        }
    }

    /// Compact to dense vectors (materialize the selection).
    pub fn compact(self) -> Batch {
        match &self.sel {
            None => self,
            Some(sel) => {
                let columns = self.columns.iter().map(|c| c.gather(sel)).collect();
                Batch { columns, sel: None }
            }
        }
    }

    /// Row `i` (live-position index) as Values — result/test convenience.
    pub fn row_values(&self, live_idx: usize) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.width());
        self.row_values_into(live_idx, &mut out);
        out
    }

    /// Fill `out` (cleared first) with row `i`'s values, reusing the
    /// caller's buffer — the per-row variant for loops where a fresh `Vec`
    /// per row would dominate (e.g. the Top-N reject path).
    pub fn row_values_into(&self, live_idx: usize, out: &mut Vec<Value>) {
        let pos = match &self.sel {
            Some(s) => s.as_slice()[live_idx] as usize,
            None => live_idx,
        };
        out.clear();
        out.extend(self.columns.iter().map(|c| c.get(pos)));
    }
}

/// Concrete live-position iterator for [`Batch::live`]: a sorted selection
/// walk or a dense `0..capacity` range, with no heap allocation either way.
pub struct LiveIter<'a> {
    /// Selection positions, or `None` for the dense range case.
    sel: Option<&'a [u32]>,
    pos: usize,
    end: usize,
}

impl Iterator for LiveIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.pos >= self.end {
            return None;
        }
        let out = match self.sel {
            Some(s) => s[self.pos] as usize,
            None => self.pos,
        };
        self.pos += 1;
        Some(out)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.pos;
        (n, Some(n))
    }
}

impl ExactSizeIterator for LiveIter<'_> {}

/// Build a `Vector` from `Value`s, inferring the type from `ty`.
pub fn vector_from_values(ty: TypeId, values: &[Value]) -> Result<Vector> {
    let mut v = Vector::new(ColData::with_capacity(ty, values.len()));
    for val in values {
        if !val.is_null() && val.type_id() != Some(ty) {
            return Err(VwError::Exec(format!(
                "value {val:?} does not fit column type {}",
                ty.sql_name()
            )));
        }
        v.push(val)?;
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_with_nulls() {
        let mut v = Vector::new(ColData::new(TypeId::I32));
        v.push(&Value::I32(1)).unwrap();
        v.push(&Value::Null).unwrap();
        v.push(&Value::I32(3)).unwrap();
        assert_eq!(v.get(0), Value::I32(1));
        assert_eq!(v.get(1), Value::Null);
        assert_eq!(v.get(2), Value::I32(3));
        assert!(v.is_null(1));
        assert!(!v.is_null(2));
    }

    #[test]
    fn with_nulls_normalizes_all_false() {
        let v = Vector::with_nulls(ColData::I32(vec![1, 2]), Some(vec![false, false]));
        assert!(v.nulls.is_none());
    }

    #[test]
    fn gather_keeps_nulls() {
        let mut v = Vector::new(ColData::new(TypeId::I64));
        for val in [Value::I64(10), Value::Null, Value::I64(30), Value::I64(40)] {
            v.push(&val).unwrap();
        }
        let sel = SelVec::from_positions(vec![1, 3]);
        let g = v.gather(&sel);
        assert_eq!(g.get(0), Value::Null);
        assert_eq!(g.get(1), Value::I64(40));
    }

    #[test]
    fn extend_range_merges_null_masks() {
        let mut a = Vector::new(ColData::I32(vec![1, 2]));
        let b = Vector::with_nulls(ColData::I32(vec![0, 4]), Some(vec![true, false]));
        a.extend_range(&b, 0, 2);
        assert_eq!(a.len(), 4);
        assert_eq!(a.get(2), Value::Null);
        assert_eq!(a.get(3), Value::I32(4));
    }

    #[test]
    fn batch_selection_rows() {
        let b = Batch {
            columns: vec![Vector::new(ColData::I32(vec![1, 2, 3, 4]))],
            sel: Some(SelVec::from_positions(vec![0, 2])),
        };
        assert_eq!(b.rows(), 2);
        assert_eq!(b.capacity(), 4);
        assert_eq!(b.row_values(1), vec![Value::I32(3)]);
        let dense = b.compact();
        assert_eq!(dense.rows(), 2);
        assert_eq!(dense.columns[0].data, ColData::I32(vec![1, 3]));
    }

    #[test]
    fn vector_from_values_type_checked() {
        let v = vector_from_values(TypeId::I32, &[Value::I32(5), Value::Null]).unwrap();
        assert_eq!(v.len(), 2);
        assert!(vector_from_values(TypeId::I32, &[Value::I64(5)]).is_err());
    }
}
