//! Vectors and batches — the unit of data flow between operators.
//!
//! Since PR 9 a vector can also carry an **encoded form** ([`Enc`])
//! alongside (or instead of) its flat values, so kernels run on compressed
//! representations and only materialize what survives — see
//! ARCHITECTURE.md ("Compressed execution") for the encoded vector forms,
//! the per-encoding instruction table, and the late-materialization
//! boundaries.

use std::sync::Arc;
use vw_common::{ColData, Result, Schema, SelVec, TypeId, Value, VwError};

/// An encoded vector form riding on a [`Vector`] (`SET compressed_exec`).
#[derive(Debug, Clone, PartialEq)]
pub enum Enc {
    /// Dictionary-coded strings: one `u32` code per position into a shared
    /// dictionary (the pack's PDICT dictionary, one `Arc` per pack). While
    /// this form is present, `data` is an **empty** `ColData::Str`
    /// placeholder that only carries the type — `len()`/`get()` and every
    /// gather/extend consult the codes. Two vectors sharing the same `Arc`
    /// compare by code; different dictionaries fall back to comparing the
    /// dictionary entries themselves (the code-remap-free fallback).
    Dict {
        /// One code per position (`codes[i] < dict.len()`).
        codes: Vec<u32>,
        /// The shared dictionary, sorted (PDICT), so code order = value
        /// order and range predicates translate to code predicates.
        dict: Arc<Vec<String>>,
    },
    /// Run-length sidecar for an integer column: `(value, run_len)` pairs
    /// covering exactly this vector's rows, **in addition to** fully
    /// materialized `data` (the win is per-run predicate evaluation, not
    /// storage). Any mutation drops the sidecar; `data` stays the truth.
    Rle {
        /// The runs, in position order, summing to `data.len()`.
        runs: Vec<(i64, u32)>,
    },
}

/// A typed value vector with the Vectorwise two-column NULL representation:
/// `data` always holds a well-typed ("safe") value at every position, and
/// `nulls`, when present, flags the positions that are SQL NULL.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    /// The values. Empty placeholder while `enc` is [`Enc::Dict`].
    pub data: ColData,
    /// NULL indicator; `None` means "no NULLs in this vector".
    pub nulls: Option<Vec<bool>>,
    /// Encoded form, when the compressed execution path kept one.
    pub enc: Option<Enc>,
}

impl Vector {
    /// A non-nullable vector.
    pub fn new(data: ColData) -> Vector {
        Vector { data, nulls: None, enc: None }
    }

    /// A vector with an explicit indicator (normalized: all-false → None).
    pub fn with_nulls(data: ColData, nulls: Option<Vec<bool>>) -> Vector {
        let nulls = nulls.filter(|m| m.iter().any(|&b| b));
        Vector { data, nulls, enc: None }
    }

    /// A dictionary-coded string vector (data stays an empty placeholder).
    pub fn from_dict(codes: Vec<u32>, dict: Arc<Vec<String>>, nulls: Option<Vec<bool>>) -> Vector {
        let nulls = nulls.filter(|m| m.iter().any(|&b| b));
        Vector { data: ColData::new(TypeId::Str), nulls, enc: Some(Enc::Dict { codes, dict }) }
    }

    /// The dictionary codes + dictionary, when this vector is dict-coded.
    #[inline]
    pub fn dict_parts(&self) -> Option<(&[u32], &Arc<Vec<String>>)> {
        match &self.enc {
            Some(Enc::Dict { codes, dict }) => Some((codes, dict)),
            _ => None,
        }
    }

    /// The RLE run sidecar, when present.
    #[inline]
    pub fn rle_runs(&self) -> Option<&[(i64, u32)]> {
        match &self.enc {
            Some(Enc::Rle { runs }) => Some(runs),
            _ => None,
        }
    }

    /// True when an encoded form is present (profiling's `enc` column).
    #[inline]
    pub fn is_encoded(&self) -> bool {
        self.enc.is_some()
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match &self.enc {
            Some(Enc::Dict { codes, .. }) => codes.len(),
            _ => self.data.len(),
        }
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode the encoded form into flat `data` and drop it — the
    /// late-materialization boundary (emit / Sort / TopN / spill / any
    /// kernel that has no encoded instruction variant). A no-op for flat
    /// vectors, so calling it defensively costs one branch.
    pub fn ensure_flat(&mut self) {
        match self.enc.take() {
            None => {}
            Some(Enc::Rle { .. }) => {} // data is already materialized
            Some(Enc::Dict { codes, dict }) => {
                debug_assert_eq!(self.data.len(), 0, "dict placeholder must stay empty");
                let ColData::Str(out) = &mut self.data else {
                    unreachable!("dict enc on non-string column")
                };
                vw_compress::dict::materialize_codes(&codes, &dict, out);
            }
        }
    }

    /// The type.
    pub fn type_id(&self) -> TypeId {
        self.data.type_id()
    }

    /// Is position `i` NULL?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.as_ref().is_some_and(|m| m[i])
    }

    /// Value at `i` as a [`Value`] (NULL-aware slow path).
    pub fn get(&self, i: usize) -> Value {
        if self.is_null(i) {
            Value::Null
        } else if let Some((codes, dict)) = self.dict_parts() {
            Value::Str(dict[codes[i] as usize].clone())
        } else {
            self.data.get_value(i)
        }
    }

    /// The string at position `i` without cloning (dict-aware; `i` must
    /// name a string column and is *not* NULL-checked — callers holding a
    /// non-null position use this in hash/compare loops).
    #[inline]
    pub fn str_at(&self, i: usize) -> &str {
        if let Some((codes, dict)) = self.dict_parts() {
            &dict[codes[i] as usize]
        } else {
            match &self.data {
                ColData::Str(s) => &s[i],
                _ => unreachable!("str_at on non-string column"),
            }
        }
    }

    /// Approximate heap bytes held by this vector (value buffer plus NULL
    /// indicator) — the unit the memory governor
    /// (`vw-exec::partition::MemBudget`) charges for staged build rows.
    /// Dict-coded vectors charge their codes (the dictionary is shared,
    /// pack-owned storage).
    pub fn byte_size(&self) -> usize {
        let enc = match &self.enc {
            Some(Enc::Dict { codes, .. }) => codes.len() * 4,
            Some(Enc::Rle { runs }) => runs.len() * 12,
            None => 0,
        };
        self.data.byte_size() + enc + self.nulls.as_ref().map_or(0, |m| m.len())
    }

    /// Append a [`Value`] (NULL extends the indicator).
    pub fn push(&mut self, v: &Value) -> Result<()> {
        self.ensure_flat();
        if v.is_null() {
            let n = self.len();
            self.nulls.get_or_insert_with(|| vec![false; n]).push(true);
            self.data.push_safe_default();
        } else {
            if let Some(m) = &mut self.nulls {
                m.push(false);
            }
            self.data.push_value(v)?;
        }
        Ok(())
    }

    /// Overwrite position `i` (PDT modification overlay during scans).
    pub fn set(&mut self, i: usize, v: &Value) -> Result<()> {
        self.ensure_flat();
        if v.is_null() {
            let n = self.len();
            self.nulls.get_or_insert_with(|| vec![false; n])[i] = true;
            self.data.set_value(i, &Value::Null)?;
        } else {
            if let Some(m) = &mut self.nulls {
                m[i] = false;
            }
            self.data.set_value(i, v)?;
        }
        Ok(())
    }

    /// Gather `positions` into a new vector (dict codes stay coded).
    pub fn gather(&self, positions: &SelVec) -> Vector {
        if let Some((codes, dict)) = self.dict_parts() {
            let out: Vec<u32> = positions.iter().map(|p| codes[p]).collect();
            let nulls =
                self.nulls.as_ref().map(|m| positions.iter().map(|p| m[p]).collect::<Vec<bool>>());
            return Vector::from_dict(out, dict.clone(), nulls);
        }
        let mut data = ColData::with_capacity(self.type_id(), positions.len());
        data.extend_gather(&self.data, positions.iter());
        let nulls =
            self.nulls.as_ref().map(|m| positions.iter().map(|p| m[p]).collect::<Vec<bool>>());
        Vector::with_nulls(data, nulls)
    }

    /// Gather arbitrary row indices — unsorted and repeatable, unlike
    /// [`Vector::gather`]'s sorted [`SelVec`] — into a new vector. The join
    /// output assembler uses this: one probe row matching N build rows
    /// repeats its index N times.
    pub fn gather_indices(&self, idx: &[u32]) -> Vector {
        if let Some((codes, dict)) = self.dict_parts() {
            let out: Vec<u32> = idx.iter().map(|&i| codes[i as usize]).collect();
            let nulls = self
                .nulls
                .as_ref()
                .map(|m| idx.iter().map(|&i| m[i as usize]).collect::<Vec<bool>>());
            return Vector::from_dict(out, dict.clone(), nulls);
        }
        let mut data = ColData::with_capacity(self.type_id(), idx.len());
        data.extend_gather(&self.data, idx.iter().map(|&i| i as usize));
        let nulls =
            self.nulls.as_ref().map(|m| idx.iter().map(|&i| m[i as usize]).collect::<Vec<bool>>());
        Vector::with_nulls(data, nulls)
    }

    /// Like [`Vector::gather_indices`], but lanes equal to `sentinel`
    /// produce SQL NULL (left-outer-join padding for unmatched probe rows).
    /// A dict source stays coded: padded lanes take code 0 as the safe
    /// value under their NULL flag.
    pub fn gather_indices_padded(&self, idx: &[u32], sentinel: u32) -> Vector {
        if let Some((codes, dict)) = self.dict_parts() {
            let out: Vec<u32> =
                idx.iter().map(|&i| if i == sentinel { 0 } else { codes[i as usize] }).collect();
            let nulls: Vec<bool> =
                idx.iter().map(|&i| i == sentinel || self.is_null(i as usize)).collect();
            return Vector::from_dict(out, dict.clone(), Some(nulls));
        }
        let mut data = ColData::with_capacity(self.type_id(), idx.len());
        data.extend_gather_padded(&self.data, idx, sentinel);
        let nulls: Vec<bool> =
            idx.iter().map(|&i| i == sentinel || self.is_null(i as usize)).collect();
        Vector::with_nulls(data, Some(nulls))
    }

    /// Can `self` absorb `src`'s representation without materializing?
    /// True when `self` is (still) empty — it adopts `src`'s dictionary —
    /// or both sides are dict-coded over the *same* `Arc`.
    fn adopts_dict_of(&self, src: &Vector) -> bool {
        match (&self.enc, &src.enc) {
            (_, Some(Enc::Dict { .. })) if self.is_empty() => true,
            (Some(Enc::Dict { dict: a, .. }), Some(Enc::Dict { dict: b, .. })) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Normalize representations before an append: if the append cannot
    /// stay coded (dictionary mismatch, or mixing flat and coded), flatten
    /// whichever side this vector owns. Returns a flat copy of `src` when
    /// *it* was the coded side, else `None` (append straight from `src`).
    fn flatten_for_append(&mut self, src: &Vector) -> Option<Vector> {
        if self.adopts_dict_of(src) {
            return None;
        }
        if self.enc.is_some() {
            self.ensure_flat();
        }
        if src.enc.is_some() {
            let mut flat = src.clone();
            flat.ensure_flat();
            Some(flat)
        } else {
            None
        }
    }

    /// Append the lanes of `src` selected by `sel` (vectorized hash-build
    /// append: batch rows flow into the contiguous build-side vectors).
    /// Dict-coded lanes stay coded while the dictionaries match (one pack
    /// feeding one build); a mismatch materializes both sides.
    pub fn extend_gather_sel(&mut self, src: &Vector, sel: &SelVec) {
        if self.adopts_dict_of(src) {
            let Some((src_codes, src_dict)) = src.dict_parts() else { unreachable!() };
            let src_dict = src_dict.clone();
            self.extend_nulls_gather(src, sel);
            match &mut self.enc {
                Some(Enc::Dict { codes, dict }) => {
                    if !Arc::ptr_eq(dict, &src_dict) {
                        *dict = src_dict; // empty dst with a stale recycled dict
                    }
                    codes.extend(sel.iter().map(|p| src_codes[p]));
                }
                e @ None => {
                    *e = Some(Enc::Dict {
                        codes: sel.iter().map(|p| src_codes[p]).collect(),
                        dict: src_dict,
                    })
                }
                _ => unreachable!(),
            }
            return;
        }
        if let Some(flat) = self.flatten_for_append(src) {
            return self.extend_gather_sel(&flat, sel);
        }
        self.enc = None; // a grown RLE sidecar no longer matches `data`
        self.extend_nulls_gather(src, sel);
        self.data.extend_gather(&src.data, sel.iter());
    }

    /// The NULL-indicator half of [`Vector::extend_gather_sel`].
    fn extend_nulls_gather(&mut self, src: &Vector, sel: &SelVec) {
        let before = self.len();
        match (&mut self.nulls, &src.nulls) {
            (Some(a), Some(b)) => a.extend(sel.iter().map(|p| b[p])),
            (Some(a), None) => a.extend(std::iter::repeat_n(false, sel.len())),
            (None, Some(b)) => {
                if sel.iter().any(|p| b[p]) {
                    let mut m = vec![false; before];
                    m.extend(sel.iter().map(|p| b[p]));
                    self.nulls = Some(m);
                }
            }
            (None, None) => {}
        }
    }

    /// Clear values in place, keeping the data buffer's capacity — the
    /// [`BatchPool`](crate::morsel::BatchPool) recycling primitive. The
    /// NULL indicator is dropped, not kept: a cleared vector that reads as
    /// NULL-free must also *be* `nulls: None`, or every downstream
    /// `nulls.is_none()` fast path would be permanently demoted to the
    /// NULL-aware route once a buffer ever carried an indicator.
    pub fn clear_keep_capacity(&mut self) {
        self.data.clear();
        self.nulls = None;
        match &mut self.enc {
            // Keep the Dict variant (codes capacity survives recycling; the
            // next extend either reuses the same Arc or, because the vector
            // is empty, adopts a new representation wholesale).
            Some(Enc::Dict { codes, .. }) => codes.clear(),
            Some(Enc::Rle { .. }) => self.enc = None,
            None => {}
        }
    }

    /// [`Vector::gather`] into a caller-owned vector (cleared first),
    /// reusing its buffers — the pooled-output variant.
    pub fn gather_into(&self, positions: &SelVec, dst: &mut Vector) {
        debug_assert_eq!(self.type_id(), dst.type_id());
        dst.clear_keep_capacity();
        if let Some((codes, dict)) = self.dict_parts() {
            dst.set_dict_gather(dict, positions.iter().map(|p| codes[p]));
        } else {
            dst.enc = None;
            dst.data.extend_gather(&self.data, positions.iter());
        }
        fill_gathered_nulls(&mut dst.nulls, self.nulls.as_deref(), positions.iter());
    }

    /// [`Vector::gather_indices`] into a caller-owned vector (cleared
    /// first), reusing its buffers.
    pub fn gather_indices_into(&self, idx: &[u32], dst: &mut Vector) {
        debug_assert_eq!(self.type_id(), dst.type_id());
        dst.clear_keep_capacity();
        if let Some((codes, dict)) = self.dict_parts() {
            dst.set_dict_gather(dict, idx.iter().map(|&i| codes[i as usize]));
        } else {
            dst.enc = None;
            dst.data.extend_gather(&self.data, idx.iter().map(|&i| i as usize));
        }
        fill_gathered_nulls(&mut dst.nulls, self.nulls.as_deref(), idx.iter().map(|&i| i as usize));
    }

    /// [`Vector::gather_indices_padded`] into a caller-owned vector
    /// (cleared first), reusing its buffers; lanes equal to `sentinel`
    /// produce SQL NULL. When no lane is padded and the source carries no
    /// NULLs (every inner-join batch), no indicator is materialized, so
    /// downstream NULL-free fast paths keep firing.
    pub fn gather_indices_padded_into(&self, idx: &[u32], sentinel: u32, dst: &mut Vector) {
        debug_assert_eq!(self.type_id(), dst.type_id());
        dst.clear_keep_capacity();
        if let Some((codes, dict)) = self.dict_parts() {
            dst.set_dict_gather(
                dict,
                idx.iter().map(|&i| if i == sentinel { 0 } else { codes[i as usize] }),
            );
        } else {
            dst.enc = None;
            dst.data.extend_gather_padded(&self.data, idx, sentinel);
        }
        if self.nulls.is_none() && !idx.contains(&sentinel) {
            dst.nulls = None;
            return;
        }
        let m = dst.nulls.get_or_insert_with(Vec::new);
        m.clear();
        m.extend(idx.iter().map(|&i| i == sentinel || self.is_null(i as usize)));
    }

    /// Rebuild this (cleared) vector as dict-coded over `dict`, filling
    /// its codes from `src_codes` and reusing the codes buffer if the
    /// vector was already dict-coded before recycling.
    fn set_dict_gather(&mut self, dict: &Arc<Vec<String>>, src_codes: impl Iterator<Item = u32>) {
        debug_assert!(self.is_empty() && self.data.is_empty());
        match &mut self.enc {
            Some(Enc::Dict { codes, dict: d }) => {
                if !Arc::ptr_eq(d, dict) {
                    *d = dict.clone();
                }
                codes.extend(src_codes);
            }
            e => *e = Some(Enc::Dict { codes: src_codes.collect(), dict: dict.clone() }),
        }
    }

    /// Copy `src` wholesale into this vector (cleared first), reusing the
    /// buffers — the pooled replacement for `src.clone()`.
    pub fn clone_from_vector(&mut self, src: &Vector) {
        debug_assert_eq!(self.type_id(), src.type_id());
        self.clear_keep_capacity();
        self.extend_range(src, 0, src.len());
    }

    /// Concatenate `other[start..end]` onto this vector. Dict-coded
    /// sources stay coded while the dictionaries match (see
    /// [`Vector::extend_gather_sel`]); any other mix materializes.
    pub fn extend_range(&mut self, other: &Vector, start: usize, end: usize) {
        if self.adopts_dict_of(other) {
            let Some((src_codes, src_dict)) = other.dict_parts() else { unreachable!() };
            let src_dict = src_dict.clone();
            self.extend_nulls_range(other, start, end);
            match &mut self.enc {
                Some(Enc::Dict { codes, dict }) => {
                    if !Arc::ptr_eq(dict, &src_dict) {
                        *dict = src_dict; // empty dst with a stale recycled dict
                    }
                    codes.extend_from_slice(&src_codes[start..end]);
                }
                e @ None => {
                    *e = Some(Enc::Dict { codes: src_codes[start..end].to_vec(), dict: src_dict })
                }
                _ => unreachable!(),
            }
            return;
        }
        if self.enc.is_some() || other.enc.is_some() {
            if let Some(flat) = self.flatten_for_append(other) {
                return self.extend_range(&flat, start, end);
            }
            self.enc = None; // drop a no-longer-covering RLE sidecar
        }
        self.extend_nulls_range(other, start, end);
        self.data.extend_from_range(&other.data, start, end);
    }

    /// The NULL-indicator half of [`Vector::extend_range`].
    fn extend_nulls_range(&mut self, other: &Vector, start: usize, end: usize) {
        let before = self.len();
        match (&mut self.nulls, &other.nulls) {
            (Some(a), Some(b)) => a.extend_from_slice(&b[start..end]),
            (Some(a), None) => a.extend(std::iter::repeat_n(false, end - start)),
            (None, Some(b)) => {
                if b[start..end].iter().any(|&x| x) {
                    let mut m = vec![false; before];
                    m.extend_from_slice(&b[start..end]);
                    self.nulls = Some(m);
                }
            }
            (None, None) => {}
        }
    }

    /// Scan-facing append of a dict-coded pack slice: extend this vector
    /// with `codes[start..end]` over `dict`, staying coded when possible
    /// (empty vector, or same `Arc`), else materializing the slice.
    pub fn extend_dict_range(
        &mut self,
        codes: &[u32],
        dict: &Arc<Vec<String>>,
        nulls: Option<&[bool]>,
        start: usize,
        end: usize,
    ) {
        let stays_coded = match &self.enc {
            _ if self.is_empty() => true,
            Some(Enc::Dict { dict: d, .. }) => Arc::ptr_eq(d, dict),
            _ => false,
        };
        // NULL indicator first (self.len() must be the pre-append length).
        let before = self.len();
        match (&mut self.nulls, nulls) {
            (Some(a), Some(b)) => a.extend_from_slice(&b[start..end]),
            (Some(a), None) => a.extend(std::iter::repeat_n(false, end - start)),
            (None, Some(b)) => {
                if b[start..end].iter().any(|&x| x) {
                    let mut m = vec![false; before];
                    m.extend_from_slice(&b[start..end]);
                    self.nulls = Some(m);
                }
            }
            (None, None) => {}
        }
        if stays_coded {
            match &mut self.enc {
                Some(Enc::Dict { codes: c, dict: d }) => {
                    if !Arc::ptr_eq(d, dict) {
                        *d = dict.clone();
                    }
                    c.extend_from_slice(&codes[start..end]);
                }
                e => *e = Some(Enc::Dict { codes: codes[start..end].to_vec(), dict: dict.clone() }),
            }
        } else {
            self.ensure_flat();
            let ColData::Str(out) = &mut self.data else {
                unreachable!("dict append on non-string column")
            };
            out.extend(codes[start..end].iter().map(|&c| dict[c as usize].clone()));
        }
    }

    /// Attach an RLE run sidecar covering exactly `data` (the scan sets
    /// this right after filling a fresh vector). Ignored unless the runs
    /// sum to the vector's length — a partial sidecar would lie.
    pub fn set_rle_runs(&mut self, runs: Vec<(i64, u32)>) {
        debug_assert!(self.enc.is_none());
        let covered: usize = runs.iter().map(|&(_, n)| n as usize).sum();
        if covered == self.len() && self.enc.is_none() {
            self.enc = Some(Enc::Rle { runs });
        }
    }

    /// Scan-facing append of an RLE pack slice: extend with
    /// `data[start..end]` (flat, like [`Vector::extend_range`]) while
    /// maintaining a run sidecar clipped to the appended range. The sidecar
    /// survives only while every append keeps it covering — an append onto
    /// a flat non-empty vector drops it.
    pub fn extend_rle_range(
        &mut self,
        data: &ColData,
        runs: &[(i64, u32)],
        nulls: Option<&[bool]>,
        start: usize,
        end: usize,
    ) {
        let keep_runs = self.is_empty() || matches!(self.enc, Some(Enc::Rle { .. }));
        let before = self.len();
        match (&mut self.nulls, nulls) {
            (Some(a), Some(b)) => a.extend_from_slice(&b[start..end]),
            (Some(a), None) => a.extend(std::iter::repeat_n(false, end - start)),
            (None, Some(b)) => {
                if b[start..end].iter().any(|&x| x) {
                    let mut m = vec![false; before];
                    m.extend_from_slice(&b[start..end]);
                    self.nulls = Some(m);
                }
            }
            (None, None) => {}
        }
        self.data.extend_from_range(data, start, end);
        if keep_runs {
            let dst = match &mut self.enc {
                Some(Enc::Rle { runs }) => runs,
                e => {
                    *e = Some(Enc::Rle { runs: Vec::new() });
                    let Some(Enc::Rle { runs }) = e else { unreachable!() };
                    runs
                }
            };
            clip_runs(runs, start, end, dst);
        } else {
            self.enc = None;
        }
    }
}

/// Append the sub-runs of `runs` overlapping `[start, end)` onto `out`,
/// merging with `out`'s trailing run when the values match.
fn clip_runs(runs: &[(i64, u32)], start: usize, end: usize, out: &mut Vec<(i64, u32)>) {
    let mut pos = 0usize;
    for &(v, l) in runs {
        let (rs, re) = (pos, pos + l as usize);
        pos = re;
        if re <= start {
            continue;
        }
        if rs >= end {
            break;
        }
        let take = (re.min(end) - rs.max(start)) as u32;
        match out.last_mut() {
            Some(last) if last.0 == v => last.1 += take,
            _ => out.push((v, take)),
        }
    }
}

/// Fill `dst`'s NULL indicator for a gather of `positions` out of a source
/// with indicator `src`. A NULL-free source leaves `dst` at `None` (a
/// stale destination buffer is dropped rather than kept all-false, which
/// would demote every downstream `nulls.is_none()` fast path); a
/// destination buffer is reused when both sides carry indicators.
fn fill_gathered_nulls(
    dst: &mut Option<Vec<bool>>,
    src: Option<&[bool]>,
    positions: impl Iterator<Item = usize>,
) {
    match (dst.as_mut(), src) {
        (Some(d), Some(m)) => {
            d.clear();
            d.extend(positions.map(|p| m[p]));
        }
        (Some(_), None) => *dst = None,
        (None, Some(m)) => *dst = Some(positions.map(|p| m[p]).collect()),
        (None, None) => {}
    }
}

/// A batch: equally-long vectors plus an optional selection vector marking
/// the *live* rows (the X100 way of representing filtered data without
/// copying).
#[derive(Debug, Clone, Default)]
pub struct Batch {
    /// The column vectors.
    pub columns: Vec<Vector>,
    /// Live positions; `None` = all rows live.
    pub sel: Option<SelVec>,
}

impl Batch {
    /// A batch from columns, no selection.
    pub fn new(columns: Vec<Vector>) -> Batch {
        debug_assert!(columns.windows(2).all(|w| w[0].len() == w[1].len()));
        Batch { columns, sel: None }
    }

    /// Empty batch of a given schema (0 rows).
    pub fn empty(schema: &Schema) -> Batch {
        Batch {
            columns: schema.fields.iter().map(|f| Vector::new(ColData::new(f.ty))).collect(),
            sel: None,
        }
    }

    /// Physical length of the vectors (including filtered-out rows).
    pub fn capacity(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Number of *live* rows.
    pub fn rows(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.capacity(),
        }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Iterate live positions. Returns a concrete iterator — a boxed
    /// `dyn Iterator` here would heap-allocate on every call, and `live()`
    /// sits inside per-batch operator loops.
    pub fn live(&self) -> LiveIter<'_> {
        match &self.sel {
            Some(s) => LiveIter { sel: Some(s.as_slice()), pos: 0, end: s.len() },
            None => LiveIter { sel: None, pos: 0, end: self.capacity() },
        }
    }

    /// Compact to dense vectors (materialize the selection).
    pub fn compact(self) -> Batch {
        match &self.sel {
            None => self,
            Some(sel) => {
                let columns = self.columns.iter().map(|c| c.gather(sel)).collect();
                Batch { columns, sel: None }
            }
        }
    }

    /// Row `i` (live-position index) as Values — result/test convenience.
    pub fn row_values(&self, live_idx: usize) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.width());
        self.row_values_into(live_idx, &mut out);
        out
    }

    /// Late-materialize every encoded column in place — the batch-level
    /// boundary call (Sort/TopN input, spill, volcano bridge).
    pub fn ensure_flat(&mut self) {
        for c in &mut self.columns {
            c.ensure_flat();
        }
    }

    /// Fill `out` (cleared first) with row `i`'s values, reusing the
    /// caller's buffer — the per-row variant for loops where a fresh `Vec`
    /// per row would dominate (e.g. the Top-N reject path).
    pub fn row_values_into(&self, live_idx: usize, out: &mut Vec<Value>) {
        let pos = match &self.sel {
            Some(s) => s.as_slice()[live_idx] as usize,
            None => live_idx,
        };
        out.clear();
        out.extend(self.columns.iter().map(|c| c.get(pos)));
    }
}

/// Concrete live-position iterator for [`Batch::live`]: a sorted selection
/// walk or a dense `0..capacity` range, with no heap allocation either way.
pub struct LiveIter<'a> {
    /// Selection positions, or `None` for the dense range case.
    sel: Option<&'a [u32]>,
    pos: usize,
    end: usize,
}

impl Iterator for LiveIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.pos >= self.end {
            return None;
        }
        let out = match self.sel {
            Some(s) => s[self.pos] as usize,
            None => self.pos,
        };
        self.pos += 1;
        Some(out)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.pos;
        (n, Some(n))
    }
}

impl ExactSizeIterator for LiveIter<'_> {}

/// Build a `Vector` from `Value`s, inferring the type from `ty`.
pub fn vector_from_values(ty: TypeId, values: &[Value]) -> Result<Vector> {
    let mut v = Vector::new(ColData::with_capacity(ty, values.len()));
    for val in values {
        if !val.is_null() && val.type_id() != Some(ty) {
            return Err(VwError::Exec(format!(
                "value {val:?} does not fit column type {}",
                ty.sql_name()
            )));
        }
        v.push(val)?;
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_with_nulls() {
        let mut v = Vector::new(ColData::new(TypeId::I32));
        v.push(&Value::I32(1)).unwrap();
        v.push(&Value::Null).unwrap();
        v.push(&Value::I32(3)).unwrap();
        assert_eq!(v.get(0), Value::I32(1));
        assert_eq!(v.get(1), Value::Null);
        assert_eq!(v.get(2), Value::I32(3));
        assert!(v.is_null(1));
        assert!(!v.is_null(2));
    }

    #[test]
    fn with_nulls_normalizes_all_false() {
        let v = Vector::with_nulls(ColData::I32(vec![1, 2]), Some(vec![false, false]));
        assert!(v.nulls.is_none());
    }

    #[test]
    fn gather_keeps_nulls() {
        let mut v = Vector::new(ColData::new(TypeId::I64));
        for val in [Value::I64(10), Value::Null, Value::I64(30), Value::I64(40)] {
            v.push(&val).unwrap();
        }
        let sel = SelVec::from_positions(vec![1, 3]);
        let g = v.gather(&sel);
        assert_eq!(g.get(0), Value::Null);
        assert_eq!(g.get(1), Value::I64(40));
    }

    #[test]
    fn extend_range_merges_null_masks() {
        let mut a = Vector::new(ColData::I32(vec![1, 2]));
        let b = Vector::with_nulls(ColData::I32(vec![0, 4]), Some(vec![true, false]));
        a.extend_range(&b, 0, 2);
        assert_eq!(a.len(), 4);
        assert_eq!(a.get(2), Value::Null);
        assert_eq!(a.get(3), Value::I32(4));
    }

    #[test]
    fn batch_selection_rows() {
        let b = Batch {
            columns: vec![Vector::new(ColData::I32(vec![1, 2, 3, 4]))],
            sel: Some(SelVec::from_positions(vec![0, 2])),
        };
        assert_eq!(b.rows(), 2);
        assert_eq!(b.capacity(), 4);
        assert_eq!(b.row_values(1), vec![Value::I32(3)]);
        let dense = b.compact();
        assert_eq!(dense.rows(), 2);
        assert_eq!(dense.columns[0].data, ColData::I32(vec![1, 3]));
    }

    #[test]
    fn vector_from_values_type_checked() {
        let v = vector_from_values(TypeId::I32, &[Value::I32(5), Value::Null]).unwrap();
        assert_eq!(v.len(), 2);
        assert!(vector_from_values(TypeId::I32, &[Value::I64(5)]).is_err());
    }

    fn test_dict() -> Arc<Vec<String>> {
        Arc::new(vec!["apple".to_string(), "kiwi".to_string(), "pear".to_string()])
    }

    #[test]
    fn dict_vector_reads_like_flat() {
        let v =
            Vector::from_dict(vec![2, 0, 1, 0], test_dict(), Some(vec![false, false, true, false]));
        assert_eq!(v.len(), 4);
        assert_eq!(v.get(0), Value::Str("pear".into()));
        assert_eq!(v.get(2), Value::Null);
        assert_eq!(v.str_at(3), "apple");
        let mut flat = v.clone();
        flat.ensure_flat();
        assert!(flat.enc.is_none());
        for i in 0..4 {
            assert_eq!(flat.get(i), v.get(i));
        }
    }

    #[test]
    fn dict_gathers_stay_coded() {
        let v = Vector::from_dict(vec![2, 0, 1, 0], test_dict(), None);
        let g = v.gather(&SelVec::from_positions(vec![0, 2]));
        assert!(g.is_encoded());
        assert_eq!(g.get(1), Value::Str("kiwi".into()));
        let gi = v.gather_indices(&[3, 3, 0]);
        assert!(gi.is_encoded());
        assert_eq!(gi.get(0), Value::Str("apple".into()));
        assert_eq!(gi.get(2), Value::Str("pear".into()));
        let gp = v.gather_indices_padded(&[1, u32::MAX], u32::MAX);
        assert!(gp.is_encoded());
        assert_eq!(gp.get(0), Value::Str("apple".into()));
        assert_eq!(gp.get(1), Value::Null);
    }

    #[test]
    fn extend_same_dict_stays_coded_mismatch_materializes() {
        let d = test_dict();
        let a = Vector::from_dict(vec![0, 1], d.clone(), None);
        let mut dst = Vector::new(ColData::new(TypeId::Str));
        dst.extend_range(&a, 0, 2); // empty dst adopts the dict
        assert!(dst.is_encoded());
        dst.extend_range(&a, 1, 2); // same Arc → extends codes
        assert!(dst.is_encoded());
        assert_eq!(dst.len(), 3);
        let other = Vector::from_dict(vec![2], test_dict(), None); // different Arc
        dst.extend_range(&other, 0, 1);
        assert!(!dst.is_encoded());
        assert_eq!(
            dst.data,
            ColData::Str(vec!["apple".into(), "kiwi".into(), "kiwi".into(), "pear".into()])
        );
    }

    #[test]
    fn recycled_dict_vector_adopts_new_dict() {
        let mut v = Vector::from_dict(vec![0, 1], test_dict(), Some(vec![false, true]));
        v.clear_keep_capacity();
        assert_eq!(v.len(), 0);
        assert!(v.nulls.is_none());
        let fresh = Arc::new(vec!["zig".to_string()]);
        let src = Vector::from_dict(vec![0, 0], fresh.clone(), None);
        v.extend_range(&src, 0, 2);
        let (codes, dict) = v.dict_parts().expect("stays coded");
        assert_eq!(codes, &[0, 0]);
        assert!(Arc::ptr_eq(dict, &fresh));
    }

    #[test]
    fn rle_sidecar_drops_on_mutation() {
        let mut v = Vector::new(ColData::I64(vec![7, 7, 7, 9]));
        v.set_rle_runs(vec![(7, 3), (9, 1)]);
        assert_eq!(v.rle_runs(), Some(&[(7i64, 3u32), (9, 1)][..]));
        v.push(&Value::I64(5)).unwrap();
        assert!(v.enc.is_none());
        assert_eq!(v.get(4), Value::I64(5));
    }

    #[test]
    fn dict_extend_gather_sel_and_into_paths() {
        let d = test_dict();
        let src = Vector::from_dict(vec![2, 1, 0, 1], d.clone(), None);
        let mut build = Vector::new(ColData::new(TypeId::Str));
        build.extend_gather_sel(&src, &SelVec::from_positions(vec![0, 3]));
        assert!(build.is_encoded());
        assert_eq!(build.get(0), Value::Str("pear".into()));
        assert_eq!(build.get(1), Value::Str("kiwi".into()));

        let mut dst = Vector::new(ColData::new(TypeId::Str));
        src.gather_indices_into(&[1, 1, 2], &mut dst);
        assert!(dst.is_encoded());
        assert_eq!(dst.len(), 3);
        assert_eq!(dst.get(2), Value::Str("apple".into()));
        src.gather_indices_padded_into(&[0, u32::MAX], u32::MAX, &mut dst);
        assert_eq!(dst.len(), 2);
        assert_eq!(dst.get(0), Value::Str("pear".into()));
        assert_eq!(dst.get(1), Value::Null);
    }
}
