//! Per-operator profiling counters, feeding the monitoring subsystem.
//!
//! The paper lists "system monitoring" among the mundane-but-mandatory
//! work: event logging, load and resource monitoring, query listing. The
//! execution side of that is one [`OpProfile`] per operator, updated once
//! per `next()` call (vector granularity keeps the overhead negligible —
//! benchmark C11 quantifies it).

use std::time::{Duration, Instant};

/// Counters for one operator instance.
#[derive(Debug, Default, Clone)]
pub struct OpProfile {
    /// Operator display name (e.g. `HashJoin`).
    pub name: &'static str,
    /// `next()` invocations.
    pub invocations: u64,
    /// Rows produced (live rows across all returned batches).
    pub rows_out: u64,
    /// Wall time spent inside this operator's `next()` (excluding children
    /// when wrapped individually).
    pub time: Duration,
}

impl OpProfile {
    /// New profile for an operator called `name`.
    pub fn new(name: &'static str) -> OpProfile {
        OpProfile { name, ..Default::default() }
    }

    /// Record one `next()` call that produced `rows` rows in `elapsed`.
    #[inline]
    pub fn record(&mut self, rows: usize, elapsed: Duration) {
        self.invocations += 1;
        self.rows_out += rows as u64;
        self.time += elapsed;
    }

    /// Measure a closure and record its output rows.
    #[inline]
    pub fn measure<T>(
        &mut self,
        rows_of: impl Fn(&T) -> usize,
        f: impl FnOnce() -> T,
    ) -> T {
        let t0 = Instant::now();
        let out = f();
        self.record(rows_of(&out), t0.elapsed());
        out
    }
}

/// A query-level profile: one entry per operator, in plan order.
#[derive(Debug, Default, Clone)]
pub struct QueryProfile {
    /// Operator profiles with their plan depth (for indented display).
    pub operators: Vec<(usize, OpProfile)>,
}

impl QueryProfile {
    /// Render as an `EXPLAIN ANALYZE`-style table.
    pub fn render(&self) -> String {
        let mut out = String::from("operator                          calls       rows     time\n");
        for (depth, p) in &self.operators {
            let name = format!("{}{}", "  ".repeat(*depth), p.name);
            out.push_str(&format!(
                "{:<32} {:>6} {:>10} {:>8.3}ms\n",
                name,
                p.invocations,
                p.rows_out,
                p.time.as_secs_f64() * 1e3,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut p = OpProfile::new("Scan");
        p.record(100, Duration::from_millis(2));
        p.record(50, Duration::from_millis(1));
        assert_eq!(p.invocations, 2);
        assert_eq!(p.rows_out, 150);
        assert!(p.time >= Duration::from_millis(3));
    }

    #[test]
    fn measure_wraps_closure() {
        let mut p = OpProfile::new("X");
        let v = p.measure(|v: &Vec<u8>| v.len(), || vec![1, 2, 3]);
        assert_eq!(v.len(), 3);
        assert_eq!(p.rows_out, 3);
        assert_eq!(p.invocations, 1);
    }

    #[test]
    fn render_is_indented() {
        let mut q = QueryProfile::default();
        q.operators.push((0, OpProfile::new("Aggr")));
        q.operators.push((1, OpProfile::new("Scan")));
        let s = q.render();
        assert!(s.contains("Aggr"));
        assert!(s.contains("  Scan"));
    }
}
