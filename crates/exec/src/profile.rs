//! Per-operator profiling counters, feeding the monitoring subsystem.
//!
//! The paper lists "system monitoring" among the mundane-but-mandatory
//! work: event logging, load and resource monitoring, query listing. The
//! execution side of that is one [`OpProfile`] per operator, updated once
//! per `next()` call (vector granularity keeps the overhead negligible —
//! benchmark C11 quantifies it).
//!
//! # The `EXPLAIN ANALYZE` table, column by column
//!
//! [`QueryProfile::render`] formats one row per operator (indented by plan
//! depth). Every column, what it counts, and what a bad value smells like:
//!
//! | column    | meaning | healthy / suspicious |
//! |-----------|---------|----------------------|
//! | `calls`   | `next()` invocations that returned a batch ([`OpProfile::invocations`]). | ≈ `rows / vector_size`; far higher means many empty probe batches. |
//! | `rows`    | live rows across all returned batches ([`OpProfile::rows_out`]). | — |
//! | `est`     | the optimizer's estimated output rows for this operator ([`OpProfile::est_rows`]), filled at compile time from the statistics-driven cost model; `-` when the cost-based optimizer was off (`SET optimizer = 0`) or the operator has no plan-node counterpart. | compare with `rows`: a large ratio either way marks the estimate that misled join ordering or build-side choice — rebuild statistics (CHECKPOINT) if DML left them stale. |
//! | `time`    | wall time inside this operator's `next()` plus internal phases like hash build ([`OpProfile::time`]); children measured separately. | — |
//! | `chain`   | average hash-chain entries visited per probed key ([`OpProfile::avg_chain_len`]); `-` for operators without a probe phase. | near 1.00 is healthy; growth signals a clustered hash or under-sized directory. |
//! | `progs`   | compiled expression programs executed, one per expression per batch ([`OpProfile::expr_programs`]). | — |
//! | `prims`   | primitive instructions those programs dispatched ([`OpProfile::expr_instrs`]); `prims / progs` is the program length after constant folding and CSE. | a jump after a plan change means folding stopped firing. |
//! | `shards`  | radix partitions of a parallel/grace hash build as `P×skew` where skew is build-row `max/mean` across shards ([`OpProfile::shard_skew`]); `-` for serial builds. | skew near 1.00; ≫ 1 means a clustered radix split. |
//! | `morsels` | morsel claims: scans show their claim count; exchanges show `total×balance` where balance is per-worker `max/mean` ([`OpProfile::morsel_balance`]). | balance near 1.00; toward `DOP` means one worker dragged the fragment. |
//! | `pool%`   | batch-pool hit rate ([`OpProfile::batch_pool_hit_rate`]): output-batch leases served from the recycled free list. | steady state should sit near 100%; low means the consumer isn't recycling. |
//! | `spill`   | grace-spill traffic as `Pp written/read` — partitions spilled (all strata) and encoded spill bytes written and read back ([`OpProfile::spill_partitions`], [`OpProfile::spill_bytes_written`], [`OpProfile::spill_bytes_read`]); `-` when the build stayed in memory. | any value at all means the query ran over `mem_budget`; read ≫ written means deep re-partitioning recursion. |
//! | `ioretry` | transient device faults absorbed by the retry policy during this operator's reads ([`OpProfile::io_retries`]); `-` when no retries happened (always, unless faults are armed — see ARCHITECTURE.md "Failure model"). | nonzero only under fault injection; sustained growth means the injected fault rate is near the retry budget. |
//! | `enc`     | compressed execution: batches processed still carrying encoded columns vs fully inflated, as `E/F` ([`OpProfile::enc_batches`], [`OpProfile::flat_batches`]), plus `+N` rows decided wholesale at the run/dictionary-code level without per-row work ([`OpProfile::enc_skipped`]); `-` when the operator never saw a batch (or `SET compressed_exec = 0`). | `0/F` on a dictionary scan means the encoded path fell back — check for per-pack dictionary mismatches or an operator that forces early materialization. |
//! | `dedup`   | set-operation rows eliminated by the hash pass ([`OpProfile::setop_dropped`]): duplicates removed by UNION/INTERSECT, or rows subtracted by EXCEPT; `-` for operators that never deduplicate. | `rows + dedup` is the operator's input traffic; `dedup ≫ rows` means the query is mostly duplicate elimination — consider UNION ALL if duplicates are acceptable. |

use std::time::{Duration, Instant};

/// Counters for one operator instance.
#[derive(Debug, Default, Clone)]
pub struct OpProfile {
    /// Operator display name (e.g. `HashJoin`).
    pub name: &'static str,
    /// `next()` invocations.
    pub invocations: u64,
    /// Rows produced (live rows across all returned batches).
    pub rows_out: u64,
    /// The optimizer's estimated output rows, stamped at compile time by
    /// the cost-based planner (`None` when planning ran rule-only or the
    /// operator has no logical-plan counterpart). Comparing against
    /// [`rows_out`](OpProfile::rows_out) is the estimate-quality
    /// observable.
    pub est_rows: Option<u64>,
    /// Wall time spent inside this operator's `next()` (excluding children
    /// when wrapped individually).
    pub time: Duration,
    /// Keys probed against a hash table (join probe rows / aggregation
    /// input rows). Zero for operators without a probe phase.
    pub probe_rows: u64,
    /// Total hash-chain entries visited while probing. The ratio
    /// `probe_chain_steps / probe_rows` is the average chain length — the
    /// observable that catches hash-layout regressions (a degraded
    /// directory or clustered hash function shows up here long before it
    /// shows up in wall time).
    pub probe_chain_steps: u64,
    /// Compiled expression programs executed (one per expression per
    /// batch). Zero for operators that evaluate no expressions.
    pub expr_programs: u64,
    /// Primitive instructions dispatched by those programs. The ratio
    /// `expr_instrs / expr_programs` is the program length — a direct view
    /// of how much work compile-time folding and CSE removed.
    pub expr_instrs: u64,
    /// Build rows owned by each radix partition of a partitioned hash
    /// build (empty for serial builds). Skew across shards is the
    /// observable that catches a clustered radix split.
    pub shard_build_rows: Vec<u64>,
    /// Keys probed against each shard's table (partition-wise probing).
    pub shard_probe_rows: Vec<u64>,
    /// Chain entries visited per shard while probing.
    pub shard_probe_steps: Vec<u64>,
    /// Morsels claimed from a shared [`MorselSource`](crate::morsel) by
    /// this operator (scans). Zero for operators that do not claim work.
    pub morsels: u64,
    /// Morsels claimed per worker of an exchange fragment (filled by
    /// `Xchg` from the fragment's dispensers when the stream completes).
    /// The max/mean ratio is the scheduling-balance observable: static
    /// ranges under skew collapse it toward `DOP`; morsel claims keep it
    /// near 1.
    pub worker_morsels: Vec<u64>,
    /// Output-batch leases served from the recycled free list.
    pub batch_pool_hits: u64,
    /// Output-batch leases that had to allocate fresh vectors.
    pub batch_pool_misses: u64,
    /// Grace-spill: partitions that spilled at least one chunk, across
    /// all recursion strata of this operator's spill cascade. Zero means
    /// the build stayed within `mem_budget` (or none was set).
    pub spill_partitions: u64,
    /// Grace-spill: encoded bytes written to temp spill files.
    pub spill_bytes_written: u64,
    /// Grace-spill: encoded bytes read back while rehydrating spilled
    /// partitions. Substantially more than `spill_bytes_written` means
    /// partitions were re-partitioned (written and read again) on deeper
    /// hash-bit strata.
    pub spill_bytes_read: u64,
    /// Transient device faults absorbed by the bounded retry policy
    /// (`vw_storage::disk::retry_io`) during this operator's I/O. Always
    /// zero unless fault injection is armed.
    pub io_retries: u64,
    /// Compressed execution: batches this operator processed that still
    /// carried at least one encoded column (dict codes / RLE sidecar).
    pub enc_batches: u64,
    /// Batches processed fully inflated. `enc + flat` is the operator's
    /// batch traffic on the compressed-execution observable.
    pub flat_batches: u64,
    /// Rows decided wholesale at the encoding level — whole RLE runs
    /// accepted/rejected and dictionary-code lanes resolved through the
    /// per-dictionary qualifying bitmap — instead of per-row value work.
    pub enc_skipped: u64,
    /// Set-operation rows eliminated by the hash pass: duplicates removed
    /// by UNION/INTERSECT dedup or rows subtracted by EXCEPT. Together
    /// with [`rows_out`](OpProfile::rows_out) this reconstructs the
    /// operator's probe-side input traffic.
    pub setop_dropped: u64,
}

impl OpProfile {
    /// New profile for an operator called `name`.
    pub fn new(name: &'static str) -> OpProfile {
        OpProfile { name, ..Default::default() }
    }

    /// Record one `next()` call that produced `rows` rows in `elapsed`.
    #[inline]
    pub fn record(&mut self, rows: usize, elapsed: Duration) {
        self.invocations += 1;
        self.rows_out += rows as u64;
        self.time += elapsed;
    }

    /// Attribute wall time to this operator without counting a `next()`
    /// invocation — internal phases like hash build or per-input-batch
    /// aggregation work that do not emit a batch.
    #[inline]
    pub fn record_phase(&mut self, elapsed: Duration) {
        self.time += elapsed;
    }

    /// Record a probe pass: `rows` keys looked up, visiting `chain_steps`
    /// chain entries in total.
    #[inline]
    pub fn record_probe(&mut self, rows: u64, chain_steps: u64) {
        self.probe_rows += rows;
        self.probe_chain_steps += chain_steps;
    }

    /// Record compiled-expression work: `programs` program invocations
    /// executing `instrs` instructions (drained from the operator's
    /// [`VectorPool`](crate::program::VectorPool) once per batch).
    #[inline]
    pub fn record_expr(&mut self, programs: u64, instrs: u64) {
        self.expr_programs += programs;
        self.expr_instrs += instrs;
    }

    /// Record the final size of one radix partition of a partitioned hash
    /// build (`shard` indexes the partition; the vectors grow on demand).
    pub fn record_shard_build(&mut self, shard: usize, rows: u64) {
        if self.shard_build_rows.len() <= shard {
            self.shard_build_rows.resize(shard + 1, 0);
        }
        self.shard_build_rows[shard] += rows;
    }

    /// Record one partition-wise probe pass against shard `shard`.
    pub fn record_shard_probe(&mut self, shard: usize, rows: u64, steps: u64) {
        if self.shard_probe_rows.len() <= shard {
            self.shard_probe_rows.resize(shard + 1, 0);
            self.shard_probe_steps.resize(shard + 1, 0);
        }
        self.shard_probe_rows[shard] += rows;
        self.shard_probe_steps[shard] += steps;
    }

    /// Record one morsel claim (scan side).
    #[inline]
    pub fn record_morsel(&mut self) {
        self.morsels += 1;
    }

    /// Record transient-fault retries absorbed while this operator read
    /// from the device (a delta of the disk-wide counter taken around the
    /// read; attribution is approximate under concurrency, which is fine
    /// for an observability counter).
    #[inline]
    pub fn record_io_retries(&mut self, n: u64) {
        self.io_retries += n;
    }

    /// Record one batch on the compressed-execution observable: `encoded`
    /// when it still carried at least one encoded column.
    #[inline]
    pub fn record_enc_batch(&mut self, encoded: bool) {
        if encoded {
            self.enc_batches += 1;
        } else {
            self.flat_batches += 1;
        }
    }

    /// Record `n` rows decided wholesale at the encoding level (whole RLE
    /// runs, dictionary-code bitmap lanes) instead of per-row value work.
    #[inline]
    pub fn record_enc_skipped(&mut self, n: u64) {
        self.enc_skipped += n;
    }

    /// Record `n` rows eliminated by a set operation's hash pass (UNION /
    /// INTERSECT dedup, EXCEPT subtraction).
    #[inline]
    pub fn record_setop_dropped(&mut self, n: u64) {
        self.setop_dropped += n;
    }

    /// Record one output-batch lease from the pipeline's
    /// [`BatchPool`](crate::morsel::BatchPool).
    #[inline]
    pub fn record_pool_lease(&mut self, hit: bool) {
        if hit {
            self.batch_pool_hits += 1;
        } else {
            self.batch_pool_misses += 1;
        }
    }

    /// Sync the spill counters from the operator's shared
    /// [`SpillMetrics`](crate::partition::SpillMetrics). Called at phase
    /// boundaries; the metrics are the source of truth for the whole
    /// spill cascade (recursive joins and re-aggregations included), so
    /// this *sets* rather than accumulates.
    pub fn sync_spill(&mut self, m: &crate::partition::SpillMetrics) {
        use std::sync::atomic::Ordering;
        self.spill_partitions = m.partitions.load(Ordering::Relaxed);
        self.spill_bytes_written = m.bytes_written.load(Ordering::Relaxed);
        self.spill_bytes_read = m.bytes_read.load(Ordering::Relaxed);
    }

    /// Batch-pool hit rate in 0..=1 (0 when the operator never leased).
    pub fn batch_pool_hit_rate(&self) -> f64 {
        let total = self.batch_pool_hits + self.batch_pool_misses;
        if total == 0 {
            0.0
        } else {
            self.batch_pool_hits as f64 / total as f64
        }
    }

    /// Morsel-claim skew across workers: `max/mean` (1.0 = perfectly even;
    /// 0.0 without per-worker data).
    pub fn morsel_balance(&self) -> f64 {
        let n = self.worker_morsels.len();
        let total: u64 = self.worker_morsels.iter().sum();
        if n == 0 || total == 0 {
            return 0.0;
        }
        let max = *self.worker_morsels.iter().max().unwrap() as f64;
        max / (total as f64 / n as f64)
    }

    /// Number of radix partitions this operator built with (0 = serial).
    pub fn shards(&self) -> usize {
        self.shard_build_rows.len()
    }

    /// Build-row skew across shards: `max/mean` (1.0 = perfectly even;
    /// 0.0 when the build was serial or empty). The partition-quality
    /// observable — a clustered radix split shows up here first.
    pub fn shard_skew(&self) -> f64 {
        let n = self.shard_build_rows.len();
        let total: u64 = self.shard_build_rows.iter().sum();
        if n == 0 || total == 0 {
            return 0.0;
        }
        let max = *self.shard_build_rows.iter().max().unwrap() as f64;
        max / (total as f64 / n as f64)
    }

    /// Average hash-chain entries visited per probed key (0 when nothing
    /// was probed). Healthy flat tables stay near 1; growth signals a
    /// clustered hash or an under-sized directory.
    pub fn avg_chain_len(&self) -> f64 {
        if self.probe_rows == 0 {
            0.0
        } else {
            self.probe_chain_steps as f64 / self.probe_rows as f64
        }
    }

    /// Measure a closure and record its output rows.
    #[inline]
    pub fn measure<T>(&mut self, rows_of: impl Fn(&T) -> usize, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.record(rows_of(&out), t0.elapsed());
        out
    }
}

/// A query-level profile: one entry per operator, in plan order.
#[derive(Debug, Default, Clone)]
pub struct QueryProfile {
    /// Operator profiles with their plan depth (for indented display).
    pub operators: Vec<(usize, OpProfile)>,
}

impl QueryProfile {
    /// Render as an `EXPLAIN ANALYZE`-style table — one row per operator,
    /// indented by plan depth. Every column is documented in the
    /// [module docs](crate::profile) (meaning, source counter, and what a
    /// suspicious value indicates); the format is covered by a golden test
    /// so output stays interpretable without reading this source.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "operator                          calls       rows        est     time    chain    progs    prims   shards  morsels    pool%           spill  ioretry          enc    dedup\n",
        );
        for (depth, p) in &self.operators {
            let name = format!("{}{}", "  ".repeat(*depth), p.name);
            let est = match p.est_rows {
                Some(n) => format!("{n:>10}"),
                None => format!("{:>10}", "-"),
            };
            let chain = if p.probe_rows > 0 {
                format!("{:>8.2}", p.avg_chain_len())
            } else {
                format!("{:>8}", "-")
            };
            let (progs, prims) = if p.expr_programs > 0 {
                (format!("{:>8}", p.expr_programs), format!("{:>8}", p.expr_instrs))
            } else {
                (format!("{:>8}", "-"), format!("{:>8}", "-"))
            };
            let shards = if p.shards() > 0 {
                // Shard count plus build-skew (max/mean), the partition
                // health observable.
                format!("{:>2}x{:.2}", p.shards(), p.shard_skew())
            } else {
                format!("{:>8}", "-")
            };
            let morsels = if !p.worker_morsels.is_empty() {
                // Total claims plus scheduling balance (max/mean).
                let total: u64 = p.worker_morsels.iter().sum();
                format!("{:>3}x{:.2}", total, p.morsel_balance())
            } else if p.morsels > 0 {
                format!("{:>8}", p.morsels)
            } else {
                format!("{:>8}", "-")
            };
            let pool = if p.batch_pool_hits + p.batch_pool_misses > 0 {
                format!("{:>7.0}%", p.batch_pool_hit_rate() * 100.0)
            } else {
                format!("{:>8}", "-")
            };
            let spill = if p.spill_partitions > 0 {
                // Partitions spilled plus encoded bytes out/in — the
                // memory-governor observable (see the module docs).
                format!(
                    "{:>15}",
                    format!(
                        "{}p {}/{}",
                        p.spill_partitions,
                        human_bytes(p.spill_bytes_written),
                        human_bytes(p.spill_bytes_read)
                    )
                )
            } else {
                format!("{:>15}", "-")
            };
            let ioretry = if p.io_retries > 0 {
                format!("{:>8}", p.io_retries)
            } else {
                format!("{:>8}", "-")
            };
            let enc = if p.enc_batches + p.flat_batches > 0 {
                // Encoded vs inflated batch traffic, plus rows decided
                // wholesale at the encoding level (runs/code bitmap).
                if p.enc_skipped > 0 {
                    format!(
                        "{:>12}",
                        format!("{}/{}+{}", p.enc_batches, p.flat_batches, p.enc_skipped)
                    )
                } else {
                    format!("{:>12}", format!("{}/{}", p.enc_batches, p.flat_batches))
                }
            } else {
                format!("{:>12}", "-")
            };
            let dedup = if p.setop_dropped > 0 {
                format!("{:>8}", p.setop_dropped)
            } else {
                format!("{:>8}", "-")
            };
            out.push_str(&format!(
                "{:<32} {:>6} {:>10} {} {:>8.3}ms {} {} {} {} {} {} {} {} {} {}\n",
                name,
                p.invocations,
                p.rows_out,
                est,
                p.time.as_secs_f64() * 1e3,
                chain,
                progs,
                prims,
                shards,
                morsels,
                pool,
                spill,
                ioretry,
                enc,
                dedup,
            ));
        }
        out
    }
}

/// Compact byte count for the `spill` column: `999B`, `4.2K`, `1.7M`, `3.0G`.
fn human_bytes(n: u64) -> String {
    const K: f64 = 1024.0;
    let f = n as f64;
    if f < K {
        format!("{n}B")
    } else if f < K * K {
        format!("{:.1}K", f / K)
    } else if f < K * K * K {
        format!("{:.1}M", f / (K * K))
    } else {
        format!("{:.1}G", f / (K * K * K))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut p = OpProfile::new("Scan");
        p.record(100, Duration::from_millis(2));
        p.record(50, Duration::from_millis(1));
        assert_eq!(p.invocations, 2);
        assert_eq!(p.rows_out, 150);
        assert!(p.time >= Duration::from_millis(3));
    }

    #[test]
    fn measure_wraps_closure() {
        let mut p = OpProfile::new("X");
        let v = p.measure(|v: &Vec<u8>| v.len(), || vec![1, 2, 3]);
        assert_eq!(v.len(), 3);
        assert_eq!(p.rows_out, 3);
        assert_eq!(p.invocations, 1);
    }

    #[test]
    fn probe_chain_average() {
        let mut p = OpProfile::new("HashJoin");
        assert_eq!(p.avg_chain_len(), 0.0);
        p.record_probe(100, 130);
        p.record_probe(100, 70);
        assert_eq!(p.probe_rows, 200);
        assert_eq!(p.probe_chain_steps, 200);
        assert!((p.avg_chain_len() - 1.0).abs() < 1e-9);
        let mut q = QueryProfile::default();
        q.operators.push((0, p));
        assert!(q.render().contains("1.00"), "chain column rendered");
    }

    #[test]
    fn expr_counters_rendered() {
        let mut p = OpProfile::new("Project");
        p.record_expr(4, 12);
        p.record_expr(2, 6);
        assert_eq!(p.expr_programs, 6);
        assert_eq!(p.expr_instrs, 18);
        let mut q = QueryProfile::default();
        q.operators.push((0, p));
        q.operators.push((1, OpProfile::new("Scan")));
        let s = q.render();
        assert!(s.contains("progs") && s.contains("prims"), "header has expr columns");
        assert!(s.contains("18"), "instruction count rendered");
        // Operators without expression work render a dash.
        assert!(s.lines().nth(2).unwrap().trim_end().ends_with('-'));
    }

    #[test]
    fn shard_counters_accumulate_and_measure_skew() {
        let mut p = OpProfile::new("HashJoin");
        assert_eq!(p.shards(), 0);
        assert_eq!(p.shard_skew(), 0.0);
        p.record_shard_build(0, 100);
        p.record_shard_build(3, 300);
        p.record_shard_build(1, 100);
        p.record_shard_build(2, 100);
        assert_eq!(p.shards(), 4);
        assert_eq!(p.shard_build_rows, vec![100, 100, 100, 300]);
        // max/mean = 300 / 150 = 2.0
        assert!((p.shard_skew() - 2.0).abs() < 1e-9);
        p.record_shard_probe(3, 50, 60);
        p.record_shard_probe(3, 50, 40);
        assert_eq!(p.shard_probe_rows[3], 100);
        assert_eq!(p.shard_probe_steps[3], 100);
        let mut q = QueryProfile::default();
        q.operators.push((0, p));
        assert!(q.render().contains("4x2.00"), "shard column rendered");
    }

    #[test]
    fn morsel_and_pool_counters_render() {
        let mut scan = OpProfile::new("Scan");
        scan.record_morsel();
        scan.record_morsel();
        scan.record_pool_lease(false);
        scan.record_pool_lease(true);
        scan.record_pool_lease(true);
        scan.record_pool_lease(true);
        assert_eq!(scan.morsels, 2);
        assert!((scan.batch_pool_hit_rate() - 0.75).abs() < 1e-9);

        let mut xchg = OpProfile::new("Xchg");
        xchg.worker_morsels = vec![10, 10, 10, 30];
        // max/mean = 30 / 15 = 2.0 — the collapse observable.
        assert!((xchg.morsel_balance() - 2.0).abs() < 1e-9);

        let mut q = QueryProfile::default();
        q.operators.push((0, xchg));
        q.operators.push((1, scan));
        let s = q.render();
        assert!(s.contains("morsels") && s.contains("pool%"), "header has the new columns");
        assert!(s.contains("60x2.00"), "per-worker totals and balance rendered: {s}");
        assert!(s.contains("75%"), "pool hit rate rendered: {s}");
    }

    #[test]
    fn spill_counters_render_and_sync() {
        use crate::partition::SpillMetrics;
        let m = SpillMetrics::new();
        m.record_partition();
        m.record_partition();
        m.record_write(3 * 1024 * 1024 / 2); // 1.5 MiB
        m.record_read(512);
        let mut p = OpProfile::new("HashJoin");
        p.sync_spill(&m);
        assert_eq!(p.spill_partitions, 2);
        assert_eq!(p.spill_bytes_written, 3 * 1024 * 1024 / 2);
        assert_eq!(p.spill_bytes_read, 512);
        let mut q = QueryProfile::default();
        q.operators.push((0, p));
        let s = q.render();
        assert!(s.contains("2p 1.5M/512B"), "spill column rendered: {s}");
        // Sync again after more traffic: counters are set, not accumulated.
        m.record_write(512 * 1024);
        let mut p2 = OpProfile::new("HashJoin");
        p2.sync_spill(&m);
        assert_eq!(p2.spill_bytes_written, 3 * 1024 * 1024 / 2 + 512 * 1024);
    }

    #[test]
    fn human_bytes_tiers() {
        assert_eq!(human_bytes(0), "0B");
        assert_eq!(human_bytes(999), "999B");
        assert_eq!(human_bytes(4 * 1024 + 205), "4.2K");
        assert_eq!(human_bytes(1024 * 1024 * 7 / 4), "1.8M");
        assert_eq!(human_bytes(3 * 1024 * 1024 * 1024), "3.0G");
    }

    /// Golden test: the full `EXPLAIN ANALYZE` table for a fixed set of
    /// counters, byte for byte. If a column is added, renamed, or
    /// re-justified, this test (and the module-docs column table) must be
    /// updated in the same change — the render is a public observability
    /// surface, not an implementation detail.
    #[test]
    fn render_golden() {
        let mut join = OpProfile::new("HashJoin");
        join.record(1000, Duration::from_millis(2));
        join.est_rows = Some(900);
        join.record_probe(100, 150);
        join.record_expr(4, 12);
        join.record_shard_build(0, 100);
        join.record_shard_build(1, 300);
        join.spill_partitions = 1;
        join.spill_bytes_written = 2048;
        join.spill_bytes_read = 2048;
        join.record_io_retries(3);
        join.record_pool_lease(true);
        join.record_pool_lease(true);
        join.record_pool_lease(false);
        join.record_pool_lease(false);

        let mut scan = OpProfile::new("Scan");
        scan.record(5000, Duration::from_millis(1));
        scan.morsels = 7;
        scan.record_enc_batch(true);
        scan.record_enc_batch(true);
        scan.record_enc_batch(true);
        scan.record_enc_batch(true);
        scan.record_enc_batch(false);
        scan.record_enc_skipped(2048);

        let mut q = QueryProfile::default();
        q.operators.push((0, join));
        q.operators.push((1, scan));
        let expect = "\
operator                          calls       rows        est     time    chain    progs    prims   shards  morsels    pool%           spill  ioretry          enc    dedup
HashJoin                              1       1000        900    2.000ms     1.50        4       12  2x1.50        -      50%    1p 2.0K/2.0K        3            -        -
  Scan                                1       5000          -    1.000ms        -        -        -        -        7        -               -        -     4/1+2048        -
";
        assert_eq!(q.render(), expect);
    }

    /// The `dedup` column carries the set-operation elimination counter
    /// and renders a dash everywhere else.
    #[test]
    fn setop_dedup_renders() {
        let mut p = OpProfile::new("SetOp");
        p.record(10, Duration::from_millis(1));
        p.record_setop_dropped(37);
        assert_eq!(p.setop_dropped, 37);
        let mut q = QueryProfile::default();
        q.operators.push((0, p));
        let s = q.render();
        let row = s.lines().nth(1).unwrap();
        assert!(row.trim_end().ends_with("37"), "dedup counter rendered: {s}");
    }

    #[test]
    fn render_is_indented() {
        let mut q = QueryProfile::default();
        q.operators.push((0, OpProfile::new("Aggr")));
        q.operators.push((1, OpProfile::new("Scan")));
        let s = q.render();
        assert!(s.contains("Aggr"));
        assert!(s.contains("  Scan"));
    }
}
