//! Expression trees and the reference vector-at-a-time interpreter.
//!
//! The expression API is split in two, mirroring X100:
//!
//! * **Describe** — [`PhysExpr`], the physical expression tree the cross
//!   compiler lowers SQL onto. It is *data*, not an execution strategy.
//! * **Compile, then run** — [`ExprProgram`](crate::program::ExprProgram)
//!   / [`SelectProgram`](crate::program::SelectProgram) in the [`program`]
//!   module: a `PhysExpr` is compiled **once per query** (constant
//!   folding, common-subexpression elimination, register reuse) into a
//!   flat sequence of primitive invocations over scratch vectors leased
//!   from a [`VectorPool`](crate::program::VectorPool). Every operator
//!   executes expressions this way; the per-batch loop re-dispatches
//!   nothing and allocates nothing.
//!
//! The tree-walking [`PhysExpr::eval`] / [`PhysExpr::eval_select`]
//! interpreter below is retained as the **reference semantics**: the
//! compiler constant-folds through it, the randomized differential suite
//! cross-checks compiled programs against it, and the `c13_exprprog`
//! bench measures the compiled path's win over it. It re-matches every
//! node and allocates a fresh [`Vector`] per node per batch — exactly the
//! overhead the compiled path exists to avoid. New call sites should use
//! the compiled API.
//!
//! NULLs follow the production Vectorwise design (paper §1, "NULLs"): a
//! value vector of safe values plus a boolean indicator vector. Kernels stay
//! NULL-oblivious; indicator propagation (OR of input indicators) is
//! composed around them. `NullMode::Branchy` switches arithmetic to
//! per-value NULL tests — the strawman benchmark C6 measures against.
//!
//! Division by a NULL demonstrates why "safe values" need care: the NULL
//! position holds 0, which would raise a spurious division-by-zero, so the
//! evaluator patches NULL denominators to 1 before the kernel runs — an
//! instance of the paper's "special algorithms in the kernel". The
//! compiled path ports this as a dedicated instruction (`DivRemI64`).
//!
//! [`program`]: crate::program

use crate::primitives::{self, ArithCheck};
use crate::vector::{Batch, Vector};
use vw_common::config::NullMode;
use vw_common::date::DateField;
use vw_common::{ColData, Result, SelVec, TypeId, Value, VwError};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Modulo.
    Rem,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Does this comparison hold for an ordering between two values?
    #[inline]
    pub fn holds(self, o: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, o),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

/// Scalar SQL functions implemented natively in the kernel. Many more SQL
/// functions exist at the SQL level; the rewriter expands them into
/// combinations of these (the paper's "implemented in the rewriter phase").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// `UPPER(s)`
    Upper,
    /// `LOWER(s)`
    Lower,
    /// `LENGTH(s)` (characters)
    Length,
    /// `SUBSTR(s, start [, len])`, 1-based
    Substr,
    /// `CONCAT(a, b)`
    Concat,
    /// `TRIM(s)`
    Trim,
    /// `REPLACE(s, from, to)`
    Replace,
    /// `ABS(x)`
    Abs,
    /// `SQRT(x)` — errors on negative input
    Sqrt,
    /// `FLOOR(x)`
    Floor,
    /// `CEIL(x)`
    Ceil,
    /// `ROUND(x)`
    Round,
    /// `EXTRACT(field FROM d)` — field is the constant second argument
    Extract,
    /// `DATE_ADD_DAYS(d, n)`
    DateAddDays,
    /// `DATE_ADD_MONTHS(d, n)` — month arithmetic with end-of-month
    /// clamping (`INTERVAL 'n' MONTH/YEAR` lowers here)
    DateAddMonths,
    /// `DATE_DIFF_DAYS(a, b)`
    DateDiffDays,
}

/// Evaluation context threaded from the engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExprCtx {
    /// Overflow / division checking strategy.
    pub check: ArithCheck,
    /// NULL representation strategy.
    pub null_mode: NullMode,
}

impl Default for ExprCtx {
    fn default() -> Self {
        ExprCtx { check: ArithCheck::Lazy, null_mode: NullMode::TwoColumn }
    }
}

/// A physical (executable) expression over batch columns.
#[derive(Debug, Clone)]
pub enum PhysExpr {
    /// Reference to batch column `i`.
    ColRef(usize, TypeId),
    /// A constant.
    Const(Value, TypeId),
    /// Binary arithmetic (operands pre-cast to `ty` ∈ {I64, F64} by the
    /// cross-compiler; `Date ± days` is lowered to [`Func::DateAddDays`]).
    Arith {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<PhysExpr>,
        /// Right operand.
        rhs: Box<PhysExpr>,
        /// Result (and operand) type.
        ty: TypeId,
    },
    /// Comparison producing BOOLEAN.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<PhysExpr>,
        /// Right operand.
        rhs: Box<PhysExpr>,
    },
    /// N-ary conjunction.
    And(Vec<PhysExpr>),
    /// N-ary disjunction.
    Or(Vec<PhysExpr>),
    /// Negation.
    Not(Box<PhysExpr>),
    /// Type conversion.
    Cast {
        /// Input expression.
        input: Box<PhysExpr>,
        /// Target type.
        to: TypeId,
    },
    /// `x IS NULL` (never NULL itself).
    IsNull(Box<PhysExpr>),
    /// `x IS NOT NULL`.
    IsNotNull(Box<PhysExpr>),
    /// `CASE WHEN c1 THEN v1 ... ELSE e END`.
    Case {
        /// (condition, result) branches.
        branches: Vec<(PhysExpr, PhysExpr)>,
        /// ELSE result (NULL if absent).
        else_expr: Option<Box<PhysExpr>>,
        /// Result type.
        ty: TypeId,
    },
    /// Native function call.
    FuncCall {
        /// Which function.
        func: Func,
        /// Arguments.
        args: Vec<PhysExpr>,
        /// Result type.
        ty: TypeId,
    },
    /// `s LIKE pattern` with a constant pattern.
    Like {
        /// String input.
        input: Box<PhysExpr>,
        /// SQL LIKE pattern (`%`, `_`).
        pattern: String,
        /// True for NOT LIKE.
        negated: bool,
    },
}

impl PhysExpr {
    /// Constant boolean.
    pub fn bool_const(b: bool) -> PhysExpr {
        PhysExpr::Const(Value::Bool(b), TypeId::Bool)
    }

    /// The expression's result type.
    pub fn type_id(&self) -> TypeId {
        match self {
            PhysExpr::ColRef(_, ty) => *ty,
            PhysExpr::Const(_, ty) => *ty,
            PhysExpr::Arith { ty, .. } => *ty,
            PhysExpr::Cmp { .. }
            | PhysExpr::And(_)
            | PhysExpr::Or(_)
            | PhysExpr::Not(_)
            | PhysExpr::IsNull(_)
            | PhysExpr::IsNotNull(_)
            | PhysExpr::Like { .. } => TypeId::Bool,
            PhysExpr::Cast { to, .. } => *to,
            PhysExpr::Case { ty, .. } => *ty,
            PhysExpr::FuncCall { ty, .. } => *ty,
        }
    }

    /// Evaluate over the live rows of `batch`, producing a full-length
    /// vector (positions outside the selection hold unspecified safe
    /// values).
    pub fn eval(&self, batch: &Batch, ctx: &ExprCtx) -> Result<Vector> {
        let n = batch.capacity();
        let sel = batch.sel.as_ref();
        match self {
            PhysExpr::ColRef(i, _) => Ok(batch.columns[*i].clone()),
            PhysExpr::Const(v, ty) => {
                let mut col = ColData::with_capacity(*ty, n);
                let mut nulls = None;
                if v.is_null() {
                    for _ in 0..n {
                        col.push_safe_default();
                    }
                    nulls = Some(vec![true; n]);
                } else {
                    for _ in 0..n {
                        col.push_value(v)?;
                    }
                }
                Ok(Vector::with_nulls(col, nulls))
            }
            PhysExpr::Arith { op, lhs, rhs, ty } => {
                let a = lhs.eval(batch, ctx)?;
                let b = rhs.eval(batch, ctx)?;
                eval_arith(*op, &a, &b, *ty, sel, ctx)
            }
            PhysExpr::Cmp { op, lhs, rhs } => {
                let a = lhs.eval(batch, ctx)?;
                let b = rhs.eval(batch, ctx)?;
                let nulls = union_nulls(n, &[&a, &b]);
                let mut out = vec![false; n];
                let run = |i: usize, out: &mut Vec<bool>| {
                    if let Some(o) = a.data.get_value(i).sql_cmp(&b.data.get_value(i)) {
                        out[i] = op.holds(o);
                    }
                };
                match sel {
                    None => (0..n).for_each(|i| run(i, &mut out)),
                    Some(s) => s.iter().for_each(|i| run(i, &mut out)),
                }
                Ok(Vector::with_nulls(ColData::Bool(out), nulls))
            }
            PhysExpr::And(parts) => eval_and_or(parts, batch, ctx, true),
            PhysExpr::Or(parts) => eval_and_or(parts, batch, ctx, false),
            PhysExpr::Not(inner) => {
                let v = inner.eval(batch, ctx)?;
                let vals = v.data.as_bool().iter().map(|b| !b).collect();
                Ok(Vector::with_nulls(ColData::Bool(vals), v.nulls.clone()))
            }
            PhysExpr::Cast { input, to } => {
                let v = input.eval(batch, ctx)?;
                eval_cast(&v, *to, sel)
            }
            PhysExpr::IsNull(inner) => {
                let v = inner.eval(batch, ctx)?;
                let out = match &v.nulls {
                    Some(m) => m.clone(),
                    None => vec![false; n],
                };
                Ok(Vector::new(ColData::Bool(out)))
            }
            PhysExpr::IsNotNull(inner) => {
                let v = inner.eval(batch, ctx)?;
                let out = match &v.nulls {
                    Some(m) => m.iter().map(|b| !b).collect(),
                    None => vec![true; n],
                };
                Ok(Vector::new(ColData::Bool(out)))
            }
            PhysExpr::Case { branches, else_expr, ty } => {
                eval_case(branches, else_expr.as_deref(), *ty, batch, ctx)
            }
            PhysExpr::FuncCall { func, args, ty } => eval_func(*func, args, *ty, batch, ctx),
            PhysExpr::Like { input, pattern, negated } => {
                let v = input.eval(batch, ctx)?;
                let pat = LikeMatcher::new(pattern);
                let strs = v.data.as_str();
                let mut out = vec![false; n];
                let mut run = |i: usize| out[i] = pat.matches(&strs[i]) != *negated;
                match sel {
                    None => (0..n).for_each(&mut run),
                    Some(s) => s.iter().for_each(&mut run),
                }
                Ok(Vector::with_nulls(ColData::Bool(out), v.nulls.clone()))
            }
        }
    }

    /// Evaluate as a predicate, producing the selection of live rows where
    /// the expression is TRUE (NULL counts as false, per SQL semantics).
    pub fn eval_select(&self, batch: &Batch, ctx: &ExprCtx) -> Result<SelVec> {
        let n = batch.capacity();
        let sel_in = batch.sel.as_ref();
        match self {
            PhysExpr::And(parts) => {
                // Conjunction = chained selective evaluation: each branch
                // only looks at rows that survived the previous ones.
                let mut current = Batch { columns: batch.columns.clone(), sel: batch.sel.clone() };
                for p in parts {
                    let next = p.eval_select(&current, ctx)?;
                    current.sel = Some(next);
                }
                Ok(current.sel.unwrap_or_else(|| SelVec::identity(n)))
            }
            PhysExpr::Or(parts) => {
                // Union of branch selections (each under the original sel).
                let mut acc: Option<SelVec> = None;
                for p in parts {
                    let s = p.eval_select(batch, ctx)?;
                    acc = Some(match acc {
                        None => s,
                        Some(prev) => union_sorted(&prev, &s),
                    });
                }
                Ok(acc.unwrap_or_default())
            }
            PhysExpr::Const(Value::Bool(true), _) => Ok(match sel_in {
                Some(s) => s.clone(),
                None => SelVec::identity(n),
            }),
            PhysExpr::Const(Value::Bool(false), _) | PhysExpr::Const(Value::Null, _) => {
                Ok(SelVec::new())
            }
            PhysExpr::Cmp { op, lhs, rhs } => {
                // Typed selection primitives for the hot col-vs-const and
                // col-vs-col shapes — the X100 select_* kernels. Falls back
                // to the generic boolean path for everything else.
                if let Some(sel) = fast_select_cmp(*op, lhs, rhs, batch) {
                    return Ok(sel);
                }
                let v = self.eval(batch, ctx)?;
                let vals = v.data.as_bool();
                let mut out = SelVec::with_capacity(batch.rows());
                primitives::select_by(n, sel_in, &mut out, |i| vals[i] && !v.is_null(i));
                Ok(out)
            }
            _ => {
                // Generic path: evaluate to a boolean vector, keep TRUEs.
                let v = self.eval(batch, ctx)?;
                let vals = v.data.as_bool();
                let mut out = SelVec::with_capacity(batch.rows());
                primitives::select_by(n, sel_in, &mut out, |i| vals[i] && !v.is_null(i));
                Ok(out)
            }
        }
    }
}

/// Typed fast path for `col <op> const` selections. Returns None when the
/// shape or type has no specialized kernel.
fn fast_select_cmp(op: CmpOp, lhs: &PhysExpr, rhs: &PhysExpr, batch: &Batch) -> Option<SelVec> {
    let (PhysExpr::ColRef(ci, _), PhysExpr::Const(k, _)) = (lhs, rhs) else {
        return None;
    };
    let col = &batch.columns[*ci];
    let n = col.len();
    let sel_in = batch.sel.as_ref();
    let mut out = SelVec::with_capacity(batch.rows());
    macro_rules! run {
        ($vals:expr, $k:expr) => {{
            let vals = $vals;
            let k = $k;
            match &col.nulls {
                None => {
                    primitives::select_by(n, sel_in, &mut out, |i| op.holds(cmp_total(vals[i], k)))
                }
                Some(m) => primitives::select_by(n, sel_in, &mut out, |i| {
                    !m[i] && op.holds(cmp_total(vals[i], k))
                }),
            }
        }};
    }
    match (&col.data, k) {
        (ColData::I64(v), Value::I64(k)) => run!(v.as_slice(), *k),
        (ColData::I32(v), Value::I32(k)) => run!(v.as_slice(), *k),
        (ColData::Date(v), Value::Date(k)) => run!(v.as_slice(), k.0),
        (ColData::F64(v), Value::F64(k)) => {
            let k = *k;
            match &col.nulls {
                None => {
                    primitives::select_by(n, sel_in, &mut out, |i| op.holds(v[i].total_cmp(&k)))
                }
                Some(m) => primitives::select_by(n, sel_in, &mut out, |i| {
                    !m[i] && op.holds(v[i].total_cmp(&k))
                }),
            }
        }
        (ColData::Str(v), Value::Str(k)) => match &col.nulls {
            None => primitives::select_by(n, sel_in, &mut out, |i| {
                op.holds(v[i].as_str().cmp(k.as_str()))
            }),
            Some(m) => primitives::select_by(n, sel_in, &mut out, |i| {
                !m[i] && op.holds(v[i].as_str().cmp(k.as_str()))
            }),
        },
        _ => return None,
    }
    Some(out)
}

#[inline]
fn cmp_total<T: Ord>(a: T, b: T) -> std::cmp::Ordering {
    a.cmp(&b)
}

fn union_sorted(a: &SelVec, b: &SelVec) -> SelVec {
    let mut out = SelVec::with_capacity(a.len() + b.len());
    crate::program::union_sorted_into(a, b, &mut out);
    out
}

/// OR together the null indicators of several vectors.
fn union_nulls(n: usize, vs: &[&Vector]) -> Option<Vec<bool>> {
    if vs.iter().all(|v| v.nulls.is_none()) {
        return None;
    }
    let mut out = vec![false; n];
    for v in vs {
        if let Some(m) = &v.nulls {
            for (o, &b) in out.iter_mut().zip(m) {
                *o |= b;
            }
        }
    }
    Some(out)
}

fn eval_arith(
    op: BinOp,
    a: &Vector,
    b: &Vector,
    ty: TypeId,
    sel: Option<&SelVec>,
    ctx: &ExprCtx,
) -> Result<Vector> {
    let n = a.len();
    if ctx.null_mode == NullMode::Branchy && ty == TypeId::I64 {
        return eval_arith_branchy(op, a, b, sel, ctx);
    }
    let nulls = union_nulls(n, &[a, b]);
    match ty {
        TypeId::I64 => {
            let x = a.data.as_i64();
            let y = b.data.as_i64();
            let mut out = Vec::with_capacity(n);
            // Division/modulo by a NULL: the safe value 0 would fault, so
            // patch NULL denominators to 1 (their result is NULL anyway).
            let patched;
            let y = if let (BinOp::Div | BinOp::Rem, Some(m)) = (op, &b.nulls) {
                patched = y
                    .iter()
                    .zip(m)
                    .map(|(&v, &is_null)| if is_null { 1 } else { v })
                    .collect::<Vec<i64>>();
                &patched[..]
            } else {
                y
            };
            match op {
                BinOp::Add => primitives::add_i64(x, y, sel, &mut out, ctx.check)?,
                BinOp::Sub => primitives::sub_i64(x, y, sel, &mut out, ctx.check)?,
                BinOp::Mul => primitives::mul_i64(x, y, sel, &mut out, ctx.check)?,
                BinOp::Div => primitives::div_i64(x, y, sel, &mut out, ctx.check)?,
                BinOp::Rem => primitives::rem_i64(x, y, sel, &mut out, ctx.check)?,
            }
            Ok(Vector::with_nulls(ColData::I64(out), nulls))
        }
        TypeId::F64 => {
            let x = a.data.as_f64();
            let y = b.data.as_f64();
            let mut out = Vec::with_capacity(n);
            let f = |p: f64, q: f64| match op {
                BinOp::Add => p + q,
                BinOp::Sub => p - q,
                BinOp::Mul => p * q,
                BinOp::Div => p / q,
                BinOp::Rem => p % q,
            };
            match sel {
                None => primitives::map_bin_full(x, y, &mut out, f),
                Some(s) => primitives::map_bin_sel(x, y, s, &mut out, f),
            }
            // SQL: float division by zero is an error (not infinity), but
            // only at live, non-NULL positions.
            if matches!(op, BinOp::Div | BinOp::Rem) && ctx.check != ArithCheck::Unchecked {
                let bad = |i: usize| y[i] == 0.0 && !a.is_null(i) && !b.is_null(i);
                let any_bad = match sel {
                    None => (0..n).any(bad),
                    Some(s) => s.iter().any(bad),
                };
                if any_bad {
                    return Err(VwError::DivideByZero);
                }
            }
            Ok(Vector::with_nulls(ColData::F64(out), nulls))
        }
        other => Err(VwError::Plan(format!(
            "arithmetic on {} must be pre-promoted to BIGINT or DOUBLE",
            other.sql_name()
        ))),
    }
}

/// The C6 strawman: every value checks the NULL masks inline.
fn eval_arith_branchy(
    op: BinOp,
    a: &Vector,
    b: &Vector,
    sel: Option<&SelVec>,
    ctx: &ExprCtx,
) -> Result<Vector> {
    let n = a.len();
    let x = a.data.as_i64();
    let y = b.data.as_i64();
    let mut out = vec![0i64; n];
    let mut nulls = vec![false; n];
    let mut step = |i: usize| -> Result<()> {
        if a.is_null(i) || b.is_null(i) {
            nulls[i] = true;
            return Ok(());
        }
        let r = match op {
            BinOp::Add => x[i].checked_add(y[i]).ok_or(VwError::Overflow("+"))?,
            BinOp::Sub => x[i].checked_sub(y[i]).ok_or(VwError::Overflow("-"))?,
            BinOp::Mul => x[i].checked_mul(y[i]).ok_or(VwError::Overflow("*"))?,
            BinOp::Div => {
                if y[i] == 0 {
                    return Err(VwError::DivideByZero);
                }
                x[i].checked_div(y[i]).ok_or(VwError::Overflow("/"))?
            }
            BinOp::Rem => {
                if y[i] == 0 {
                    return Err(VwError::DivideByZero);
                }
                x[i].wrapping_rem(y[i])
            }
        };
        out[i] = r;
        Ok(())
    };
    let _ = ctx;
    match sel {
        None => {
            for i in 0..n {
                step(i)?;
            }
        }
        Some(s) => {
            for i in s.iter() {
                step(i)?;
            }
        }
    }
    Ok(Vector::with_nulls(ColData::I64(out), Some(nulls)))
}

fn eval_and_or(parts: &[PhysExpr], batch: &Batch, ctx: &ExprCtx, is_and: bool) -> Result<Vector> {
    // Three-valued logic on full boolean vectors.
    let n = batch.capacity();
    let mut acc_val = vec![is_and; n];
    let mut acc_null = vec![false; n];
    for p in parts {
        let v = p.eval(batch, ctx)?;
        let vals = v.data.as_bool();
        for i in 0..n {
            let (pv, pn) = (vals[i], v.is_null(i));
            let (av, an) = (acc_val[i], acc_null[i]);
            let (nv, nn) = if is_and {
                // AND: false dominates, then NULL, then true.
                if (!av && !an) || (!pv && !pn) {
                    (false, false)
                } else if an || pn {
                    (false, true)
                } else {
                    (true, false)
                }
            } else {
                // OR: true dominates, then NULL, then false.
                if (av && !an) || (pv && !pn) {
                    (true, false)
                } else if an || pn {
                    (false, true)
                } else {
                    (false, false)
                }
            };
            acc_val[i] = nv;
            acc_null[i] = nn;
        }
    }
    Ok(Vector::with_nulls(ColData::Bool(acc_val), Some(acc_null)))
}

fn eval_cast(v: &Vector, to: TypeId, sel: Option<&SelVec>) -> Result<Vector> {
    if v.type_id() == to {
        return Ok(v.clone());
    }
    let n = v.len();
    // Fast widening paths.
    let widened: Option<ColData> = match (&v.data, to) {
        (ColData::I8(x), TypeId::I64) => Some(ColData::I64(x.iter().map(|&a| a as i64).collect())),
        (ColData::I16(x), TypeId::I64) => Some(ColData::I64(x.iter().map(|&a| a as i64).collect())),
        (ColData::I32(x), TypeId::I64) => Some(ColData::I64(x.iter().map(|&a| a as i64).collect())),
        (ColData::I8(x), TypeId::F64) => Some(ColData::F64(x.iter().map(|&a| a as f64).collect())),
        (ColData::I16(x), TypeId::F64) => Some(ColData::F64(x.iter().map(|&a| a as f64).collect())),
        (ColData::I32(x), TypeId::F64) => Some(ColData::F64(x.iter().map(|&a| a as f64).collect())),
        (ColData::I64(x), TypeId::F64) => Some(ColData::F64(x.iter().map(|&a| a as f64).collect())),
        _ => None,
    };
    if let Some(data) = widened {
        return Ok(Vector::with_nulls(data, v.nulls.clone()));
    }
    // Generic per-value path (checked; only live non-NULL positions).
    let mut out = ColData::with_capacity(to, n);
    let run = |i: usize, out: &mut ColData| -> Result<()> {
        if v.is_null(i) {
            out.push_safe_default();
        } else {
            out.push_value(&v.data.get_value(i).cast_to(to)?)?;
        }
        Ok(())
    };
    match sel {
        None => {
            for i in 0..n {
                run(i, &mut out)?;
            }
        }
        Some(s) => {
            // Unselected positions must still occupy slots.
            let live: std::collections::HashSet<usize> = s.iter().collect();
            for i in 0..n {
                if live.contains(&i) {
                    run(i, &mut out)?;
                } else {
                    out.push_safe_default();
                }
            }
        }
    }
    Ok(Vector::with_nulls(out, v.nulls.clone()))
}

fn eval_case(
    branches: &[(PhysExpr, PhysExpr)],
    else_expr: Option<&PhysExpr>,
    ty: TypeId,
    batch: &Batch,
    ctx: &ExprCtx,
) -> Result<Vector> {
    let n = batch.capacity();
    // Evaluate all branches over the full batch, then pick per row. (A
    // production kernel narrows the selection per branch; the semantics and
    // vectorized structure are the same.)
    let conds: Vec<Vector> =
        branches.iter().map(|(c, _)| c.eval(batch, ctx)).collect::<Result<_>>()?;
    let vals: Vec<Vector> =
        branches.iter().map(|(_, v)| v.eval(batch, ctx)).collect::<Result<_>>()?;
    let else_v = else_expr.map(|e| e.eval(batch, ctx)).transpose()?;
    let mut out = Vector::new(ColData::with_capacity(ty, n));
    for i in 0..n {
        let mut chosen: Option<Value> = None;
        for (c, v) in conds.iter().zip(&vals) {
            if !c.is_null(i) && c.data.as_bool()[i] {
                chosen = Some(v.get(i));
                break;
            }
        }
        let val = chosen.unwrap_or_else(|| else_v.as_ref().map_or(Value::Null, |e| e.get(i)));
        out.push(&val)?;
    }
    Ok(out)
}

fn arg_err(func: Func, msg: &str) -> VwError {
    VwError::InvalidParameter(format!("{func:?}: {msg}"))
}

fn eval_func(
    func: Func,
    args: &[PhysExpr],
    ty: TypeId,
    batch: &Batch,
    ctx: &ExprCtx,
) -> Result<Vector> {
    let n = batch.capacity();
    let sel = batch.sel.as_ref();
    let vs: Vec<Vector> = args.iter().map(|a| a.eval(batch, ctx)).collect::<Result<_>>()?;
    let nulls = union_nulls(n, &vs.iter().collect::<Vec<_>>());
    let live = |i: usize| -> bool { !nulls.as_ref().is_some_and(|m| m[i]) };
    macro_rules! for_live {
        ($body:expr) => {{
            match sel {
                None => {
                    for i in 0..n {
                        $body(i)?;
                    }
                }
                Some(s) => {
                    for i in s.iter() {
                        $body(i)?;
                    }
                }
            }
        }};
    }
    let out: ColData = match func {
        Func::Upper | Func::Lower | Func::Trim => {
            let s = vs[0].data.as_str();
            let mut out = vec![String::new(); n];
            let mut f = |i: usize| -> Result<()> {
                out[i] = match func {
                    Func::Upper => s[i].to_uppercase(),
                    Func::Lower => s[i].to_lowercase(),
                    _ => s[i].trim().to_string(),
                };
                Ok(())
            };
            for_live!(f);
            ColData::Str(out)
        }
        Func::Length => {
            let s = vs[0].data.as_str();
            let mut out = vec![0i64; n];
            let mut f = |i: usize| -> Result<()> {
                out[i] = s[i].chars().count() as i64;
                Ok(())
            };
            for_live!(f);
            ColData::I64(out)
        }
        Func::Substr => {
            let s = vs[0].data.as_str();
            let start = vs[1].data.as_i64();
            let len = vs.get(2).map(|v| v.data.as_i64());
            let mut out = vec![String::new(); n];
            let mut f = |i: usize| -> Result<()> {
                if !live(i) {
                    return Ok(());
                }
                if start[i] < 1 {
                    return Err(arg_err(func, "start position must be >= 1"));
                }
                let take = match len {
                    Some(l) => {
                        if l[i] < 0 {
                            return Err(arg_err(func, "length must be >= 0"));
                        }
                        l[i] as usize
                    }
                    None => usize::MAX,
                };
                out[i] = s[i].chars().skip(start[i] as usize - 1).take(take).collect();
                Ok(())
            };
            for_live!(f);
            ColData::Str(out)
        }
        Func::Concat => {
            let a = vs[0].data.as_str();
            let b = vs[1].data.as_str();
            let mut out = vec![String::new(); n];
            let mut f = |i: usize| -> Result<()> {
                let mut s = String::with_capacity(a[i].len() + b[i].len());
                s.push_str(&a[i]);
                s.push_str(&b[i]);
                out[i] = s;
                Ok(())
            };
            for_live!(f);
            ColData::Str(out)
        }
        Func::Replace => {
            let s = vs[0].data.as_str();
            let from = vs[1].data.as_str();
            let to = vs[2].data.as_str();
            let mut out = vec![String::new(); n];
            let mut f = |i: usize| -> Result<()> {
                out[i] =
                    if from[i].is_empty() { s[i].clone() } else { s[i].replace(&from[i], &to[i]) };
                Ok(())
            };
            for_live!(f);
            ColData::Str(out)
        }
        Func::Abs => match &vs[0].data {
            ColData::I64(x) => {
                let mut out = vec![0i64; n];
                let mut f = |i: usize| -> Result<()> {
                    if live(i) {
                        out[i] = x[i].checked_abs().ok_or(VwError::Overflow("ABS"))?;
                    }
                    Ok(())
                };
                for_live!(f);
                ColData::I64(out)
            }
            ColData::F64(x) => {
                let mut out = vec![0f64; n];
                let mut f = |i: usize| -> Result<()> {
                    out[i] = x[i].abs();
                    Ok(())
                };
                for_live!(f);
                ColData::F64(out)
            }
            other => return Err(arg_err(func, &format!("bad input {}", other.type_id()))),
        },
        Func::Sqrt => {
            let x = vs[0].data.as_f64();
            let mut out = vec![0f64; n];
            let mut f = |i: usize| -> Result<()> {
                if live(i) {
                    if x[i] < 0.0 {
                        return Err(arg_err(func, "negative input"));
                    }
                    out[i] = x[i].sqrt();
                }
                Ok(())
            };
            for_live!(f);
            ColData::F64(out)
        }
        Func::Floor | Func::Ceil | Func::Round => {
            let x = vs[0].data.as_f64();
            let mut out = vec![0f64; n];
            let mut f = |i: usize| -> Result<()> {
                out[i] = match func {
                    Func::Floor => x[i].floor(),
                    Func::Ceil => x[i].ceil(),
                    _ => x[i].round(),
                };
                Ok(())
            };
            for_live!(f);
            ColData::F64(out)
        }
        Func::Extract => {
            let ColData::Date(days) = &vs[0].data else {
                return Err(arg_err(func, "first argument must be DATE"));
            };
            let field_code = vs[1].data.as_i64();
            let mut out = vec![0i64; n];
            let mut f = |i: usize| -> Result<()> {
                if live(i) {
                    let field = decode_field(field_code[i])?;
                    out[i] = field.extract(days[i]) as i64;
                }
                Ok(())
            };
            for_live!(f);
            ColData::I64(out)
        }
        Func::DateAddDays => {
            let ColData::Date(days) = &vs[0].data else {
                return Err(arg_err(func, "first argument must be DATE"));
            };
            let delta = vs[1].data.as_i64();
            let mut out = vec![0i32; n];
            let mut f = |i: usize| -> Result<()> {
                if live(i) {
                    let v = days[i] as i64 + delta[i];
                    out[i] = i32::try_from(v).map_err(|_| VwError::Overflow("DATE + days"))?;
                }
                Ok(())
            };
            for_live!(f);
            ColData::Date(out)
        }
        Func::DateAddMonths => {
            let ColData::Date(days) = &vs[0].data else {
                return Err(arg_err(func, "first argument must be DATE"));
            };
            let delta = vs[1].data.as_i64();
            let mut out = vec![0i32; n];
            let mut f = |i: usize| -> Result<()> {
                if live(i) {
                    let m =
                        i32::try_from(delta[i]).map_err(|_| VwError::Overflow("DATE + months"))?;
                    out[i] = vw_common::date::add_months(days[i], m)?;
                }
                Ok(())
            };
            for_live!(f);
            ColData::Date(out)
        }
        Func::DateDiffDays => {
            let (ColData::Date(a), ColData::Date(b)) = (&vs[0].data, &vs[1].data) else {
                return Err(arg_err(func, "arguments must be DATE"));
            };
            let mut out = vec![0i64; n];
            let mut f = |i: usize| -> Result<()> {
                out[i] = a[i] as i64 - b[i] as i64;
                Ok(())
            };
            for_live!(f);
            ColData::I64(out)
        }
    };
    debug_assert_eq!(out.type_id(), ty);
    Ok(Vector::with_nulls(out, nulls))
}

/// Encodes a [`DateField`] as the i64 constant second argument of EXTRACT.
pub fn encode_field(f: DateField) -> i64 {
    match f {
        DateField::Year => 0,
        DateField::Quarter => 1,
        DateField::Month => 2,
        DateField::Day => 3,
        DateField::DayOfWeek => 4,
        DateField::DayOfYear => 5,
    }
}

pub(crate) fn decode_field(code: i64) -> Result<DateField> {
    Ok(match code {
        0 => DateField::Year,
        1 => DateField::Quarter,
        2 => DateField::Month,
        3 => DateField::Day,
        4 => DateField::DayOfWeek,
        5 => DateField::DayOfYear,
        other => return Err(VwError::Exec(format!("bad EXTRACT field code {other}"))),
    })
}

/// Compiled SQL LIKE pattern (`%` = any run, `_` = any char).
#[derive(Clone)]
pub struct LikeMatcher {
    tokens: Vec<LikeTok>,
}

#[derive(Clone)]
enum LikeTok {
    Lit(String),
    AnyOne,
    AnyRun,
}

impl LikeMatcher {
    /// Parse a LIKE pattern.
    pub fn new(pattern: &str) -> LikeMatcher {
        let mut tokens = Vec::new();
        let mut lit = String::new();
        for c in pattern.chars() {
            match c {
                '%' => {
                    if !lit.is_empty() {
                        tokens.push(LikeTok::Lit(std::mem::take(&mut lit)));
                    }
                    if !matches!(tokens.last(), Some(LikeTok::AnyRun)) {
                        tokens.push(LikeTok::AnyRun);
                    }
                }
                '_' => {
                    if !lit.is_empty() {
                        tokens.push(LikeTok::Lit(std::mem::take(&mut lit)));
                    }
                    tokens.push(LikeTok::AnyOne);
                }
                c => lit.push(c),
            }
        }
        if !lit.is_empty() {
            tokens.push(LikeTok::Lit(lit));
        }
        LikeMatcher { tokens }
    }

    /// Does `s` match the pattern?
    pub fn matches(&self, s: &str) -> bool {
        fn rec(toks: &[LikeTok], s: &str) -> bool {
            match toks.first() {
                None => s.is_empty(),
                Some(LikeTok::Lit(l)) => {
                    s.strip_prefix(l.as_str()).is_some_and(|r| rec(&toks[1..], r))
                }
                Some(LikeTok::AnyOne) => {
                    let mut cs = s.chars();
                    cs.next().is_some() && rec(&toks[1..], cs.as_str())
                }
                Some(LikeTok::AnyRun) => {
                    if rec(&toks[1..], s) {
                        return true;
                    }
                    let mut cs = s.chars();
                    while cs.next().is_some() {
                        if rec(&toks[1..], cs.as_str()) {
                            return true;
                        }
                    }
                    false
                }
            }
        }
        rec(&self.tokens, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::Date;

    fn ctx() -> ExprCtx {
        ExprCtx::default()
    }

    fn batch_i64(vals: Vec<i64>) -> Batch {
        Batch::new(vec![Vector::new(ColData::I64(vals))])
    }

    fn col(i: usize, ty: TypeId) -> PhysExpr {
        PhysExpr::ColRef(i, ty)
    }

    fn lit_i64(v: i64) -> PhysExpr {
        PhysExpr::Const(Value::I64(v), TypeId::I64)
    }

    #[test]
    fn arithmetic_and_nulls_two_column() {
        let mut v = Vector::new(ColData::new(TypeId::I64));
        for x in [Value::I64(10), Value::Null, Value::I64(30)] {
            v.push(&x).unwrap();
        }
        let batch = Batch::new(vec![v]);
        let e = PhysExpr::Arith {
            op: BinOp::Add,
            lhs: Box::new(col(0, TypeId::I64)),
            rhs: Box::new(lit_i64(5)),
            ty: TypeId::I64,
        };
        let r = e.eval(&batch, &ctx()).unwrap();
        assert_eq!(r.get(0), Value::I64(15));
        assert_eq!(r.get(1), Value::Null);
        assert_eq!(r.get(2), Value::I64(35));
    }

    #[test]
    fn branchy_mode_matches_two_column() {
        let mut v = Vector::new(ColData::new(TypeId::I64));
        for x in [Value::I64(7), Value::Null, Value::I64(-3)] {
            v.push(&x).unwrap();
        }
        let batch = Batch::new(vec![v]);
        let e = PhysExpr::Arith {
            op: BinOp::Mul,
            lhs: Box::new(col(0, TypeId::I64)),
            rhs: Box::new(lit_i64(2)),
            ty: TypeId::I64,
        };
        let two = e.eval(&batch, &ctx()).unwrap();
        let branchy_ctx = ExprCtx { null_mode: NullMode::Branchy, ..ctx() };
        let br = e.eval(&batch, &branchy_ctx).unwrap();
        for i in 0..3 {
            assert_eq!(two.get(i), br.get(i));
        }
    }

    #[test]
    fn division_by_null_is_null_not_error() {
        let mut denom = Vector::new(ColData::new(TypeId::I64));
        for x in [Value::I64(2), Value::Null] {
            denom.push(&x).unwrap();
        }
        let batch = Batch::new(vec![Vector::new(ColData::I64(vec![10, 10])), denom]);
        let e = PhysExpr::Arith {
            op: BinOp::Div,
            lhs: Box::new(col(0, TypeId::I64)),
            rhs: Box::new(col(1, TypeId::I64)),
            ty: TypeId::I64,
        };
        let r = e.eval(&batch, &ctx()).unwrap();
        assert_eq!(r.get(0), Value::I64(5));
        assert_eq!(r.get(1), Value::Null);
    }

    #[test]
    fn division_by_zero_is_error() {
        let batch = Batch::new(vec![
            Vector::new(ColData::I64(vec![10])),
            Vector::new(ColData::I64(vec![0])),
        ]);
        let e = PhysExpr::Arith {
            op: BinOp::Div,
            lhs: Box::new(col(0, TypeId::I64)),
            rhs: Box::new(col(1, TypeId::I64)),
            ty: TypeId::I64,
        };
        assert!(matches!(e.eval(&batch, &ctx()), Err(VwError::DivideByZero)));
    }

    #[test]
    fn float_div_zero_checked_but_not_under_null() {
        let mut denom = Vector::new(ColData::new(TypeId::F64));
        denom.push(&Value::Null).unwrap(); // safe value 0.0
        let batch = Batch::new(vec![Vector::new(ColData::F64(vec![1.0])), denom]);
        let e = PhysExpr::Arith {
            op: BinOp::Div,
            lhs: Box::new(col(0, TypeId::F64)),
            rhs: Box::new(col(1, TypeId::F64)),
            ty: TypeId::F64,
        };
        let r = e.eval(&batch, &ctx()).unwrap();
        assert!(r.is_null(0));
    }

    #[test]
    fn select_on_comparison() {
        let batch = batch_i64((0..100).collect());
        let e = PhysExpr::Cmp {
            op: CmpOp::Lt,
            lhs: Box::new(col(0, TypeId::I64)),
            rhs: Box::new(lit_i64(10)),
        };
        let s = e.eval_select(&batch, &ctx()).unwrap();
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn and_narrows_or_unions() {
        let batch = batch_i64((0..20).collect());
        let ge5 = PhysExpr::Cmp {
            op: CmpOp::Ge,
            lhs: Box::new(col(0, TypeId::I64)),
            rhs: Box::new(lit_i64(5)),
        };
        let lt10 = PhysExpr::Cmp {
            op: CmpOp::Lt,
            lhs: Box::new(col(0, TypeId::I64)),
            rhs: Box::new(lit_i64(10)),
        };
        let and = PhysExpr::And(vec![ge5.clone(), lt10.clone()]);
        assert_eq!(and.eval_select(&batch, &ctx()).unwrap().len(), 5);
        let lt3 = PhysExpr::Cmp {
            op: CmpOp::Lt,
            lhs: Box::new(col(0, TypeId::I64)),
            rhs: Box::new(lit_i64(3)),
        };
        let or = PhysExpr::Or(vec![lt3, ge5]);
        assert_eq!(or.eval_select(&batch, &ctx()).unwrap().len(), 18);
    }

    #[test]
    fn three_valued_logic() {
        // NULL AND FALSE = FALSE; NULL AND TRUE = NULL; NULL OR TRUE = TRUE.
        let mut v = Vector::new(ColData::new(TypeId::Bool));
        v.push(&Value::Null).unwrap();
        let batch = Batch::new(vec![v]);
        let null_b = col(0, TypeId::Bool);
        let t = PhysExpr::bool_const(true);
        let f = PhysExpr::bool_const(false);
        let and_f = PhysExpr::And(vec![null_b.clone(), f]).eval(&batch, &ctx()).unwrap();
        assert_eq!(and_f.get(0), Value::Bool(false));
        let and_t = PhysExpr::And(vec![null_b.clone(), t.clone()]).eval(&batch, &ctx()).unwrap();
        assert!(and_t.is_null(0));
        let or_t = PhysExpr::Or(vec![null_b, t]).eval(&batch, &ctx()).unwrap();
        assert_eq!(or_t.get(0), Value::Bool(true));
    }

    #[test]
    fn case_expression() {
        let batch = batch_i64(vec![1, 5, 9]);
        let e = PhysExpr::Case {
            branches: vec![(
                PhysExpr::Cmp {
                    op: CmpOp::Lt,
                    lhs: Box::new(col(0, TypeId::I64)),
                    rhs: Box::new(lit_i64(4)),
                },
                PhysExpr::Const(Value::Str("small".into()), TypeId::Str),
            )],
            else_expr: Some(Box::new(PhysExpr::Const(Value::Str("big".into()), TypeId::Str))),
            ty: TypeId::Str,
        };
        let r = e.eval(&batch, &ctx()).unwrap();
        assert_eq!(r.get(0), Value::Str("small".into()));
        assert_eq!(r.get(1), Value::Str("big".into()));
    }

    #[test]
    fn string_functions() {
        let batch =
            Batch::new(vec![Vector::new(ColData::Str(vec!["  Hello  ".into(), "World".into()]))]);
        let upper = PhysExpr::FuncCall {
            func: Func::Upper,
            args: vec![col(0, TypeId::Str)],
            ty: TypeId::Str,
        };
        let r = upper.eval(&batch, &ctx()).unwrap();
        assert_eq!(r.get(1), Value::Str("WORLD".into()));
        let trim = PhysExpr::FuncCall {
            func: Func::Trim,
            args: vec![col(0, TypeId::Str)],
            ty: TypeId::Str,
        };
        assert_eq!(trim.eval(&batch, &ctx()).unwrap().get(0), Value::Str("Hello".into()));
    }

    #[test]
    fn substr_invalid_parameter_detected() {
        let batch = Batch::new(vec![Vector::new(ColData::Str(vec!["abc".into()]))]);
        let e = PhysExpr::FuncCall {
            func: Func::Substr,
            args: vec![col(0, TypeId::Str), lit_i64(0)],
            ty: TypeId::Str,
        };
        assert!(matches!(e.eval(&batch, &ctx()), Err(VwError::InvalidParameter(_))));
        let ok = PhysExpr::FuncCall {
            func: Func::Substr,
            args: vec![col(0, TypeId::Str), lit_i64(2)],
            ty: TypeId::Str,
        };
        assert_eq!(ok.eval(&batch, &ctx()).unwrap().get(0), Value::Str("bc".into()));
    }

    #[test]
    fn date_functions() {
        let d = Date::parse("1996-03-13").unwrap();
        let batch = Batch::new(vec![Vector::new(ColData::Date(vec![d.0]))]);
        let year = PhysExpr::FuncCall {
            func: Func::Extract,
            args: vec![col(0, TypeId::Date), lit_i64(encode_field(DateField::Year))],
            ty: TypeId::I64,
        };
        assert_eq!(year.eval(&batch, &ctx()).unwrap().get(0), Value::I64(1996));
        let plus = PhysExpr::FuncCall {
            func: Func::DateAddDays,
            args: vec![col(0, TypeId::Date), lit_i64(30)],
            ty: TypeId::Date,
        };
        let r = plus.eval(&batch, &ctx()).unwrap();
        assert_eq!(r.get(0), Value::Date(Date::parse("1996-04-12").unwrap()));
    }

    #[test]
    fn like_matcher() {
        let m = LikeMatcher::new("a%b_c");
        assert!(m.matches("aXXbYc"));
        assert!(m.matches("ab_c") && !m.matches("abc"));
        assert!(LikeMatcher::new("%ell%").matches("hello"));
        assert!(LikeMatcher::new("h%").matches("h"));
        assert!(!LikeMatcher::new("h_").matches("h"));
        assert!(LikeMatcher::new("").matches(""));
        assert!(!LikeMatcher::new("").matches("x"));
        assert!(LikeMatcher::new("100%%").matches("100%"));
    }

    #[test]
    fn like_expression_with_nulls() {
        let mut v = Vector::new(ColData::new(TypeId::Str));
        v.push(&Value::Str("promo pack".into())).unwrap();
        v.push(&Value::Null).unwrap();
        let batch = Batch::new(vec![v]);
        let e = PhysExpr::Like {
            input: Box::new(col(0, TypeId::Str)),
            pattern: "promo%".into(),
            negated: false,
        };
        let r = e.eval(&batch, &ctx()).unwrap();
        assert_eq!(r.get(0), Value::Bool(true));
        assert!(r.is_null(1));
        // As a predicate, NULL rows are filtered out.
        let s = e.eval_select(&batch, &ctx()).unwrap();
        assert_eq!(s.as_slice(), &[0]);
    }

    #[test]
    fn is_null_predicates() {
        let mut v = Vector::new(ColData::new(TypeId::I64));
        v.push(&Value::I64(1)).unwrap();
        v.push(&Value::Null).unwrap();
        let batch = Batch::new(vec![v]);
        let e = PhysExpr::IsNull(Box::new(col(0, TypeId::I64)));
        assert_eq!(e.eval_select(&batch, &ctx()).unwrap().as_slice(), &[1]);
        let e = PhysExpr::IsNotNull(Box::new(col(0, TypeId::I64)));
        assert_eq!(e.eval_select(&batch, &ctx()).unwrap().as_slice(), &[0]);
    }

    #[test]
    fn cast_widen_and_string() {
        let batch = Batch::new(vec![Vector::new(ColData::I32(vec![1, 2]))]);
        let e = PhysExpr::Cast { input: Box::new(col(0, TypeId::I32)), to: TypeId::F64 };
        assert_eq!(e.eval(&batch, &ctx()).unwrap().get(1), Value::F64(2.0));
        let e = PhysExpr::Cast { input: Box::new(col(0, TypeId::I32)), to: TypeId::Str };
        assert_eq!(e.eval(&batch, &ctx()).unwrap().get(0), Value::Str("1".into()));
    }

    #[test]
    fn selection_respected_by_eval_select() {
        let mut batch = batch_i64((0..10).collect());
        batch.sel = Some(SelVec::from_positions(vec![0, 1, 2]));
        let e = PhysExpr::Cmp {
            op: CmpOp::Gt,
            lhs: Box::new(col(0, TypeId::I64)),
            rhs: Box::new(lit_i64(0)),
        };
        let s = e.eval_select(&batch, &ctx()).unwrap();
        assert_eq!(s.as_slice(), &[1, 2], "rows outside sel must not leak in");
    }

    #[test]
    fn lazy_overflow_error_surfaces() {
        let batch = batch_i64(vec![i64::MAX, 1]);
        let e = PhysExpr::Arith {
            op: BinOp::Add,
            lhs: Box::new(col(0, TypeId::I64)),
            rhs: Box::new(lit_i64(1)),
            ty: TypeId::I64,
        };
        assert!(matches!(e.eval(&batch, &ctx()), Err(VwError::Overflow(_))));
    }
}
