//! Morsel-driven scheduling and pooled operator output batches — the two
//! halves of keeping every core busy on cache-resident vectors with zero
//! steady-state allocation. (This header is the authoritative
//! lease/recycle contract; `ARCHITECTURE.md` at the repo root links here
//! rather than restating it.)
//!
//! # MorselSource — run-time work claims instead of plan-time ranges
//!
//! The old exchange model partitioned a scan's merge-item stream into
//! `DOP` static row ranges at plan time. Static ranges bake skew into the
//! schedule: if the expensive rows cluster in one range, its worker runs
//! long after its siblings went idle — PAPERS.md's "when more cores hurts"
//! wall. A [`MorselSource`] replaces that with a shared atomic dispenser:
//! the full merge-item image is held once, and every worker's scan
//! repeatedly *claims* the next `morsel_rows`-sized slice of the logical
//! row space (`EngineConfig::morsel_rows`, SET-able, `VW_MORSEL_ROWS`
//! override). A slow worker simply claims fewer morsels; no row is ever
//! stranded behind a busy thread.
//!
//! Claim rules:
//!
//! 1. One `MorselSource` is shared (via `Arc`) by the `DOP` scan clones of
//!    one Exchange fragment; each clone registers as one *consumer*
//!    (`consumers` at construction, the consumer index at claim time — the
//!    per-worker morsel counters surfaced in `EXPLAIN ANALYZE`).
//! 2. [`MorselSource::claim_into`] atomically advances the shared cursor
//!    and materializes the claimed slice's merge items into a
//!    caller-owned buffer (cleared, capacity reused — steady-state claims
//!    allocate nothing; item clones only bump `Arc` refcounts).
//! 3. Claims are disjoint and cover the image exactly; a `false` return
//!    means the source is dry for every consumer.
//!
//! # BatchPool — a batch free-list threaded through the pipeline
//!
//! PR 2 made expression *scratch* allocation-free via `VectorPool`, but
//! operator *output* batches (Scan, Project, Join) were still freshly
//! allocated per batch because ownership is handed downstream. The
//! [`BatchPool`] closes that last per-batch allocation with an explicit
//! lease/recycle protocol mirroring `VectorPool`'s:
//!
//! 1. One pool is shared by every operator of one worker pipeline (it is
//!    `Arc<Mutex>`-cheap and uncontended: all users run on that worker's
//!    thread).
//! 2. A producer [`lease`](BatchPool::lease)s a batch by column-type
//!    signature: a recycled batch of the same shape comes back with its
//!    value buffers intact; a miss returns fresh typed vectors sized to
//!    the caller's capacity hint.
//! 3. The operator that *consumes* a batch without passing it through
//!    (Project, the join's build and probe sides, aggregation input)
//!    [`recycle`](BatchPool::recycle)s it once the last borrow ended. The
//!    batch's selection vector is stashed separately so `Select` can
//!    [`take_sel`](BatchPool::take_sel) it back into its `VectorPool`.
//! 4. A recycled batch must never be touched again by its producer — the
//!    lease is the only way back in. Batches that exit the pipeline (the
//!    query result, batches crossing an `Xchg` channel) are simply never
//!    recycled; the pool is bounded (`MAX_POOLED`) so that is not a
//!    leak, just a missed reuse.
//!
//! Recycling strips NULL-indicator buffers: a leased batch always comes
//! back with `nulls: None`, so the engine's `nulls.is_none()` fast paths
//! (fused group-by keys, indicator-union skips) keep firing for NULL-free
//! data no matter which stage a buffer previously served. The cost is
//! that genuinely NULL-bearing columns re-allocate their indicator per
//! batch — exactly the pre-pool behaviour; value buffers still recycle.

use crate::vector::Batch;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use vw_common::{SelVec, TypeId};
use vw_pdt::MergeItem;

/// Default rows per morsel claim: large enough that claim overhead (one
/// atomic add + an item slice) vanishes, small enough that a 90/10-skewed
/// image still splits into many claims per worker.
pub const DEFAULT_MORSEL_ROWS: usize = 16 * 1024;

/// Upper bound on pooled batches / selection vectors kept per pool;
/// in-flight batches per pipeline stage are O(1), so this is generous.
const MAX_POOLED: usize = 32;

/// A shared atomic dispenser over one scan image's merge items.
pub struct MorselSource {
    /// The full visible image, in row order.
    items: Vec<MergeItem>,
    /// `offsets[i]` = logical rows before `items[i]`; last entry = total.
    offsets: Vec<u64>,
    total: u64,
    morsel_rows: u64,
    /// Next unclaimed logical row.
    next: AtomicU64,
    /// Morsel claims per registered consumer (worker).
    claims: Vec<AtomicU64>,
}

impl MorselSource {
    /// A dispenser over `items` handing out `morsel_rows`-row claims to
    /// `consumers` workers. `morsel_rows` is clamped to at least 1 and at
    /// most the image size (so `usize::MAX` means "one claim").
    pub fn new(items: Vec<MergeItem>, morsel_rows: usize, consumers: usize) -> Arc<MorselSource> {
        let mut offsets = Vec::with_capacity(items.len() + 1);
        let mut pos = 0u64;
        for it in &items {
            offsets.push(pos);
            pos += item_rows(it);
        }
        offsets.push(pos);
        let morsel_rows = (morsel_rows as u64).clamp(1, pos.max(1));
        Arc::new(MorselSource {
            items,
            offsets,
            total: pos,
            morsel_rows,
            next: AtomicU64::new(0),
            claims: (0..consumers.max(1)).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    /// Total logical rows in the image.
    pub fn total_rows(&self) -> u64 {
        self.total
    }

    /// Number of registered consumers.
    pub fn consumers(&self) -> usize {
        self.claims.len()
    }

    /// Claim the next morsel for `consumer`, filling `out` (cleared first)
    /// with the merge items of the claimed row range. Returns `false` when
    /// the image is exhausted. Stable runs are cut at claim boundaries;
    /// single-row items (inserts, modifications) are never split.
    pub fn claim_into(&self, consumer: usize, out: &mut Vec<MergeItem>) -> bool {
        out.clear();
        if self.total == 0 {
            return false;
        }
        let start = self.next.fetch_add(self.morsel_rows, Ordering::Relaxed);
        if start >= self.total {
            // Dry: park the cursor so repeated polls cannot overflow it.
            self.next.fetch_sub(self.morsel_rows, Ordering::Relaxed);
            return false;
        }
        let end = (start + self.morsel_rows).min(self.total);
        self.claims[consumer].fetch_add(1, Ordering::Relaxed);
        // First item containing `start`.
        let mut i = match self.offsets.binary_search(&start) {
            Ok(i) => i.min(self.items.len().saturating_sub(1)),
            Err(i) => i - 1,
        };
        let mut pos = self.offsets[i];
        while pos < end && i < self.items.len() {
            let n = item_rows(&self.items[i]);
            let s = start.saturating_sub(pos);
            let e = (end - pos).min(n);
            if e > s {
                match &self.items[i] {
                    MergeItem::Stable { sid, .. } => {
                        out.push(MergeItem::Stable { sid: sid + s, len: e - s })
                    }
                    other => out.push(other.clone()),
                }
            }
            pos += n;
            i += 1;
        }
        true
    }

    /// Morsels claimed so far, per consumer (the per-worker balance
    /// observable rendered in `EXPLAIN ANALYZE`).
    pub fn claim_counts(&self) -> Vec<u64> {
        self.claims.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }
}

fn item_rows(i: &MergeItem) -> u64 {
    match i {
        MergeItem::Stable { len, .. } => *len,
        _ => 1,
    }
}

/// The batch free-list shared along one worker pipeline. Cloning shares
/// the underlying pool.
#[derive(Clone, Default)]
pub struct BatchPool {
    inner: Arc<Mutex<PoolInner>>,
}

#[derive(Default)]
struct PoolInner {
    batches: Vec<Batch>,
    sels: Vec<SelVec>,
}

impl BatchPool {
    /// An empty pool.
    pub fn new() -> BatchPool {
        BatchPool::default()
    }

    /// Lease a batch whose columns have exactly `types` (in order).
    /// Returns the batch and whether it was a pool hit (a recycled batch
    /// with warm buffers; a miss sizes fresh vectors to `capacity`) —
    /// callers record the hit rate in their
    /// [`OpProfile`](crate::profile::OpProfile).
    pub fn lease(&self, types: &[TypeId], capacity: usize) -> (Batch, bool) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(i) = inner.batches.iter().position(|b| {
            b.columns.len() == types.len()
                && b.columns.iter().zip(types).all(|(c, &t)| c.type_id() == t)
        }) {
            return (inner.batches.swap_remove(i), true);
        }
        drop(inner);
        (fresh_batch(types, capacity), false)
    }

    /// The one lease-or-allocate entry for pooled producers: lease from
    /// `pool` when the pipeline has one (recording the hit rate in
    /// `profile`), otherwise build fresh `capacity`-sized typed vectors.
    pub fn lease_or_new(
        pool: Option<&BatchPool>,
        types: &[TypeId],
        capacity: usize,
        profile: &mut crate::profile::OpProfile,
    ) -> Batch {
        match pool {
            Some(bp) => {
                let (batch, hit) = bp.lease(types, capacity);
                profile.record_pool_lease(hit);
                batch
            }
            None => fresh_batch(types, capacity),
        }
    }

    /// Return a drained batch to the free list: the selection vector is
    /// stashed for [`take_sel`](Self::take_sel), every column's data is
    /// cleared in place (capacity preserved), and NULL-indicator buffers
    /// are dropped (see the module docs). Beyond the pool bound the batch
    /// is dropped.
    pub fn recycle(&self, mut batch: Batch) {
        let sel = batch.sel.take();
        for c in &mut batch.columns {
            c.clear_keep_capacity();
        }
        let mut inner = self.inner.lock().unwrap();
        if let Some(mut s) = sel {
            if inner.sels.len() < MAX_POOLED {
                s.clear();
                inner.sels.push(s);
            }
        }
        if inner.batches.len() < MAX_POOLED {
            inner.batches.push(batch);
        }
    }

    /// Take back a selection vector stashed by [`recycle`](Self::recycle)
    /// (cleared). `Select` feeds these into its `VectorPool` so selections
    /// handed downstream keep cycling instead of re-allocating.
    pub fn take_sel(&self) -> Option<SelVec> {
        self.inner.lock().unwrap().sels.pop()
    }
}

fn fresh_batch(types: &[TypeId], capacity: usize) -> Batch {
    let columns = types
        .iter()
        .map(|&t| crate::vector::Vector::new(vw_common::ColData::with_capacity(t, capacity)))
        .collect();
    Batch { columns, sel: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use vw_common::Value;

    fn stable(sid: u64, len: u64) -> MergeItem {
        MergeItem::Stable { sid, len }
    }

    fn rows_of(items: &[MergeItem]) -> u64 {
        items.iter().map(item_rows).sum()
    }

    #[test]
    fn claims_are_disjoint_and_cover_the_image() {
        let items = vec![
            stable(0, 100),
            MergeItem::Insert { row: StdArc::new(vec![Value::I64(7)]) },
            stable(100, 50),
        ];
        let src = MorselSource::new(items, 16, 2);
        assert_eq!(src.total_rows(), 151);
        let mut buf = Vec::new();
        let mut total = 0u64;
        let mut stable_rows: Vec<(u64, u64)> = Vec::new();
        let mut inserts = 0;
        let mut turn = 0;
        while src.claim_into(turn % 2, &mut buf) {
            turn += 1;
            let n = rows_of(&buf);
            assert!((1..=16).contains(&n), "claim size bounded by morsel_rows: {n}");
            total += n;
            for it in &buf {
                match it {
                    MergeItem::Stable { sid, len } => stable_rows.push((*sid, *len)),
                    MergeItem::Insert { .. } => inserts += 1,
                    _ => unreachable!(),
                }
            }
        }
        assert_eq!(total, 151);
        assert_eq!(inserts, 1);
        // Stable coverage: every sid of 0..150 exactly once.
        let mut seen = [false; 150];
        for (sid, len) in stable_rows {
            for s in sid..sid + len {
                assert!(!seen[s as usize], "sid {s} claimed twice");
                seen[s as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "every stable row claimed");
        let counts = src.claim_counts();
        assert_eq!(counts.iter().sum::<u64>(), turn as u64);
        // Exhausted source keeps answering false without moving.
        assert!(!src.claim_into(0, &mut buf));
        assert!(!src.claim_into(1, &mut buf));
    }

    #[test]
    fn one_claim_covers_everything_at_usize_max() {
        let src = MorselSource::new(vec![stable(5, 40)], usize::MAX, 1);
        let mut buf = Vec::new();
        assert!(src.claim_into(0, &mut buf));
        assert_eq!(rows_of(&buf), 40);
        assert!(!src.claim_into(0, &mut buf));
    }

    #[test]
    fn empty_image_is_dry_immediately() {
        let src = MorselSource::new(Vec::new(), 1024, 1);
        let mut buf = vec![stable(0, 1)];
        assert!(!src.claim_into(0, &mut buf));
        assert!(buf.is_empty(), "claim_into clears the buffer even when dry");
    }

    #[test]
    fn concurrent_claims_stay_disjoint() {
        let src = MorselSource::new(vec![stable(0, 100_000)], 64, 4);
        let mut handles = Vec::new();
        for w in 0..4 {
            let src = src.clone();
            handles.push(std::thread::spawn(move || {
                let mut buf = Vec::new();
                let mut ranges: Vec<(u64, u64)> = Vec::new();
                while src.claim_into(w, &mut buf) {
                    for it in &buf {
                        if let MergeItem::Stable { sid, len } = it {
                            ranges.push((*sid, *len));
                        }
                    }
                }
                ranges
            }));
        }
        let mut all: Vec<(u64, u64)> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        all.sort_unstable();
        let mut pos = 0u64;
        for (sid, len) in all {
            assert_eq!(sid, pos, "gap or overlap at sid {sid}");
            pos = sid + len;
        }
        assert_eq!(pos, 100_000);
        // Claims are attributed to consumers exactly once each (which
        // worker got how many is the scheduler's business — on a one-core
        // box a single thread may legitimately drain the source).
        assert_eq!(src.claim_counts().iter().sum::<u64>(), 100_000_u64.div_ceil(64));
    }

    #[test]
    fn batch_pool_recycles_by_type_signature() {
        let pool = BatchPool::new();
        let (mut b, hit) = pool.lease(&[TypeId::I64, TypeId::Str], 4);
        assert!(!hit, "fresh pool misses");
        b.columns[0].push(&Value::I64(1)).unwrap();
        b.columns[0].push(&Value::Null).unwrap();
        b.columns[1].push(&Value::Str("x".into())).unwrap();
        b.columns[1].push(&Value::Str("y".into())).unwrap();
        b.sel = Some(SelVec::from_positions(vec![1]));
        pool.recycle(b);

        // Wrong signature still misses.
        let (w, hit) = pool.lease(&[TypeId::I64], 0);
        assert!(!hit);
        pool.recycle(w);

        // Matching signature hits, comes back empty with no selection and
        // no NULL indicator (recycling strips it so `nulls.is_none()`
        // fast paths keep firing for NULL-free refills).
        let (b, hit) = pool.lease(&[TypeId::I64, TypeId::Str], 0);
        assert_eq!(b.columns[0].len(), 0);
        assert!(hit);
        assert_eq!(b.columns[1].len(), 0);
        assert!(b.sel.is_none());
        assert!(b.columns[0].nulls.is_none());
        // The stashed selection is retrievable exactly once.
        assert!(pool.take_sel().is_some());
        assert!(pool.take_sel().is_none());
    }

    #[test]
    fn batch_pool_is_bounded() {
        let pool = BatchPool::new();
        for _ in 0..100 {
            let (b, _) = pool.lease(&[TypeId::I64], 0);
            pool.recycle(b);
        }
        let inner = pool.inner.lock().unwrap();
        assert!(inner.batches.len() <= MAX_POOLED);
    }
}
