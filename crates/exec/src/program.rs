//! Compiled expression programs over a pooled vector arena — the X100
//! "compile once, run per vector" expression discipline.
//!
//! [`PhysExpr`] trees describe *what* to compute;
//! this module turns them into **what X100 actually executes**: a flat
//! [`ExprProgram`] — a `Vec<Instr>` of primitive invocations compiled once
//! per query — reading and writing a register file of scratch [`Vector`]s
//! leased from a reusable [`VectorPool`]. The tree is walked once, at
//! compile time:
//!
//! * **constant folding** — subtrees without column references are
//!   evaluated at compile time (via the reference interpreter, so the
//!   semantics cannot diverge) and replaced by a single constant fill;
//!   subtrees whose folding would *error* (`1/0`) are left compiled so the
//!   error still surfaces at run time, exactly as before;
//! * **common-subexpression elimination** — structurally identical
//!   subtrees compile to one instruction sequence and share a register;
//! * **register reuse** — a register is returned to the free list after
//!   its last consuming instruction, so deep trees run in a few slots.
//!
//! At run time [`ExprProgram::run`] executes the instructions against one
//! [`Batch`]: no tree walk, no per-node dispatch, and — crucially — **no
//! per-node allocation**. Every instruction writes into a pool register
//! whose buffers (value vector *and* NULL-indicator vector) persist across
//! batches; the steady-state per-batch loop is allocation-free (proven by
//! the counting-allocator check in the `c13_exprprog` bench).
//!
//! Predicates compile to a [`SelectProgram`] instead: conjunctions become a
//! chain of *selective* steps that narrow one [`SelVec`] (each step only
//! looks at survivors of the previous ones), hot `col <op> const` shapes
//! use the typed select kernels directly, and only irreducible boolean
//! expressions materialize a boolean vector.
//!
//! **Encoded inputs** (ARCHITECTURE.md, "Compressed execution"): select
//! steps answer `col <op> const` and `col LIKE pat` at the encoding
//! level when the column arrives dictionary-coded (one comparison per
//! distinct value builds a code-qualifying bitmap) or RLE-coded (one
//! comparison accepts/rejects a whole run); rows decided this way are
//! counted in [`VectorPool::take_enc_skipped`]. Everything else reads
//! typed data slices, which are *empty placeholders* on dict vectors —
//! operators must `ensure_flat()` the columns in
//! [`ExprProgram::cols_used`] before running a non-bare program
//! ([`ExprProgram::is_bare_col`] passes encoded vectors through).
//!
//! # `VectorPool` ownership rules
//!
//! The pool is an epoch-recycled arena owned by one operator (it is not
//! shared across threads):
//!
//! 1. [`ExprProgram::run`] *leases* the program's registers from the pool
//!    and releases all but the result register when it returns. The
//!    returned [`VecRef`] stays valid — and its slot stays leased — until
//!    the operator calls [`VectorPool::recycle`].
//! 2. The operator resolves a [`VecRef`] with [`VectorPool::get`] (borrow)
//!    or takes the buffer out with [`VectorPool::detach`] (e.g. to hand a
//!    projected column downstream).
//! 3. Once per batch, after all programs ran and every result was
//!    consumed, the operator calls [`VectorPool::recycle`]; every leased
//!    slot returns to the free list with its allocation intact. A `VecRef`
//!    must never be read after `recycle` — it is an index into the arena,
//!    not a borrow, and its slot may be re-leased to the next program.
//!
//! Registers hold *garbage* in unselected lanes (the selective-primitive
//! contract); NULL-indicator buffers are always full-width valid.

use crate::expr::{decode_field, BinOp, CmpOp, ExprCtx, Func, LikeMatcher, PhysExpr};
use crate::primitives::{self, ArithCheck};
use crate::vector::{Batch, Vector};
use std::collections::HashMap;
use vw_common::config::NullMode;
use vw_common::{ColData, Result, SelVec, TypeId, Value, VwError};

// ---------------------------------------------------------------------------
// VectorPool
// ---------------------------------------------------------------------------

/// A handle to a program result: either a batch column (expressions that
/// reduce to a bare column reference copy nothing) or a leased pool slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VecRef {
    /// Column `i` of the batch the program ran against.
    Col(usize),
    /// Arena slot index; valid until [`VectorPool::recycle`].
    Slot(usize),
}

/// One arena slot: the scratch vector plus a spare NULL-indicator buffer so
/// toggling `nulls` between `Some`/`None` across batches never reallocates.
struct Slot {
    vec: Vector,
    spare_nulls: Vec<bool>,
}

/// Reusable arena of scratch [`Vector`]s — X100's "vector memory".
///
/// See the module docs for the ownership rules. The pool also carries the
/// per-operator expression profiling counters (`programs_run`,
/// `instrs_run`) that [`OpProfile`](crate::profile::OpProfile) surfaces in
/// `EXPLAIN ANALYZE`.
#[derive(Default)]
pub struct VectorPool {
    slots: Vec<Slot>,
    /// Slot indices currently free for leasing.
    free: Vec<usize>,
    /// Slots leased to still-live program results (released by `recycle`).
    held: Vec<usize>,
    /// Register → slot mapping of the program currently executing.
    regs: Vec<usize>,
    /// Recycled selection vectors for select programs.
    sel_free: Vec<SelVec>,
    /// Scratch for the Div/Rem NULL-denominator patch (see `Instr::DivRemI64`).
    patch_i64: Vec<i64>,
    /// Program invocations since the last `take_counters`.
    pub programs_run: u64,
    /// Instructions executed since the last `take_counters`.
    pub instrs_run: u64,
    /// Rows decided at the encoding level (dict-code bitmap, RLE run
    /// accept/reject) instead of per-row value comparisons, since the
    /// last `take_enc_skipped`. Feeds `OpProfile::enc_skipped`.
    pub enc_skipped: u64,
}

impl VectorPool {
    /// An empty pool.
    pub fn new() -> VectorPool {
        VectorPool::default()
    }

    /// Lease a slot holding a vector of type `ty` (buffer reused when one
    /// of that type is free; allocated otherwise).
    fn lease(&mut self, ty: TypeId) -> usize {
        if let Some(i) =
            (0..self.free.len()).find(|&i| self.slots[self.free[i]].vec.type_id() == ty)
        {
            return self.free.swap_remove(i);
        }
        self.slots.push(Slot { vec: Vector::new(ColData::new(ty)), spare_nulls: Vec::new() });
        self.slots.len() - 1
    }

    /// Lease the register file for one program run.
    fn begin_run(&mut self, reg_types: &[TypeId]) {
        self.regs.clear();
        for &ty in reg_types {
            let s = self.lease(ty);
            self.regs.push(s);
        }
    }

    /// Release the run's registers, keeping `keep` leased for the caller.
    fn end_run(&mut self, keep: Option<usize>) {
        for i in 0..self.regs.len() {
            let s = self.regs[i];
            if Some(s) == keep {
                self.held.push(s);
            } else {
                self.free.push(s);
            }
        }
        self.regs.clear();
    }

    /// Resolve a [`VecRef`] against the batch it was produced from.
    pub fn get<'a>(&'a self, batch: &'a Batch, r: VecRef) -> &'a Vector {
        match r {
            VecRef::Col(c) => &batch.columns[c],
            VecRef::Slot(s) => &self.slots[s].vec,
        }
    }

    /// Take ownership of a result vector (clones batch columns; moves the
    /// buffer out of pool slots — the slot re-grows on its next lease).
    pub fn detach(&mut self, batch: &Batch, r: VecRef) -> Vector {
        match r {
            VecRef::Col(c) => batch.columns[c].clone(),
            VecRef::Slot(s) => {
                let slot = &mut self.slots[s];
                let ty = slot.vec.type_id();
                std::mem::replace(&mut slot.vec, Vector::new(ColData::new(ty)))
            }
        }
    }

    /// Take the result into `dst` (cleared first). For a pool slot the
    /// buffers are *swapped*: `dst`'s old (recycled, type-matched) buffer
    /// becomes the slot's scratch for the next batch, closing the loop
    /// that [`detach`](Self::detach) leaves open — a detached slot regrows
    /// from zero capacity, so Project outputs used to allocate every
    /// batch. `dst` must have the result's type (pooled callers lease it
    /// by the output schema's type signature).
    pub fn detach_into(&mut self, batch: &Batch, r: VecRef, dst: &mut Vector) {
        match r {
            VecRef::Col(c) => dst.clone_from_vector(&batch.columns[c]),
            VecRef::Slot(s) => {
                let slot = &mut self.slots[s];
                debug_assert_eq!(slot.vec.type_id(), dst.type_id());
                dst.clear_keep_capacity();
                std::mem::swap(&mut slot.vec, dst);
            }
        }
    }

    /// End the batch epoch: every leased result slot returns to the free
    /// list (buffers intact). All outstanding `VecRef`s become invalid.
    pub fn recycle(&mut self) {
        self.free.append(&mut self.held);
    }

    /// Drain the profiling counters (program runs, instructions executed).
    pub fn take_counters(&mut self) -> (u64, u64) {
        (std::mem::take(&mut self.programs_run), std::mem::take(&mut self.instrs_run))
    }

    /// Drain the rows-decided-at-encoding-level counter.
    pub fn take_enc_skipped(&mut self) -> u64 {
        std::mem::take(&mut self.enc_skipped)
    }

    /// Borrow a recycled [`SelVec`] (cleared). Selection results returned
    /// by [`SelectProgram::run`] come from this free list; callers that do
    /// not hand the selection downstream should [`put_sel`](Self::put_sel)
    /// it back so the allocation keeps cycling.
    pub fn take_sel(&mut self) -> SelVec {
        let mut s = self.sel_free.pop().unwrap_or_default();
        s.clear();
        s
    }

    /// Return a [`SelVec`] to the free list for reuse.
    pub fn put_sel(&mut self, s: SelVec) {
        self.sel_free.push(s);
    }

    /// Take register `r`'s vector and its NULL working buffer out of the
    /// arena for in-place computation ([`put_reg`](Self::put_reg) restores
    /// them). The buffer is the slot's previous indicator or its spare —
    /// either way it is owned, warm, and reusable.
    fn take_reg(&mut self, r: u16) -> (Vector, Vec<bool>) {
        let slot = &mut self.slots[self.regs[r as usize]];
        let mut vec = std::mem::replace(&mut slot.vec, Vector::new(ColData::Bool(Vec::new())));
        let buf = vec.nulls.take().unwrap_or_else(|| std::mem::take(&mut slot.spare_nulls));
        (vec, buf)
    }

    /// Restore register `r` after computation. `any_null` decides whether
    /// the buffer becomes the vector's indicator or goes back to the spare
    /// pocket (the `None` normalization [`Vector::with_nulls`] applies,
    /// without dropping the allocation).
    fn put_reg(&mut self, r: u16, mut vec: Vector, buf: Vec<bool>, any_null: bool) {
        let slot = &mut self.slots[self.regs[r as usize]];
        if any_null {
            vec.nulls = Some(buf);
        } else {
            vec.nulls = None;
            slot.spare_nulls = buf;
        }
        slot.vec = vec;
    }

    /// Resolve an instruction operand.
    fn opd<'a>(&'a self, batch: &'a Batch, o: Opd) -> &'a Vector {
        match o {
            Opd::Col(c) => &batch.columns[c],
            Opd::Reg(r) => &self.slots[self.regs[r as usize]].vec,
        }
    }
}

// ---------------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------------

/// An instruction operand: a batch column (column references compile to
/// direct reads — no copy, no instruction) or a program register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opd {
    /// Batch column index.
    Col(usize),
    /// Program register index.
    Reg(u16),
}

/// One primitive invocation. Operand lanes outside the current selection
/// are garbage; NULL indicators are always full-width valid.
#[derive(Clone)]
enum Instr {
    /// Fill `dst` with `capacity` copies of a constant (NULL → all-NULL).
    ConstFill { value: Value, ty: TypeId, dst: u16 },
    /// I64 `+ - *` through the checked kernels of [`primitives`].
    ArithI64 { op: BinOp, a: Opd, b: Opd, dst: u16 },
    /// Dedicated I64 `/ %` instruction: NULL denominators are patched to 1
    /// before the kernel runs (their lanes are NULL anyway; the safe value
    /// 0 would raise a spurious division-by-zero) — the paper's "special
    /// algorithms in the kernel", ported verbatim from the interpreter.
    DivRemI64 { op: BinOp, a: Opd, b: Opd, dst: u16 },
    /// F64 arithmetic (division-by-zero checked at live non-NULL lanes).
    ArithF64 { op: BinOp, a: Opd, b: Opd, dst: u16 },
    /// The C6 strawman: per-value NULL tests inside the arithmetic loop.
    ArithBranchyI64 { op: BinOp, a: Opd, b: Opd, dst: u16 },
    /// Comparison producing BOOLEAN (typed loops for same-type numeric
    /// operands, `Value::sql_cmp` otherwise).
    Cmp { op: CmpOp, a: Opd, b: Opd, dst: u16 },
    /// N-ary three-valued AND/OR over boolean vectors.
    BoolAndOr { is_and: bool, parts: Vec<Opd>, dst: u16 },
    /// Boolean negation.
    Not { a: Opd, dst: u16 },
    /// Type conversion (same-type casts are elided at compile time).
    Cast { a: Opd, to: TypeId, dst: u16 },
    /// `IS NULL` / `IS NOT NULL` (never NULL itself).
    IsNull { a: Opd, negated: bool, dst: u16 },
    /// `CASE WHEN c THEN v ... ELSE e END` over pre-evaluated branches.
    Case { branches: Vec<(Opd, Opd)>, else_v: Option<Opd>, dst: u16 },
    /// Native scalar function call.
    Call { func: Func, args: Vec<Opd>, ty: TypeId, dst: u16 },
    /// `LIKE` with the pattern compiled once (the interpreter re-parsed it
    /// every batch).
    Like { a: Opd, matcher: LikeMatcher, negated: bool, dst: u16 },
    /// Compile-time-detected plan error surfaced at run time (mirrors the
    /// interpreter, which raised it on first evaluation).
    Fail { message: String },
}

// ---------------------------------------------------------------------------
// ExprProgram
// ---------------------------------------------------------------------------

/// A compiled expression: flat instructions over a typed register file.
/// Built once per query by [`ExprProgram::compile`]; executed once per
/// batch by [`ExprProgram::run`]. `Clone` is cheap-ish (instruction
/// vector copy) and exists for the grace-spill path, which hands the same
/// key programs to the recursive join over a spilled partition pair.
#[derive(Clone)]
pub struct ExprProgram {
    instrs: Vec<Instr>,
    reg_types: Vec<TypeId>,
    result: Opd,
    ty: TypeId,
    check: ArithCheck,
    /// Input columns the instruction stream reads through typed slices
    /// (sorted, deduplicated). Encoded columns must be flattened before
    /// the program runs — see ARCHITECTURE.md "Compressed execution".
    cols_used: Vec<usize>,
}

impl ExprProgram {
    /// Compile `expr` under `ctx` (checking strategy and NULL mode are
    /// baked into the instruction stream).
    pub fn compile(expr: &PhysExpr, ctx: &ExprCtx) -> ExprProgram {
        let mut c = Compiler {
            ctx: *ctx,
            instrs: Vec::new(),
            reg_types: Vec::new(),
            free_regs: Vec::new(),
            intern: HashMap::new(),
            node_ids: HashMap::new(),
            memo: Vec::new(),
            uses: Vec::new(),
            aliases: Vec::new(),
            is_const: Vec::new(),
        };
        c.assign_ids(expr);
        c.count_uses(expr);
        let result = c.emit(expr);
        let mut cols_used = Vec::new();
        collect_cols(expr, &mut cols_used);
        cols_used.sort_unstable();
        cols_used.dedup();
        ExprProgram {
            instrs: c.instrs,
            reg_types: c.reg_types,
            result,
            ty: expr.type_id(),
            check: ctx.check,
            cols_used,
        }
    }

    /// Input columns the program reads (sorted, deduplicated). Callers
    /// running the program over a batch with encoded columns must
    /// [`Vector::ensure_flat`] these first: instructions read typed data
    /// slices, which are empty placeholders on dictionary-coded vectors.
    pub fn cols_used(&self) -> &[usize] {
        &self.cols_used
    }

    /// True when the program is a bare column reference: the result is the
    /// input column itself, untouched — encoded vectors can pass through
    /// without flattening (gather/detach are encoding-aware).
    pub fn is_bare_col(&self) -> bool {
        self.instrs.is_empty() && matches!(self.result, Opd::Col(_))
    }

    /// The program's result type.
    pub fn type_id(&self) -> TypeId {
        self.ty
    }

    /// Number of compiled instructions (compile-time observability).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when the program is a bare column/constant with no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Number of registers in the program's register file.
    pub fn n_regs(&self) -> usize {
        self.reg_types.len()
    }

    /// Execute against `batch` under its own selection vector.
    pub fn run(&self, pool: &mut VectorPool, batch: &Batch) -> Result<VecRef> {
        self.run_with_sel(pool, batch, batch.sel.as_ref())
    }

    /// Execute with an explicit selection override (select programs chain
    /// narrowed selections through here without touching the batch).
    pub fn run_with_sel(
        &self,
        pool: &mut VectorPool,
        batch: &Batch,
        sel: Option<&SelVec>,
    ) -> Result<VecRef> {
        pool.begin_run(&self.reg_types);
        let mut res = Ok(());
        for instr in &self.instrs {
            res = exec_instr(instr, pool, batch, sel, self.check);
            if res.is_err() {
                break;
            }
        }
        pool.programs_run += 1;
        pool.instrs_run += self.instrs.len() as u64;
        let keep = match self.result {
            Opd::Col(_) => None,
            Opd::Reg(r) => Some(pool.regs[r as usize]),
        };
        let out = match self.result {
            Opd::Col(c) => VecRef::Col(c),
            Opd::Reg(r) => VecRef::Slot(pool.regs[r as usize]),
        };
        pool.end_run(keep);
        res?;
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

/// Structural interning key: a node-local descriptor plus the *ids* of the
/// children. Building one is O(node), not O(subtree) — interning a whole
/// tree is linear, where keying on the full `Debug` string of every
/// subtree would make compilation quadratic in expression size.
#[derive(Hash, PartialEq, Eq)]
struct NodeKey {
    desc: String,
    children: Vec<u32>,
}

struct Compiler {
    ctx: ExprCtx,
    instrs: Vec<Instr>,
    reg_types: Vec<TypeId>,
    free_regs: Vec<u16>,
    /// Structural intern table: equal subtrees share one dense id.
    intern: HashMap<NodeKey, u32>,
    /// Tree-node address → interned id (filled once by `assign_ids`; the
    /// tree is borrowed for the whole compile, so addresses are stable).
    node_ids: HashMap<*const PhysExpr, u32>,
    /// Per id: CSE memo — the operand holding the computed value.
    memo: Vec<Option<Opd>>,
    /// Per id: remaining consumers (register freed at zero).
    uses: Vec<usize>,
    /// Per id: elided identity casts forward their releases to the input
    /// actually holding the register (chains resolved at alias creation,
    /// so every entry points at a terminal id).
    aliases: Vec<Option<u32>>,
    /// Per id: subtree is free of column references (folding candidate).
    is_const: Vec<bool>,
}

/// Node-local descriptor for [`NodeKey`] — captures everything about the
/// node *except* its children (those are captured as interned ids).
fn node_desc(e: &PhysExpr) -> String {
    match e {
        PhysExpr::ColRef(i, ty) => format!("R{i}:{ty:?}"),
        PhysExpr::Const(v, ty) => format!("K{v:?}:{ty:?}"),
        PhysExpr::Arith { op, ty, .. } => format!("A{op:?}:{ty:?}"),
        PhysExpr::Cmp { op, .. } => format!("C{op:?}"),
        PhysExpr::And(_) => "&".into(),
        PhysExpr::Or(_) => "|".into(),
        PhysExpr::Not(_) => "!".into(),
        PhysExpr::Cast { to, .. } => format!("T{to:?}"),
        PhysExpr::IsNull(_) => "Z".into(),
        PhysExpr::IsNotNull(_) => "z".into(),
        PhysExpr::Case { branches, else_expr, ty } => {
            format!("S{}:{}:{ty:?}", branches.len(), else_expr.is_some())
        }
        PhysExpr::FuncCall { func, ty, .. } => format!("F{func:?}:{ty:?}"),
        PhysExpr::Like { pattern, negated, .. } => format!("L{negated}:{pattern}"),
    }
}

/// Collect every column referenced anywhere in `e` (duplicates included;
/// callers sort/dedup).
fn collect_cols(e: &PhysExpr, out: &mut Vec<usize>) {
    if let PhysExpr::ColRef(i, _) = e {
        out.push(*i);
        return;
    }
    for ch in children(e) {
        collect_cols(ch, out);
    }
}

fn children(e: &PhysExpr) -> Vec<&PhysExpr> {
    match e {
        PhysExpr::ColRef(..) | PhysExpr::Const(..) => Vec::new(),
        PhysExpr::Arith { lhs, rhs, .. } => vec![lhs, rhs],
        PhysExpr::Cmp { lhs, rhs, .. } => vec![lhs, rhs],
        PhysExpr::And(v) | PhysExpr::Or(v) => v.iter().collect(),
        PhysExpr::Not(x) | PhysExpr::IsNull(x) | PhysExpr::IsNotNull(x) => vec![x],
        PhysExpr::Cast { input, .. } => vec![input],
        PhysExpr::Case { branches, else_expr, .. } => {
            let mut out: Vec<&PhysExpr> = Vec::new();
            for (c, v) in branches {
                out.push(c);
                out.push(v);
            }
            if let Some(e) = else_expr {
                out.push(e);
            }
            out
        }
        PhysExpr::FuncCall { args, .. } => args.iter().collect(),
        PhysExpr::Like { input, .. } => vec![input],
    }
}

impl Compiler {
    /// One linear bottom-up pass: intern every tree node's structure and
    /// record its id by node address (plus const-ness for the folder).
    fn assign_ids(&mut self, e: &PhysExpr) -> u32 {
        let child_ids: Vec<u32> = children(e).into_iter().map(|c| self.assign_ids(c)).collect();
        let konst = match e {
            PhysExpr::ColRef(..) => false,
            PhysExpr::Const(..) => true,
            _ => child_ids.iter().all(|&c| self.is_const[c as usize]),
        };
        let key = NodeKey { desc: node_desc(e), children: child_ids };
        let next = self.intern.len() as u32;
        let id = *self.intern.entry(key).or_insert(next);
        if id == next {
            self.memo.push(None);
            self.uses.push(0);
            self.aliases.push(None);
            self.is_const.push(konst);
        }
        self.node_ids.insert(e as *const PhysExpr, id);
        id
    }

    fn id_of(&self, e: &PhysExpr) -> u32 {
        self.node_ids[&(e as *const PhysExpr)]
    }

    /// DAG-aware use counting: each parent reference counts once; a
    /// subtree's internals are counted only on first encounter.
    fn count_uses(&mut self, e: &PhysExpr) {
        let id = self.id_of(e) as usize;
        self.uses[id] += 1;
        if self.uses[id] == 1 {
            for c in children(e) {
                self.count_uses(c);
            }
        }
    }

    fn alloc_reg(&mut self, ty: TypeId) -> u16 {
        if let Some(i) =
            (0..self.free_regs.len()).find(|&i| self.reg_types[self.free_regs[i] as usize] == ty)
        {
            return self.free_regs.swap_remove(i);
        }
        self.reg_types.push(ty);
        (self.reg_types.len() - 1) as u16
    }

    /// A consuming instruction was emitted: drop one use of `e`; free its
    /// register after the last consumer. Aliases (elided identity casts)
    /// forward to the expression actually holding the register.
    fn release(&mut self, e: &PhysExpr) {
        let mut id = self.id_of(e);
        while let Some(t) = self.aliases[id as usize] {
            id = t;
        }
        let n = &mut self.uses[id as usize];
        debug_assert!(*n > 0, "released expression with no remaining uses");
        *n -= 1;
        if *n == 0 {
            if let Some(Opd::Reg(r)) = self.memo[id as usize] {
                self.free_regs.push(r);
            }
        }
    }

    /// Fold a column-free subtree to a single constant via the reference
    /// interpreter (identical semantics by construction). Folding that
    /// *errors* returns `None`: the subtree stays compiled so the error
    /// surfaces at run time exactly as the interpreter raised it.
    fn try_fold(&self, e: &PhysExpr) -> Option<Value> {
        if matches!(e, PhysExpr::Const(..)) || !self.is_const[self.id_of(e) as usize] {
            return None;
        }
        fold_const_value(e, &self.ctx)
    }

    fn emit(&mut self, e: &PhysExpr) -> Opd {
        let id = self.id_of(e) as usize;
        if let Some(opd) = self.memo[id] {
            return opd;
        }
        let opd = self.emit_uncached(e);
        self.memo[id] = Some(opd);
        opd
    }

    fn emit_uncached(&mut self, e: &PhysExpr) -> Opd {
        if let Some(v) = self.try_fold(e) {
            let ty = e.type_id();
            let dst = self.alloc_reg(ty);
            self.instrs.push(Instr::ConstFill { value: v, ty, dst });
            return Opd::Reg(dst);
        }
        match e {
            PhysExpr::ColRef(i, _) => Opd::Col(*i),
            PhysExpr::Const(v, ty) => {
                let dst = self.alloc_reg(*ty);
                self.instrs.push(Instr::ConstFill { value: v.clone(), ty: *ty, dst });
                Opd::Reg(dst)
            }
            PhysExpr::Arith { op, lhs, rhs, ty } => {
                let a = self.emit(lhs);
                let b = self.emit(rhs);
                let dst = self.alloc_reg(*ty);
                let instr = match ty {
                    TypeId::I64 if self.ctx.null_mode == NullMode::Branchy => {
                        Instr::ArithBranchyI64 { op: *op, a, b, dst }
                    }
                    TypeId::I64 => match op {
                        BinOp::Div | BinOp::Rem => Instr::DivRemI64 { op: *op, a, b, dst },
                        _ => Instr::ArithI64 { op: *op, a, b, dst },
                    },
                    TypeId::F64 => Instr::ArithF64 { op: *op, a, b, dst },
                    other => Instr::Fail {
                        message: format!(
                            "arithmetic on {} must be pre-promoted to BIGINT or DOUBLE",
                            other.sql_name()
                        ),
                    },
                };
                self.instrs.push(instr);
                self.release(lhs);
                self.release(rhs);
                Opd::Reg(dst)
            }
            PhysExpr::Cmp { op, lhs, rhs } => {
                let a = self.emit(lhs);
                let b = self.emit(rhs);
                let dst = self.alloc_reg(TypeId::Bool);
                self.instrs.push(Instr::Cmp { op: *op, a, b, dst });
                self.release(lhs);
                self.release(rhs);
                Opd::Reg(dst)
            }
            PhysExpr::And(parts) | PhysExpr::Or(parts) => {
                let is_and = matches!(e, PhysExpr::And(_));
                let opds: Vec<Opd> = parts.iter().map(|p| self.emit(p)).collect();
                let dst = self.alloc_reg(TypeId::Bool);
                self.instrs.push(Instr::BoolAndOr { is_and, parts: opds, dst });
                for p in parts {
                    self.release(p);
                }
                Opd::Reg(dst)
            }
            PhysExpr::Not(inner) => {
                let a = self.emit(inner);
                let dst = self.alloc_reg(TypeId::Bool);
                self.instrs.push(Instr::Not { a, dst });
                self.release(inner);
                Opd::Reg(dst)
            }
            PhysExpr::Cast { input, to } => {
                if input.type_id() == *to {
                    // Identity cast: no instruction, forward the operand.
                    // Every release of this cast must count against the
                    // expression actually holding the register — resolve
                    // through existing aliases first (the input may itself
                    // be an elided cast), whose use tally gains the cast's
                    // users and loses the cast-node reference itself.
                    let opd = self.emit(input);
                    let ck = self.id_of(e);
                    let mut target = self.id_of(input);
                    while let Some(t) = self.aliases[target as usize] {
                        target = t;
                    }
                    let cast_uses = self.uses[ck as usize];
                    self.uses[target as usize] += cast_uses;
                    self.uses[target as usize] -= 1;
                    self.aliases[ck as usize] = Some(target);
                    return opd;
                }
                let a = self.emit(input);
                let dst = self.alloc_reg(*to);
                self.instrs.push(Instr::Cast { a, to: *to, dst });
                self.release(input);
                Opd::Reg(dst)
            }
            PhysExpr::IsNull(inner) | PhysExpr::IsNotNull(inner) => {
                let negated = matches!(e, PhysExpr::IsNotNull(_));
                let a = self.emit(inner);
                let dst = self.alloc_reg(TypeId::Bool);
                self.instrs.push(Instr::IsNull { a, negated, dst });
                self.release(inner);
                Opd::Reg(dst)
            }
            PhysExpr::Case { branches, else_expr, ty } => {
                let opds: Vec<(Opd, Opd)> =
                    branches.iter().map(|(c, v)| (self.emit(c), self.emit(v))).collect();
                let else_v = else_expr.as_deref().map(|x| self.emit(x));
                let dst = self.alloc_reg(*ty);
                self.instrs.push(Instr::Case { branches: opds, else_v, dst });
                for (c, v) in branches {
                    self.release(c);
                    self.release(v);
                }
                if let Some(x) = else_expr.as_deref() {
                    self.release(x);
                }
                Opd::Reg(dst)
            }
            PhysExpr::FuncCall { func, args, ty } => {
                let opds: Vec<Opd> = args.iter().map(|a| self.emit(a)).collect();
                let dst = self.alloc_reg(*ty);
                self.instrs.push(Instr::Call { func: *func, args: opds, ty: *ty, dst });
                for a in args {
                    self.release(a);
                }
                Opd::Reg(dst)
            }
            PhysExpr::Like { input, pattern, negated } => {
                let a = self.emit(input);
                let dst = self.alloc_reg(TypeId::Bool);
                self.instrs.push(Instr::Like {
                    a,
                    matcher: LikeMatcher::new(pattern),
                    negated: *negated,
                    dst,
                });
                self.release(input);
                Opd::Reg(dst)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Instruction execution
// ---------------------------------------------------------------------------

/// OR the NULL indicators of `inputs` into `buf` (full width). Returns
/// whether any lane is NULL; when no input has an indicator, `buf` is left
/// untouched (no work, no allocation).
fn union_nulls_into(n: usize, inputs: &[&Vector], buf: &mut Vec<bool>) -> bool {
    if inputs.iter().all(|v| v.nulls.is_none()) {
        return false;
    }
    buf.clear();
    buf.resize(n, false);
    let mut any = false;
    for v in inputs {
        if let Some(m) = &v.nulls {
            for (o, &b) in buf.iter_mut().zip(m) {
                *o |= b;
                any |= b;
            }
        }
    }
    any
}

/// Copy one vector's NULL indicator into `buf` (full width).
fn copy_nulls_into(n: usize, v: &Vector, buf: &mut Vec<bool>) -> bool {
    match &v.nulls {
        None => false,
        Some(m) => {
            buf.clear();
            buf.extend_from_slice(m);
            debug_assert_eq!(buf.len(), n);
            m.iter().any(|&b| b)
        }
    }
}

fn as_i64_mut(c: &mut ColData) -> &mut Vec<i64> {
    match c {
        ColData::I64(v) => v,
        other => panic!("register type mismatch: expected I64, got {}", other.type_id()),
    }
}

fn as_f64_mut(c: &mut ColData) -> &mut Vec<f64> {
    match c {
        ColData::F64(v) => v,
        other => panic!("register type mismatch: expected F64, got {}", other.type_id()),
    }
}

fn as_bool_mut(c: &mut ColData) -> &mut Vec<bool> {
    match c {
        ColData::Bool(v) => v,
        other => panic!("register type mismatch: expected Bool, got {}", other.type_id()),
    }
}

/// Run `body` with register `dst` taken out of the pool, restoring it
/// (and its NULL buffer) whether or not the computation errored.
fn with_dst(
    pool: &mut VectorPool,
    dst: u16,
    body: impl FnOnce(&VectorPool, &mut Vector, &mut Vec<bool>) -> Result<bool>,
) -> Result<()> {
    let (mut vec, mut buf) = pool.take_reg(dst);
    let res = body(pool, &mut vec, &mut buf);
    match res {
        Ok(any) => {
            pool.put_reg(dst, vec, buf, any);
            Ok(())
        }
        Err(e) => {
            pool.put_reg(dst, vec, buf, false);
            Err(e)
        }
    }
}

fn exec_instr(
    instr: &Instr,
    pool: &mut VectorPool,
    batch: &Batch,
    sel: Option<&SelVec>,
    check: ArithCheck,
) -> Result<()> {
    let n = batch.capacity();
    match instr {
        Instr::ConstFill { value, ty, dst } => {
            with_dst(pool, *dst, |_, out, buf| fill_const(out, buf, *ty, value, n))
        }
        Instr::ArithI64 { op, a, b, dst } => with_dst(pool, *dst, |pool, out, buf| {
            let av = pool.opd(batch, *a);
            let bv = pool.opd(batch, *b);
            let any = union_nulls_into(n, &[av, bv], buf);
            let x = av.data.as_i64();
            let y = bv.data.as_i64();
            let o = as_i64_mut(&mut out.data);
            match op {
                BinOp::Add => primitives::add_i64(x, y, sel, o, check)?,
                BinOp::Sub => primitives::sub_i64(x, y, sel, o, check)?,
                BinOp::Mul => primitives::mul_i64(x, y, sel, o, check)?,
                _ => unreachable!("Div/Rem compile to DivRemI64"),
            }
            Ok(any)
        }),
        Instr::DivRemI64 { op, a, b, dst } => {
            // Patch scratch must be taken out before `pool` is re-borrowed.
            let mut patch = std::mem::take(&mut pool.patch_i64);
            let res = with_dst(pool, *dst, |pool, out, buf| {
                let av = pool.opd(batch, *a);
                let bv = pool.opd(batch, *b);
                let any = union_nulls_into(n, &[av, bv], buf);
                let x = av.data.as_i64();
                let mut y = bv.data.as_i64();
                // NULL denominators would fault on their safe value 0:
                // patch them to 1 — their result lanes are NULL anyway.
                if let Some(m) = &bv.nulls {
                    patch.clear();
                    patch.extend(y.iter().zip(m).map(|(&v, &is_null)| if is_null { 1 } else { v }));
                    y = &patch[..];
                }
                let o = as_i64_mut(&mut out.data);
                match op {
                    BinOp::Div => primitives::div_i64(x, y, sel, o, check)?,
                    BinOp::Rem => primitives::rem_i64(x, y, sel, o, check)?,
                    _ => unreachable!(),
                }
                Ok(any)
            });
            pool.patch_i64 = patch;
            res
        }
        Instr::ArithF64 { op, a, b, dst } => with_dst(pool, *dst, |pool, out, buf| {
            let av = pool.opd(batch, *a);
            let bv = pool.opd(batch, *b);
            let any = union_nulls_into(n, &[av, bv], buf);
            let x = av.data.as_f64();
            let y = bv.data.as_f64();
            let o = as_f64_mut(&mut out.data);
            let op = *op;
            let f = |p: f64, q: f64| match op {
                BinOp::Add => p + q,
                BinOp::Sub => p - q,
                BinOp::Mul => p * q,
                BinOp::Div => p / q,
                BinOp::Rem => p % q,
            };
            match sel {
                None => primitives::map_bin_full(x, y, o, f),
                Some(s) => primitives::map_bin_sel(x, y, s, o, f),
            }
            // SQL: float division by zero errors, but only at live,
            // non-NULL lanes.
            if matches!(op, BinOp::Div | BinOp::Rem) && check != ArithCheck::Unchecked {
                let bad = |i: usize| y[i] == 0.0 && !av.is_null(i) && !bv.is_null(i);
                let any_bad = match sel {
                    None => (0..n).any(bad),
                    Some(s) => s.iter().any(bad),
                };
                if any_bad {
                    return Err(VwError::DivideByZero);
                }
            }
            Ok(any)
        }),
        Instr::ArithBranchyI64 { op, a, b, dst } => with_dst(pool, *dst, |pool, out, buf| {
            let av = pool.opd(batch, *a);
            let bv = pool.opd(batch, *b);
            let x = av.data.as_i64();
            let y = bv.data.as_i64();
            let o = as_i64_mut(&mut out.data);
            o.clear();
            o.resize(n, 0);
            buf.clear();
            buf.resize(n, false);
            let mut any = false;
            let mut step = |i: usize| -> Result<()> {
                if av.is_null(i) || bv.is_null(i) {
                    buf[i] = true;
                    any = true;
                    return Ok(());
                }
                let r = match op {
                    BinOp::Add => x[i].checked_add(y[i]).ok_or(VwError::Overflow("+"))?,
                    BinOp::Sub => x[i].checked_sub(y[i]).ok_or(VwError::Overflow("-"))?,
                    BinOp::Mul => x[i].checked_mul(y[i]).ok_or(VwError::Overflow("*"))?,
                    BinOp::Div => {
                        if y[i] == 0 {
                            return Err(VwError::DivideByZero);
                        }
                        x[i].checked_div(y[i]).ok_or(VwError::Overflow("/"))?
                    }
                    BinOp::Rem => {
                        if y[i] == 0 {
                            return Err(VwError::DivideByZero);
                        }
                        x[i].wrapping_rem(y[i])
                    }
                };
                o[i] = r;
                Ok(())
            };
            match sel {
                None => {
                    for i in 0..n {
                        step(i)?;
                    }
                }
                Some(s) => {
                    for i in s.iter() {
                        step(i)?;
                    }
                }
            }
            Ok(any)
        }),
        Instr::Cmp { op, a, b, dst } => with_dst(pool, *dst, |pool, out, buf| {
            let av = pool.opd(batch, *a);
            let bv = pool.opd(batch, *b);
            let any = union_nulls_into(n, &[av, bv], buf);
            let o = as_bool_mut(&mut out.data);
            // Typed arms write every selected lane, so unselected lanes may
            // keep garbage (the selective-kernel contract) — no zero-fill.
            primitives::resize_uninit(o, n);
            let op = *op;
            macro_rules! typed {
                ($x:expr, $y:expr, $cmp:expr) => {{
                    let (x, y) = ($x, $y);
                    #[allow(clippy::redundant_closure_call)]
                    match sel {
                        None => {
                            for i in 0..n {
                                o[i] = op.holds($cmp(&x[i], &y[i]));
                            }
                        }
                        Some(s) => {
                            for i in s.iter() {
                                o[i] = op.holds($cmp(&x[i], &y[i]));
                            }
                        }
                    }
                }};
            }
            match (&av.data, &bv.data) {
                (ColData::I64(x), ColData::I64(y)) => typed!(x, y, |p: &i64, q: &i64| p.cmp(q)),
                (ColData::I32(x), ColData::I32(y)) => typed!(x, y, |p: &i32, q: &i32| p.cmp(q)),
                (ColData::Date(x), ColData::Date(y)) => typed!(x, y, |p: &i32, q: &i32| p.cmp(q)),
                (ColData::F64(x), ColData::F64(y)) => {
                    typed!(x, y, |p: &f64, q: &f64| p.total_cmp(q))
                }
                (ColData::Str(x), ColData::Str(y)) => {
                    typed!(x, y, |p: &String, q: &String| p.cmp(q))
                }
                (x, y) => {
                    // Mixed types: Value comparison with numeric widening
                    // (exactly the interpreter's generic path). Incomparable
                    // pairs must read FALSE, so this arm does zero-fill.
                    o.iter_mut().for_each(|b| *b = false);
                    let mut run = |i: usize| {
                        if let Some(ord) = x.get_value(i).sql_cmp(&y.get_value(i)) {
                            o[i] = op.holds(ord);
                        }
                    };
                    match sel {
                        None => (0..n).for_each(&mut run),
                        Some(s) => s.iter().for_each(&mut run),
                    }
                }
            }
            Ok(any)
        }),
        Instr::BoolAndOr { is_and, parts, dst } => with_dst(pool, *dst, |pool, out, buf| {
            let is_and = *is_and;
            let o = as_bool_mut(&mut out.data);
            o.clear();
            o.resize(n, is_and);
            buf.clear();
            buf.resize(n, false);
            for part in parts {
                let v = pool.opd(batch, *part);
                let vals = v.data.as_bool();
                for i in 0..n {
                    let (pv, pn) = (vals[i], v.is_null(i));
                    let (av, an) = (o[i], buf[i]);
                    let (nv, nn) = if is_and {
                        // AND: false dominates, then NULL, then true.
                        if (!av && !an) || (!pv && !pn) {
                            (false, false)
                        } else if an || pn {
                            (false, true)
                        } else {
                            (true, false)
                        }
                    } else {
                        // OR: true dominates, then NULL, then false.
                        if (av && !an) || (pv && !pn) {
                            (true, false)
                        } else if an || pn {
                            (false, true)
                        } else {
                            (false, false)
                        }
                    };
                    o[i] = nv;
                    buf[i] = nn;
                }
            }
            Ok(buf.iter().any(|&b| b))
        }),
        Instr::Not { a, dst } => with_dst(pool, *dst, |pool, out, buf| {
            let v = pool.opd(batch, *a);
            let any = copy_nulls_into(n, v, buf);
            let o = as_bool_mut(&mut out.data);
            primitives::map_un_full(v.data.as_bool(), o, |b| !b);
            Ok(any)
        }),
        Instr::Cast { a, to, dst } => with_dst(pool, *dst, |pool, out, buf| {
            let v = pool.opd(batch, *a);
            let any = copy_nulls_into(n, v, buf);
            exec_cast(v, *to, sel, n, &mut out.data)?;
            Ok(any)
        }),
        Instr::IsNull { a, negated, dst } => with_dst(pool, *dst, |pool, out, _| {
            let v = pool.opd(batch, *a);
            let o = as_bool_mut(&mut out.data);
            o.clear();
            match &v.nulls {
                Some(m) => o.extend(m.iter().map(|&b| b != *negated)),
                None => o.resize(n, *negated),
            }
            Ok(false)
        }),
        Instr::Case { branches, else_v, dst } => with_dst(pool, *dst, |pool, out, buf| {
            out.data.clear();
            buf.clear();
            let mut any = false;
            // Sorted-selection walk: dead lanes only occupy a slot (safe
            // default), live lanes run the branch scan — same structure as
            // the generic cast path.
            let live = sel.map(SelVec::as_slice);
            let mut next = 0usize;
            for i in 0..n {
                let is_live = match live {
                    None => true,
                    Some(l) => {
                        if next < l.len() && l[next] as usize == i {
                            next += 1;
                            true
                        } else {
                            false
                        }
                    }
                };
                if !is_live {
                    out.data.push_safe_default();
                    buf.push(false);
                    continue;
                }
                let mut chosen: Option<Value> = None;
                for (c, v) in branches {
                    let cv = pool.opd(batch, *c);
                    if !cv.is_null(i) && cv.data.as_bool()[i] {
                        let vv = pool.opd(batch, *v);
                        chosen = Some(vv.get(i));
                        break;
                    }
                }
                let val = chosen
                    .unwrap_or_else(|| else_v.map_or(Value::Null, |e| pool.opd(batch, e).get(i)));
                if val.is_null() {
                    out.data.push_safe_default();
                    buf.push(true);
                    any = true;
                } else {
                    out.data.push_value(&val)?;
                    buf.push(false);
                }
            }
            Ok(any)
        }),
        Instr::Call { func, args, ty, dst } => with_dst(pool, *dst, |pool, out, buf| {
            // Every scalar function takes 1..=3 arguments: resolve into a
            // stack array so Call executes allocation-free per batch.
            debug_assert!((1..=3).contains(&args.len()));
            let mut store = [pool.opd(batch, args[0]); 3];
            for (slot, a) in store.iter_mut().zip(args.iter()).skip(1) {
                *slot = pool.opd(batch, *a);
            }
            exec_func(*func, &store[..args.len()], *ty, n, sel, out, buf)
        }),
        Instr::Like { a, matcher, negated, dst } => with_dst(pool, *dst, |pool, out, buf| {
            let v = pool.opd(batch, *a);
            let any = copy_nulls_into(n, v, buf);
            let strs = v.data.as_str();
            let o = as_bool_mut(&mut out.data);
            // Every selected lane is written; unselected lanes are garbage.
            primitives::resize_uninit(o, n);
            let mut run = |i: usize| o[i] = matcher.matches(&strs[i]) != *negated;
            match sel {
                None => (0..n).for_each(&mut run),
                Some(s) => s.iter().for_each(&mut run),
            }
            Ok(any)
        }),
        Instr::Fail { message } => Err(VwError::Plan(message.clone())),
    }
}

/// Fill a register with `n` copies of a constant. Copy-type constants fill
/// by `resize` (memset-class); strings clone per lane, as the interpreter
/// did. The buffer is fully rewritten — pool slots are shared between
/// programs, so stale contents cannot be trusted.
fn fill_const(
    out: &mut Vector,
    buf: &mut Vec<bool>,
    ty: TypeId,
    v: &Value,
    n: usize,
) -> Result<bool> {
    if v.is_null() {
        out.data.clear();
        for _ in 0..n {
            out.data.push_safe_default();
        }
        buf.clear();
        buf.resize(n, true);
        return Ok(n > 0);
    }
    match (&mut out.data, v) {
        (ColData::I64(o), Value::I64(k)) => {
            o.clear();
            o.resize(n, *k);
        }
        (ColData::I32(o), Value::I32(k)) => {
            o.clear();
            o.resize(n, *k);
        }
        (ColData::F64(o), Value::F64(k)) => {
            o.clear();
            o.resize(n, *k);
        }
        (ColData::Bool(o), Value::Bool(k)) => {
            o.clear();
            o.resize(n, *k);
        }
        (ColData::Date(o), Value::Date(k)) => {
            o.clear();
            o.resize(n, k.0);
        }
        _ => {
            debug_assert_eq!(out.data.type_id(), ty);
            out.data.clear();
            for _ in 0..n {
                out.data.push_value(v)?;
            }
        }
    }
    Ok(false)
}

/// Cast execution (same-type casts were elided at compile time).
fn exec_cast(
    v: &Vector,
    to: TypeId,
    sel: Option<&SelVec>,
    n: usize,
    out: &mut ColData,
) -> Result<()> {
    // Fast widening paths (full width, like the interpreter).
    macro_rules! widen {
        ($src:expr, $o:expr, $t:ty) => {{
            let (src, o) = ($src, $o);
            o.clear();
            o.extend(src.iter().map(|&a| a as $t));
            return Ok(());
        }};
    }
    match (&v.data, to, &mut *out) {
        (ColData::I8(s), TypeId::I64, ColData::I64(o)) => widen!(s, o, i64),
        (ColData::I16(s), TypeId::I64, ColData::I64(o)) => widen!(s, o, i64),
        (ColData::I32(s), TypeId::I64, ColData::I64(o)) => widen!(s, o, i64),
        (ColData::I8(s), TypeId::F64, ColData::F64(o)) => widen!(s, o, f64),
        (ColData::I16(s), TypeId::F64, ColData::F64(o)) => widen!(s, o, f64),
        (ColData::I32(s), TypeId::F64, ColData::F64(o)) => widen!(s, o, f64),
        (ColData::I64(s), TypeId::F64, ColData::F64(o)) => widen!(s, o, f64),
        _ => {}
    }
    // Generic per-value path: live lanes convert (checked), unselected
    // lanes must still occupy slots. The selection is sorted, so a single
    // pointer walk replaces the interpreter's HashSet.
    out.clear();
    fn run(v: &Vector, i: usize, to: TypeId, out: &mut ColData) -> Result<()> {
        if v.is_null(i) {
            out.push_safe_default();
        } else {
            out.push_value(&v.data.get_value(i).cast_to(to)?)?;
        }
        Ok(())
    }
    match sel {
        None => {
            for i in 0..n {
                run(v, i, to, out)?;
            }
        }
        Some(s) => {
            let live = s.as_slice();
            let mut next = 0usize;
            for i in 0..n {
                if next < live.len() && live[next] as usize == i {
                    next += 1;
                    run(v, i, to, out)?;
                } else {
                    out.push_safe_default();
                }
            }
        }
    }
    Ok(())
}

fn arg_err(func: Func, msg: &str) -> VwError {
    VwError::InvalidParameter(format!("{func:?}: {msg}"))
}

/// Scalar function execution into a pooled register — the interpreter's
/// `eval_func`, re-pointed at reusable output buffers.
fn exec_func(
    func: Func,
    vs: &[&Vector],
    ty: TypeId,
    n: usize,
    sel: Option<&SelVec>,
    out: &mut Vector,
    buf: &mut Vec<bool>,
) -> Result<bool> {
    let any = union_nulls_into(n, vs, buf);
    let live = |i: usize| -> bool { !(any && buf[i]) };
    macro_rules! for_live {
        ($body:expr) => {{
            match sel {
                None => {
                    for i in 0..n {
                        $body(i)?;
                    }
                }
                Some(s) => {
                    for i in s.iter() {
                        $body(i)?;
                    }
                }
            }
        }};
    }
    // Reset a typed output buffer to `n` default lanes.
    macro_rules! fresh {
        ($o:expr, $d:expr) => {{
            let o = $o;
            o.clear();
            o.resize(n, $d);
            o
        }};
    }
    match func {
        Func::Upper | Func::Lower | Func::Trim => {
            let s = vs[0].data.as_str();
            let o = fresh!(as_str_mut(&mut out.data), String::new());
            let mut f = |i: usize| -> Result<()> {
                o[i] = match func {
                    Func::Upper => s[i].to_uppercase(),
                    Func::Lower => s[i].to_lowercase(),
                    _ => s[i].trim().to_string(),
                };
                Ok(())
            };
            for_live!(f);
        }
        Func::Length => {
            let s = vs[0].data.as_str();
            let o = fresh!(as_i64_mut(&mut out.data), 0i64);
            let mut f = |i: usize| -> Result<()> {
                o[i] = s[i].chars().count() as i64;
                Ok(())
            };
            for_live!(f);
        }
        Func::Substr => {
            let s = vs[0].data.as_str();
            let start = vs[1].data.as_i64();
            let len = vs.get(2).map(|v| v.data.as_i64());
            let o = fresh!(as_str_mut(&mut out.data), String::new());
            let mut f = |i: usize| -> Result<()> {
                if !live(i) {
                    return Ok(());
                }
                if start[i] < 1 {
                    return Err(arg_err(func, "start position must be >= 1"));
                }
                let take = match len {
                    Some(l) => {
                        if l[i] < 0 {
                            return Err(arg_err(func, "length must be >= 0"));
                        }
                        l[i] as usize
                    }
                    None => usize::MAX,
                };
                o[i] = s[i].chars().skip(start[i] as usize - 1).take(take).collect();
                Ok(())
            };
            for_live!(f);
        }
        Func::Concat => {
            let a = vs[0].data.as_str();
            let b = vs[1].data.as_str();
            let o = fresh!(as_str_mut(&mut out.data), String::new());
            let mut f = |i: usize| -> Result<()> {
                let mut s = String::with_capacity(a[i].len() + b[i].len());
                s.push_str(&a[i]);
                s.push_str(&b[i]);
                o[i] = s;
                Ok(())
            };
            for_live!(f);
        }
        Func::Replace => {
            let s = vs[0].data.as_str();
            let from = vs[1].data.as_str();
            let to = vs[2].data.as_str();
            let o = fresh!(as_str_mut(&mut out.data), String::new());
            let mut f = |i: usize| -> Result<()> {
                o[i] =
                    if from[i].is_empty() { s[i].clone() } else { s[i].replace(&from[i], &to[i]) };
                Ok(())
            };
            for_live!(f);
        }
        Func::Abs => match &vs[0].data {
            ColData::I64(x) => {
                let o = fresh!(as_i64_mut(&mut out.data), 0i64);
                let mut f = |i: usize| -> Result<()> {
                    if live(i) {
                        o[i] = x[i].checked_abs().ok_or(VwError::Overflow("ABS"))?;
                    }
                    Ok(())
                };
                for_live!(f);
            }
            ColData::F64(x) => {
                let o = fresh!(as_f64_mut(&mut out.data), 0f64);
                let mut f = |i: usize| -> Result<()> {
                    o[i] = x[i].abs();
                    Ok(())
                };
                for_live!(f);
            }
            other => return Err(arg_err(func, &format!("bad input {}", other.type_id()))),
        },
        Func::Sqrt => {
            let x = vs[0].data.as_f64();
            let o = fresh!(as_f64_mut(&mut out.data), 0f64);
            let mut f = |i: usize| -> Result<()> {
                if live(i) {
                    if x[i] < 0.0 {
                        return Err(arg_err(func, "negative input"));
                    }
                    o[i] = x[i].sqrt();
                }
                Ok(())
            };
            for_live!(f);
        }
        Func::Floor | Func::Ceil | Func::Round => {
            let x = vs[0].data.as_f64();
            let o = fresh!(as_f64_mut(&mut out.data), 0f64);
            let mut f = |i: usize| -> Result<()> {
                o[i] = match func {
                    Func::Floor => x[i].floor(),
                    Func::Ceil => x[i].ceil(),
                    _ => x[i].round(),
                };
                Ok(())
            };
            for_live!(f);
        }
        Func::Extract => {
            let ColData::Date(days) = &vs[0].data else {
                return Err(arg_err(func, "first argument must be DATE"));
            };
            let field_code = vs[1].data.as_i64();
            let o = fresh!(as_i64_mut(&mut out.data), 0i64);
            let mut f = |i: usize| -> Result<()> {
                if live(i) {
                    let field = decode_field(field_code[i])?;
                    o[i] = field.extract(days[i]) as i64;
                }
                Ok(())
            };
            for_live!(f);
        }
        Func::DateAddDays => {
            let ColData::Date(days) = &vs[0].data else {
                return Err(arg_err(func, "first argument must be DATE"));
            };
            let delta = vs[1].data.as_i64();
            let o = fresh!(as_date_mut(&mut out.data), 0i32);
            let mut f = |i: usize| -> Result<()> {
                if live(i) {
                    let v = days[i] as i64 + delta[i];
                    o[i] = i32::try_from(v).map_err(|_| VwError::Overflow("DATE + days"))?;
                }
                Ok(())
            };
            for_live!(f);
        }
        Func::DateAddMonths => {
            let ColData::Date(days) = &vs[0].data else {
                return Err(arg_err(func, "first argument must be DATE"));
            };
            let delta = vs[1].data.as_i64();
            let o = fresh!(as_date_mut(&mut out.data), 0i32);
            let mut f = |i: usize| -> Result<()> {
                if live(i) {
                    let m =
                        i32::try_from(delta[i]).map_err(|_| VwError::Overflow("DATE + months"))?;
                    o[i] = vw_common::date::add_months(days[i], m)?;
                }
                Ok(())
            };
            for_live!(f);
        }
        Func::DateDiffDays => {
            let (ColData::Date(a), ColData::Date(b)) = (&vs[0].data, &vs[1].data) else {
                return Err(arg_err(func, "arguments must be DATE"));
            };
            let o = fresh!(as_i64_mut(&mut out.data), 0i64);
            let mut f = |i: usize| -> Result<()> {
                o[i] = a[i] as i64 - b[i] as i64;
                Ok(())
            };
            for_live!(f);
        }
    }
    debug_assert_eq!(out.data.type_id(), ty);
    Ok(any)
}

fn as_str_mut(c: &mut ColData) -> &mut Vec<String> {
    match c {
        ColData::Str(v) => v,
        other => panic!("register type mismatch: expected Str, got {}", other.type_id()),
    }
}

fn as_date_mut(c: &mut ColData) -> &mut Vec<i32> {
    match c {
        ColData::Date(v) => v,
        other => panic!("register type mismatch: expected Date, got {}", other.type_id()),
    }
}

// ---------------------------------------------------------------------------
// SelectProgram
// ---------------------------------------------------------------------------

/// A compiled predicate: produces the selection of live rows where the
/// expression is TRUE (NULL counts as false). Conjunctions chain narrowed
/// selections through selective steps without materializing boolean
/// intermediates; hot `col <op> const` shapes hit typed select kernels.
pub struct SelectProgram {
    node: SelNode,
}

enum SelNode {
    /// Chained narrowing: each step sees only survivors of the previous.
    Conj(Vec<SelNode>),
    /// Union of branch selections, each under the incoming selection.
    Disj(Vec<SelNode>),
    /// Typed `col <op> const` select kernel (no boolean intermediate).
    /// Dictionary-coded string columns are decided with one comparison
    /// per distinct value (qualifying-code bitmap); RLE-sidecar integer
    /// columns accept/reject whole runs.
    CmpColConst { op: CmpOp, col: usize, val: Value },
    /// `col LIKE pattern` with the pattern compiled once. On a
    /// dictionary-coded column the matcher runs once per distinct value.
    LikeCol { col: usize, matcher: LikeMatcher, negated: bool },
    /// Constant predicate (TRUE keeps the incoming selection).
    ConstBool(bool),
    /// Irreducible boolean expression: evaluate, then keep TRUE non-NULLs.
    Bool(ExprProgram),
}

impl SelectProgram {
    /// Compile a predicate under `ctx`.
    pub fn compile(pred: &PhysExpr, ctx: &ExprCtx) -> SelectProgram {
        // One linear pass marks const-ness per node; compile_sel then asks
        // in O(1) instead of re-walking subtrees at every And/Or level.
        let mut consts = HashMap::new();
        mark_const(pred, &mut consts);
        SelectProgram { node: compile_sel(pred, ctx, &consts) }
    }

    /// Total boolean-program instructions (observability; the typed steps
    /// count as zero — that is the point of the fused path).
    pub fn len(&self) -> usize {
        fn count(n: &SelNode) -> usize {
            match n {
                SelNode::Conj(v) | SelNode::Disj(v) => v.iter().map(count).sum(),
                SelNode::Bool(p) => p.len(),
                _ => 0,
            }
        }
        count(&self.node)
    }

    /// True when no boolean sub-program is needed anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluate against `batch` under its own selection, producing the
    /// surviving positions.
    pub fn run(&self, pool: &mut VectorPool, batch: &Batch) -> Result<SelVec> {
        run_sel(&self.node, pool, batch, batch.sel.as_ref())
    }

    /// Columns that must be flat before [`run`](Self::run): everything
    /// read by irreducible boolean sub-programs. Columns touched only by
    /// the typed compare / LIKE steps stay encoded — those kernels work
    /// on dict codes and RLE runs directly.
    pub fn flat_cols(&self) -> Vec<usize> {
        fn walk(n: &SelNode, out: &mut Vec<usize>) {
            match n {
                SelNode::Conj(v) | SelNode::Disj(v) => v.iter().for_each(|p| walk(p, out)),
                SelNode::Bool(p) => out.extend_from_slice(p.cols_used()),
                SelNode::CmpColConst { .. } | SelNode::LikeCol { .. } | SelNode::ConstBool(_) => {}
            }
        }
        let mut out = Vec::new();
        walk(&self.node, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Evaluate a column-free subtree to a single value via the reference
/// interpreter — the one constant-folding mechanism shared by expression
/// compilation (`try_fold`) and predicate compilation (`compile_sel`).
/// `None` when evaluation errors; callers leave the subtree compiled so
/// the error still surfaces at run time.
fn fold_const_value(e: &PhysExpr, ctx: &ExprCtx) -> Option<Value> {
    // One-row dummy batch: the expression references no columns.
    let batch = Batch::new(vec![Vector::new(ColData::I64(vec![0]))]);
    e.eval(&batch, ctx).ok().map(|v| v.get(0))
}

/// Linear const-ness marking (no short-circuit: every node gets an entry).
fn mark_const(e: &PhysExpr, out: &mut HashMap<*const PhysExpr, bool>) -> bool {
    let c = match e {
        PhysExpr::ColRef(..) => false,
        PhysExpr::Const(..) => true,
        other => {
            // Visit every child (no short-circuit: each needs its entry).
            let mut all = true;
            for ch in children(other) {
                all &= mark_const(ch, out);
            }
            all
        }
    };
    out.insert(e as *const PhysExpr, c);
    c
}

fn compile_sel(pred: &PhysExpr, ctx: &ExprCtx, consts: &HashMap<*const PhysExpr, bool>) -> SelNode {
    // Constant predicates fold to a keep-all / drop-all step (NULL is
    // never TRUE, so it drops everything).
    if consts[&(pred as *const PhysExpr)] {
        match fold_const_value(pred, ctx) {
            Some(Value::Bool(b)) => return SelNode::ConstBool(b),
            Some(Value::Null) => return SelNode::ConstBool(false),
            _ => {}
        }
    }
    match pred {
        PhysExpr::And(parts) => {
            SelNode::Conj(parts.iter().map(|p| compile_sel(p, ctx, consts)).collect())
        }
        PhysExpr::Or(parts) => {
            SelNode::Disj(parts.iter().map(|p| compile_sel(p, ctx, consts)).collect())
        }
        PhysExpr::Cmp { op, lhs, rhs } => {
            if let (PhysExpr::ColRef(ci, cty), PhysExpr::Const(k, _)) = (lhs.as_ref(), rhs.as_ref())
            {
                let typed = matches!(
                    (cty, k),
                    (TypeId::I64, Value::I64(_))
                        | (TypeId::I32, Value::I32(_))
                        | (TypeId::Date, Value::Date(_))
                        | (TypeId::F64, Value::F64(_))
                        | (TypeId::Str, Value::Str(_))
                );
                if typed {
                    return SelNode::CmpColConst { op: *op, col: *ci, val: k.clone() };
                }
            }
            SelNode::Bool(ExprProgram::compile(pred, ctx))
        }
        PhysExpr::Like { input, pattern, negated } => {
            if let PhysExpr::ColRef(ci, TypeId::Str) = input.as_ref() {
                return SelNode::LikeCol {
                    col: *ci,
                    matcher: LikeMatcher::new(pattern),
                    negated: *negated,
                };
            }
            SelNode::Bool(ExprProgram::compile(pred, ctx))
        }
        _ => SelNode::Bool(ExprProgram::compile(pred, ctx)),
    }
}

fn run_sel(
    node: &SelNode,
    pool: &mut VectorPool,
    batch: &Batch,
    sel: Option<&SelVec>,
) -> Result<SelVec> {
    let n = batch.capacity();
    match node {
        SelNode::ConstBool(true) => {
            let mut out = pool.take_sel();
            match sel {
                Some(s) => out.clear_and_extend_from_slice(s.as_slice()),
                None => out.fill_identity(n),
            }
            Ok(out)
        }
        SelNode::ConstBool(false) => Ok(pool.take_sel()),
        SelNode::Conj(parts) => {
            let mut cur: Option<SelVec> = None;
            for p in parts {
                let next = run_sel(p, pool, batch, cur.as_ref().or(sel))?;
                if let Some(prev) = cur.replace(next) {
                    pool.put_sel(prev);
                }
                if cur.as_ref().is_some_and(|s| s.is_empty()) {
                    break; // nothing survives; later conjuncts are no-ops
                }
            }
            match cur {
                Some(s) => Ok(s),
                None => {
                    let mut out = pool.take_sel();
                    match sel {
                        Some(s) => out.clear_and_extend_from_slice(s.as_slice()),
                        None => out.fill_identity(n),
                    }
                    Ok(out)
                }
            }
        }
        SelNode::Disj(parts) => {
            let mut acc = pool.take_sel();
            let mut tmp = pool.take_sel();
            for p in parts {
                let s = run_sel(p, pool, batch, sel)?;
                union_sorted_into(&acc, &s, &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
                pool.put_sel(s);
            }
            pool.put_sel(tmp);
            Ok(acc)
        }
        SelNode::CmpColConst { op, col, val } => {
            let colv = &batch.columns[*col];
            let mut out = pool.take_sel();
            pool.enc_skipped += select_col_const(*op, colv, val, n, sel, &mut out);
            Ok(out)
        }
        SelNode::LikeCol { col, matcher, negated } => {
            let colv = &batch.columns[*col];
            let mut out = pool.take_sel();
            if let Some((codes, dict)) = colv.dict_parts() {
                // One matcher run per distinct value; rows reduce to a
                // bitmap lookup on their code.
                let mut ok = vec![false; dict.len()];
                for (d, slot) in dict.iter().zip(ok.iter_mut()) {
                    *slot = matcher.matches(d) != *negated;
                }
                match &colv.nulls {
                    None => primitives::select_by(n, sel, &mut out, |i| ok[codes[i] as usize]),
                    Some(m) => {
                        primitives::select_by(n, sel, &mut out, |i| !m[i] && ok[codes[i] as usize])
                    }
                }
                pool.enc_skipped += sel.map_or(n, |s| s.len()) as u64;
            } else {
                let vals = colv.data.as_str();
                match &colv.nulls {
                    None => primitives::select_by(n, sel, &mut out, |i| {
                        matcher.matches(&vals[i]) != *negated
                    }),
                    Some(m) => primitives::select_by(n, sel, &mut out, |i| {
                        !m[i] && matcher.matches(&vals[i]) != *negated
                    }),
                }
            }
            Ok(out)
        }
        SelNode::Bool(prog) => {
            let vr = prog.run_with_sel(pool, batch, sel)?;
            let mut out = pool.take_sel();
            let v = pool.get(batch, vr);
            let vals = v.data.as_bool();
            primitives::select_by(n, sel, &mut out, |i| vals[i] && !v.is_null(i));
            Ok(out)
        }
    }
}

/// Typed `col <op> const` selection — the X100 `select_*` kernels, ported
/// from the interpreter's `fast_select_cmp`. Returns the number of rows
/// decided at the encoding level (dict-code bitmap or RLE run test)
/// rather than by per-row value comparison.
fn select_col_const(
    op: CmpOp,
    col: &Vector,
    k: &Value,
    n: usize,
    sel: Option<&SelVec>,
    out: &mut SelVec,
) -> u64 {
    // Dictionary-coded strings: one comparison per distinct value builds
    // a qualifying-code bitmap; rows reduce to a code lookup.
    if let (Some((codes, dict)), Value::Str(k)) = (col.dict_parts(), k) {
        let mut ok = vec![false; dict.len()];
        for (d, slot) in dict.iter().zip(ok.iter_mut()) {
            *slot = op.holds(d.as_str().cmp(k.as_str()));
        }
        match &col.nulls {
            None => primitives::select_by(n, sel, out, |i| ok[codes[i] as usize]),
            Some(m) => primitives::select_by(n, sel, out, |i| !m[i] && ok[codes[i] as usize]),
        }
        return sel.map_or(n, |s| s.len()) as u64;
    }
    // RLE runs over a dense, NULL-free integer column: one comparison
    // accepts or rejects the whole run.
    if sel.is_none() && col.nulls.is_none() {
        if let Some(runs) = col.rle_runs() {
            let kk = match k {
                Value::I64(v) => Some(*v),
                Value::I32(v) => Some(*v as i64),
                Value::Date(d) => Some(d.0 as i64),
                _ => None,
            };
            if let Some(kk) = kk {
                out.clear();
                let mut pos = 0u32;
                for &(v, len) in runs {
                    if op.holds(v.cmp(&kk)) {
                        for i in pos..pos + len {
                            out.push(i);
                        }
                    }
                    pos += len;
                }
                return n as u64;
            }
        }
    }
    macro_rules! run {
        ($vals:expr, $k:expr) => {{
            let vals = $vals;
            let k = $k;
            match &col.nulls {
                None => primitives::select_by(n, sel, out, |i| op.holds(vals[i].cmp(&k))),
                Some(m) => {
                    primitives::select_by(n, sel, out, |i| !m[i] && op.holds(vals[i].cmp(&k)))
                }
            }
        }};
    }
    match (&col.data, k) {
        (ColData::I64(v), Value::I64(k)) => run!(v.as_slice(), *k),
        (ColData::I32(v), Value::I32(k)) => run!(v.as_slice(), *k),
        (ColData::Date(v), Value::Date(k)) => run!(v.as_slice(), k.0),
        (ColData::F64(v), Value::F64(k)) => {
            let k = *k;
            match &col.nulls {
                None => primitives::select_by(n, sel, out, |i| op.holds(v[i].total_cmp(&k))),
                Some(m) => {
                    primitives::select_by(n, sel, out, |i| !m[i] && op.holds(v[i].total_cmp(&k)))
                }
            }
        }
        (ColData::Str(v), Value::Str(k)) => match &col.nulls {
            None => primitives::select_by(n, sel, out, |i| op.holds(v[i].as_str().cmp(k.as_str()))),
            Some(m) => primitives::select_by(n, sel, out, |i| {
                !m[i] && op.holds(v[i].as_str().cmp(k.as_str()))
            }),
        },
        _ => unreachable!("compile_sel only emits CmpColConst for matching types"),
    }
    0
}

/// Merge two sorted selections into `out` (cleared first). Also backs the
/// interpreter's `union_sorted` so the OR-semantics cannot drift.
pub(crate) fn union_sorted_into(a: &SelVec, b: &SelVec, out: &mut SelVec) {
    out.clear();
    let (x, y) = (a.as_slice(), b.as_slice());
    let (mut i, mut j) = (0, 0);
    while i < x.len() || j < y.len() {
        let take_x = j >= y.len() || (i < x.len() && x[i] <= y[j]);
        if take_x {
            if j < y.len() && x[i] == y[j] {
                j += 1;
            }
            out.push(x[i]);
            i += 1;
        } else {
            out.push(y[j]);
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExprCtx {
        ExprCtx::default()
    }

    fn col(i: usize, ty: TypeId) -> PhysExpr {
        PhysExpr::ColRef(i, ty)
    }

    fn lit(v: i64) -> PhysExpr {
        PhysExpr::Const(Value::I64(v), TypeId::I64)
    }

    fn arith(op: BinOp, l: PhysExpr, r: PhysExpr) -> PhysExpr {
        PhysExpr::Arith { op, lhs: Box::new(l), rhs: Box::new(r), ty: TypeId::I64 }
    }

    fn batch_i64(vals: Vec<i64>) -> Batch {
        Batch::new(vec![Vector::new(ColData::I64(vals))])
    }

    fn nullable_i64(vals: Vec<Option<i64>>) -> Vector {
        let mut v = Vector::new(ColData::new(TypeId::I64));
        for x in vals {
            v.push(&x.map_or(Value::Null, Value::I64)).unwrap();
        }
        v
    }

    /// Run a program and read its result values at every lane.
    fn run_values(prog: &ExprProgram, pool: &mut VectorPool, batch: &Batch) -> Vec<Value> {
        let vr = prog.run(pool, batch).unwrap();
        let v = pool.get(batch, vr);
        let out = (0..v.len()).map(|i| v.get(i)).collect();
        pool.recycle();
        out
    }

    #[test]
    fn constant_subtrees_fold_to_one_fill() {
        // (1 + 2) * x: the (1 + 2) subtree folds at compile time.
        let e = arith(BinOp::Mul, arith(BinOp::Add, lit(1), lit(2)), col(0, TypeId::I64));
        let p = ExprProgram::compile(&e, &ctx());
        assert_eq!(p.len(), 2, "ConstFill(3) + Mul — no instructions for the folded subtree");
        let mut pool = VectorPool::new();
        assert_eq!(
            run_values(&p, &mut pool, &batch_i64(vec![5, 7])),
            vec![Value::I64(15), Value::I64(21)]
        );
    }

    #[test]
    fn erroring_constants_stay_compiled_and_fail_at_run_time() {
        // 1/0 must not fold away the error (nor error at compile time).
        let e = arith(BinOp::Add, col(0, TypeId::I64), arith(BinOp::Div, lit(1), lit(0)));
        let p = ExprProgram::compile(&e, &ctx());
        let mut pool = VectorPool::new();
        assert!(matches!(p.run(&mut pool, &batch_i64(vec![1])), Err(VwError::DivideByZero)));
    }

    #[test]
    fn common_subexpressions_compile_once() {
        // (x + 1) * (x + 1): one Add, one ConstFill, one Mul.
        let sub = arith(BinOp::Add, col(0, TypeId::I64), lit(1));
        let e = arith(BinOp::Mul, sub.clone(), sub);
        let p = ExprProgram::compile(&e, &ctx());
        assert_eq!(p.len(), 3, "shared subexpression must compile exactly once");
        let mut pool = VectorPool::new();
        assert_eq!(run_values(&p, &mut pool, &batch_i64(vec![3])), vec![Value::I64(16)]);
    }

    #[test]
    fn registers_are_reused_down_long_chains() {
        // ((((x+1)+2)+3)+4)+5 — releases let the chain run in few slots.
        let mut e = col(0, TypeId::I64);
        for k in 1..=5 {
            e = arith(BinOp::Add, e, lit(k));
        }
        let p = ExprProgram::compile(&e, &ctx());
        assert!(
            p.n_regs() <= 4,
            "expected register reuse, got {} regs for a 5-add chain",
            p.n_regs()
        );
        let mut pool = VectorPool::new();
        assert_eq!(run_values(&p, &mut pool, &batch_i64(vec![0])), vec![Value::I64(15)]);
    }

    #[test]
    fn identity_cast_is_elided_without_corrupting_reuse() {
        // CAST(x+1 AS BIGINT) used twice alongside the bare x+1: the cast
        // forwards to the shared register; releases must not double-free.
        let sub = arith(BinOp::Add, col(0, TypeId::I64), lit(1));
        let cast = PhysExpr::Cast { input: Box::new(sub.clone()), to: TypeId::I64 };
        let e = arith(BinOp::Mul, cast.clone(), arith(BinOp::Add, cast, sub));
        let p = ExprProgram::compile(&e, &ctx());
        let mut pool = VectorPool::new();
        // x = 2 → (3) * (3 + 3) = 18.
        assert_eq!(run_values(&p, &mut pool, &batch_i64(vec![2])), vec![Value::I64(18)]);
    }

    #[test]
    fn nested_identity_casts_resolve_alias_chains() {
        // CAST(CAST(x+1)) shared via CSE: the outer cast's use-count
        // transfer must land on the terminal register holder (x+1), not on
        // the inner cast's key — otherwise releases underflow x+1's count
        // and free its register while consumers remain.
        let sub = arith(BinOp::Add, col(0, TypeId::I64), lit(1));
        let inner = PhysExpr::Cast { input: Box::new(sub.clone()), to: TypeId::I64 };
        let outer = PhysExpr::Cast { input: Box::new(inner), to: TypeId::I64 };
        let e = arith(BinOp::Mul, outer.clone(), outer);
        let p = ExprProgram::compile(&e, &ctx());
        let mut pool = VectorPool::new();
        // x = 3 → (4) * (4) = 16.
        assert_eq!(run_values(&p, &mut pool, &batch_i64(vec![3])), vec![Value::I64(16)]);
        // And mixed with a direct use of the uncast subexpression.
        let outer2 = PhysExpr::Cast {
            input: Box::new(PhysExpr::Cast { input: Box::new(sub.clone()), to: TypeId::I64 }),
            to: TypeId::I64,
        };
        let e2 = arith(BinOp::Mul, outer2, arith(BinOp::Add, sub.clone(), sub));
        let p2 = ExprProgram::compile(&e2, &ctx());
        // x = 2 → 3 * 6 = 18.
        assert_eq!(run_values(&p2, &mut pool, &batch_i64(vec![2])), vec![Value::I64(18)]);
    }

    #[test]
    fn pool_slots_stabilize_across_batches() {
        let e = arith(BinOp::Add, arith(BinOp::Mul, col(0, TypeId::I64), lit(2)), lit(1));
        let p = ExprProgram::compile(&e, &ctx());
        let mut pool = VectorPool::new();
        let batch = batch_i64((0..1024).collect());
        run_values(&p, &mut pool, &batch);
        let slots_after_first = pool.slots.len();
        for _ in 0..10 {
            run_values(&p, &mut pool, &batch);
        }
        assert_eq!(pool.slots.len(), slots_after_first, "steady state must not grow the arena");
    }

    #[test]
    fn profiling_counters_accumulate() {
        let e = arith(BinOp::Add, col(0, TypeId::I64), lit(1));
        let p = ExprProgram::compile(&e, &ctx());
        let mut pool = VectorPool::new();
        let batch = batch_i64(vec![1, 2]);
        run_values(&p, &mut pool, &batch);
        run_values(&p, &mut pool, &batch);
        let (runs, instrs) = pool.take_counters();
        assert_eq!(runs, 2);
        assert_eq!(instrs, 2 * p.len() as u64);
        assert_eq!(pool.take_counters(), (0, 0), "counters drain");
    }

    /// The dedicated Div/Rem instruction must preserve the "patch NULL
    /// denominators to 1" semantics under every checking strategy.
    #[test]
    fn div_rem_null_denominators_under_all_check_modes() {
        for check in [ArithCheck::Unchecked, ArithCheck::Naive, ArithCheck::Lazy] {
            for op in [BinOp::Div, BinOp::Rem] {
                let cx = ExprCtx { check, ..ctx() };
                let num = nullable_i64(vec![Some(10), None, Some(12)]);
                let den = nullable_i64(vec![Some(2), None, None]);
                let batch = Batch::new(vec![num, den]);
                let e = arith(op, col(0, TypeId::I64), col(1, TypeId::I64));
                let p = ExprProgram::compile(&e, &cx);
                let mut pool = VectorPool::new();
                let got = run_values(&p, &mut pool, &batch);
                let want = match op {
                    BinOp::Div => vec![Value::I64(5), Value::Null, Value::Null],
                    _ => vec![Value::I64(0), Value::Null, Value::Null],
                };
                assert_eq!(got, want, "{op:?} under {check:?}");
                // And identically through the reference interpreter.
                let r = e.eval(&batch, &cx).unwrap();
                for (i, w) in want.iter().enumerate() {
                    assert_eq!(&r.get(i), w, "interpreter {op:?} under {check:?}");
                }
            }
        }
    }

    #[test]
    fn div_by_actual_zero_still_errors_when_checked() {
        for op in [BinOp::Div, BinOp::Rem] {
            let e = arith(op, col(0, TypeId::I64), col(1, TypeId::I64));
            let batch = Batch::new(vec![
                Vector::new(ColData::I64(vec![1])),
                Vector::new(ColData::I64(vec![0])),
            ]);
            for check in [ArithCheck::Naive, ArithCheck::Lazy] {
                let p = ExprProgram::compile(&e, &ExprCtx { check, ..ctx() });
                let mut pool = VectorPool::new();
                assert!(matches!(p.run(&mut pool, &batch), Err(VwError::DivideByZero)));
            }
            // Unchecked: research-prototype mode swallows it.
            let p = ExprProgram::compile(&e, &ExprCtx { check: ArithCheck::Unchecked, ..ctx() });
            let mut pool = VectorPool::new();
            assert!(p.run(&mut pool, &batch).is_ok());
        }
    }

    #[test]
    fn div_by_zero_outside_selection_is_ignored() {
        let e = arith(BinOp::Div, col(0, TypeId::I64), col(1, TypeId::I64));
        let p = ExprProgram::compile(&e, &ctx());
        let mut batch = Batch::new(vec![
            Vector::new(ColData::I64(vec![8, 9])),
            Vector::new(ColData::I64(vec![0, 3])),
        ]);
        batch.sel = Some(SelVec::from_positions(vec![1]));
        let mut pool = VectorPool::new();
        let vr = p.run(&mut pool, &batch).unwrap();
        assert_eq!(pool.get(&batch, vr).get(1), Value::I64(3));
    }

    #[test]
    fn branchy_null_mode_compiles_to_branchy_instruction() {
        let cx = ExprCtx { null_mode: NullMode::Branchy, ..ctx() };
        let e = arith(BinOp::Mul, col(0, TypeId::I64), lit(3));
        let p = ExprProgram::compile(&e, &cx);
        let batch = Batch::new(vec![nullable_i64(vec![Some(2), None])]);
        let mut pool = VectorPool::new();
        assert_eq!(run_values(&p, &mut pool, &batch), vec![Value::I64(6), Value::Null]);
    }

    #[test]
    fn bare_column_program_copies_nothing() {
        let p = ExprProgram::compile(&col(0, TypeId::I64), &ctx());
        assert_eq!(p.len(), 0);
        let batch = batch_i64(vec![1, 2]);
        let mut pool = VectorPool::new();
        let vr = p.run(&mut pool, &batch).unwrap();
        assert_eq!(vr, VecRef::Col(0));
        assert_eq!(pool.slots.len(), 0, "no arena slot for a bare column");
    }

    #[test]
    fn select_program_conjunction_chains_and_matches_interpreter() {
        // 5 <= x AND x < 10 AND (x % 2) = 1 — two typed steps + one
        // boolean program, all under chained narrowing.
        let e = PhysExpr::And(vec![
            PhysExpr::Cmp {
                op: CmpOp::Ge,
                lhs: Box::new(col(0, TypeId::I64)),
                rhs: Box::new(lit(5)),
            },
            PhysExpr::Cmp {
                op: CmpOp::Lt,
                lhs: Box::new(col(0, TypeId::I64)),
                rhs: Box::new(lit(10)),
            },
            PhysExpr::Cmp {
                op: CmpOp::Eq,
                lhs: Box::new(arith(BinOp::Rem, col(0, TypeId::I64), lit(2))),
                rhs: Box::new(lit(1)),
            },
        ]);
        let sp = SelectProgram::compile(&e, &ctx());
        let batch = batch_i64((0..32).collect());
        let mut pool = VectorPool::new();
        let got = sp.run(&mut pool, &batch).unwrap();
        let want = e.eval_select(&batch, &ctx()).unwrap();
        assert_eq!(got.as_slice(), want.as_slice());
        assert_eq!(got.as_slice(), &[5, 7, 9]);
    }

    #[test]
    fn large_bigint_comparisons_are_exact_everywhere() {
        // 2^53 vs 2^53+1 are equal after f64 widening; BIGINT comparison
        // must stay exact and agree between the compiled typed kernel, the
        // interpreter's generic sql_cmp path, and constant folding.
        let a = 1i64 << 53;
        let b = a + 1;
        let e = PhysExpr::Cmp {
            op: CmpOp::Eq,
            lhs: Box::new(col(0, TypeId::I64)),
            rhs: Box::new(col(1, TypeId::I64)),
        };
        let batch = Batch::new(vec![
            Vector::new(ColData::I64(vec![a])),
            Vector::new(ColData::I64(vec![b])),
        ]);
        let p = ExprProgram::compile(&e, &ctx());
        let mut pool = VectorPool::new();
        assert_eq!(run_values(&p, &mut pool, &batch), vec![Value::Bool(false)]);
        assert_eq!(e.eval(&batch, &ctx()).unwrap().get(0), Value::Bool(false));
        // Folded constant form of the same comparison agrees.
        let folded = PhysExpr::Cmp { op: CmpOp::Eq, lhs: Box::new(lit(a)), rhs: Box::new(lit(b)) };
        let fp = ExprProgram::compile(&folded, &ctx());
        assert_eq!(run_values(&fp, &mut pool, &batch), vec![Value::Bool(false)]);
    }

    #[test]
    fn select_program_disjunction_unions_sorted() {
        let lt3 = PhysExpr::Cmp {
            op: CmpOp::Lt,
            lhs: Box::new(col(0, TypeId::I64)),
            rhs: Box::new(lit(3)),
        };
        let ge9 = PhysExpr::Cmp {
            op: CmpOp::Ge,
            lhs: Box::new(col(0, TypeId::I64)),
            rhs: Box::new(lit(9)),
        };
        let e = PhysExpr::Or(vec![lt3, ge9]);
        let sp = SelectProgram::compile(&e, &ctx());
        let batch = batch_i64((0..12).collect());
        let mut pool = VectorPool::new();
        let got = sp.run(&mut pool, &batch).unwrap();
        assert_eq!(got.as_slice(), &[0, 1, 2, 9, 10, 11]);
    }

    #[test]
    fn select_program_respects_incoming_selection() {
        let e = PhysExpr::Cmp {
            op: CmpOp::Gt,
            lhs: Box::new(col(0, TypeId::I64)),
            rhs: Box::new(lit(0)),
        };
        let sp = SelectProgram::compile(&e, &ctx());
        let mut batch = batch_i64((0..10).collect());
        batch.sel = Some(SelVec::from_positions(vec![0, 1, 2]));
        let mut pool = VectorPool::new();
        let got = sp.run(&mut pool, &batch).unwrap();
        assert_eq!(got.as_slice(), &[1, 2], "rows outside sel must not leak in");
    }

    #[test]
    fn constant_predicates_fold_to_keep_all_or_drop_all() {
        let t = SelectProgram::compile(&PhysExpr::bool_const(true), &ctx());
        let f = SelectProgram::compile(&PhysExpr::bool_const(false), &ctx());
        // 1 < 2 folds to TRUE as well.
        let folded = SelectProgram::compile(
            &PhysExpr::Cmp { op: CmpOp::Lt, lhs: Box::new(lit(1)), rhs: Box::new(lit(2)) },
            &ctx(),
        );
        let batch = batch_i64(vec![1, 2, 3]);
        let mut pool = VectorPool::new();
        assert_eq!(t.run(&mut pool, &batch).unwrap().len(), 3);
        assert_eq!(f.run(&mut pool, &batch).unwrap().len(), 0);
        assert_eq!(folded.run(&mut pool, &batch).unwrap().len(), 3);
        assert!(folded.is_empty(), "folded predicate needs no boolean program");
    }

    #[test]
    fn case_and_like_and_funcs_match_interpreter() {
        let strs = Vector::new(ColData::Str(vec![
            "  promo HOT  ".into(),
            "plain".into(),
            "promo x".into(),
        ]));
        let batch = Batch::new(vec![strs]);
        let exprs = [
            PhysExpr::FuncCall {
                func: Func::Upper,
                args: vec![col(0, TypeId::Str)],
                ty: TypeId::Str,
            },
            PhysExpr::FuncCall {
                func: Func::Length,
                args: vec![PhysExpr::FuncCall {
                    func: Func::Trim,
                    args: vec![col(0, TypeId::Str)],
                    ty: TypeId::Str,
                }],
                ty: TypeId::I64,
            },
            PhysExpr::Like {
                input: Box::new(col(0, TypeId::Str)),
                pattern: "%promo%".into(),
                negated: false,
            },
            PhysExpr::Case {
                branches: vec![(
                    PhysExpr::Like {
                        input: Box::new(col(0, TypeId::Str)),
                        pattern: "%promo%".into(),
                        negated: false,
                    },
                    PhysExpr::Const(Value::Str("yes".into()), TypeId::Str),
                )],
                else_expr: Some(Box::new(PhysExpr::Const(Value::Str("no".into()), TypeId::Str))),
                ty: TypeId::Str,
            },
        ];
        for e in &exprs {
            let p = ExprProgram::compile(e, &ctx());
            let mut pool = VectorPool::new();
            let got = run_values(&p, &mut pool, &batch);
            let want = e.eval(&batch, &ctx()).unwrap();
            for (i, g) in got.iter().enumerate() {
                assert_eq!(g, &want.get(i), "{e:?} lane {i}");
            }
        }
    }
}
