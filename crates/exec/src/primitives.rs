//! Vectorized primitives — the tight per-type loops everything compiles to.
//!
//! Each primitive exists in a *full* variant (process positions `0..n`) and
//! a *selective* variant (process only selection-vector positions), exactly
//! the X100 scheme. They are written as generic functions; monomorphization
//! yields the same specialized machine loops as X100's generated primitives.
//!
//! The arithmetic kernels implement the three error-checking strategies the
//! paper alludes to ("special algorithms in the kernel had to be devised"):
//!
//! * [`ArithCheck::Unchecked`] — wrapping, research-prototype behaviour;
//! * [`ArithCheck::Naive`] — test every single operation and bail out
//!   immediately (one branch per value);
//! * [`ArithCheck::Lazy`] — compute the whole vector with wrapping ops while
//!   OR-accumulating an overflow flag, then check the flag **once per
//!   vector**; only when it fires is the slow path run to localize the
//!   error. On clean data this costs almost nothing over unchecked.

use vw_common::{Result, SelVec, VwError};

/// Re-export of the engine-wide checking strategy.
pub use vw_common::config::CheckMode as ArithCheck;

// ---------------------------------------------------------------------------
// map primitives
// ---------------------------------------------------------------------------

/// Full binary map: `out[i] = f(a[i], b[i])` for `i in 0..n`.
#[inline]
pub fn map_bin_full<T: Copy, U: Copy, R>(
    a: &[T],
    b: &[U],
    out: &mut Vec<R>,
    mut f: impl FnMut(T, U) -> R,
) {
    debug_assert_eq!(a.len(), b.len());
    out.clear();
    out.extend(a.iter().zip(b).map(|(&x, &y)| f(x, y)));
}

/// Resize `out` to `n` lanes without initializing anything already there:
/// shrink or grow once, never rewrite surviving lanes. New lanes (growth
/// only) get `R::default()`; lanes carried over keep whatever stale value
/// the previous vector held.
#[inline]
pub(crate) fn resize_uninit<R: Default + Clone>(out: &mut Vec<R>, n: usize) {
    if out.len() != n {
        out.resize(n, R::default());
    }
}

/// Selective binary map: `out[p] = f(a[p], b[p])` for selected `p`.
///
/// **Unselected lanes are garbage** (stale values from earlier batches or
/// defaults) — exactly X100's selective-primitive contract. Consumers must
/// read the output only through the same selection vector. In exchange the
/// kernel touches `sel.len()` lanes, not `a.len()`: no per-call zero-fill.
#[inline]
pub fn map_bin_sel<T: Copy, U: Copy, R: Default + Clone>(
    a: &[T],
    b: &[U],
    sel: &SelVec,
    out: &mut Vec<R>,
    mut f: impl FnMut(T, U) -> R,
) {
    resize_uninit(out, a.len());
    for p in sel.iter() {
        out[p] = f(a[p], b[p]);
    }
}

/// Full unary map.
#[inline]
pub fn map_un_full<T: Copy, R>(a: &[T], out: &mut Vec<R>, mut f: impl FnMut(T) -> R) {
    out.clear();
    out.extend(a.iter().map(|&x| f(x)));
}

/// Selective unary map. **Unselected output lanes are garbage** — see
/// [`map_bin_sel`].
#[inline]
pub fn map_un_sel<T: Copy, R: Default + Clone>(
    a: &[T],
    sel: &SelVec,
    out: &mut Vec<R>,
    mut f: impl FnMut(T) -> R,
) {
    resize_uninit(out, a.len());
    for p in sel.iter() {
        out[p] = f(a[p]);
    }
}

// ---------------------------------------------------------------------------
// select primitives (predicates producing selection vectors)
// ---------------------------------------------------------------------------

/// Full select: emit positions where `pred(a[i], b[i])`.
#[inline]
pub fn select_bin_full<T: Copy, U: Copy>(
    a: &[T],
    b: &[U],
    out: &mut SelVec,
    mut pred: impl FnMut(T, U) -> bool,
) {
    debug_assert_eq!(a.len(), b.len());
    out.clear();
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        if pred(x, y) {
            out.push(i as u32);
        }
    }
}

/// Selective select: emit selected positions where the predicate holds.
#[inline]
pub fn select_bin_sel<T: Copy, U: Copy>(
    a: &[T],
    b: &[U],
    sel: &SelVec,
    out: &mut SelVec,
    mut pred: impl FnMut(T, U) -> bool,
) {
    out.clear();
    for p in sel.iter() {
        if pred(a[p], b[p]) {
            out.push(p as u32);
        }
    }
}

/// Selective gather-equality: keep lanes `p` of `sel` where
/// `a[p] == b[idx[p]]` under `eq`. The hash-table probe loop uses this to
/// compare a probe key vector against gathered build-side candidate rows;
/// `eq` is monomorphized per type (bit equality for floats, `==` elsewhere).
#[inline]
pub fn select_eq_gather_by<T>(
    a: &[T],
    b: &[T],
    idx: &[u32],
    sel: &SelVec,
    out: &mut SelVec,
    mut eq: impl FnMut(&T, &T) -> bool,
) {
    sel.retain_from(|p| eq(&a[p], &b[idx[p] as usize]), out);
}

/// Run a predicate against the live positions described by `sel`.
#[inline]
pub fn select_by(
    n: usize,
    sel: Option<&SelVec>,
    out: &mut SelVec,
    mut pred: impl FnMut(usize) -> bool,
) {
    out.clear();
    match sel {
        None => {
            for i in 0..n {
                if pred(i) {
                    out.push(i as u32);
                }
            }
        }
        Some(s) => {
            for p in s.iter() {
                if pred(p) {
                    out.push(p as u32);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// checked integer arithmetic
// ---------------------------------------------------------------------------

/// Checked/unchecked i64 binary op kernels.
macro_rules! checked_int_kernel {
    ($name:ident, $wrap:ident, $overflowing:ident, $checked:ident, $opname:literal) => {
        /// Vectorized i64 arithmetic under the chosen checking strategy.
        /// `sel = None` processes all positions. With a selection, unselected
        /// output lanes are garbage (see [`map_bin_sel`]).
        pub fn $name(
            a: &[i64],
            b: &[i64],
            sel: Option<&SelVec>,
            out: &mut Vec<i64>,
            check: ArithCheck,
        ) -> Result<()> {
            debug_assert_eq!(a.len(), b.len());
            match (check, sel) {
                (ArithCheck::Unchecked, None) => {
                    out.clear();
                    out.extend(a.iter().zip(b).map(|(&x, &y)| x.$wrap(y)));
                }
                (ArithCheck::Unchecked, Some(s)) => {
                    resize_uninit(out, a.len());
                    for p in s.iter() {
                        out[p] = a[p].$wrap(b[p]);
                    }
                }
                (ArithCheck::Naive, None) => {
                    out.clear();
                    for (&x, &y) in a.iter().zip(b) {
                        match x.$checked(y) {
                            Some(v) => out.push(v),
                            None => return Err(VwError::Overflow($opname)),
                        }
                    }
                }
                (ArithCheck::Naive, Some(s)) => {
                    resize_uninit(out, a.len());
                    for p in s.iter() {
                        match a[p].$checked(b[p]) {
                            Some(v) => out[p] = v,
                            None => return Err(VwError::Overflow($opname)),
                        }
                    }
                }
                (ArithCheck::Lazy, None) => {
                    out.clear();
                    let mut flag = false;
                    out.extend(a.iter().zip(b).map(|(&x, &y)| {
                        let (v, o) = x.$overflowing(y);
                        flag |= o;
                        v
                    }));
                    if flag {
                        return Err(VwError::Overflow($opname));
                    }
                }
                (ArithCheck::Lazy, Some(s)) => {
                    let mut flag = false;
                    resize_uninit(out, a.len());
                    for p in s.iter() {
                        let (v, o) = a[p].$overflowing(b[p]);
                        flag |= o;
                        out[p] = v;
                    }
                    if flag {
                        return Err(VwError::Overflow($opname));
                    }
                }
            }
            Ok(())
        }
    };
}

checked_int_kernel!(add_i64, wrapping_add, overflowing_add, checked_add, "BIGINT +");
checked_int_kernel!(sub_i64, wrapping_sub, overflowing_sub, checked_sub, "BIGINT -");
checked_int_kernel!(mul_i64, wrapping_mul, overflowing_mul, checked_mul, "BIGINT *");

/// Vectorized i64 division with division-by-zero (and MIN/-1 overflow)
/// detection. The zero test is fused into the loop; under `Lazy` the error
/// flag is still checked only once per vector.
pub fn div_i64(
    a: &[i64],
    b: &[i64],
    sel: Option<&SelVec>,
    out: &mut Vec<i64>,
    check: ArithCheck,
) -> Result<()> {
    let run = |x: i64, y: i64, err: &mut u8| -> i64 {
        if y == 0 {
            *err |= 1;
            0
        } else if x == i64::MIN && y == -1 {
            *err |= 2;
            0
        } else {
            x / y
        }
    };
    let mut err = 0u8;
    match sel {
        None => {
            out.clear();
            if check == ArithCheck::Naive {
                for (&x, &y) in a.iter().zip(b) {
                    let v = run(x, y, &mut err);
                    if err != 0 {
                        return div_err(err);
                    }
                    out.push(v);
                }
            } else {
                out.extend(a.iter().zip(b).map(|(&x, &y)| run(x, y, &mut err)));
            }
        }
        Some(s) => {
            resize_uninit(out, a.len());
            for p in s.iter() {
                out[p] = run(a[p], b[p], &mut err);
                if check == ArithCheck::Naive && err != 0 {
                    return div_err(err);
                }
            }
        }
    }
    if err != 0 && check != ArithCheck::Unchecked {
        return div_err(err);
    }
    Ok(())
}

/// Vectorized i64 modulo with the same error semantics as [`div_i64`].
pub fn rem_i64(
    a: &[i64],
    b: &[i64],
    sel: Option<&SelVec>,
    out: &mut Vec<i64>,
    check: ArithCheck,
) -> Result<()> {
    let mut err = 0u8;
    let run = |x: i64, y: i64, err: &mut u8| -> i64 {
        if y == 0 {
            *err |= 1;
            0
        } else if x == i64::MIN && y == -1 {
            0 // MIN % -1 == 0 mathematically; no overflow
        } else {
            x % y
        }
    };
    match sel {
        None => {
            out.clear();
            out.extend(a.iter().zip(b).map(|(&x, &y)| run(x, y, &mut err)));
        }
        Some(s) => {
            resize_uninit(out, a.len());
            for p in s.iter() {
                out[p] = run(a[p], b[p], &mut err);
            }
        }
    }
    if err != 0 && check != ArithCheck::Unchecked {
        return Err(VwError::DivideByZero);
    }
    Ok(())
}

fn div_err(err: u8) -> Result<()> {
    if err & 1 != 0 {
        Err(VwError::DivideByZero)
    } else {
        Err(VwError::Overflow("BIGINT /"))
    }
}

// ---------------------------------------------------------------------------
// hashing
// ---------------------------------------------------------------------------

/// Hash a column of u64-projected keys into `hashes` (fresh seed).
#[inline]
pub fn hash_start(keys: impl Iterator<Item = u64>, hashes: &mut Vec<u64>) {
    hashes.clear();
    hashes.extend(keys.map(vw_common::hash::hash_u64));
}

/// Combine another key column into existing hashes.
#[inline]
pub fn hash_combine_col(keys: impl Iterator<Item = u64>, hashes: &mut [u64]) {
    for (h, k) in hashes.iter_mut().zip(keys) {
        *h = vw_common::hash::hash_combine(*h, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_full_and_sel() {
        let a = [1i64, 2, 3, 4];
        let b = [10i64, 20, 30, 40];
        let mut out = Vec::new();
        map_bin_full(&a, &b, &mut out, |x, y| x + y);
        assert_eq!(out, vec![11, 22, 33, 44]);
        let sel = SelVec::from_positions(vec![1, 3]);
        map_bin_sel(&a, &b, &sel, &mut out, |x, y| x * y);
        assert_eq!(out[1], 40);
        assert_eq!(out[3], 160);
        // Unselected lanes are garbage (here: stale values from the full
        // map above) — the kernel must not have spent time clearing them.
        assert_eq!(out[0], 11, "unselected lanes keep stale values");
        assert_eq!(out.len(), a.len());
    }

    #[test]
    fn sel_maps_only_touch_selected_lanes() {
        let a = [7i64; 8];
        let mut out = vec![-1i64; 8];
        let sel = SelVec::from_positions(vec![2, 5]);
        map_un_sel(&a, &sel, &mut out, |x| x * 2);
        assert_eq!(out[2], 14);
        assert_eq!(out[5], 14);
        for p in [0usize, 1, 3, 4, 6, 7] {
            assert_eq!(out[p], -1, "lane {p} must be untouched");
        }
    }

    #[test]
    fn select_chains_narrow() {
        let a = [5i64, 10, 15, 20, 25];
        let mut s1 = SelVec::new();
        select_bin_full(&a, &[12i64; 5], &mut s1, |x, y| x > y);
        assert_eq!(s1.as_slice(), &[2, 3, 4]);
        let mut s2 = SelVec::new();
        select_bin_sel(&a, &[22i64; 5], &s1, &mut s2, |x, y| x < y);
        assert_eq!(s2.as_slice(), &[2, 3]);
    }

    #[test]
    fn all_check_modes_agree_on_clean_data() {
        let a: Vec<i64> = (0..1000).collect();
        let b: Vec<i64> = (0..1000).map(|i| i * 3).collect();
        let mut reference = Vec::new();
        add_i64(&a, &b, None, &mut reference, ArithCheck::Unchecked).unwrap();
        for check in [ArithCheck::Naive, ArithCheck::Lazy] {
            let mut out = Vec::new();
            add_i64(&a, &b, None, &mut out, check).unwrap();
            assert_eq!(out, reference);
        }
    }

    #[test]
    fn overflow_detected_by_checked_modes() {
        let a = [i64::MAX, 1];
        let b = [1i64, 1];
        let mut out = Vec::new();
        assert!(add_i64(&a, &b, None, &mut out, ArithCheck::Unchecked).is_ok());
        assert!(matches!(
            add_i64(&a, &b, None, &mut out, ArithCheck::Naive),
            Err(VwError::Overflow(_))
        ));
        assert!(matches!(
            add_i64(&a, &b, None, &mut out, ArithCheck::Lazy),
            Err(VwError::Overflow(_))
        ));
    }

    #[test]
    fn overflow_outside_selection_ignored() {
        let a = [i64::MAX, 1];
        let b = [1i64, 1];
        let sel = SelVec::from_positions(vec![1]);
        let mut out = Vec::new();
        add_i64(&a, &b, Some(&sel), &mut out, ArithCheck::Lazy).unwrap();
        assert_eq!(out[1], 2);
        add_i64(&a, &b, Some(&sel), &mut out, ArithCheck::Naive).unwrap();
    }

    #[test]
    fn division_errors() {
        let mut out = Vec::new();
        assert!(matches!(
            div_i64(&[1], &[0], None, &mut out, ArithCheck::Lazy),
            Err(VwError::DivideByZero)
        ));
        assert!(matches!(
            div_i64(&[i64::MIN], &[-1], None, &mut out, ArithCheck::Naive),
            Err(VwError::Overflow(_))
        ));
        // Unchecked swallows the error (research-prototype mode).
        div_i64(&[1], &[0], None, &mut out, ArithCheck::Unchecked).unwrap();
        assert_eq!(out, vec![0]);
        // MIN % -1 is defined (0).
        rem_i64(&[i64::MIN], &[-1], None, &mut out, ArithCheck::Lazy).unwrap();
        assert_eq!(out, vec![0]);
        assert!(rem_i64(&[5], &[0], None, &mut out, ArithCheck::Lazy).is_err());
    }

    #[test]
    fn mul_sub_kernels() {
        let mut out = Vec::new();
        mul_i64(&[3, -4], &[5, 6], None, &mut out, ArithCheck::Lazy).unwrap();
        assert_eq!(out, vec![15, -24]);
        sub_i64(&[3, -4], &[5, 6], None, &mut out, ArithCheck::Lazy).unwrap();
        assert_eq!(out, vec![-2, -10]);
        assert!(mul_i64(&[i64::MAX], &[2], None, &mut out, ArithCheck::Lazy).is_err());
    }

    #[test]
    fn hash_kernels_deterministic() {
        let mut h1 = Vec::new();
        hash_start([1u64, 2, 3].into_iter(), &mut h1);
        let mut h2 = Vec::new();
        hash_start([1u64, 2, 3].into_iter(), &mut h2);
        assert_eq!(h1, h2);
        hash_combine_col([9u64, 9, 9].into_iter(), &mut h2);
        assert_ne!(h1, h2);
        assert_ne!(h2[0], h2[1]);
    }

    #[test]
    fn select_by_with_and_without_sel() {
        let mut out = SelVec::new();
        select_by(5, None, &mut out, |i| i % 2 == 0);
        assert_eq!(out.as_slice(), &[0, 2, 4]);
        let sel = SelVec::from_positions(vec![1, 2, 3]);
        select_by(5, Some(&sel), &mut out, |i| i % 2 == 0);
        assert_eq!(out.as_slice(), &[2]);
    }
}
