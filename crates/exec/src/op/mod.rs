//! Relational operators of the vectorized kernel.
//!
//! Operators follow the X100 iterator model: `next()` returns a [`Batch`]
//! of up to `vector_size` rows, or `None` at end of stream. All call
//! [`CancelToken::check`](crate::cancel::CancelToken::check) at vector
//! granularity.

pub mod hashagg;
pub mod hashjoin;
pub mod scan;
pub mod setop;
pub mod simple;
pub mod sort;
pub mod xchg;

pub use hashagg::{AggFunc, AggSpec, HashAggregate};
pub use hashjoin::{HashJoin, JoinType};
pub use scan::VectorScan;
pub use setop::{Mode as SetOpMode, SetOp};
pub use simple::{Limit, Project, Select, UnionAll, Values};
pub use sort::{Sort, SortKey, TopN};
pub use xchg::Xchg;

use crate::profile::OpProfile;
use crate::vector::Batch;
use vw_common::{Result, Schema};

/// A vectorized operator.
pub trait Operator: Send {
    /// Output schema.
    fn schema(&self) -> &Schema;
    /// Produce the next batch, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Batch>>;
    /// Operator display name (EXPLAIN / profiling).
    fn name(&self) -> &'static str;
    /// Internal profiling counters, when the operator keeps them (the
    /// hash operators report probe-chain statistics here).
    fn profile(&self) -> Option<&OpProfile> {
        None
    }
    /// Mutable access to the same counters, for compile-time annotations
    /// (the planner stamps its estimated output rows into
    /// [`OpProfile::est_rows`]). `None` exactly when
    /// [`profile`](Operator::profile) is `None`.
    fn profile_mut(&mut self) -> Option<&mut OpProfile> {
        None
    }
}

/// Owned boxed operator.
pub type BoxedOp = Box<dyn Operator>;

/// Drain an operator into a single dense batch (tests, DML, sorts).
pub fn drain(op: &mut dyn Operator) -> Result<Batch> {
    let mut acc: Option<Batch> = None;
    while let Some(b) = op.next()? {
        let b = b.compact();
        match &mut acc {
            None => acc = Some(b),
            Some(a) => {
                for (dst, src) in a.columns.iter_mut().zip(&b.columns) {
                    dst.extend_range(src, 0, src.len());
                }
            }
        }
    }
    Ok(acc.unwrap_or_else(|| Batch::empty(op.schema())))
}
