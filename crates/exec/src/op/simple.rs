//! The small streaming operators: Values, Select, Project, Limit, UnionAll.

use super::{BoxedOp, Operator};
use crate::cancel::CancelToken;
use crate::morsel::BatchPool;
use crate::profile::OpProfile;
use crate::program::{ExprProgram, SelectProgram, VectorPool};
use crate::vector::{Batch, Vector};
use std::time::Instant;
use vw_common::{ColData, Result, Schema, SelVec, TypeId, Value};

/// In-memory row source (VALUES lists, tests, DML pipelines).
pub struct Values {
    schema: Schema,
    rows: Vec<Vec<Value>>,
    pos: usize,
    vector_size: usize,
    cancel: CancelToken,
}

impl Values {
    /// Source yielding `rows` with the given schema.
    pub fn new(
        schema: Schema,
        rows: Vec<Vec<Value>>,
        vector_size: usize,
        cancel: CancelToken,
    ) -> Values {
        Values { schema, rows, pos: 0, vector_size, cancel }
    }
}

impl Operator for Values {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "Values"
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        self.cancel.check()?;
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let end = (self.pos + self.vector_size).min(self.rows.len());
        let mut columns: Vec<Vector> = self
            .schema
            .fields
            .iter()
            .map(|f| Vector::new(ColData::with_capacity(f.ty, end - self.pos)))
            .collect();
        for row in &self.rows[self.pos..end] {
            for (c, v) in columns.iter_mut().zip(row) {
                c.push(v)?;
            }
        }
        self.pos = end;
        Ok(Some(Batch::new(columns)))
    }
}

/// Filter: attaches/narrows the selection vector, no copying. The
/// predicate is a [`SelectProgram`] compiled once at plan build; per batch
/// it chains selective kernels through the pool's scratch.
pub struct Select {
    input: BoxedOp,
    predicate: SelectProgram,
    /// Columns the predicate's boolean sub-programs read: encoded inputs
    /// are flattened here before the run. Typed compare / LIKE steps are
    /// encoding-aware and keep their columns coded.
    flat_cols: Vec<usize>,
    pool: VectorPool,
    batch_pool: Option<BatchPool>,
    profile: OpProfile,
    cancel: CancelToken,
}

impl Select {
    /// Filter `input` by the compiled `predicate`.
    pub fn new(input: BoxedOp, predicate: SelectProgram, cancel: CancelToken) -> Select {
        let flat_cols = predicate.flat_cols();
        Select {
            input,
            predicate,
            flat_cols,
            pool: VectorPool::new(),
            batch_pool: None,
            profile: OpProfile::new("Select"),
            cancel,
        }
    }

    /// Join the pipeline's batch free-list: selection vectors handed
    /// downstream cycle back through it (a recycled batch stashes its
    /// `sel`), and fully-filtered batches are recycled instead of dropped.
    pub fn with_batch_pool(mut self, pool: BatchPool) -> Select {
        self.batch_pool = Some(pool);
        self
    }
}

impl Operator for Select {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn name(&self) -> &'static str {
        "Select"
    }

    fn profile(&self) -> Option<&OpProfile> {
        Some(&self.profile)
    }

    fn profile_mut(&mut self) -> Option<&mut OpProfile> {
        Some(&mut self.profile)
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        loop {
            self.cancel.check()?;
            let Some(mut batch) = self.input.next()? else {
                return Ok(None);
            };
            let t0 = Instant::now();
            // Pull selections the downstream consumer recycled back into
            // the expression pool, so the ones we hand out keep cycling.
            if let Some(bp) = &self.batch_pool {
                while let Some(s) = bp.take_sel() {
                    self.pool.put_sel(s);
                }
            }
            self.profile.record_enc_batch(batch.columns.iter().any(|c| c.is_encoded()));
            for &c in &self.flat_cols {
                batch.columns[c].ensure_flat();
            }
            let sel = self.predicate.run(&mut self.pool, &batch)?;
            self.pool.recycle();
            let (runs, instrs) = self.pool.take_counters();
            self.profile.record_expr(runs, instrs);
            self.profile.record_enc_skipped(self.pool.take_enc_skipped());
            if sel.is_empty() {
                self.pool.put_sel(sel);
                if let Some(bp) = &self.batch_pool {
                    bp.recycle(batch); // fully filtered: give the batch back
                }
                self.profile.record_phase(t0.elapsed());
                continue; // fetch the next vector
            }
            batch.sel = Some(sel);
            self.profile.record(batch.rows(), t0.elapsed());
            return Ok(Some(batch));
        }
    }
}

/// Projection: runs compiled programs and emits dense vectors. All
/// intermediate vectors live in the pool; only the output columns handed
/// downstream are materialized.
pub struct Project {
    input: BoxedOp,
    programs: Vec<ExprProgram>,
    schema: Schema,
    out_types: Vec<TypeId>,
    /// Columns read by non-trivial programs: encoded inputs are flattened
    /// before evaluation. Bare column references pass encoded vectors
    /// through untouched (gather/detach are encoding-aware).
    flat_cols: Vec<usize>,
    pool: VectorPool,
    batch_pool: Option<BatchPool>,
    profile: OpProfile,
    cancel: CancelToken,
}

impl Project {
    /// Map `input` through the compiled `programs`; `schema` names the
    /// outputs.
    pub fn new(
        input: BoxedOp,
        programs: Vec<ExprProgram>,
        schema: Schema,
        cancel: CancelToken,
    ) -> Project {
        debug_assert_eq!(programs.len(), schema.len());
        let out_types = programs.iter().map(|p| p.type_id()).collect();
        let mut flat_cols: Vec<usize> = programs
            .iter()
            .filter(|p| !p.is_bare_col())
            .flat_map(|p| p.cols_used().iter().copied())
            .collect();
        flat_cols.sort_unstable();
        flat_cols.dedup();
        Project {
            input,
            programs,
            schema,
            out_types,
            flat_cols,
            pool: VectorPool::new(),
            batch_pool: None,
            profile: OpProfile::new("Project"),
            cancel,
        }
    }

    /// Join the pipeline's batch free-list: output batches lease recycled
    /// buffers (swapped back into the expression pool's slots), and the
    /// consumed input batch is recycled once its columns were gathered.
    pub fn with_batch_pool(mut self, pool: BatchPool) -> Project {
        self.batch_pool = Some(pool);
        self
    }
}

impl Operator for Project {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "Project"
    }

    fn profile(&self) -> Option<&OpProfile> {
        Some(&self.profile)
    }

    fn profile_mut(&mut self) -> Option<&mut OpProfile> {
        Some(&mut self.profile)
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        self.cancel.check()?;
        let Some(mut batch) = self.input.next()? else {
            return Ok(None);
        };
        let t0 = Instant::now();
        self.profile.record_enc_batch(batch.columns.iter().any(|c| c.is_encoded()));
        for &c in &self.flat_cols {
            batch.columns[c].ensure_flat();
        }
        // Lease the output batch: recycled buffers feed the expression
        // pool's slots through `detach_into`, so steady-state projection
        // allocates nothing even though ownership moves downstream.
        let mut out = BatchPool::lease_or_new(
            self.batch_pool.as_ref(),
            &self.out_types,
            0,
            &mut self.profile,
        );
        for (prog, dst) in self.programs.iter().zip(&mut out.columns) {
            let vr = prog.run(&mut self.pool, &batch)?;
            match &batch.sel {
                // Selection: compact to dense output lanes.
                Some(sel) => self.pool.get(&batch, vr).gather_into(sel, dst),
                // Dense input: swap the register buffer downstream.
                None => self.pool.detach_into(&batch, vr, dst),
            }
        }
        self.pool.recycle();
        let (runs, instrs) = self.pool.take_counters();
        self.profile.record_expr(runs, instrs);
        if let Some(bp) = &self.batch_pool {
            bp.recycle(batch); // input consumed: back to the free list
        }
        self.profile.record(out.rows(), t0.elapsed());
        Ok(Some(out))
    }
}

/// LIMIT (with optional OFFSET) over live rows.
pub struct Limit {
    input: BoxedOp,
    remaining_skip: usize,
    remaining_take: usize,
    cancel: CancelToken,
}

impl Limit {
    /// Take `limit` rows after skipping `offset`.
    pub fn new(input: BoxedOp, offset: usize, limit: usize, cancel: CancelToken) -> Limit {
        Limit { input, remaining_skip: offset, remaining_take: limit, cancel }
    }
}

impl Operator for Limit {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn name(&self) -> &'static str {
        "Limit"
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        loop {
            self.cancel.check()?;
            if self.remaining_take == 0 {
                return Ok(None);
            }
            let Some(batch) = self.input.next()? else {
                return Ok(None);
            };
            let live: Vec<u32> = batch.live().map(|p| p as u32).collect();
            if live.len() <= self.remaining_skip {
                self.remaining_skip -= live.len();
                continue;
            }
            let start = self.remaining_skip;
            self.remaining_skip = 0;
            let take = (live.len() - start).min(self.remaining_take);
            self.remaining_take -= take;
            let sel = SelVec::from_positions(live[start..start + take].to_vec());
            let mut out = batch;
            out.sel = Some(sel);
            return Ok(Some(out));
        }
    }
}

/// Concatenation of multiple same-schema inputs.
pub struct UnionAll {
    inputs: Vec<BoxedOp>,
    current: usize,
    cancel: CancelToken,
}

impl UnionAll {
    /// Union of `inputs` (all must share a schema).
    pub fn new(inputs: Vec<BoxedOp>, cancel: CancelToken) -> UnionAll {
        assert!(!inputs.is_empty());
        UnionAll { inputs, current: 0, cancel }
    }
}

impl Operator for UnionAll {
    fn schema(&self) -> &Schema {
        self.inputs[0].schema()
    }

    fn name(&self) -> &'static str {
        "UnionAll"
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        loop {
            self.cancel.check()?;
            if self.current >= self.inputs.len() {
                return Ok(None);
            }
            match self.inputs[self.current].next()? {
                Some(b) => return Ok(Some(b)),
                None => self.current += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, ExprCtx, PhysExpr};
    use crate::op::drain;
    use vw_common::{Field, TypeId, VwError};

    fn int_schema() -> Schema {
        Schema::new(vec![Field::not_null("v", TypeId::I64)]).unwrap()
    }

    fn int_source(vals: Vec<i64>, vec_size: usize) -> BoxedOp {
        let rows = vals.into_iter().map(|v| vec![Value::I64(v)]).collect();
        Box::new(Values::new(int_schema(), rows, vec_size, CancelToken::new()))
    }

    fn gt(threshold: i64) -> SelectProgram {
        let e = PhysExpr::Cmp {
            op: CmpOp::Gt,
            lhs: Box::new(PhysExpr::ColRef(0, TypeId::I64)),
            rhs: Box::new(PhysExpr::Const(Value::I64(threshold), TypeId::I64)),
        };
        SelectProgram::compile(&e, &ExprCtx::default())
    }

    #[test]
    fn values_batches_by_vector_size() {
        let mut op = int_source((0..10).collect(), 4);
        let sizes: Vec<usize> =
            std::iter::from_fn(|| op.next().unwrap()).map(|b| b.rows()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn select_sets_selection() {
        let src = int_source((0..100).collect(), 32);
        let mut sel = Select::new(src, gt(94), CancelToken::new());
        let out = drain(&mut sel).unwrap();
        assert_eq!(out.rows(), 5);
        assert_eq!(out.row_values(0), vec![Value::I64(95)]);
    }

    #[test]
    fn select_skips_empty_vectors() {
        let src = int_source((0..100).collect(), 10);
        let mut sel = Select::new(src, gt(98), CancelToken::new());
        // Only the last vector has matches; the operator must loop past the
        // empty ones rather than returning empty batches.
        let b = sel.next().unwrap().unwrap();
        assert_eq!(b.rows(), 1);
        assert!(sel.next().unwrap().is_none());
    }

    #[test]
    fn project_compacts_selection() {
        let src = int_source((0..20).collect(), 8);
        let sel = Select::new(src, gt(15), CancelToken::new());
        let double = PhysExpr::Arith {
            op: crate::expr::BinOp::Mul,
            lhs: Box::new(PhysExpr::ColRef(0, TypeId::I64)),
            rhs: Box::new(PhysExpr::Const(Value::I64(2), TypeId::I64)),
            ty: TypeId::I64,
        };
        let mut proj = Project::new(
            Box::new(sel),
            vec![ExprProgram::compile(&double, &ExprCtx::default())],
            int_schema(),
            CancelToken::new(),
        );
        let out = drain(&mut proj).unwrap();
        assert_eq!(out.rows(), 4);
        assert!(out.sel.is_none());
        assert_eq!(out.row_values(0), vec![Value::I64(32)]);
    }

    #[test]
    fn limit_with_offset_across_batches() {
        let src = int_source((0..30).collect(), 7);
        let mut lim = Limit::new(src, 10, 12, CancelToken::new());
        let out = drain(&mut lim).unwrap();
        assert_eq!(out.rows(), 12);
        assert_eq!(out.row_values(0), vec![Value::I64(10)]);
        assert_eq!(out.row_values(11), vec![Value::I64(21)]);
    }

    #[test]
    fn limit_zero_and_overrun() {
        let src = int_source((0..5).collect(), 2);
        let mut lim = Limit::new(src, 0, 0, CancelToken::new());
        assert!(lim.next().unwrap().is_none());
        let src = int_source((0..5).collect(), 2);
        let mut lim = Limit::new(src, 3, 100, CancelToken::new());
        assert_eq!(drain(&mut lim).unwrap().rows(), 2);
    }

    #[test]
    fn union_all_concatenates() {
        let a = int_source(vec![1, 2], 8);
        let b = int_source(vec![3], 8);
        let c = int_source(vec![], 8);
        let mut u = UnionAll::new(vec![a, b, c], CancelToken::new());
        let out = drain(&mut u).unwrap();
        assert_eq!(out.rows(), 3);
    }

    #[test]
    fn cancellation_stops_pipeline() {
        let cancel = CancelToken::new();
        let src = int_source((0..1000).collect(), 16);
        let mut sel = Select::new(src, gt(-1), cancel.clone());
        sel.next().unwrap().unwrap();
        cancel.cancel();
        assert!(matches!(sel.next(), Err(VwError::Cancelled)));
    }
}
