//! The vectorized table scan: compressed packs → cache-resident vectors,
//! with PDT deltas merged on the fly (MergeScan of the PDT paper).
//!
//! The scan walks a [`MergeItem`] stream describing the visible image:
//! stable runs are served by decompressing pack chunks and memcpy-ing
//! ranges; modified rows overlay their new column values; inserted rows are
//! appended from the delta store. Merge cost is therefore proportional to
//! the *delta count*, not the table size — the property benchmark C4
//! verifies.
//!
//! Work arrives in *morsels*: the scan repeatedly claims the next
//! `morsel_rows`-sized slice of the image from a shared
//! [`MorselSource`] dispenser (see `crate::morsel`). A serial scan owns a
//! private single-consumer dispenser; the scan clones of one exchange
//! fragment share one, so a slow worker claims fewer morsels instead of
//! stranding a pre-assigned static range — the replacement for the old
//! plan-time `partition_items` splitting. Output batches lease from the
//! pipeline's [`BatchPool`] when one is attached, so a steady-state scan
//! reuses the buffers its consumer recycled instead of allocating.

use super::Operator;
use crate::cancel::CancelToken;
use crate::morsel::{BatchPool, MorselSource};
use crate::profile::OpProfile;
use crate::vector::Batch;
use std::sync::Arc;
use std::time::Instant;
use vw_common::{Result, Schema, TypeId, Value, VwError};
use vw_pdt::MergeItem;
use vw_storage::pack::EncodedChunk;
use vw_storage::{BufferPool, ScanRange, TableStorage};

/// Decoded chunks of one pack, in projected-column order. With
/// `compressed_exec` on, PDICT/RLE chunks keep their encoding
/// ([`EncodedChunk`]) and flow into batches still coded; off, every chunk
/// is [`EncodedChunk::Flat`] and the emit path is byte-identical to the
/// pre-compressed-execution scan.
type DecodedPack = Vec<EncodedChunk>;

/// Scan of one table image, pulling work from a morsel dispenser.
pub struct VectorScan {
    table: Arc<TableStorage>,
    pool: Arc<BufferPool>,
    columns: Vec<usize>,
    schema: Schema,
    out_types: Vec<TypeId>,
    source: Arc<MorselSource>,
    consumer: usize,
    /// Items of the currently claimed morsel (buffer reused per claim).
    morsel: Vec<MergeItem>,
    item_idx: usize,
    item_off: u64,
    cur_pack: Option<(usize, DecodedPack)>,
    vector_size: usize,
    batch_pool: Option<BatchPool>,
    compressed_exec: bool,
    profile: OpProfile,
    cancel: CancelToken,
}

impl VectorScan {
    /// Scan `columns` of `table` over the image described by `items`,
    /// through a private single-claim dispenser (serial scans; exchange
    /// fragments use [`VectorScan::with_source`] to share one).
    pub fn new(
        table: Arc<TableStorage>,
        pool: Arc<BufferPool>,
        columns: Vec<usize>,
        items: Vec<MergeItem>,
        vector_size: usize,
        cancel: CancelToken,
    ) -> VectorScan {
        let source = MorselSource::new(items, usize::MAX, 1);
        VectorScan::with_source(table, pool, columns, source, 0, vector_size, cancel)
    }

    /// Scan `columns` of `table`, claiming morsels from `source` as
    /// consumer `consumer` (the worker index of an exchange fragment).
    pub fn with_source(
        table: Arc<TableStorage>,
        pool: Arc<BufferPool>,
        columns: Vec<usize>,
        source: Arc<MorselSource>,
        consumer: usize,
        vector_size: usize,
        cancel: CancelToken,
    ) -> VectorScan {
        let schema = table.schema().project(&columns);
        let out_types = schema.fields.iter().map(|f| f.ty).collect();
        VectorScan {
            table,
            pool,
            columns,
            schema,
            out_types,
            source,
            consumer,
            morsel: Vec::new(),
            item_idx: 0,
            item_off: 0,
            cur_pack: None,
            vector_size,
            batch_pool: None,
            compressed_exec: false,
            profile: OpProfile::new("Scan"),
            cancel,
        }
    }

    /// Lease output batches from (and let consumers recycle into) `pool`.
    pub fn with_batch_pool(mut self, pool: BatchPool) -> VectorScan {
        self.batch_pool = Some(pool);
        self
    }

    /// Hand encoded chunks (dict codes, RLE run sidecars) straight into
    /// output batches instead of inflating at the scan boundary
    /// (`SET compressed_exec`).
    pub fn with_compressed_exec(mut self, on: bool) -> VectorScan {
        self.compressed_exec = on;
        self
    }

    /// Items for a plain scan with no pending deltas.
    pub fn stable_items(n_rows: u64) -> Vec<MergeItem> {
        if n_rows == 0 {
            Vec::new()
        } else {
            vec![MergeItem::Stable { sid: 0, len: n_rows }]
        }
    }

    /// Items from MinMax-pruned ranges (delta-free tables only).
    pub fn items_from_ranges(ranges: &[ScanRange]) -> Vec<MergeItem> {
        ranges
            .iter()
            .map(|r| MergeItem::Stable { sid: r.row_start, len: r.n_rows as u64 })
            .collect()
    }

    /// Ensure the current morsel has an unserved item; claims the next
    /// morsel when the current one is drained. `false` = image exhausted.
    fn ensure_morsel(&mut self) -> bool {
        loop {
            if self.item_idx < self.morsel.len() {
                return true;
            }
            if !self.source.claim_into(self.consumer, &mut self.morsel) {
                return false;
            }
            self.profile.record_morsel();
            self.item_idx = 0;
            self.item_off = 0;
        }
    }

    fn pack_of_sid(&self, sid: u64) -> Result<(usize, usize)> {
        // Binary search over pack row ranges.
        let n = self.table.n_packs();
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let m = self.table.pack_meta(mid);
            if sid < m.row_start {
                hi = mid;
            } else if sid >= m.row_start + m.n_rows as u64 {
                lo = mid + 1;
            } else {
                return Ok((mid, (sid - m.row_start) as usize));
            }
        }
        Err(VwError::Storage(format!("sid {sid} beyond stable storage")))
    }

    fn load_pack(&mut self, pack_idx: usize) -> Result<()> {
        if self.cur_pack.as_ref().map(|(i, _)| *i) != Some(pack_idx) {
            let retries_before = self.pool.disk().stats().io_retries;
            let chunks = if self.compressed_exec {
                self.table.read_pack_encoded(&self.pool, pack_idx, &self.columns)?
            } else {
                self.table
                    .read_pack(&self.pool, pack_idx, &self.columns)?
                    .into_iter()
                    .map(|(data, nulls)| EncodedChunk::Flat(data, nulls))
                    .collect()
            };
            let retries_after = self.pool.disk().stats().io_retries;
            self.profile.record_io_retries(retries_after - retries_before);
            self.cur_pack = Some((pack_idx, chunks));
        }
        Ok(())
    }

    /// Copy `take` stable rows starting at `sid` into `out`.
    ///
    /// Extends straight out of the decoded pack chunks — no intermediate
    /// clone of the pack columns (a delta-heavy image visits this once per
    /// merge item, so a per-call pack clone would be quadratic). Encoded
    /// chunks stay encoded when the destination vector can absorb them
    /// (see `Vector::extend_dict_range` / `Vector::extend_rle_range`).
    fn emit_stable(&mut self, sid: u64, take: usize, out: &mut Batch) -> Result<()> {
        let (pack_idx, off) = self.pack_of_sid(sid)?;
        self.load_pack(pack_idx)?;
        let (_, chunks) = self.cur_pack.as_ref().expect("just loaded");
        for (o, chunk) in out.columns.iter_mut().zip(chunks) {
            match chunk {
                EncodedChunk::Flat(data, nulls) => {
                    o.ensure_flat(); // previous pack may have left this coded
                    let before = o.data.len();
                    o.data.extend_from_range(data, off, off + take);
                    match (&mut o.nulls, nulls) {
                        (Some(m), Some(src)) => m.extend_from_slice(&src[off..off + take]),
                        (Some(m), None) => m.extend(std::iter::repeat_n(false, take)),
                        (None, Some(src)) => {
                            if src[off..off + take].iter().any(|&b| b) {
                                let mut m = vec![false; before];
                                m.extend_from_slice(&src[off..off + take]);
                                o.nulls = Some(m);
                            }
                        }
                        (None, None) => {}
                    }
                }
                EncodedChunk::Dict { codes, dict, nulls } => {
                    o.extend_dict_range(codes, dict, nulls.as_deref(), off, off + take);
                }
                EncodedChunk::Rle { data, runs, nulls } => {
                    o.extend_rle_range(data, runs, nulls.as_deref(), off, off + take);
                }
            }
        }
        Ok(())
    }
}

impl Operator for VectorScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "Scan"
    }

    fn profile(&self) -> Option<&OpProfile> {
        Some(&self.profile)
    }

    fn profile_mut(&mut self) -> Option<&mut OpProfile> {
        Some(&mut self.profile)
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        self.cancel.check()?;
        if !self.ensure_morsel() {
            return Ok(None);
        }
        let t0 = Instant::now();
        let mut out = BatchPool::lease_or_new(
            self.batch_pool.as_ref(),
            &self.out_types,
            self.vector_size,
            &mut self.profile,
        );
        let mut filled = 0usize;
        while filled < self.vector_size {
            if self.item_idx >= self.morsel.len() && !self.ensure_morsel() {
                break;
            }
            let item = self.morsel[self.item_idx].clone();
            match item {
                MergeItem::Stable { sid, len } => {
                    let sid0 = sid + self.item_off;
                    let remaining = (len - self.item_off) as usize;
                    let (pack_idx, off) = self.pack_of_sid(sid0)?;
                    let pack_rows = self.table.pack_meta(pack_idx).n_rows;
                    let take = remaining.min(pack_rows - off).min(self.vector_size - filled);
                    self.emit_stable(sid0, take, &mut out)?;
                    filled += take;
                    self.item_off += take as u64;
                    if self.item_off == len {
                        self.item_idx += 1;
                        self.item_off = 0;
                    }
                }
                MergeItem::StableMod { sid, mods } => {
                    self.emit_stable(sid, 1, &mut out)?;
                    let pos = filled;
                    for (col, val) in mods.iter() {
                        if let Some(slot) = self.columns.iter().position(|c| c == col) {
                            out.columns[slot].set(pos, val)?;
                        }
                    }
                    filled += 1;
                    self.item_idx += 1;
                    self.item_off = 0;
                }
                MergeItem::Insert { row } => {
                    for (slot, &col) in self.columns.iter().enumerate() {
                        let v = row.get(col).cloned().unwrap_or(Value::Null);
                        out.columns[slot].push(&v)?;
                    }
                    filled += 1;
                    self.item_idx += 1;
                    self.item_off = 0;
                }
            }
        }
        if filled == 0 {
            if let Some(bp) = &self.batch_pool {
                bp.recycle(out);
            }
            return Ok(None);
        }
        self.profile.record(filled, t0.elapsed());
        self.profile.record_enc_batch(out.columns.iter().any(|c| c.is_encoded()));
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::drain;
    use std::sync::Arc;
    use vw_common::{ColData, Field, TypeId};
    use vw_storage::{Layout, SimulatedDisk};

    fn setup(n: usize, pack: usize) -> (Arc<TableStorage>, Arc<BufferPool>) {
        let disk = SimulatedDisk::instant();
        let pool = BufferPool::new(disk.clone(), 16 << 20);
        let schema = Schema::new(vec![
            Field::not_null("id", TypeId::I64),
            Field::nullable("name", TypeId::Str),
        ])
        .unwrap();
        let mut t = TableStorage::new(disk, schema, Layout::Dsm);
        let ids = ColData::I64((0..n as i64).collect());
        let names = ColData::Str((0..n).map(|i| format!("row{i}")).collect());
        let nulls: Vec<bool> = (0..n).map(|i| i % 7 == 0).collect();
        t.append_columns(&[ids, names], &[None, Some(nulls)], pack).unwrap();
        (Arc::new(t), pool)
    }

    fn scan(
        t: &Arc<TableStorage>,
        pool: &Arc<BufferPool>,
        cols: Vec<usize>,
        items: Vec<MergeItem>,
        vec_size: usize,
    ) -> VectorScan {
        VectorScan::new(t.clone(), pool.clone(), cols, items, vec_size, CancelToken::new())
    }

    #[test]
    fn full_scan_roundtrip() {
        let (t, pool) = setup(1000, 128);
        let items = VectorScan::stable_items(1000);
        let mut s = scan(&t, &pool, vec![0, 1], items, 100);
        let out = drain(&mut s).unwrap();
        assert_eq!(out.rows(), 1000);
        assert_eq!(out.row_values(500)[0], Value::I64(500));
        assert_eq!(out.row_values(7)[1], Value::Null, "null mask preserved");
        assert_eq!(out.row_values(8)[1], Value::Str("row8".into()));
    }

    #[test]
    fn projection_reads_single_column() {
        let (t, pool) = setup(256, 64);
        let mut s = scan(&t, &pool, vec![1], VectorScan::stable_items(256), 64);
        let out = drain(&mut s).unwrap();
        assert_eq!(out.width(), 1);
        assert_eq!(out.rows(), 256);
    }

    #[test]
    fn vector_size_respected_across_pack_boundaries() {
        let (t, pool) = setup(250, 64);
        let mut s = scan(&t, &pool, vec![0], VectorScan::stable_items(250), 100);
        let mut sizes = Vec::new();
        while let Some(b) = s.next().unwrap() {
            sizes.push(b.rows());
        }
        assert_eq!(sizes.iter().sum::<usize>(), 250);
        assert!(sizes[..sizes.len() - 1].iter().all(|&s| s == 100));
    }

    #[test]
    fn batches_stay_full_across_morsel_boundaries() {
        // Morsels of 64 rows with 100-row vectors: batches keep filling
        // across claim boundaries, so every batch but the last is full.
        let (t, pool) = setup(1000, 128);
        let source = MorselSource::new(VectorScan::stable_items(1000), 64, 1);
        let mut s = VectorScan::with_source(t, pool, vec![0], source, 0, 100, CancelToken::new());
        let mut sizes = Vec::new();
        while let Some(b) = s.next().unwrap() {
            sizes.push(b.rows());
        }
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        assert!(sizes[..sizes.len() - 1].iter().all(|&s| s == 100), "{sizes:?}");
        let p = Operator::profile(&s).unwrap();
        assert_eq!(p.morsels, 1000_u64.div_ceil(64), "one claim per 64-row morsel");
    }

    #[test]
    fn shared_source_scans_cover_image_disjointly() {
        let (t, pool) = setup(1000, 128);
        let source = MorselSource::new(VectorScan::stable_items(1000), 96, 3);
        let mut ids: Vec<i64> = Vec::new();
        for consumer in 0..3 {
            let mut s = VectorScan::with_source(
                t.clone(),
                pool.clone(),
                vec![0],
                source.clone(),
                consumer,
                64,
                CancelToken::new(),
            );
            let out = drain(&mut s).unwrap();
            for i in 0..out.rows() {
                match out.row_values(i)[0] {
                    Value::I64(v) => ids.push(v),
                    _ => panic!(),
                }
            }
        }
        ids.sort_unstable();
        assert_eq!(ids, (0..1000).collect::<Vec<_>>(), "disjoint cover of the image");
    }

    #[test]
    fn pooled_scan_reuses_recycled_batches() {
        let (t, pool) = setup(1000, 1024);
        let bp = BatchPool::new();
        let mut s = scan(&t, &pool, vec![0, 1], VectorScan::stable_items(1000), 100)
            .with_batch_pool(bp.clone());
        let mut rows = 0;
        while let Some(b) = s.next().unwrap() {
            rows += b.rows();
            bp.recycle(b); // the consumer's side of the protocol
        }
        assert_eq!(rows, 1000);
        let p = Operator::profile(&s).unwrap();
        assert_eq!(p.batch_pool_misses, 1, "only the first lease allocates");
        assert!(p.batch_pool_hits >= 9, "steady-state leases hit: {p:?}");
    }

    #[test]
    fn merge_items_with_deltas() {
        let (t, pool) = setup(100, 32);
        let items = vec![
            MergeItem::Stable { sid: 0, len: 3 },
            MergeItem::Insert { row: Arc::new(vec![Value::I64(999), Value::Str("ins".into())]) },
            MergeItem::StableMod {
                sid: 50,
                mods: Arc::new(vec![(1, Value::Str("patched".into()))]),
            },
            MergeItem::Stable { sid: 98, len: 2 },
        ];
        let mut s = scan(&t, &pool, vec![0, 1], items, 10);
        let out = drain(&mut s).unwrap();
        assert_eq!(out.rows(), 7);
        assert_eq!(out.row_values(3), vec![Value::I64(999), Value::Str("ins".into())]);
        assert_eq!(out.row_values(4), vec![Value::I64(50), Value::Str("patched".into())]);
        assert_eq!(out.row_values(5)[0], Value::I64(98));
    }

    #[test]
    fn modification_to_null_and_unprojected_column() {
        let (t, pool) = setup(10, 10);
        let items = vec![MergeItem::StableMod {
            sid: 1,
            mods: Arc::new(vec![(1, Value::Null), (0, Value::I64(-5))]),
        }];
        // Project only column 1: the mod on column 0 must be ignored.
        let mut s = scan(&t, &pool, vec![1], items.clone(), 4);
        let out = drain(&mut s).unwrap();
        assert_eq!(out.row_values(0), vec![Value::Null]);
        let mut s = scan(&t, &pool, vec![0], items, 4);
        let out = drain(&mut s).unwrap();
        assert_eq!(out.row_values(0), vec![Value::I64(-5)]);
    }

    #[test]
    fn pruned_ranges_scan() {
        let (t, pool) = setup(1000, 100);
        let ranges = t.prune(0, Some(&Value::I64(350)), Some(&Value::I64(449)));
        let items = VectorScan::items_from_ranges(&ranges);
        let mut s = scan(&t, &pool, vec![0], items, 128);
        let out = drain(&mut s).unwrap();
        assert_eq!(out.rows(), 200, "two packs survive pruning");
        assert_eq!(out.row_values(0)[0], Value::I64(300));
    }

    #[test]
    fn compressed_scan_emits_dict_vectors_and_matches_flat() {
        // Low-cardinality strings come back dictionary-coded when the knob is
        // on, byte-identical to the inflated scan when it is off.
        let disk = SimulatedDisk::instant();
        let pool = BufferPool::new(disk.clone(), 16 << 20);
        let schema = Schema::new(vec![
            Field::not_null("id", TypeId::I64),
            Field::nullable("flag", TypeId::Str),
        ])
        .unwrap();
        let mut t = TableStorage::new(disk, schema, Layout::Dsm);
        let n = 700;
        let ids = ColData::I64((0..n as i64).collect());
        let flags = ColData::Str((0..n).map(|i| format!("F{:02}", i % 9)).collect());
        let nulls: Vec<bool> = (0..n).map(|i| i % 11 == 0).collect();
        t.append_columns(&[ids, flags], &[None, Some(nulls)], 256).unwrap();
        let t = Arc::new(t);

        let mut enc_scan = scan(&t, &pool, vec![0, 1], VectorScan::stable_items(n as u64), 100)
            .with_compressed_exec(true);
        let mut saw_encoded = false;
        let mut enc_rows = Vec::new();
        while let Some(b) = enc_scan.next().unwrap() {
            saw_encoded |= b.columns[1].is_encoded();
            for i in 0..b.rows() {
                enc_rows.push(b.row_values(i));
            }
        }
        assert!(saw_encoded, "string column should arrive dictionary-coded");
        let p = Operator::profile(&enc_scan).unwrap();
        assert!(p.enc_batches > 0, "profile counts encoded batches: {p:?}");

        let mut flat_scan = scan(&t, &pool, vec![0, 1], VectorScan::stable_items(n as u64), 100);
        let flat = drain(&mut flat_scan).unwrap();
        assert_eq!(enc_rows.len(), flat.rows());
        for (i, row) in enc_rows.iter().enumerate() {
            assert_eq!(*row, flat.row_values(i), "row {i}");
        }
        let p = Operator::profile(&flat_scan).unwrap();
        assert_eq!(p.enc_batches, 0);
        assert!(p.flat_batches > 0);
    }

    #[test]
    fn empty_scan() {
        let (t, pool) = setup(10, 10);
        let mut s = scan(&t, &pool, vec![0], Vec::new(), 4);
        assert!(s.next().unwrap().is_none());
    }

    #[test]
    fn cancellation_aborts_scan() {
        let (t, pool) = setup(100, 10);
        let cancel = CancelToken::new();
        let mut s =
            VectorScan::new(t, pool, vec![0], VectorScan::stable_items(100), 16, cancel.clone());
        s.next().unwrap();
        cancel.cancel();
        assert!(matches!(s.next(), Err(VwError::Cancelled)));
    }
}
