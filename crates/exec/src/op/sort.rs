//! Sort and Top-N.
//!
//! `Sort` materializes its input, sorts a permutation index, and streams the
//! result in vector-sized batches. `TopN` keeps only the best `limit` rows
//! in a bounded heap — the standard `ORDER BY ... LIMIT k` shortcut.

use super::{drain, BoxedOp, Operator};
use crate::cancel::CancelToken;
use crate::vector::{Batch, Vector};
use std::cmp::Ordering;
use vw_common::{ColData, Result, Schema, SelVec, Value};

/// One sort key.
#[derive(Debug, Clone, Copy)]
pub struct SortKey {
    /// Column index in the input schema.
    pub col: usize,
    /// Ascending?
    pub asc: bool,
    /// Do NULLs sort before non-NULLs?
    pub nulls_first: bool,
}

fn cmp_rows(batch: &Batch, keys: &[SortKey], a: usize, b: usize) -> Ordering {
    for k in keys {
        let va = batch.columns[k.col].get(a);
        let vb = batch.columns[k.col].get(b);
        let o = match (va.is_null(), vb.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => {
                if k.nulls_first {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, true) => {
                if k.nulls_first {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, false) => {
                let o = va.sql_cmp(&vb).unwrap_or(Ordering::Equal);
                if k.asc {
                    o
                } else {
                    o.reverse()
                }
            }
        };
        if o != Ordering::Equal {
            return o;
        }
    }
    Ordering::Equal
}

/// Full sort operator.
pub struct Sort {
    input: Option<BoxedOp>,
    keys: Vec<SortKey>,
    schema: Schema,
    vector_size: usize,
    cancel: CancelToken,
    sorted: Option<Batch>,
    emit: usize,
}

impl Sort {
    /// Sort `input` by `keys`.
    pub fn new(
        input: BoxedOp,
        keys: Vec<SortKey>,
        vector_size: usize,
        cancel: CancelToken,
    ) -> Sort {
        let schema = input.schema().clone();
        Sort { input: Some(input), keys, schema, vector_size, cancel, sorted: None, emit: 0 }
    }
}

impl Operator for Sort {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "Sort"
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        self.cancel.check()?;
        if self.sorted.is_none() {
            let mut input = self.input.take().expect("sort builds once");
            let mut all = drain(input.as_mut())?;
            // Sort is a late-materialization boundary: inflate coded
            // columns once up front so row comparisons read values
            // directly instead of cloning dictionary entries per compare.
            all.ensure_flat();
            let mut perm: Vec<u32> = (0..all.rows() as u32).collect();
            perm.sort_by(|&a, &b| cmp_rows(&all, &self.keys, a as usize, b as usize));
            // Gather through the permutation (not a SelVec: unsorted order).
            let columns = all
                .columns
                .iter()
                .map(|c| {
                    let mut v = Vector::new(ColData::with_capacity(c.type_id(), perm.len()));
                    for &p in &perm {
                        v.push(&c.get(p as usize)).expect("same type");
                    }
                    v
                })
                .collect();
            self.sorted = Some(Batch::new(columns));
        }
        let sorted = self.sorted.as_ref().unwrap();
        let n = sorted.rows();
        if self.emit >= n {
            return Ok(None);
        }
        let end = (self.emit + self.vector_size).min(n);
        let columns = sorted
            .columns
            .iter()
            .map(|c| {
                let mut v = Vector::new(ColData::with_capacity(c.type_id(), end - self.emit));
                v.extend_range(c, self.emit, end);
                v
            })
            .collect();
        self.emit = end;
        Ok(Some(Batch::new(columns)))
    }
}

/// Top-N: `ORDER BY keys LIMIT limit` with a bounded buffer.
pub struct TopN {
    input: Option<BoxedOp>,
    keys: Vec<SortKey>,
    limit: usize,
    schema: Schema,
    cancel: CancelToken,
    result: Option<Vec<Vec<Value>>>,
    emit: usize,
    vector_size: usize,
}

impl TopN {
    /// Keep the first `limit` rows of the sort order.
    pub fn new(
        input: BoxedOp,
        keys: Vec<SortKey>,
        limit: usize,
        vector_size: usize,
        cancel: CancelToken,
    ) -> TopN {
        let schema = input.schema().clone();
        TopN { input: Some(input), keys, limit, schema, cancel, result: None, emit: 0, vector_size }
    }

    fn cmp_value_rows(keys: &[SortKey], a: &[Value], b: &[Value]) -> Ordering {
        for k in keys {
            let (va, vb) = (&a[k.col], &b[k.col]);
            let o = match (va.is_null(), vb.is_null()) {
                (true, true) => Ordering::Equal,
                (true, false) => {
                    if k.nulls_first {
                        Ordering::Less
                    } else {
                        Ordering::Greater
                    }
                }
                (false, true) => {
                    if k.nulls_first {
                        Ordering::Greater
                    } else {
                        Ordering::Less
                    }
                }
                (false, false) => {
                    let o = va.sql_cmp(vb).unwrap_or(Ordering::Equal);
                    if k.asc {
                        o
                    } else {
                        o.reverse()
                    }
                }
            };
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    }

    fn build(&mut self) -> Result<()> {
        let mut input = self.input.take().expect("topn builds once");
        // A sorted bounded buffer: worst row at the end. For the modest
        // limits of ORDER BY ... LIMIT this is effectively a heap without
        // the comparator gymnastics.
        let mut buf: Vec<Vec<Value>> = Vec::with_capacity(self.limit + 1);
        // One reused row buffer: at steady state almost every row loses to
        // the current top-N and is rejected without allocating; only rows
        // that actually enter the buffer are materialized (by take).
        let mut row: Vec<Value> = Vec::new();
        while let Some(batch) = input.next()? {
            self.cancel.check()?;
            for i in 0..batch.rows() {
                batch.row_values_into(i, &mut row);
                if buf.len() < self.limit {
                    let at = buf
                        .binary_search_by(|r| Self::cmp_value_rows(&self.keys, r, &row))
                        .unwrap_or_else(|e| e);
                    buf.insert(at, std::mem::take(&mut row));
                } else if self.limit > 0
                    && Self::cmp_value_rows(&self.keys, &row, buf.last().unwrap()) == Ordering::Less
                {
                    let at = buf
                        .binary_search_by(|r| Self::cmp_value_rows(&self.keys, r, &row))
                        .unwrap_or_else(|e| e);
                    buf.insert(at, std::mem::take(&mut row));
                    buf.pop();
                }
            }
        }
        self.result = Some(buf);
        Ok(())
    }
}

impl Operator for TopN {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "TopN"
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        self.cancel.check()?;
        if self.result.is_none() {
            self.build()?;
        }
        let rows = self.result.as_ref().unwrap();
        if self.emit >= rows.len() {
            return Ok(None);
        }
        let end = (self.emit + self.vector_size).min(rows.len());
        let mut columns: Vec<Vector> = self
            .schema
            .fields
            .iter()
            .map(|f| Vector::new(ColData::with_capacity(f.ty, end - self.emit)))
            .collect();
        for row in &rows[self.emit..end] {
            for (c, v) in columns.iter_mut().zip(row) {
                c.push(v)?;
            }
        }
        self.emit = end;
        Ok(Some(Batch::new(columns)))
    }
}

/// Gather a batch through an arbitrary (possibly unsorted) permutation.
/// Exposed for operators that cannot use [`SelVec`] (which must be sorted).
pub fn gather_perm(batch: &Batch, perm: &[u32]) -> Batch {
    let _ = SelVec::new(); // (documentation anchor: SelVec is the sorted cousin)
    let columns = batch
        .columns
        .iter()
        .map(|c| {
            let mut v = Vector::new(ColData::with_capacity(c.type_id(), perm.len()));
            for &p in perm {
                v.push(&c.get(p as usize)).expect("same type");
            }
            v
        })
        .collect();
    Batch::new(columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::simple::Values;
    use vw_common::{Field, TypeId};

    fn schema() -> Schema {
        Schema::new(vec![Field::nullable("a", TypeId::I64), Field::nullable("b", TypeId::Str)])
            .unwrap()
    }

    fn source(rows: Vec<(Option<i64>, &str)>) -> BoxedOp {
        let rows = rows
            .into_iter()
            .map(|(a, b)| vec![a.map_or(Value::Null, Value::I64), Value::Str(b.into())])
            .collect();
        Box::new(Values::new(schema(), rows, 3, CancelToken::new()))
    }

    fn key(col: usize, asc: bool, nulls_first: bool) -> SortKey {
        SortKey { col, asc, nulls_first }
    }

    #[test]
    fn sort_asc_desc() {
        let src = source(vec![(Some(3), "c"), (Some(1), "a"), (Some(2), "b")]);
        let mut s = Sort::new(src, vec![key(0, true, false)], 10, CancelToken::new());
        let out = drain(&mut s).unwrap();
        let vals: Vec<Value> = (0..3).map(|i| out.row_values(i)[0].clone()).collect();
        assert_eq!(vals, vec![Value::I64(1), Value::I64(2), Value::I64(3)]);

        let src = source(vec![(Some(3), "c"), (Some(1), "a"), (Some(2), "b")]);
        let mut s = Sort::new(src, vec![key(0, false, false)], 10, CancelToken::new());
        let out = drain(&mut s).unwrap();
        assert_eq!(out.row_values(0)[0], Value::I64(3));
    }

    #[test]
    fn nulls_placement() {
        let src = source(vec![(Some(1), "a"), (None, "n"), (Some(2), "b")]);
        let mut s = Sort::new(src, vec![key(0, true, true)], 10, CancelToken::new());
        let out = drain(&mut s).unwrap();
        assert!(out.row_values(0)[0].is_null());
        let src = source(vec![(Some(1), "a"), (None, "n"), (Some(2), "b")]);
        let mut s = Sort::new(src, vec![key(0, true, false)], 10, CancelToken::new());
        let out = drain(&mut s).unwrap();
        assert!(out.row_values(2)[0].is_null());
    }

    #[test]
    fn multi_key_sort() {
        let src = source(vec![(Some(1), "z"), (Some(1), "a"), (Some(0), "m")]);
        let mut s =
            Sort::new(src, vec![key(0, true, false), key(1, true, false)], 10, CancelToken::new());
        let out = drain(&mut s).unwrap();
        assert_eq!(out.row_values(0)[1], Value::Str("m".into()));
        assert_eq!(out.row_values(1)[1], Value::Str("a".into()));
        assert_eq!(out.row_values(2)[1], Value::Str("z".into()));
    }

    #[test]
    fn sort_streams_vector_sized() {
        let rows: Vec<(Option<i64>, &str)> = (0..25).map(|i| (Some(25 - i), "x")).collect();
        let src = source(rows);
        let mut s = Sort::new(src, vec![key(0, true, false)], 10, CancelToken::new());
        let mut sizes = Vec::new();
        let mut first = None;
        while let Some(b) = s.next().unwrap() {
            if first.is_none() {
                first = Some(b.row_values(0)[0].clone());
            }
            sizes.push(b.rows());
        }
        assert_eq!(sizes, vec![10, 10, 5]);
        assert_eq!(first.unwrap(), Value::I64(1));
    }

    #[test]
    fn topn_keeps_best() {
        let rows: Vec<(Option<i64>, &str)> =
            (0..100).map(|i| (Some((i * 37) % 100), "x")).collect();
        let src = source(rows);
        let mut t = TopN::new(src, vec![key(0, true, false)], 5, 10, CancelToken::new());
        let out = drain(&mut t).unwrap();
        assert_eq!(out.rows(), 5);
        let vals: Vec<Value> = (0..5).map(|i| out.row_values(i)[0].clone()).collect();
        assert_eq!(
            vals,
            vec![Value::I64(0), Value::I64(1), Value::I64(2), Value::I64(3), Value::I64(4)]
        );
    }

    #[test]
    fn topn_larger_than_input() {
        let src = source(vec![(Some(2), "b"), (Some(1), "a")]);
        let mut t = TopN::new(src, vec![key(0, true, false)], 10, 4, CancelToken::new());
        let out = drain(&mut t).unwrap();
        assert_eq!(out.rows(), 2);
        assert_eq!(out.row_values(0)[0], Value::I64(1));
    }

    #[test]
    fn topn_zero_limit() {
        let src = source(vec![(Some(2), "b")]);
        let mut t = TopN::new(src, vec![key(0, true, false)], 0, 4, CancelToken::new());
        let out = drain(&mut t).unwrap();
        assert_eq!(out.rows(), 0);
    }
}
