//! Hash-based set operations: UNION (dedup), INTERSECT, EXCEPT.
//!
//! UNION ALL needs no hashing and is handled by
//! [`UnionAll`](super::UnionAll); everything else funnels through this
//! operator. The shape mirrors the hash join: INTERSECT/EXCEPT first
//! drain their right input into a hash set of canonical row keys (the
//! build phase), then stream the left input deciding each row against
//! that set. All three modes deduplicate their output through a second
//! "emitted" set, so every distinct row appears exactly once — SQL's
//! set semantics, with NULLs comparing equal to each other as the
//! standard prescribes for duplicate elimination.
//!
//! `SELECT DISTINCT` lowers to a [`Mode::Union`] over a single input:
//! dedup is the whole job, so the binder gets it for free.
//!
//! Eliminated rows are counted in [`OpProfile::setop_dropped`] and
//! surface as the `dedup` column of `EXPLAIN ANALYZE` (see the
//! [profile docs](crate::profile)).

use super::{BoxedOp, Operator};
use crate::cancel::CancelToken;
use crate::profile::OpProfile;
use crate::vector::{Batch, Vector};
use std::collections::HashSet;
use std::time::Instant;
use vw_common::{ColData, Result, Schema, Value};

/// Which set operation to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Distinct rows of the input stream (operand union is concatenated
    /// upstream by `UnionAll`; a single input makes this `DISTINCT`).
    Union,
    /// Distinct left rows that also appear in the right input.
    Intersect,
    /// Distinct left rows that do not appear in the right input.
    Except,
}

/// Hash set-operation operator. Binary for INTERSECT/EXCEPT, unary
/// (pure dedup) for UNION / DISTINCT.
pub struct SetOp {
    mode: Mode,
    left: BoxedOp,
    /// Build-side input; `None` exactly for [`Mode::Union`].
    right: Option<BoxedOp>,
    /// Canonical keys of the right input (INTERSECT/EXCEPT membership).
    right_keys: HashSet<Vec<u8>>,
    /// Canonical keys already emitted (output dedup, all modes).
    emitted: HashSet<Vec<u8>>,
    built: bool,
    schema: Schema,
    profile: OpProfile,
    cancel: CancelToken,
}

impl SetOp {
    /// Build a set operation over `left` (and `right` for the binary
    /// modes). Inputs must share the output `schema`'s column types; the
    /// binder unifies them with casts before planning this operator.
    pub fn new(mode: Mode, left: BoxedOp, right: Option<BoxedOp>, cancel: CancelToken) -> SetOp {
        debug_assert_eq!(matches!(mode, Mode::Union), right.is_none());
        let schema = left.schema().clone();
        let name = match mode {
            Mode::Union => "Union",
            Mode::Intersect => "Intersect",
            Mode::Except => "Except",
        };
        SetOp {
            mode,
            left,
            right,
            right_keys: HashSet::new(),
            emitted: HashSet::new(),
            built: false,
            schema,
            profile: OpProfile::new(name),
            cancel,
        }
    }

    /// Drain the right input into the membership set.
    fn build(&mut self) -> Result<()> {
        let t0 = Instant::now();
        if let Some(right) = &mut self.right {
            let mut key = Vec::new();
            while let Some(mut batch) = right.next()? {
                self.cancel.check()?;
                batch.ensure_flat();
                for pos in batch.live() {
                    key.clear();
                    encode_row(&batch, pos, &mut key);
                    if !self.right_keys.contains(&key) {
                        self.right_keys.insert(key.clone());
                    }
                }
            }
        }
        self.built = true;
        self.profile.record_phase(t0.elapsed());
        Ok(())
    }
}

impl Operator for SetOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        self.profile.name
    }

    fn profile(&self) -> Option<&OpProfile> {
        Some(&self.profile)
    }

    fn profile_mut(&mut self) -> Option<&mut OpProfile> {
        Some(&mut self.profile)
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if !self.built {
            self.build()?;
        }
        let mut key = Vec::new();
        loop {
            self.cancel.check()?;
            let Some(mut batch) = self.left.next()? else {
                return Ok(None);
            };
            let t0 = Instant::now();
            batch.ensure_flat();
            let mut out: Vec<Vector> = self
                .schema
                .fields
                .iter()
                .map(|f| Vector::new(ColData::with_capacity(f.ty, batch.rows())))
                .collect();
            let mut kept = 0usize;
            let mut dropped = 0u64;
            for pos in batch.live() {
                key.clear();
                encode_row(&batch, pos, &mut key);
                let keep = match self.mode {
                    Mode::Union => true,
                    Mode::Intersect => self.right_keys.contains(&key),
                    Mode::Except => !self.right_keys.contains(&key),
                };
                if keep && !self.emitted.contains(&key) {
                    self.emitted.insert(key.clone());
                    for (c, src) in out.iter_mut().zip(&batch.columns) {
                        c.push(&src.get(pos))?;
                    }
                    kept += 1;
                } else {
                    dropped += 1;
                }
            }
            self.profile.record_setop_dropped(dropped);
            if kept == 0 {
                self.profile.record_phase(t0.elapsed());
                continue;
            }
            let out = Batch::new(out);
            self.profile.record(out.rows(), t0.elapsed());
            return Ok(Some(out));
        }
    }
}

/// Append `pos`'s canonical key bytes for every column of `batch`.
///
/// The encoding is injective across a schema-unified row: each value is
/// tagged by kind, variable-width payloads are length-prefixed, and
/// floats are normalized (`-0.0` folds to `0.0`, every NaN to one bit
/// pattern) so SQL-equal values collide and nothing else does. NULL gets
/// its own tag — set operations treat NULLs as duplicates of each other.
fn encode_row(batch: &Batch, pos: usize, key: &mut Vec<u8>) {
    for col in &batch.columns {
        match col.get(pos) {
            Value::Null => key.push(0),
            Value::Bool(b) => {
                key.push(1);
                key.push(b as u8);
            }
            Value::I8(v) => encode_int(key, v as i64),
            Value::I16(v) => encode_int(key, v as i64),
            Value::I32(v) => encode_int(key, v as i64),
            Value::I64(v) => encode_int(key, v),
            Value::F64(v) => {
                let v = if v == 0.0 {
                    0.0
                } else if v.is_nan() {
                    f64::NAN
                } else {
                    v
                };
                key.push(3);
                key.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                key.push(4);
                key.extend_from_slice(&(s.len() as u32).to_le_bytes());
                key.extend_from_slice(s.as_bytes());
            }
            Value::Date(d) => {
                key.push(5);
                key.extend_from_slice(&d.0.to_le_bytes());
            }
        }
    }
}

/// Integers of every width share one tag so `I32(7)` and `I64(7)` (same
/// SQL value after promotion) produce the same key bytes.
fn encode_int(key: &mut Vec<u8>, v: i64) {
    key.push(2);
    key.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::drain;
    use crate::op::simple::{UnionAll, Values};
    use vw_common::{Field, TypeId};

    fn schema() -> Schema {
        Schema::new(vec![Field::nullable("a", TypeId::I64), Field::nullable("b", TypeId::Str)])
            .unwrap()
    }

    fn src(rows: Vec<(Option<i64>, &str)>) -> BoxedOp {
        let rows = rows
            .into_iter()
            .map(|(a, b)| vec![a.map(Value::I64).unwrap_or(Value::Null), Value::Str(b.into())])
            .collect();
        Box::new(Values::new(schema(), rows, 3, CancelToken::new()))
    }

    fn row_set(b: &Batch) -> Vec<Vec<Value>> {
        (0..b.rows()).map(|i| b.row_values(i)).collect()
    }

    #[test]
    fn union_dedups_across_inputs_and_nulls() {
        let a = src(vec![(Some(1), "x"), (None, "y"), (Some(1), "x")]);
        let b = src(vec![(None, "y"), (Some(2), "z")]);
        let cat = UnionAll::new(vec![a, b], CancelToken::new());
        let mut op = SetOp::new(Mode::Union, Box::new(cat), None, CancelToken::new());
        let out = drain(&mut op).unwrap();
        assert_eq!(out.rows(), 3, "1x, NULLy, 2z");
        assert_eq!(op.profile().unwrap().setop_dropped, 2);
    }

    #[test]
    fn intersect_keeps_common_rows_once() {
        let l = src(vec![(Some(1), "x"), (Some(1), "x"), (Some(2), "y"), (None, "n")]);
        let r = src(vec![(Some(1), "x"), (None, "n"), (Some(9), "q")]);
        let mut op = SetOp::new(Mode::Intersect, l, Some(r), CancelToken::new());
        let out = drain(&mut op).unwrap();
        let rows = row_set(&out);
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&vec![Value::I64(1), Value::Str("x".into())]));
        assert!(rows.contains(&vec![Value::Null, Value::Str("n".into())]));
    }

    #[test]
    fn except_subtracts_and_dedups() {
        let l = src(vec![(Some(1), "x"), (Some(2), "y"), (Some(2), "y"), (Some(3), "z")]);
        let r = src(vec![(Some(2), "y")]);
        let mut op = SetOp::new(Mode::Except, l, Some(r), CancelToken::new());
        let out = drain(&mut op).unwrap();
        let rows = row_set(&out);
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&vec![Value::I64(1), Value::Str("x".into())]));
        assert!(rows.contains(&vec![Value::I64(3), Value::Str("z".into())]));
        // 2 copies of (2,y) subtracted.
        assert_eq!(op.profile().unwrap().setop_dropped, 2);
    }

    #[test]
    fn empty_inputs() {
        let mut op = SetOp::new(Mode::Union, src(vec![]), None, CancelToken::new());
        assert_eq!(drain(&mut op).unwrap().rows(), 0);
        let mut op = SetOp::new(
            Mode::Intersect,
            src(vec![(Some(1), "x")]),
            Some(src(vec![])),
            CancelToken::new(),
        );
        assert_eq!(drain(&mut op).unwrap().rows(), 0);
        let mut op = SetOp::new(
            Mode::Except,
            src(vec![(Some(1), "x")]),
            Some(src(vec![])),
            CancelToken::new(),
        );
        assert_eq!(drain(&mut op).unwrap().rows(), 1);
    }

    #[test]
    fn cancellation_propagates() {
        let cancel = CancelToken::new();
        let mut op = SetOp::new(Mode::Union, src(vec![(Some(1), "x")]), None, cancel.clone());
        cancel.cancel();
        assert!(op.next().is_err());
    }
}
