//! Xchg — the Volcano-style exchange operator for multi-core parallelism.
//!
//! The paper: "The Vectorwise rewriter was used to implement a Volcano-style
//! query parallelizer". The rewriter marks an order-insensitive plan
//! fragment for parallel execution (see `vw_rewriter::parallel`); the
//! compiler's pipeline factory then builds `DOP` clones of the fragment
//! that **share one [`MorselSource`] per scan** — workers pull
//! `morsel_rows`-sized claims until the dispenser runs dry, so a slow
//! worker claims fewer morsels instead of stranding a pre-assigned static
//! row range. `Xchg` merges the clones' batch streams; two scheduling
//! modes exist:
//!
//! * [`Xchg::spawn`] — one dedicated thread per partition (the original,
//!   library-style gang; still used by unit tests and bare-kernel
//!   embedders).
//! * [`Xchg::spawn_on`] — partitions become **tasks on the engine's fixed
//!   [`WorkerPool`]** (`vw-service`). This is what the SQL layer uses: N
//!   concurrent queries share W pool workers, so thread count stays
//!   O(workers). Fragment tasks never block a pool worker — a task whose
//!   output buffer is full *parks itself* and the consumer reschedules it
//!   when it drains — and they yield (resubmit to the queue tail) every
//!   few batches so morsel claims from different queries interleave.
//!
//! Cancellation propagates through the shared [`CancelToken`]; errors
//! from any worker surface on the consumer side. When the stream
//! completes, the per-worker morsel counts are folded into this
//! operator's [`OpProfile`] (the scheduling-balance observable in
//! `EXPLAIN ANALYZE`).

use super::{BoxedOp, Operator};
use crate::cancel::CancelToken;
use crate::morsel::MorselSource;
use crate::partition::panic_error;
use crate::profile::OpProfile;
use crate::vector::Batch;
use crossbeam::channel::{bounded, Receiver};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use vw_common::{Result, Schema, VwError};
use vw_service::WorkerPool;

/// Batches a pool-mode fragment produces before voluntarily yielding its
/// worker (resubmitting itself to the pool queue tail). Small enough that
/// no query monopolizes a worker, large enough to amortize the requeue.
const FRAGMENT_QUANTUM: usize = 4;

/// Shared state between a pool-mode exchange consumer and its fragment
/// tasks: a bounded deque of produced batches plus the parking lot for
/// fragments waiting on buffer space.
struct PoolXchgState {
    items: VecDeque<Result<Batch>>,
    /// Fragments parked because `items` was at capacity. Invariant: a
    /// fragment only parks while `items.len() >= cap`, and every consumer
    /// pop below capacity unparks, so parked tasks can never be stranded
    /// behind an empty buffer.
    parked: Vec<FragmentTask>,
    /// Fragments not yet finished (running, queued, or parked).
    live: usize,
}

struct PoolXchgShared {
    m: Mutex<PoolXchgState>,
    cv: Condvar,
    cap: usize,
}

/// One plan-fragment clone running as a pool task. Dropping it (normal
/// completion, abandoned-in-queue after shutdown, or discarded while
/// parked) decrements `live` and wakes the consumer — every exit path
/// accounts the fragment exactly once.
struct FragmentTask {
    part: Option<BoxedOp>,
    query_cancel: CancelToken,
    local_cancel: CancelToken,
    shared: Arc<PoolXchgShared>,
    pool: Arc<WorkerPool>,
}

impl FragmentTask {
    fn push(&self, item: Result<Batch>) {
        let mut st = self.shared.m.lock().expect("xchg mutex poisoned");
        st.items.push_back(item);
        drop(st);
        self.shared.cv.notify_all();
    }

    /// Drive the fragment for up to one quantum. Never blocks: a full
    /// output buffer parks the task (the consumer resubmits it), and a
    /// spent quantum requeues it at the pool tail — unless the pool is
    /// closed, in which case submissions run inline and yielding would
    /// recurse, so the task runs to completion instead.
    fn run(mut self) {
        let mut produced = 0;
        loop {
            if self.local_cancel.is_cancelled() {
                return; // silent: the consumer initiated shutdown
            }
            if self.query_cancel.is_cancelled() {
                self.push(Err(VwError::Cancelled));
                return;
            }
            {
                let shared = self.shared.clone();
                let mut st = shared.m.lock().expect("xchg mutex poisoned");
                if st.items.len() >= shared.cap {
                    st.parked.push(self);
                    return;
                }
            }
            let part = self.part.as_mut().expect("fragment operator present");
            match catch_unwind(AssertUnwindSafe(|| part.next())) {
                Ok(Ok(Some(batch))) => {
                    self.push(Ok(batch));
                    produced += 1;
                    if produced >= FRAGMENT_QUANTUM && !self.pool.is_closed() {
                        let pool = self.pool.clone();
                        let token = self.query_cancel.clone();
                        pool.submit(&token, move || self.run());
                        return;
                    }
                }
                Ok(Ok(None)) => return, // fragment drained; Drop accounts it
                Ok(Err(e)) => {
                    self.push(Err(e));
                    return;
                }
                Err(payload) => {
                    self.push(Err(panic_error("Xchg partition", payload)));
                    return;
                }
            }
        }
    }
}

impl Drop for FragmentTask {
    fn drop(&mut self) {
        let mut st = self.shared.m.lock().expect("xchg mutex poisoned");
        st.live -= 1;
        drop(st);
        self.shared.cv.notify_all();
    }
}

/// The two ways an exchange drives its partitions.
enum XchgStream {
    /// Dedicated thread per partition, merged through a bounded channel.
    Threads { rx: Option<Receiver<Result<Batch>>>, workers: Vec<JoinHandle<()>> },
    /// Partitions as cooperative tasks on the shared worker pool.
    Pool { shared: Arc<PoolXchgShared> },
}

/// Exchange operator: merges the outputs of N worker-driven partitions.
pub struct Xchg {
    schema: Schema,
    stream: XchgStream,
    /// Local shutdown signal for this operator's workers only. The
    /// query-wide token is shared with every operator in the plan and must
    /// NOT be cancelled when the exchange is merely dropped after a normal
    /// drain — that would poison the rest of the still-running query.
    local_cancel: CancelToken,
    /// The fragment's morsel dispensers (one per shared scan); read at
    /// stream end for the per-worker claim counts.
    sources: Vec<Arc<MorselSource>>,
    n_workers: usize,
    profile: OpProfile,
    done: bool,
}

impl Xchg {
    /// Spawn one worker per partition operator. Each worker drains its
    /// operator and pushes batches into a bounded channel (capacity 2 per
    /// worker keeps producers slightly ahead without unbounded buffering).
    pub fn spawn(partitions: Vec<BoxedOp>, query_cancel: CancelToken) -> Xchg {
        assert!(!partitions.is_empty());
        let schema = partitions[0].schema().clone();
        let local_cancel = CancelToken::new();
        let (tx, rx) = bounded::<Result<Batch>>(partitions.len() * 2);
        let mut workers = Vec::with_capacity(partitions.len());
        for mut part in partitions {
            let tx = tx.clone();
            let query_cancel = query_cancel.clone();
            let local_cancel = local_cancel.clone();
            workers.push(std::thread::spawn(move || {
                // catch_unwind: a panicking partition operator must surface
                // as an error on the channel, not silently drop the sender
                // and strand the consumer with a truncated stream.
                let unwound = catch_unwind(AssertUnwindSafe(|| loop {
                    if local_cancel.is_cancelled() {
                        break; // silent: the consumer initiated shutdown
                    }
                    if query_cancel.is_cancelled() {
                        let _ = tx.send(Err(VwError::Cancelled));
                        break;
                    }
                    match part.next() {
                        Ok(Some(batch)) => {
                            if tx.send(Ok(batch)).is_err() {
                                break; // consumer dropped
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            break;
                        }
                    }
                }));
                if let Err(payload) = unwound {
                    let _ = tx.send(Err(panic_error("Xchg partition", payload)));
                }
            }));
        }
        drop(tx); // channel closes when the last worker finishes
        let n_workers = workers.len();
        Xchg {
            schema,
            stream: XchgStream::Threads { rx: Some(rx), workers },
            local_cancel,
            sources: Vec::new(),
            n_workers,
            profile: OpProfile::new("Xchg"),
            done: false,
        }
    }

    /// Schedule one cooperative task per partition on the engine's shared
    /// worker pool instead of spawning threads. The output buffer holds at
    /// most 2 batches per partition (same bound as the channel in
    /// [`Xchg::spawn`]); fragments park on a full buffer and the consumer
    /// reschedules them as it drains.
    pub fn spawn_on(
        pool: &Arc<WorkerPool>,
        partitions: Vec<BoxedOp>,
        query_cancel: CancelToken,
    ) -> Xchg {
        assert!(!partitions.is_empty());
        let schema = partitions[0].schema().clone();
        let local_cancel = CancelToken::new();
        let n_workers = partitions.len();
        let shared = Arc::new(PoolXchgShared {
            m: Mutex::new(PoolXchgState {
                items: VecDeque::new(),
                parked: Vec::new(),
                live: n_workers,
            }),
            cv: Condvar::new(),
            cap: n_workers * 2,
        });
        for part in partitions {
            let task = FragmentTask {
                part: Some(part),
                query_cancel: query_cancel.clone(),
                local_cancel: local_cancel.clone(),
                shared: shared.clone(),
                pool: pool.clone(),
            };
            pool.submit(&query_cancel, move || task.run());
        }
        Xchg {
            schema,
            stream: XchgStream::Pool { shared },
            local_cancel,
            sources: Vec::new(),
            n_workers,
            profile: OpProfile::new("Xchg"),
            done: false,
        }
    }

    /// Attach the fragment's morsel dispensers so the per-worker claim
    /// counts land in this operator's profile when the stream completes.
    /// Consumer `w` of every source must be worker `w`'s scan (the
    /// compiler's pipeline factory registers them in worker order).
    pub fn with_sources(mut self, sources: Vec<Arc<MorselSource>>) -> Xchg {
        self.sources = sources;
        self
    }

    /// Fold the dispensers' per-consumer claim counts into the profile
    /// (idempotent: overwrites).
    fn collect_worker_morsels(&mut self) {
        if self.sources.is_empty() {
            return;
        }
        let mut per_worker = vec![0u64; self.n_workers];
        for src in &self.sources {
            for (w, c) in src.claim_counts().into_iter().enumerate() {
                if let Some(slot) = per_worker.get_mut(w) {
                    *slot += c;
                }
            }
        }
        self.profile.worker_morsels = per_worker;
    }
}

impl Operator for Xchg {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "Xchg"
    }

    fn profile(&self) -> Option<&OpProfile> {
        Some(&self.profile)
    }

    fn profile_mut(&mut self) -> Option<&mut OpProfile> {
        Some(&mut self.profile)
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        let item = match &self.stream {
            XchgStream::Threads { rx, .. } => {
                let Some(rx) = rx else {
                    return Ok(None);
                };
                // An Err means all workers are done and the channel closed.
                rx.recv().ok()
            }
            XchgStream::Pool { shared } => {
                let mut st = shared.m.lock().expect("xchg mutex poisoned");
                loop {
                    if let Some(item) = st.items.pop_front() {
                        // Draining below capacity unparks waiting
                        // fragments — resubmit them *after* releasing the
                        // lock (a closed pool runs submissions inline, and
                        // an inline fragment re-takes this lock).
                        let unparked: Vec<FragmentTask> = if st.items.len() < shared.cap {
                            st.parked.drain(..).collect()
                        } else {
                            Vec::new()
                        };
                        drop(st);
                        for t in unparked {
                            let pool = t.pool.clone();
                            let token = t.query_cancel.clone();
                            pool.submit(&token, move || t.run());
                        }
                        break Some(item);
                    }
                    if st.live == 0 {
                        break None; // every fragment finished and drained
                    }
                    // Producers notify on every push and on task drop; the
                    // timeout only bounds staleness against lost wakeups.
                    let (guard, _) = shared
                        .cv
                        .wait_timeout(st, Duration::from_millis(5))
                        .expect("xchg mutex poisoned");
                    st = guard;
                }
            }
        };
        match item {
            Some(Ok(batch)) => {
                self.profile.invocations += 1;
                self.profile.rows_out += batch.rows() as u64;
                Ok(Some(batch))
            }
            Some(Err(e)) => {
                // Stop the sibling workers; the error propagates upward.
                self.local_cancel.cancel();
                self.done = true;
                self.collect_worker_morsels();
                Err(e)
            }
            None => {
                self.done = true;
                self.collect_worker_morsels();
                Ok(None)
            }
        }
    }
}

impl Drop for Xchg {
    fn drop(&mut self) {
        // Stop our own workers (never the query-wide token), then reclaim
        // them before returning — an exchange drop must leave no producer
        // behind, whatever the scheduling mode.
        self.local_cancel.cancel();
        match &mut self.stream {
            XchgStream::Threads { rx, workers } => {
                // Drain the channel before dropping it: a producer blocked
                // on a full bounded channel wakes as soon as a slot frees
                // (or the receiver disconnects), observes the local
                // cancel, and exits — the drain makes that independent of
                // whether the channel implementation wakes blocked senders
                // on receiver drop. Only then join.
                if let Some(rx) = rx {
                    while rx.try_recv().is_ok() {}
                }
                *rx = None;
                for h in workers.drain(..) {
                    let _ = h.join();
                }
            }
            XchgStream::Pool { shared } => {
                // Discard parked fragments (their Drop accounts them) and
                // drain buffered output so still-scheduled fragments can
                // push their final item; wait until every fragment has
                // exited. A cancelled task never parks again, but one may
                // race past the cancel into the parking lot once — hence
                // the loop re-takes the parked list each round.
                loop {
                    let parked: Vec<FragmentTask> = {
                        let mut st = shared.m.lock().expect("xchg mutex poisoned");
                        st.items.clear();
                        std::mem::take(&mut st.parked)
                    };
                    drop(parked); // decrements live; must not hold the lock
                    let st = shared.m.lock().expect("xchg mutex poisoned");
                    if st.live == 0 {
                        break;
                    }
                    let _ = shared
                        .cv
                        .wait_timeout(st, Duration::from_millis(2))
                        .expect("xchg mutex poisoned");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::drain;
    use crate::op::simple::Values;
    use vw_common::{Field, Schema, TypeId, Value};

    fn part(range: std::ops::Range<i64>, fail_at: Option<i64>) -> BoxedOp {
        struct Failing {
            inner: Values,
            fail_at: Option<i64>,
            seen: i64,
        }
        impl Operator for Failing {
            fn schema(&self) -> &Schema {
                self.inner.schema()
            }
            fn name(&self) -> &'static str {
                "Failing"
            }
            fn next(&mut self) -> Result<Option<Batch>> {
                if let Some(f) = self.fail_at {
                    if self.seen >= f {
                        return Err(VwError::Exec("boom".into()));
                    }
                }
                let b = self.inner.next()?;
                if let Some(b) = &b {
                    self.seen += b.rows() as i64;
                }
                Ok(b)
            }
        }
        let schema = Schema::new(vec![Field::not_null("v", TypeId::I64)]).unwrap();
        let rows = range.map(|v| vec![Value::I64(v)]).collect();
        Box::new(Failing {
            inner: Values::new(schema, rows, 16, CancelToken::new()),
            fail_at,
            seen: 0,
        })
    }

    #[test]
    fn merges_all_partitions() {
        let parts = vec![part(0..100, None), part(100..250, None), part(250..300, None)];
        let mut x = Xchg::spawn(parts, CancelToken::new());
        let out = drain(&mut x).unwrap();
        assert_eq!(out.rows(), 300);
        let mut vals: Vec<i64> = (0..300)
            .map(|i| match out.row_values(i)[0] {
                Value::I64(v) => v,
                _ => panic!(),
            })
            .collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn worker_error_propagates() {
        let parts = vec![part(0..1000, None), part(0..1000, Some(32))];
        let mut x = Xchg::spawn(parts, CancelToken::new());
        let mut saw_error = false;
        loop {
            match x.next() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    saw_error = true;
                    assert!(matches!(e, VwError::Exec(_)));
                    break;
                }
            }
        }
        assert!(saw_error);
    }

    #[test]
    fn cancellation_stops_workers() {
        let cancel = CancelToken::new();
        let parts = vec![part(0..1_000_000, None), part(0..1_000_000, None)];
        let mut x = Xchg::spawn(parts, cancel.clone());
        x.next().unwrap();
        cancel.cancel();
        // Drain to completion: must terminate promptly with Cancelled or
        // clean end-of-stream, never hang.
        loop {
            match x.next() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(VwError::Cancelled) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
    }

    #[test]
    fn worker_panic_surfaces_as_error_not_hang() {
        // Regression: a panic inside a worker used to just drop the sender,
        // ending the stream early with no error at the consumer.
        struct Panicking {
            schema: Schema,
            served: usize,
        }
        impl Operator for Panicking {
            fn schema(&self) -> &Schema {
                &self.schema
            }
            fn name(&self) -> &'static str {
                "Panicking"
            }
            fn next(&mut self) -> Result<Option<Batch>> {
                if self.served >= 2 {
                    panic!("worker exploded mid-stream");
                }
                self.served += 1;
                let col = crate::vector::Vector::new(vw_common::ColData::I64(vec![1, 2]));
                Ok(Some(Batch::new(vec![col])))
            }
        }
        let schema = Schema::new(vec![Field::not_null("v", TypeId::I64)]).unwrap();
        let parts: Vec<BoxedOp> =
            vec![Box::new(Panicking { schema, served: 0 }), part(0..64, None)];
        let mut x = Xchg::spawn(parts, CancelToken::new());
        let mut saw_panic_error = false;
        loop {
            match x.next() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(VwError::Exec(msg)) => {
                    assert!(msg.contains("panicked"), "{msg}");
                    assert!(msg.contains("worker exploded"), "{msg}");
                    saw_panic_error = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_panic_error, "panic must surface as VwError::Exec");
        drop(x); // join must not deadlock after the panic
    }

    #[test]
    fn drop_mid_stream_joins_workers() {
        let parts = vec![part(0..100_000, None)];
        let mut x = Xchg::spawn(parts, CancelToken::new());
        x.next().unwrap();
        drop(x); // must not deadlock
    }

    #[test]
    fn drop_with_saturated_channel_joins_blocked_workers() {
        // Regression for the shutdown path: fast producers saturate the
        // bounded channel (capacity 2 per worker) and block inside send.
        // Dropping the exchange mid-stream must drain/unblock them and
        // join every thread — promptly, not after the workers pushed all
        // remaining batches.
        let parts: Vec<BoxedOp> =
            (0..4).map(|i| part(i * 1_000_000..(i + 1) * 1_000_000, None)).collect();
        let mut x = Xchg::spawn(parts, CancelToken::new());
        x.next().unwrap();
        // Give the workers time to fill every channel slot and block.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let t0 = std::time::Instant::now();
        drop(x); // must unblock the parked senders and join
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "drop must not wait for the full streams to drain"
        );
    }

    #[test]
    fn pool_mode_merges_all_partitions_on_one_worker() {
        // The acid test for non-blocking fragments: a single pool worker
        // must drive 4 fragments to completion (fragments park on a full
        // buffer instead of blocking the only worker).
        let pool = WorkerPool::new(1);
        let parts = vec![
            part(0..100, None),
            part(100..250, None),
            part(250..300, None),
            part(300..1000, None),
        ];
        let mut x = Xchg::spawn_on(&pool, parts, CancelToken::new());
        let out = drain(&mut x).unwrap();
        assert_eq!(out.rows(), 1000);
        let mut vals: Vec<i64> = (0..1000)
            .map(|i| match out.row_values(i)[0] {
                Value::I64(v) => v,
                _ => panic!(),
            })
            .collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..1000).collect::<Vec<_>>());
        drop(x);
        pool.shutdown();
    }

    #[test]
    fn pool_mode_error_and_panic_surface() {
        let pool = WorkerPool::new(2);
        let parts = vec![part(0..100_000, None), part(0..1000, Some(32))];
        let mut x = Xchg::spawn_on(&pool, parts, CancelToken::new());
        let mut saw_error = false;
        loop {
            match x.next() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    saw_error = true;
                    assert!(matches!(e, VwError::Exec(_)));
                    break;
                }
            }
        }
        assert!(saw_error);
        drop(x);

        struct Panicking {
            schema: Schema,
        }
        impl Operator for Panicking {
            fn schema(&self) -> &Schema {
                &self.schema
            }
            fn name(&self) -> &'static str {
                "Panicking"
            }
            fn next(&mut self) -> Result<Option<Batch>> {
                panic!("fragment exploded");
            }
        }
        let schema = Schema::new(vec![Field::not_null("v", TypeId::I64)]).unwrap();
        let parts: Vec<BoxedOp> = vec![Box::new(Panicking { schema }), part(0..64, None)];
        let mut x = Xchg::spawn_on(&pool, parts, CancelToken::new());
        let mut saw_panic = false;
        loop {
            match x.next() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(VwError::Exec(msg)) => {
                    assert!(msg.contains("panicked"), "{msg}");
                    saw_panic = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_panic, "fragment panic must surface as VwError::Exec");
        drop(x);
        pool.shutdown();
    }

    #[test]
    fn pool_mode_cancellation_and_drop_reclaim_fragments() {
        let pool = WorkerPool::new(1);
        let cancel = CancelToken::new();
        let parts = vec![part(0..1_000_000, None), part(0..1_000_000, None)];
        let mut x = Xchg::spawn_on(&pool, parts, cancel.clone());
        x.next().unwrap();
        cancel.cancel();
        loop {
            match x.next() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(VwError::Cancelled) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        drop(x);

        // Drop mid-stream with a saturated buffer: fragments are parked;
        // drop must discard them and return promptly.
        let parts: Vec<BoxedOp> =
            (0..4).map(|i| part(i * 1_000_000..(i + 1) * 1_000_000, None)).collect();
        let mut x = Xchg::spawn_on(&pool, parts, CancelToken::new());
        x.next().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let t0 = std::time::Instant::now();
        drop(x);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "drop must not wait for the full streams to drain"
        );
        pool.shutdown();
    }

    #[test]
    fn pool_mode_interleaves_two_queries_on_one_worker() {
        // Two "queries" (exchanges) share a 1-worker pool: both must make
        // progress — the quantum yield prevents either from monopolizing
        // the worker until done.
        let pool = WorkerPool::new(1);
        let mut a = Xchg::spawn_on(&pool, vec![part(0..100_000, None)], CancelToken::new());
        let mut b = Xchg::spawn_on(&pool, vec![part(0..100_000, None)], CancelToken::new());
        let mut rows_a = 0;
        let mut rows_b = 0;
        // Alternate consumption; both streams must finish.
        loop {
            let ba = a.next().unwrap();
            let bb = b.next().unwrap();
            if let Some(batch) = &ba {
                rows_a += batch.rows();
            }
            if let Some(batch) = &bb {
                rows_b += batch.rows();
            }
            if ba.is_none() && bb.is_none() {
                break;
            }
        }
        assert_eq!(rows_a, 100_000);
        assert_eq!(rows_b, 100_000);
        pool.shutdown();
    }

    #[test]
    fn worker_morsel_counts_land_in_profile() {
        use crate::morsel::MorselSource;
        use vw_pdt::MergeItem;
        let src = MorselSource::new(vec![MergeItem::Stable { sid: 0, len: 100 }], 10, 2);
        // Simulate the workers' claims (the real claims happen inside the
        // scans; here the counts are what matters).
        let mut buf = Vec::new();
        while src.claim_into(0, &mut buf) {}
        let parts = vec![part(0..10, None), part(0..10, None)];
        let mut x = Xchg::spawn(parts, CancelToken::new()).with_sources(vec![src]);
        let out = drain(&mut x).unwrap();
        assert_eq!(out.rows(), 20);
        let p = Operator::profile(&x).unwrap();
        assert_eq!(p.worker_morsels, vec![10, 0], "per-worker claims collected at stream end");
        assert!((p.morsel_balance() - 2.0).abs() < 1e-9, "collapse shows as max/mean = workers");
    }
}
