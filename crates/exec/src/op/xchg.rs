//! Xchg — the Volcano-style exchange operator for multi-core parallelism.
//!
//! The paper: "The Vectorwise rewriter was used to implement a Volcano-style
//! query parallelizer". The rewriter marks an order-insensitive plan
//! fragment for parallel execution (see `vw_rewriter::parallel`); the
//! compiler's pipeline factory then builds `DOP` clones of the fragment
//! that **share one [`MorselSource`] per scan** — workers pull
//! `morsel_rows`-sized claims until the dispenser runs dry, so a slow
//! worker claims fewer morsels instead of stranding a pre-assigned static
//! row range. `Xchg` runs each clone on its own thread and merges their
//! batch streams through a bounded channel. Cancellation propagates
//! through the shared [`CancelToken`]; errors from any worker surface on
//! the consumer side. When the stream completes, the per-worker morsel
//! counts are folded into this operator's [`OpProfile`] (the
//! scheduling-balance observable in `EXPLAIN ANALYZE`).

use super::{BoxedOp, Operator};
use crate::cancel::CancelToken;
use crate::morsel::MorselSource;
use crate::partition::panic_error;
use crate::profile::OpProfile;
use crate::vector::Batch;
use crossbeam::channel::{bounded, Receiver};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use vw_common::{Result, Schema, VwError};

/// Exchange operator: merges the outputs of N worker-driven partitions.
pub struct Xchg {
    schema: Schema,
    rx: Option<Receiver<Result<Batch>>>,
    workers: Vec<JoinHandle<()>>,
    /// Local shutdown signal for this operator's workers only. The
    /// query-wide token is shared with every operator in the plan and must
    /// NOT be cancelled when the exchange is merely dropped after a normal
    /// drain — that would poison the rest of the still-running query.
    local_cancel: CancelToken,
    /// The fragment's morsel dispensers (one per shared scan); read at
    /// stream end for the per-worker claim counts.
    sources: Vec<Arc<MorselSource>>,
    n_workers: usize,
    profile: OpProfile,
    done: bool,
}

impl Xchg {
    /// Spawn one worker per partition operator. Each worker drains its
    /// operator and pushes batches into a bounded channel (capacity 2 per
    /// worker keeps producers slightly ahead without unbounded buffering).
    pub fn spawn(partitions: Vec<BoxedOp>, query_cancel: CancelToken) -> Xchg {
        assert!(!partitions.is_empty());
        let schema = partitions[0].schema().clone();
        let local_cancel = CancelToken::new();
        let (tx, rx) = bounded::<Result<Batch>>(partitions.len() * 2);
        let mut workers = Vec::with_capacity(partitions.len());
        for mut part in partitions {
            let tx = tx.clone();
            let query_cancel = query_cancel.clone();
            let local_cancel = local_cancel.clone();
            workers.push(std::thread::spawn(move || {
                // catch_unwind: a panicking partition operator must surface
                // as an error on the channel, not silently drop the sender
                // and strand the consumer with a truncated stream.
                let unwound = catch_unwind(AssertUnwindSafe(|| loop {
                    if local_cancel.is_cancelled() {
                        break; // silent: the consumer initiated shutdown
                    }
                    if query_cancel.is_cancelled() {
                        let _ = tx.send(Err(VwError::Cancelled));
                        break;
                    }
                    match part.next() {
                        Ok(Some(batch)) => {
                            if tx.send(Ok(batch)).is_err() {
                                break; // consumer dropped
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            break;
                        }
                    }
                }));
                if let Err(payload) = unwound {
                    let _ = tx.send(Err(panic_error("Xchg partition", payload)));
                }
            }));
        }
        drop(tx); // channel closes when the last worker finishes
        let n_workers = workers.len();
        Xchg {
            schema,
            rx: Some(rx),
            workers,
            local_cancel,
            sources: Vec::new(),
            n_workers,
            profile: OpProfile::new("Xchg"),
            done: false,
        }
    }

    /// Attach the fragment's morsel dispensers so the per-worker claim
    /// counts land in this operator's profile when the stream completes.
    /// Consumer `w` of every source must be worker `w`'s scan (the
    /// compiler's pipeline factory registers them in worker order).
    pub fn with_sources(mut self, sources: Vec<Arc<MorselSource>>) -> Xchg {
        self.sources = sources;
        self
    }

    /// Fold the dispensers' per-consumer claim counts into the profile
    /// (idempotent: overwrites).
    fn collect_worker_morsels(&mut self) {
        if self.sources.is_empty() {
            return;
        }
        let mut per_worker = vec![0u64; self.n_workers];
        for src in &self.sources {
            for (w, c) in src.claim_counts().into_iter().enumerate() {
                if let Some(slot) = per_worker.get_mut(w) {
                    *slot += c;
                }
            }
        }
        self.profile.worker_morsels = per_worker;
    }
}

impl Operator for Xchg {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "Xchg"
    }

    fn profile(&self) -> Option<&OpProfile> {
        Some(&self.profile)
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        let Some(rx) = &self.rx else {
            return Ok(None);
        };
        match rx.recv() {
            Ok(Ok(batch)) => {
                self.profile.invocations += 1;
                self.profile.rows_out += batch.rows() as u64;
                Ok(Some(batch))
            }
            Ok(Err(e)) => {
                // Stop the sibling workers; the error propagates upward.
                self.local_cancel.cancel();
                self.done = true;
                self.collect_worker_morsels();
                Err(e)
            }
            Err(_) => {
                self.done = true;
                self.collect_worker_morsels();
                Ok(None)
            }
        }
    }
}

impl Drop for Xchg {
    fn drop(&mut self) {
        // Stop our own workers (never the query-wide token), then *drain*
        // the channel before dropping it: a producer blocked on a full
        // bounded channel wakes as soon as a slot frees (or the receiver
        // disconnects), observes the local cancel, and exits — the drain
        // makes that independent of whether the channel implementation
        // wakes blocked senders on receiver drop. Only then join.
        self.local_cancel.cancel();
        if let Some(rx) = &self.rx {
            while rx.try_recv().is_ok() {}
        }
        self.rx = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::drain;
    use crate::op::simple::Values;
    use vw_common::{Field, Schema, TypeId, Value};

    fn part(range: std::ops::Range<i64>, fail_at: Option<i64>) -> BoxedOp {
        struct Failing {
            inner: Values,
            fail_at: Option<i64>,
            seen: i64,
        }
        impl Operator for Failing {
            fn schema(&self) -> &Schema {
                self.inner.schema()
            }
            fn name(&self) -> &'static str {
                "Failing"
            }
            fn next(&mut self) -> Result<Option<Batch>> {
                if let Some(f) = self.fail_at {
                    if self.seen >= f {
                        return Err(VwError::Exec("boom".into()));
                    }
                }
                let b = self.inner.next()?;
                if let Some(b) = &b {
                    self.seen += b.rows() as i64;
                }
                Ok(b)
            }
        }
        let schema = Schema::new(vec![Field::not_null("v", TypeId::I64)]).unwrap();
        let rows = range.map(|v| vec![Value::I64(v)]).collect();
        Box::new(Failing {
            inner: Values::new(schema, rows, 16, CancelToken::new()),
            fail_at,
            seen: 0,
        })
    }

    #[test]
    fn merges_all_partitions() {
        let parts = vec![part(0..100, None), part(100..250, None), part(250..300, None)];
        let mut x = Xchg::spawn(parts, CancelToken::new());
        let out = drain(&mut x).unwrap();
        assert_eq!(out.rows(), 300);
        let mut vals: Vec<i64> = (0..300)
            .map(|i| match out.row_values(i)[0] {
                Value::I64(v) => v,
                _ => panic!(),
            })
            .collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn worker_error_propagates() {
        let parts = vec![part(0..1000, None), part(0..1000, Some(32))];
        let mut x = Xchg::spawn(parts, CancelToken::new());
        let mut saw_error = false;
        loop {
            match x.next() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    saw_error = true;
                    assert!(matches!(e, VwError::Exec(_)));
                    break;
                }
            }
        }
        assert!(saw_error);
    }

    #[test]
    fn cancellation_stops_workers() {
        let cancel = CancelToken::new();
        let parts = vec![part(0..1_000_000, None), part(0..1_000_000, None)];
        let mut x = Xchg::spawn(parts, cancel.clone());
        x.next().unwrap();
        cancel.cancel();
        // Drain to completion: must terminate promptly with Cancelled or
        // clean end-of-stream, never hang.
        loop {
            match x.next() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(VwError::Cancelled) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
    }

    #[test]
    fn worker_panic_surfaces_as_error_not_hang() {
        // Regression: a panic inside a worker used to just drop the sender,
        // ending the stream early with no error at the consumer.
        struct Panicking {
            schema: Schema,
            served: usize,
        }
        impl Operator for Panicking {
            fn schema(&self) -> &Schema {
                &self.schema
            }
            fn name(&self) -> &'static str {
                "Panicking"
            }
            fn next(&mut self) -> Result<Option<Batch>> {
                if self.served >= 2 {
                    panic!("worker exploded mid-stream");
                }
                self.served += 1;
                let col = crate::vector::Vector::new(vw_common::ColData::I64(vec![1, 2]));
                Ok(Some(Batch::new(vec![col])))
            }
        }
        let schema = Schema::new(vec![Field::not_null("v", TypeId::I64)]).unwrap();
        let parts: Vec<BoxedOp> =
            vec![Box::new(Panicking { schema, served: 0 }), part(0..64, None)];
        let mut x = Xchg::spawn(parts, CancelToken::new());
        let mut saw_panic_error = false;
        loop {
            match x.next() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(VwError::Exec(msg)) => {
                    assert!(msg.contains("panicked"), "{msg}");
                    assert!(msg.contains("worker exploded"), "{msg}");
                    saw_panic_error = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_panic_error, "panic must surface as VwError::Exec");
        drop(x); // join must not deadlock after the panic
    }

    #[test]
    fn drop_mid_stream_joins_workers() {
        let parts = vec![part(0..100_000, None)];
        let mut x = Xchg::spawn(parts, CancelToken::new());
        x.next().unwrap();
        drop(x); // must not deadlock
    }

    #[test]
    fn drop_with_saturated_channel_joins_blocked_workers() {
        // Regression for the shutdown path: fast producers saturate the
        // bounded channel (capacity 2 per worker) and block inside send.
        // Dropping the exchange mid-stream must drain/unblock them and
        // join every thread — promptly, not after the workers pushed all
        // remaining batches.
        let parts: Vec<BoxedOp> =
            (0..4).map(|i| part(i * 1_000_000..(i + 1) * 1_000_000, None)).collect();
        let mut x = Xchg::spawn(parts, CancelToken::new());
        x.next().unwrap();
        // Give the workers time to fill every channel slot and block.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let t0 = std::time::Instant::now();
        drop(x); // must unblock the parked senders and join
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "drop must not wait for the full streams to drain"
        );
    }

    #[test]
    fn worker_morsel_counts_land_in_profile() {
        use crate::morsel::MorselSource;
        use vw_pdt::MergeItem;
        let src = MorselSource::new(vec![MergeItem::Stable { sid: 0, len: 100 }], 10, 2);
        // Simulate the workers' claims (the real claims happen inside the
        // scans; here the counts are what matters).
        let mut buf = Vec::new();
        while src.claim_into(0, &mut buf) {}
        let parts = vec![part(0..10, None), part(0..10, None)];
        let mut x = Xchg::spawn(parts, CancelToken::new()).with_sources(vec![src]);
        let out = drain(&mut x).unwrap();
        assert_eq!(out.rows(), 20);
        let p = Operator::profile(&x).unwrap();
        assert_eq!(p.worker_morsels, vec![10, 0], "per-worker claims collected at stream end");
        assert!((p.morsel_balance() - 2.0).abs() < 1e-9, "collapse shows as max/mean = workers");
    }
}
