//! Vectorized hash join over the flat hash table.
//!
//! Builds a [`FlatTable`] on the right child — key and payload columns are
//! appended to *contiguous* vectors (no per-key bucket `Vec`s) and rows are
//! linked through the table's chain array. Probing is vector-at-a-time:
//! hash the whole probe key vector, gather candidate chain heads for every
//! lane, then iteratively re-probe only the still-active lanes through a
//! [`SelVec`], with one-word hash rejection before any key comparison. All
//! probe scratch is reused across batches, so the steady-state loop
//! allocates nothing.
//!
//! With [`HashJoin::with_parallel_build`] the build side radix-partitions
//! across worker threads: build input stages until the cost gate
//! (`min_rows`) proves the build is big enough, then every batch's key
//! hashes are split by their top radix bits and scattered to `P` private
//! [`FlatTable`] shards, each inserted and `finalize()`d on its own thread
//! (see [`crate::partition`]). Probes hash once, split by the same radix
//! bits into reused per-partition `SelVec`s, and run the ordinary fused
//! kernels shard-wise — each against a table `P`× smaller. Shard-local
//! build row ids are rebased onto the concatenated global build columns,
//! so output assembly is identical to the serial path.
//!
//! Supports inner, left outer, left semi, left anti, and the **NULL-aware
//! left anti join** that gives `NOT IN` its treacherous SQL semantics — the
//! paper singles out exactly this: "intricacies of the SQL semantics of
//! anti-joins added significant complexity".
//!
//! NULL-aware anti join semantics (`x NOT IN (SELECT k ...)`):
//! * a probe row whose key matches any build row is dropped;
//! * if the build side contains **any** NULL key, every non-matching probe
//!   row evaluates to NULL (dropped) — so the operator emits nothing;
//! * a probe row with a NULL key is dropped unless the build side is empty;
//! * if the build side is empty, **all** probe rows pass (even NULL keys).

use super::{BoxedOp, Operator};
use crate::cancel::CancelToken;
use crate::hashtable::{self, FlatTable, EMPTY};
use crate::morsel::BatchPool;
use crate::partition::{
    RadixRouter, ShardSet, ShardWorker, SpillConfig, DEFAULT_PARALLEL_BUILD_MIN_ROWS,
};
use crate::profile::OpProfile;
use crate::program::{ExprProgram, VecRef, VectorPool};
use crate::spill::{self, SpillScan};
use crate::vector::{Batch, Vector};
use std::sync::Arc;
use std::time::Instant;
use vw_common::{ColData, Result, Schema, SelVec, TypeId, VwError};
use vw_service::WorkerPool;
use vw_storage::SpillFile;

/// Join variants supported by the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Emit matching pairs.
    Inner,
    /// Emit matching pairs plus unmatched left rows padded with NULLs.
    LeftOuter,
    /// Emit left rows with at least one match (EXISTS / IN).
    LeftSemi,
    /// Emit left rows with no match (NOT EXISTS).
    LeftAnti,
    /// NOT IN: anti join with three-valued NULL semantics (see module doc).
    NullAwareLeftAnti,
}

impl JoinType {
    /// Does the output include right-side columns?
    pub fn emits_right(self) -> bool {
        matches!(self, JoinType::Inner | JoinType::LeftOuter)
    }

    /// Does a lane stop probing at its first match (existence semantics)?
    fn first_match_only(self) -> bool {
        !matches!(self, JoinType::Inner | JoinType::LeftOuter)
    }
}

/// Per-batch probe scratch, reused across batches so the steady-state
/// probe loop is allocation-free.
#[derive(Default)]
struct ProbeScratch {
    /// Per-column u64 projection feeding the hash kernels.
    lanes: Vec<u64>,
    /// Combined key hash per lane.
    hashes: Vec<u64>,
    /// Candidate handle per lane (chain row / finalized slot index;
    /// garbage outside the active set).
    cand: Vec<u32>,
    /// Row ids behind `cand` (see `FlatTable::candidate_rows`).
    rows: Vec<u32>,
    /// Live lanes of the incoming batch.
    live: SelVec,
    /// Live lanes with no NULL key component.
    nonnull: SelVec,
    /// Lanes still walking a chain; ping-pongs with `next_active`.
    active: SelVec,
    next_active: SelVec,
    /// Lanes passing full key comparison this round.
    matched: SelVec,
    /// keys_match_sel column ping-pong buffer.
    tmp: SelVec,
    /// Per-lane "has matched" flag (semi/anti/outer bookkeeping).
    matched_flags: Vec<bool>,
    /// Per-lane "routed to a spilled partition" flag (grace probes only;
    /// cleared after the lanes are filtered out of `live`/`nonnull`).
    deferred_flags: Vec<bool>,
    /// Staged-probe buffers for the fused fast path.
    buf: hashtable::ProbeBuf,
    /// Output pairs: probe position / build row (EMPTY pads outer misses).
    out_probe: Vec<u32>,
    out_build: Vec<u32>,
    /// Key-program results for the current batch (refs into the pool).
    refs: Vec<VecRef>,
}

/// One radix partition's build side: the shard's key/payload rows and
/// staged hashes, bulk-built into a private finalized table at the end.
struct JoinShard {
    keys: Vec<Vector>,
    cols: Vec<Vector>,
    hashes: Vec<u64>,
    table: FlatTable,
}

/// Gathered build rows for one (batch, shard) pair, scattered by radix.
struct JoinPacket {
    keys: Vec<Vector>,
    cols: Vec<Vector>,
    hashes: Vec<u64>,
}

impl ShardWorker for JoinShard {
    type Packet = JoinPacket;
    type Output = JoinShard;

    fn absorb(&mut self, pkt: JoinPacket) -> Result<()> {
        for (dst, src) in self.keys.iter_mut().zip(&pkt.keys) {
            dst.extend_range(src, 0, src.len());
        }
        for (dst, src) in self.cols.iter_mut().zip(&pkt.cols) {
            dst.extend_range(src, 0, src.len());
        }
        self.hashes.extend_from_slice(&pkt.hashes);
        Ok(())
    }

    fn finish(mut self) -> Result<JoinShard> {
        // Bulk CSR construction — the expensive random-access build phase
        // — runs P-wise in parallel on the workers, each over a table P×
        // smaller (and that much more cache-resident).
        self.table = FlatTable::build_csr(&self.hashes);
        self.hashes = Vec::new();
        Ok(self)
    }
}

/// Partitioned build state after the workers are joined: one finalized
/// table per radix shard plus each shard's base offset into the global
/// (shard-order concatenated) build columns. Grace builds reuse this for
/// their resident partitions (a spilled partition holds an empty table —
/// its probe lanes are diverted to a spill file before any probe runs).
struct ShardedJoin {
    router: RadixRouter,
    tables: Vec<FlatTable>,
    bases: Vec<u32>,
}

/// One grace partition's in-memory staging: the gathered key/payload rows
/// and their hashes, waiting to become a CSR table — or to be evicted to a
/// spill file if the memory governor picks this partition as a victim.
struct GraceStage {
    keys: Vec<Vector>,
    cols: Vec<Vector>,
    hashes: Vec<u64>,
}

impl GraceStage {
    fn rows(&self) -> usize {
        self.hashes.len()
    }
}

/// Memory-governed (grace) build state: the radix router on this
/// operator's hash-bit stratum, one staging slot per partition
/// (`None` once the partition spilled), the build/probe spill files of
/// spilled partitions, and the per-partition bytes charged to the shared
/// [`MemBudget`](crate::partition::MemBudget).
struct GraceJoin {
    cfg: SpillConfig,
    router: RadixRouter,
    stages: Vec<Option<GraceStage>>,
    files: Vec<Option<SpillFile>>,
    probe_files: Vec<Option<SpillFile>>,
    charged: Vec<usize>,
    any_spilled: bool,
}

impl GraceJoin {
    fn new(cfg: SpillConfig, build_keys: &[Vector], build_cols: &[Vector]) -> GraceJoin {
        let router = RadixRouter::at_depth(cfg.partitions, cfg.depth);
        let p = router.partitions();
        let make_stage = || GraceStage {
            keys: build_keys.iter().map(|v| Vector::new(ColData::new(v.type_id()))).collect(),
            cols: build_cols.iter().map(|v| Vector::new(ColData::new(v.type_id()))).collect(),
            hashes: Vec::new(),
        };
        GraceJoin {
            cfg,
            router,
            stages: (0..p).map(|_| Some(make_stage())).collect(),
            files: (0..p).map(|_| None).collect(),
            probe_files: (0..p).map(|_| None).collect(),
            charged: vec![0; p],
            any_spilled: false,
        }
    }

    /// The resident partition holding the most charged bytes (the spill
    /// victim), if any resident partition holds rows at all.
    fn largest_resident(&self) -> Option<usize> {
        (0..self.stages.len())
            .filter(|&si| self.stages[si].as_ref().is_some_and(|st| st.rows() > 0))
            .max_by_key(|&si| self.charged[si])
    }

    /// Evict partition `si`: its staged payload rows move to a fresh spill
    /// file (keys and hashes are recomputed from the payload at
    /// rehydration time — they are program outputs, not stored state) and
    /// its budget charge is returned.
    fn spill_partition(&mut self, si: usize) -> Result<()> {
        let stage = self.stages[si].take().expect("victim is resident");
        let mut file = SpillFile::new(self.cfg.disk.clone());
        if stage.rows() > 0 {
            let n = spill::append_vectors(&mut file, &stage.cols)?;
            self.cfg.metrics.record_write(n as u64);
        }
        self.files[si] = Some(file);
        self.cfg.metrics.record_partition();
        self.any_spilled = true;
        self.cfg.budget.uncharge(self.charged[si]);
        self.charged[si] = 0;
        Ok(())
    }

    /// Return every byte still charged (normal completion zeroes the
    /// entries first; this covers error and KILL unwinds).
    fn uncharge_all(&mut self) {
        for c in &mut self.charged {
            self.cfg.budget.uncharge(*c);
            *c = 0;
        }
    }
}

impl Drop for GraceJoin {
    fn drop(&mut self) {
        self.uncharge_all();
    }
}

/// Approximate bytes a gather of `sel` from `v` will stage (the unit the
/// memory governor charges — matches [`Vector::byte_size`] of the gathered
/// result without materializing it first).
fn gathered_bytes(v: &Vector, sel: &SelVec) -> usize {
    let null_bytes = if v.nulls.is_some() { sel.len() } else { 0 };
    if v.dict_parts().is_some() {
        // Dict-coded gathers stay coded: 4 bytes of code per lane (the
        // shared dictionary is not copied).
        return sel.len() * 4 + null_bytes;
    }
    let data_bytes = match &v.data {
        ColData::Bool(_) | ColData::I8(_) => sel.len(),
        ColData::I16(_) => sel.len() * 2,
        ColData::I32(_) | ColData::Date(_) => sel.len() * 4,
        ColData::I64(_) | ColData::F64(_) => sel.len() * 8,
        ColData::Str(s) => sel.iter().map(|p| s[p].len() + 24).sum(),
    };
    data_bytes + null_bytes
}

/// Hash join operator (right side = build, left side = probe).
pub struct HashJoin {
    left: BoxedOp,
    right: Option<BoxedOp>,
    left_keys: Vec<ExprProgram>,
    right_keys: Vec<ExprProgram>,
    join_type: JoinType,
    schema: Schema,
    pool: VectorPool,
    cancel: CancelToken,
    // Build state: contiguous columns indexed by the table's row ids
    // (global ids — shard rows are concatenated in shard order).
    build_cols: Vec<Vector>,
    build_keys: Vec<Vector>,
    table: FlatTable,
    /// Partitioned build state (None = serial single-table build).
    sharded: Option<ShardedJoin>,
    /// Radix partitions for the parallel build (1 = serial).
    par_shards: usize,
    /// Staged build rows below which the build stays serial (the exec-side
    /// cost gate: thread spawn + scatter only pay off past this point).
    par_min_rows: usize,
    /// Shared worker pool for the parallel build (None = dedicated
    /// threads per shard, the embedder/test path).
    task_pool: Option<Arc<WorkerPool>>,
    /// Hashes of staged build rows (insert is deferred until the serial /
    /// partitioned decision is made).
    staged_hashes: Vec<u64>,
    build_has_null_key: bool,
    built: bool,
    scratch: ProbeScratch,
    batch_pool: Option<BatchPool>,
    out_types: Vec<TypeId>,
    /// Memory-governed spilling, when configured ([`HashJoin::with_spill`]).
    spill: Option<SpillConfig>,
    /// Grace build/probe state (Some once a governed build started).
    grace: Option<GraceJoin>,
    /// Child schemas, kept for replaying spilled rows through
    /// [`SpillScan`]s in the deferred phase.
    probe_schema: Schema,
    build_schema: Schema,
    /// Spilled partition pairs awaiting the deferred (recursive) joins.
    deferred: Vec<(SpillFile, SpillFile)>,
    /// The recursive join currently draining one spilled partition pair.
    inner: Option<Box<HashJoin>>,
    /// Has the probe input been exhausted (deferred phase reached)?
    probe_done: bool,
    /// Probe/build input columns read by non-trivial key programs:
    /// encoded vectors are flattened before the programs run. Bare-column
    /// keys stay coded (hash/compare paths handle dict codes).
    flat_cols_probe: Vec<usize>,
    flat_cols_build: Vec<usize>,
    profile: OpProfile,
}

/// Columns read by the non-bare programs of `progs` (sorted, deduped);
/// bare column references pass encoded vectors through untouched.
fn nontrivial_cols(progs: &[ExprProgram]) -> Vec<usize> {
    let mut out: Vec<usize> = progs
        .iter()
        .filter(|p| !p.is_bare_col())
        .flat_map(|p| p.cols_used().iter().copied())
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

impl HashJoin {
    /// Create a join; `schema` must match the join type's output layout
    /// (left columns, then right columns for inner/outer joins).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        left: BoxedOp,
        right: BoxedOp,
        left_keys: Vec<ExprProgram>,
        right_keys: Vec<ExprProgram>,
        join_type: JoinType,
        schema: Schema,
        cancel: CancelToken,
    ) -> HashJoin {
        assert_eq!(left_keys.len(), right_keys.len());
        assert!(!left_keys.is_empty(), "joins require at least one key");
        let out_types = schema.fields.iter().map(|f| f.ty).collect();
        let probe_schema = left.schema().clone();
        let build_schema = right.schema().clone();
        let flat_cols_probe = nontrivial_cols(&left_keys);
        let flat_cols_build = nontrivial_cols(&right_keys);
        HashJoin {
            left,
            right: Some(right),
            left_keys,
            right_keys,
            join_type,
            schema,
            pool: VectorPool::new(),
            cancel,
            build_cols: Vec::new(),
            build_keys: Vec::new(),
            table: FlatTable::new(),
            sharded: None,
            par_shards: 1,
            par_min_rows: DEFAULT_PARALLEL_BUILD_MIN_ROWS,
            task_pool: None,
            staged_hashes: Vec::new(),
            build_has_null_key: false,
            built: false,
            scratch: ProbeScratch::default(),
            batch_pool: None,
            out_types,
            spill: None,
            grace: None,
            probe_schema,
            build_schema,
            deferred: Vec::new(),
            inner: None,
            probe_done: false,
            flat_cols_probe,
            flat_cols_build,
            profile: OpProfile::new("HashJoin"),
        }
    }

    /// Join the pipeline's batch free-list: build and probe input batches
    /// are recycled once staged/gathered, and output batches lease
    /// recycled buffers instead of allocating per batch.
    pub fn with_batch_pool(mut self, pool: BatchPool) -> HashJoin {
        self.batch_pool = Some(pool);
        self
    }

    /// Enable the radix-partitioned parallel build: `shards` worker threads
    /// (rounded up to a power of two), engaged once at least `min_rows`
    /// build rows are staged. `shards <= 1` keeps the serial build.
    /// Ignored when a memory budget is attached ([`HashJoin::with_spill`]
    /// wins — a governed build must own its shard lifecycle to evict).
    pub fn with_parallel_build(mut self, shards: usize, min_rows: usize) -> HashJoin {
        self.par_shards = shards.max(1).next_power_of_two();
        self.par_min_rows = min_rows;
        self
    }

    /// Run the parallel build's shards as cooperative tasks on the
    /// engine's shared worker pool instead of spawning a thread per shard
    /// (see [`ShardSet::spawn_on`]). The engine always sets this; the
    /// bare-operator path keeps dedicated threads.
    pub fn with_task_pool(mut self, pool: Arc<WorkerPool>) -> HashJoin {
        self.task_pool = Some(pool);
        self
    }

    /// Attach the query's memory governor: the build radix-partitions on
    /// `cfg`'s hash-bit stratum and charges `cfg.budget` as partitions
    /// stage rows. When the query runs over budget, the largest staged
    /// partition evicts its rows to a temp spill file; probe rows routed
    /// to a spilled partition divert to a matching probe spill file, and
    /// after the probe input is exhausted each spilled pair replays
    /// through a recursive `HashJoin` (same keys, same join type, next
    /// hash-bit stratum) whose output streams out as this operator's.
    pub fn with_spill(mut self, cfg: SpillConfig) -> HashJoin {
        self.spill = Some(cfg);
        self
    }

    fn build(&mut self) -> Result<()> {
        let mut right = self.right.take().expect("build once");
        self.build_cols =
            right.schema().fields.iter().map(|f| Vector::new(ColData::new(f.ty))).collect();
        self.build_keys =
            self.right_keys.iter().map(|e| Vector::new(ColData::new(e.type_id()))).collect();
        // Memory-governed build: partition from the first row so any
        // partition can be evicted wholesale when the budget trips.
        if let Some(cfg) = self.spill.take() {
            self.grace = Some(GraceJoin::new(cfg, &self.build_keys, &self.build_cols));
        }
        // Partitioned-build machinery, spawned lazily once the staged row
        // count clears the cost gate (never combined with a governed
        // build — grace owns the shard lifecycle).
        let mut workers: Option<(RadixRouter, ShardSet<JoinShard>)> = None;
        while let Some(mut batch) = right.next()? {
            self.cancel.check()?;
            for &c in &self.flat_cols_build {
                batch.columns[c].ensure_flat();
            }
            // Run the compiled key programs; results live in the pool
            // until `recycle` at the end of this batch.
            self.scratch.refs.clear();
            for prog in &self.right_keys {
                let r = prog.run(&mut self.pool, &batch)?;
                self.scratch.refs.push(r);
            }
            {
                // Single-key joins (the common case) resolve through a
                // stack array — a per-batch `Vec` here would be the one
                // steady-state allocation left in the pipeline.
                let single_key;
                let multi_keys: Vec<&Vector>;
                let keys: &[&Vector] = if self.scratch.refs.len() == 1 {
                    single_key = [self.pool.get(&batch, self.scratch.refs[0])];
                    &single_key
                } else {
                    multi_keys =
                        self.scratch.refs.iter().map(|&r| self.pool.get(&batch, r)).collect();
                    &multi_keys
                };
                let s = &mut self.scratch;
                match &batch.sel {
                    Some(sel) => s.live.clear_and_extend_from_slice(sel.as_slice()),
                    None => s.live.fill_identity(batch.capacity()),
                }
                // NULL keys never match any probe: drop them at build time and
                // remember they existed (NULL-aware anti join needs to know).
                s.live.retain_from(|p| !keys.iter().any(|k| k.is_null(p)), &mut s.nonnull);
                if s.nonnull.len() != s.live.len() {
                    self.build_has_null_key = true;
                }
                if !s.nonnull.is_empty() {
                    hashtable::hash_keys(
                        keys,
                        batch.capacity(),
                        false,
                        &mut s.lanes,
                        &mut s.hashes,
                    );
                    if let Some(g) = &mut self.grace {
                        // Governed build: radix-split and stage (or append
                        // straight to a spilled partition's file), charging
                        // the query budget for every staged byte.
                        g.router.split(&s.hashes, Some(&s.nonnull), batch.capacity());
                        for si in 0..g.stages.len() {
                            let sel = g.router.shard_sel(si);
                            if sel.is_empty() {
                                continue;
                            }
                            match &mut g.stages[si] {
                                Some(stage) => {
                                    let mut delta = sel.len() * 8; // hashes
                                    for (dst, src) in stage.keys.iter_mut().zip(keys) {
                                        delta += gathered_bytes(src, sel);
                                        dst.extend_gather_sel(src, sel);
                                    }
                                    for (dst, src) in stage.cols.iter_mut().zip(&batch.columns) {
                                        delta += gathered_bytes(src, sel);
                                        dst.extend_gather_sel(src, sel);
                                    }
                                    stage.hashes.extend(sel.iter().map(|p| s.hashes[p]));
                                    g.cfg.budget.charge(delta);
                                    g.charged[si] += delta;
                                }
                                None => {
                                    // Already spilled: rows go straight to
                                    // disk (payload only — keys and hashes
                                    // are recomputed at rehydration).
                                    let cols: Vec<Vector> =
                                        batch.columns.iter().map(|v| v.gather(sel)).collect();
                                    let file = g.files[si].as_mut().expect("spilled has file");
                                    let n = spill::append_vectors(file, &cols)?;
                                    g.cfg.metrics.record_write(n as u64);
                                }
                            }
                        }
                        // The governor's spill decision: while the query is
                        // over budget, evict the largest resident partition.
                        while g.cfg.budget.over() {
                            match g.largest_resident() {
                                Some(victim) => g.spill_partition(victim)?,
                                None => break, // nothing left to evict here
                            }
                        }
                    } else {
                        match &mut workers {
                            // Serial / pre-gate: stage rows densely (insert is
                            // deferred until the build size is known).
                            None => {
                                for (dst, src) in self.build_cols.iter_mut().zip(&batch.columns) {
                                    dst.extend_gather_sel(src, &s.nonnull);
                                }
                                for (dst, src) in self.build_keys.iter_mut().zip(keys) {
                                    dst.extend_gather_sel(src, &s.nonnull);
                                }
                                self.staged_hashes.extend(s.nonnull.iter().map(|p| s.hashes[p]));
                            }
                            // Partitioned: radix-scatter this batch to the
                            // shard workers.
                            Some((router, set)) => {
                                router.split(&s.hashes, Some(&s.nonnull), batch.capacity());
                                for si in 0..router.partitions() {
                                    let sel = router.shard_sel(si);
                                    if sel.is_empty() {
                                        continue;
                                    }
                                    let pkt = JoinPacket {
                                        keys: keys.iter().map(|v| v.gather(sel)).collect(),
                                        cols: batch.columns.iter().map(|v| v.gather(sel)).collect(),
                                        hashes: sel.iter().map(|p| s.hashes[p]).collect(),
                                    };
                                    set.send(si, pkt)?;
                                }
                            }
                        }
                    }
                }
            }
            self.pool.recycle();
            if let Some(bp) = &self.batch_pool {
                bp.recycle(batch); // build rows staged: batch goes back
            }
            if workers.is_none()
                && self.grace.is_none()
                && self.par_shards > 1
                && self.staged_hashes.len() >= self.par_min_rows
            {
                workers = Some(self.spawn_build_shards()?);
            }
        }
        let (runs, instrs) = self.pool.take_counters();
        self.profile.record_expr(runs, instrs);
        if let Some(g) = &mut self.grace {
            // Governed finalize: resident partitions bulk-build their CSR
            // tables and concatenate into the global build columns (shard
            // order, exactly like the threaded path); spilled partitions
            // keep an empty table — their probe lanes never reach it.
            let mut tables = Vec::with_capacity(g.stages.len());
            let mut bases = Vec::with_capacity(g.stages.len());
            let mut base: u64 = 0;
            for si in 0..g.stages.len() {
                bases.push(base as u32);
                match &mut g.stages[si] {
                    Some(stage) => {
                        self.profile.record_shard_build(si, stage.rows() as u64);
                        base += stage.rows() as u64;
                        assert!(base < u32::MAX as u64, "join build exceeds u32 rows");
                        for (dst, src) in self.build_keys.iter_mut().zip(&stage.keys) {
                            dst.extend_range(src, 0, src.len());
                        }
                        for (dst, src) in self.build_cols.iter_mut().zip(&stage.cols) {
                            dst.extend_range(src, 0, src.len());
                        }
                        tables.push(FlatTable::build_csr(&stage.hashes));
                        // The stage's rows now live in the globals; free the
                        // staging copies (the budget charge carries over as
                        // the approximate cost of table + globals).
                        *stage =
                            GraceStage { keys: Vec::new(), cols: Vec::new(), hashes: Vec::new() };
                    }
                    None => tables.push(FlatTable::new()),
                }
            }
            self.sharded = Some(ShardedJoin {
                router: RadixRouter::at_depth(g.cfg.partitions, g.cfg.depth),
                tables,
                bases,
            });
            self.profile.sync_spill(&g.cfg.metrics);
            self.staged_hashes = Vec::new();
            self.built = true;
            return Ok(());
        }
        match workers {
            // Below the gate (or serial): one table bulk-built over the
            // staged rows in the bucket-grouped contiguous (CSR) layout,
            // so every probe is a short sequential scan. Staging the whole
            // build first lets even the serial path skip the chain-insert
            // phase and its incremental directory doublings.
            None => self.table = FlatTable::build_csr(&self.staged_hashes),
            // Partitioned: join the workers, then concatenate the shard
            // rows into the global build columns (shard order) so output
            // assembly stays identical to the serial path.
            Some((router, set)) => {
                let shards = set.finish()?;
                let mut tables = Vec::with_capacity(shards.len());
                let mut bases = Vec::with_capacity(shards.len());
                let mut base: u64 = 0;
                for (si, shard) in shards.into_iter().enumerate() {
                    self.profile.record_shard_build(si, shard.table.len() as u64);
                    bases.push(base as u32);
                    base += shard.table.len() as u64;
                    assert!(base < u32::MAX as u64, "join build exceeds u32 rows");
                    for (dst, src) in self.build_keys.iter_mut().zip(&shard.keys) {
                        dst.extend_range(src, 0, src.len());
                    }
                    for (dst, src) in self.build_cols.iter_mut().zip(&shard.cols) {
                        dst.extend_range(src, 0, src.len());
                    }
                    tables.push(shard.table);
                }
                self.sharded = Some(ShardedJoin { router, tables, bases });
            }
        }
        self.staged_hashes = Vec::new();
        self.built = true;
        Ok(())
    }

    /// Spawn the shard workers and flush the staged rows to them (the
    /// moment the staged build crosses the cost gate).
    fn spawn_build_shards(&mut self) -> Result<(RadixRouter, ShardSet<JoinShard>)> {
        let mut router = RadixRouter::new(self.par_shards);
        let make_shard = |_: usize| JoinShard {
            keys: self.build_keys.iter().map(|v| Vector::new(ColData::new(v.type_id()))).collect(),
            cols: self.build_cols.iter().map(|v| Vector::new(ColData::new(v.type_id()))).collect(),
            hashes: Vec::new(),
            table: FlatTable::new(),
        };
        let workers: Vec<JoinShard> = (0..router.partitions()).map(make_shard).collect();
        let mut set = match &self.task_pool {
            Some(pool) => ShardSet::spawn_on(pool, workers, &self.cancel),
            None => ShardSet::spawn(workers, &self.cancel),
        };
        let n = self.staged_hashes.len();
        router.split(&self.staged_hashes, None, n);
        for si in 0..router.partitions() {
            let sel = router.shard_sel(si);
            if sel.is_empty() {
                continue;
            }
            let pkt = JoinPacket {
                keys: self.build_keys.iter().map(|v| v.gather(sel)).collect(),
                cols: self.build_cols.iter().map(|v| v.gather(sel)).collect(),
                hashes: sel.iter().map(|p| self.staged_hashes[p]).collect(),
            };
            set.send(si, pkt)?;
        }
        // The shards own the staged rows now; the globals are rebuilt from
        // the shard outputs (in shard order) when the build completes.
        for v in &mut self.build_keys {
            *v = Vector::new(ColData::new(v.type_id()));
        }
        for v in &mut self.build_cols {
            *v = Vector::new(ColData::new(v.type_id()));
        }
        self.staged_hashes.clear();
        Ok((router, set))
    }

    /// Assemble the output batch from the recorded pairs, gathering into
    /// a leased (or fresh) output batch so steady-state assembly reuses
    /// the buffers the consumer recycled.
    fn assemble(&mut self, batch: &Batch) -> Result<Option<Batch>> {
        let s = &self.scratch;
        if s.out_probe.is_empty() {
            return Ok(None);
        }
        if batch.columns.len()
            + if self.join_type.emits_right() { self.build_cols.len() } else { 0 }
            != self.schema.len()
        {
            return Err(VwError::Plan(format!(
                "join schema arity mismatch: {} vs {}",
                batch.columns.len()
                    + if self.join_type.emits_right() { self.build_cols.len() } else { 0 },
                self.schema.len()
            )));
        }
        let mut out = BatchPool::lease_or_new(
            self.batch_pool.as_ref(),
            &self.out_types,
            0,
            &mut self.profile,
        );
        for (src, dst) in batch.columns.iter().zip(&mut out.columns) {
            src.gather_indices_into(&s.out_probe, dst);
        }
        if self.join_type.emits_right() {
            // One sentinel scan per batch, not per column — only outer
            // joins ever pad, and their all-matched batches skip the
            // NULL-indicator machinery entirely.
            let padded = self.join_type == JoinType::LeftOuter && s.out_build.contains(&EMPTY);
            let right = &mut out.columns[batch.columns.len()..];
            for (src, dst) in self.build_cols.iter().zip(right) {
                if padded {
                    src.gather_indices_padded_into(&s.out_build, EMPTY, dst);
                } else {
                    src.gather_indices_into(&s.out_build, dst);
                }
            }
        }
        Ok(Some(out))
    }

    /// The deferred (grace) phase: once the probe input is exhausted, the
    /// in-memory build state is released back to the governor and each
    /// spilled partition pair replays through a recursive `HashJoin` —
    /// [`SpillScan`]s feed the same key programs and join type, on the
    /// next hash-bit stratum, sharing the same budget and counters — whose
    /// output streams out as this operator's.
    fn next_deferred(&mut self) -> Result<Option<Batch>> {
        if !self.probe_done {
            self.probe_done = true;
            // Resident partitions produced their last row: free the tables
            // and global columns and return their budget charge before the
            // recursive joins start charging for rehydrated builds.
            self.sharded = None;
            self.table = FlatTable::new();
            self.build_cols = Vec::new();
            self.build_keys = Vec::new();
            let g = self.grace.as_mut().expect("deferred phase is grace-only");
            g.uncharge_all();
            for si in 0..g.files.len() {
                g.stages[si] = None;
                match (g.files[si].take(), g.probe_files[si].take()) {
                    // Both sides spilled rows: a deferred pair to join.
                    (Some(bf), Some(pf)) => self.deferred.push((bf, pf)),
                    // Build spilled but no probe rows ever routed there:
                    // no probe row ⇒ no output row (every join type here
                    // is probe-driven) — dropping the file frees it.
                    (Some(_), None) | (None, None) => {}
                    (None, Some(_)) => unreachable!("probe diverted to a resident partition"),
                }
            }
            self.profile.sync_spill(&g.cfg.metrics);
        }
        loop {
            self.cancel.check()?;
            if let Some(inner) = &mut self.inner {
                let t0 = Instant::now();
                match inner.next()? {
                    Some(b) => {
                        self.profile.record(b.rows(), t0.elapsed());
                        return Ok(Some(b));
                    }
                    None => {
                        if let Some(g) = &self.grace {
                            self.profile.sync_spill(&g.cfg.metrics);
                        }
                        self.inner = None;
                    }
                }
            }
            let Some((build_file, probe_file)) = self.deferred.pop() else {
                return Ok(None);
            };
            let g = self.grace.as_ref().expect("deferred phase is grace-only");
            let probe_scan: BoxedOp = Box::new(SpillScan::new(
                probe_file,
                self.probe_schema.clone(),
                self.cancel.clone(),
                g.cfg.metrics.clone(),
            ));
            let build_scan: BoxedOp = Box::new(SpillScan::new(
                build_file,
                self.build_schema.clone(),
                self.cancel.clone(),
                g.cfg.metrics.clone(),
            ));
            let mut inner = HashJoin::new(
                probe_scan,
                build_scan,
                self.left_keys.clone(),
                self.right_keys.clone(),
                self.join_type,
                self.schema.clone(),
                self.cancel.clone(),
            );
            // Recurse with the governor attached (one stratum deeper) until
            // the depth floor; past it the partition builds in memory
            // regardless — 8 strata of 8-way splits divide a build ~16M×
            // before that happens.
            if let Some(deeper) = g.cfg.deeper() {
                inner = inner.with_spill(deeper);
            }
            self.inner = Some(Box::new(inner));
        }
    }
}

/// Vectorized probe of one batch's non-NULL lanes. Fills
/// `scratch.out_probe`/`out_build` for pair-emitting join types and
/// `scratch.matched_flags` for all; returns chain steps visited.
///
/// A free function over disjoint operator fields: the probe keys are pool
/// references, so `&mut self` is off the table while they are alive.
///
/// With a partitioned build (`sharded`), the batch hashes once, splits by
/// the build's radix bits into reused per-partition `SelVec`s, and runs the
/// same kernels shard-wise; emitted build rows are rebased to global ids.
/// `prehashed` promises `scratch.hashes` already holds this batch's key
/// hashes (grace diversion hashed them while routing spilled lanes).
#[allow(clippy::too_many_arguments)]
fn probe_batch(
    table: &FlatTable,
    sharded: Option<&mut ShardedJoin>,
    build_keys: &[Vector],
    join_type: JoinType,
    scratch: &mut ProbeScratch,
    keys: &[&Vector],
    prehashed: bool,
    profile: &mut OpProfile,
) -> u64 {
    let s = scratch;
    let emit_pairs = !join_type.first_match_only();
    let n = keys.first().map_or(0, |k| k.len());
    // Reset per-lane flags only for the lanes this batch owns.
    if s.matched_flags.len() < n {
        s.matched_flags.resize(n, false);
    }
    for p in s.live.iter() {
        s.matched_flags[p] = false;
    }
    let mut chain_steps = 0u64;
    if let Some(sh) = sharded {
        // Partition-wise probe: one hash pass routes every live lane to
        // its shard; each shard probes its (P× smaller) table with the
        // ordinary fused kernels over the sub-selection.
        if !prehashed {
            hashtable::hash_keys(keys, n, false, &mut s.lanes, &mut s.hashes);
        }
        let route_sel = if s.nonnull.len() == n { None } else { Some(&s.nonnull) };
        sh.router.split(&s.hashes, route_sel, n);
        for (si, shard_table) in sh.tables.iter().enumerate() {
            let sel = sh.router.shard_sel(si);
            if sel.is_empty() {
                continue;
            }
            let mut shard_steps = 0u64;
            probe_one(
                shard_table,
                build_keys,
                s,
                keys,
                Some(sel),
                sh.bases[si],
                emit_pairs,
                true,
                &mut shard_steps,
            );
            profile.record_shard_probe(si, sel.len() as u64, shard_steps);
            chain_steps += shard_steps;
        }
        return chain_steps;
    }
    probe_one(table, build_keys, s, keys, None, 0, emit_pairs, false, &mut chain_steps);
    chain_steps
}

/// Probe one table (the serial table or a radix shard) over one lane set.
/// `sel = None` derives the selection from `scratch.nonnull` (serial path);
/// `Some` probes an externally-routed sub-selection. `base` rebases the
/// table's local build row ids onto the global build columns. `prehashed`
/// promises `scratch.hashes` already holds this batch's key hashes.
#[allow(clippy::too_many_arguments)]
fn probe_one(
    table: &FlatTable,
    build_keys: &[Vector],
    s: &mut ProbeScratch,
    keys: &[&Vector],
    sel: Option<&SelVec>,
    base: u32,
    emit_pairs: bool,
    prehashed: bool,
    chain_steps: &mut u64,
) {
    let n = keys.first().map_or(0, |k| k.len());
    // Fast path: single-column keys probe through a fused kernel
    // monomorphized per type — hash, chain walk, and key compare in one
    // pass per lane with no intermediate SelVec rounds or hash buffer.
    // Build-side key columns never hold NULLs (dropped at build), and
    // NULL probe lanes are outside the selection, so a plain data compare
    // is exact. A full selection (no NULLs, dense batch) drops the
    // selection indirection entirely.
    // Encoded keys (dict codes) skip the fused kernel: the general path
    // hashes codes through the per-code projection and compares codes /
    // dict entries in `keys_match_sel` without inflating.
    if keys.len() == 1 && !keys[0].is_encoded() && !build_keys[0].is_encoded() {
        let sel = match sel {
            Some(sub) => Some(sub),
            None if s.nonnull.len() == n => None,
            None => Some(&s.nonnull),
        };
        // Shard-local build rows rebase onto the global columns after the
        // fused pass (only pair emitters record rows).
        let fixup_from = s.out_build.len();
        let mut fused_ran = true;
        macro_rules! fused {
            ($pa:expr, $ba:expr, $hash:expr, $eq:expr) => {{
                let (pa, ba) = ($pa, $ba);
                #[allow(clippy::redundant_closure_call)]
                table.probe_join(
                    n,
                    sel,
                    emit_pairs,
                    |p| $hash(&pa[p]),
                    |p, row| $eq(&pa[p], &ba[(base + row) as usize]),
                    &mut s.matched_flags,
                    &mut s.out_probe,
                    &mut s.out_build,
                    &mut s.buf,
                    chain_steps,
                )
            }};
        }
        hashtable::dispatch_typed_keys!(&keys[0].data, &build_keys[0].data, fused, {
            fused_ran = false;
        });
        if fused_ran {
            if base != 0 {
                for b in &mut s.out_build[fixup_from..] {
                    *b += base;
                }
            }
            return;
        }
    }
    probe_general(table, build_keys, s, keys, sel, base, emit_pairs, prehashed, chain_steps);
}

/// General vectorized probe: gather hash-matching candidates for all
/// lanes, then iteratively confirm keys and re-probe the still-active
/// lanes through `SelVec`s (multi-column or mixed-type keys).
#[allow(clippy::too_many_arguments)]
fn probe_general(
    table: &FlatTable,
    build_keys: &[Vector],
    s: &mut ProbeScratch,
    keys: &[&Vector],
    sel: Option<&SelVec>,
    base: u32,
    emit_pairs: bool,
    prehashed: bool,
    chain_steps: &mut u64,
) {
    let n = keys.first().map_or(0, |k| k.len());
    if !prehashed {
        hashtable::hash_keys(keys, n, false, &mut s.lanes, &mut s.hashes);
    }
    let start_sel = sel.unwrap_or(&s.nonnull);
    // Every lane in `active` holds a hash-matching candidate; the loop
    // below only confirms keys and re-probes the (rare) hash-collision
    // or multi-match lanes.
    table.gather_matching(&s.hashes, start_sel, &mut s.cand, &mut s.active, chain_steps);
    while !s.active.is_empty() {
        table.candidate_rows(&s.cand, &s.active, &mut s.rows);
        if base != 0 {
            // Rebase shard-local rows to global ids *before* the key
            // comparison — the build columns are the concatenated shards.
            for p in s.active.iter() {
                s.rows[p] += base;
            }
        }
        hashtable::keys_match_sel(
            keys,
            build_keys,
            &s.rows,
            &s.active,
            &mut s.tmp,
            &mut s.matched,
            false,
        );
        for p in s.matched.iter() {
            s.matched_flags[p] = true;
            if emit_pairs {
                s.out_probe.push(p as u32);
                s.out_build.push(s.rows[p]);
            }
        }
        if emit_pairs {
            table.advance_matching(
                &s.hashes,
                &s.active,
                &mut s.cand,
                &mut s.next_active,
                chain_steps,
            );
        } else {
            // Existence semantics: matched lanes stop walking.
            let flags = &s.matched_flags;
            s.active.retain_from(|p| !flags[p], &mut s.tmp);
            table.advance_matching(&s.hashes, &s.tmp, &mut s.cand, &mut s.next_active, chain_steps);
        }
        std::mem::swap(&mut s.active, &mut s.next_active);
    }
}

/// Route this batch's probe lanes through the grace router and divert the
/// ones owned by spilled partitions: their full rows (all probe columns)
/// are gathered to the partition's probe spill file, and the lanes are
/// filtered out of `live`/`nonnull` so the in-memory probe and the
/// flag-based emission never see them. A free function over disjoint
/// operator fields (the keys are pool references).
fn divert_spilled_probes(
    g: &mut GraceJoin,
    s: &mut ProbeScratch,
    keys: &[&Vector],
    batch: &Batch,
) -> Result<()> {
    let n = batch.capacity();
    hashtable::hash_keys(keys, n, false, &mut s.lanes, &mut s.hashes);
    g.router.split(&s.hashes, Some(&s.nonnull), n);
    if s.deferred_flags.len() < n {
        s.deferred_flags.resize(n, false);
    }
    let mut any = false;
    for si in 0..g.files.len() {
        if g.files[si].is_none() {
            continue; // resident partition: probed in memory as usual
        }
        let sel = g.router.shard_sel(si);
        if sel.is_empty() {
            continue;
        }
        let cols: Vec<Vector> = batch.columns.iter().map(|v| v.gather(sel)).collect();
        let file = g.probe_files[si].get_or_insert_with(|| SpillFile::new(g.cfg.disk.clone()));
        let written = spill::append_vectors(file, &cols)?;
        g.cfg.metrics.record_write(written as u64);
        for p in sel.iter() {
            s.deferred_flags[p] = true;
        }
        any = true;
    }
    if any {
        {
            let flags = &s.deferred_flags;
            s.nonnull.retain_from(|p| !flags[p], &mut s.tmp);
        }
        std::mem::swap(&mut s.nonnull, &mut s.tmp);
        {
            let flags = &s.deferred_flags;
            s.live.retain_from(|p| !flags[p], &mut s.tmp);
        }
        std::mem::swap(&mut s.live, &mut s.tmp);
        // Clear the flags we set (only spilled partitions' lanes carry
        // them, so this touches exactly the diverted lanes).
        for si in 0..g.files.len() {
            if g.files[si].is_some() {
                for p in g.router.shard_sel(si).iter() {
                    s.deferred_flags[p] = false;
                }
            }
        }
    }
    Ok(())
}

impl Operator for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "HashJoin"
    }

    fn profile(&self) -> Option<&OpProfile> {
        Some(&self.profile)
    }

    fn profile_mut(&mut self) -> Option<&mut OpProfile> {
        Some(&mut self.profile)
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if !self.built {
            let t0 = Instant::now();
            self.build()?;
            self.profile.record_phase(t0.elapsed());
        }
        if self.probe_done {
            return self.next_deferred();
        }
        loop {
            self.cancel.check()?;
            let Some(mut batch) = self.left.next()? else {
                if self.grace.is_some() {
                    return self.next_deferred();
                }
                return Ok(None);
            };
            let t0 = Instant::now();
            self.profile.record_enc_batch(batch.columns.iter().any(|c| c.is_encoded()));
            for &c in &self.flat_cols_probe {
                batch.columns[c].ensure_flat();
            }
            self.scratch.refs.clear();
            for prog in &self.left_keys {
                let r = prog.run(&mut self.pool, &batch)?;
                self.scratch.refs.push(r);
            }
            let (chain_steps, probed);
            {
                // Stack-resolved single key: see the build loop's comment.
                let single_key;
                let multi_keys: Vec<&Vector>;
                let keys: &[&Vector] = if self.scratch.refs.len() == 1 {
                    single_key = [self.pool.get(&batch, self.scratch.refs[0])];
                    &single_key
                } else {
                    multi_keys =
                        self.scratch.refs.iter().map(|&r| self.pool.get(&batch, r)).collect();
                    &multi_keys
                };
                {
                    let s = &mut self.scratch;
                    s.out_probe.clear();
                    s.out_build.clear();
                    match &batch.sel {
                        Some(sel) => s.live.clear_and_extend_from_slice(sel.as_slice()),
                        None => s.live.fill_identity(batch.capacity()),
                    }
                    s.live.retain_from(|p| !keys.iter().any(|k| k.is_null(p)), &mut s.nonnull);
                }

                // NULL-aware anti short-circuits: any build NULL key → nothing
                // can ever pass; empty build side → everything passes. The
                // global build keys cover serial and sharded builds alike —
                // but under grace they hold only *resident* rows, so a
                // spilled partition keeps the build non-empty.
                let build_empty = self.build_keys[0].is_empty()
                    && self.grace.as_ref().is_none_or(|g| !g.any_spilled);
                let skip_probe = self.join_type == JoinType::NullAwareLeftAnti
                    && (self.build_has_null_key || build_empty);
                // Grace diversion: lanes whose partition spilled are
                // gathered to that partition's probe spill file and removed
                // from this batch's live/nonnull sets — their entire join
                // result (matches, padding, anti emission) is produced by
                // the deferred recursive join instead.
                let mut prehashed = false;
                if !skip_probe {
                    if let Some(g) = &mut self.grace {
                        if g.any_spilled && !self.scratch.nonnull.is_empty() {
                            divert_spilled_probes(g, &mut self.scratch, keys, &batch)?;
                            prehashed = true; // diversion filled scratch.hashes
                        }
                    }
                }
                chain_steps = if skip_probe {
                    0
                } else {
                    probe_batch(
                        &self.table,
                        self.sharded.as_mut(),
                        &self.build_keys,
                        self.join_type,
                        &mut self.scratch,
                        keys,
                        prehashed,
                        &mut self.profile,
                    )
                };
                // Skipped probes contribute nothing to the chain-length
                // observable — counting their lanes would dilute the average.
                probed = if skip_probe { 0 } else { self.scratch.nonnull.len() as u64 };
            }
            self.pool.recycle();
            let (runs, instrs) = self.pool.take_counters();
            self.profile.record_expr(runs, instrs);

            // Emit the non-pair join types from the matched flags, in probe
            // order (pair emitters filled out_probe during the walk).
            let s = &mut self.scratch;
            match self.join_type {
                JoinType::Inner => {}
                JoinType::LeftOuter => {
                    // Unmatched live lanes (NULL keys included) pad with NULLs.
                    let flags = &s.matched_flags;
                    for p in s.live.iter() {
                        if !flags[p] {
                            s.out_probe.push(p as u32);
                            s.out_build.push(EMPTY);
                        }
                    }
                }
                JoinType::LeftSemi => {
                    let flags = &s.matched_flags;
                    for p in s.nonnull.iter() {
                        if flags[p] {
                            s.out_probe.push(p as u32);
                        }
                    }
                }
                JoinType::LeftAnti => {
                    // NOT EXISTS: NULL-key probe lanes never match → emitted.
                    let flags = &s.matched_flags;
                    for p in s.live.iter() {
                        if !flags[p] {
                            s.out_probe.push(p as u32);
                        }
                    }
                }
                JoinType::NullAwareLeftAnti => {
                    if self.build_has_null_key {
                        // x NOT IN (..., NULL) is never TRUE: emit nothing.
                    } else if self.build_keys[0].is_empty()
                        && self.grace.as_ref().is_none_or(|g| !g.any_spilled)
                    {
                        // x NOT IN (empty) is TRUE for all x, NULL included.
                        for p in s.live.iter() {
                            s.out_probe.push(p as u32);
                        }
                    } else {
                        let flags = &s.matched_flags;
                        for p in s.nonnull.iter() {
                            if !flags[p] {
                                s.out_probe.push(p as u32);
                            }
                        }
                    }
                }
            }

            let out = self.assemble(&batch)?;
            if let Some(bp) = &self.batch_pool {
                bp.recycle(batch); // probe columns gathered: batch goes back
            }
            self.profile.record_probe(probed, chain_steps);
            match out {
                // `invocations` counts emitted batches; batches probed
                // without output still contribute time and probe counters.
                Some(b) => {
                    self.profile.record(b.rows(), t0.elapsed());
                    return Ok(Some(b));
                }
                None => {
                    self.profile.record_phase(t0.elapsed());
                    continue;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ExprCtx, PhysExpr};
    use crate::op::drain;
    use crate::op::simple::Values;
    use vw_common::{Field, TypeId, Value};

    fn schema_kv(prefix: &str) -> Schema {
        Schema::new(vec![
            Field::nullable(format!("{prefix}k"), TypeId::I64),
            Field::nullable(format!("{prefix}v"), TypeId::Str),
        ])
        .unwrap()
    }

    fn source(prefix: &str, rows: Vec<(Option<i64>, &str)>) -> BoxedOp {
        let rows = rows
            .into_iter()
            .map(|(k, v)| vec![k.map_or(Value::Null, Value::I64), Value::Str(v.to_string())])
            .collect();
        Box::new(Values::new(schema_kv(prefix), rows, 4, CancelToken::new()))
    }

    fn key() -> Vec<ExprProgram> {
        key_cols(&[(0, TypeId::I64)])
    }

    fn key_cols(cols: &[(usize, TypeId)]) -> Vec<ExprProgram> {
        cols.iter()
            .map(|&(i, ty)| ExprProgram::compile(&PhysExpr::ColRef(i, ty), &ExprCtx::default()))
            .collect()
    }

    fn join(left: BoxedOp, right: BoxedOp, jt: JoinType) -> HashJoin {
        let schema =
            if jt.emits_right() { schema_kv("l").join(&schema_kv("r")) } else { schema_kv("l") };
        HashJoin::new(left, right, key(), key(), jt, schema, CancelToken::new())
    }

    fn rows_of(b: &Batch) -> Vec<Vec<Value>> {
        (0..b.rows()).map(|i| b.row_values(i)).collect()
    }

    #[test]
    fn inner_join_matches_pairs() {
        let l = source("l", vec![(Some(1), "a"), (Some(2), "b"), (Some(3), "c")]);
        let r = source("r", vec![(Some(2), "x"), (Some(3), "y"), (Some(3), "z")]);
        let mut j = join(l, r, JoinType::Inner);
        let out = drain(&mut j).unwrap();
        let mut rows = rows_of(&out);
        rows.sort_by_key(|r| (r[0].to_string(), r[3].to_string()));
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], Value::I64(2));
        assert_eq!(rows[1][3], Value::Str("y".into()));
        assert_eq!(rows[2][3], Value::Str("z".into()));
    }

    #[test]
    fn null_keys_never_match_in_inner_join() {
        let l = source("l", vec![(None, "a"), (Some(1), "b")]);
        let r = source("r", vec![(None, "x"), (Some(1), "y")]);
        let mut j = join(l, r, JoinType::Inner);
        let out = drain(&mut j).unwrap();
        assert_eq!(out.rows(), 1);
        assert_eq!(out.row_values(0)[1], Value::Str("b".into()));
    }

    #[test]
    fn left_outer_pads_misses() {
        let l = source("l", vec![(Some(1), "a"), (Some(9), "b"), (None, "c")]);
        let r = source("r", vec![(Some(1), "x")]);
        let mut j = join(l, r, JoinType::LeftOuter);
        let out = drain(&mut j).unwrap();
        let mut rows = rows_of(&out);
        rows.sort_by_key(|r| r[1].to_string());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][2], Value::I64(1)); // matched
        assert_eq!(rows[1][2], Value::Null); // key 9 missed
        assert_eq!(rows[2][2], Value::Null); // NULL key missed
    }

    #[test]
    fn semi_emits_once_per_probe_row() {
        let l = source("l", vec![(Some(1), "a"), (Some(2), "b")]);
        let r = source("r", vec![(Some(1), "x"), (Some(1), "y")]);
        let mut j = join(l, r, JoinType::LeftSemi);
        let out = drain(&mut j).unwrap();
        assert_eq!(out.rows(), 1);
        assert_eq!(out.row_values(0)[1], Value::Str("a".into()));
    }

    #[test]
    fn anti_emits_non_matching_including_null_probe() {
        let l = source("l", vec![(Some(1), "a"), (Some(9), "b"), (None, "c")]);
        let r = source("r", vec![(Some(1), "x")]);
        let mut j = join(l, r, JoinType::LeftAnti);
        let out = drain(&mut j).unwrap();
        let mut names: Vec<String> = rows_of(&out).iter().map(|r| r[1].to_string()).collect();
        names.sort();
        // NOT EXISTS: NULL probe key has no match → emitted.
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn null_aware_anti_with_build_null_emits_nothing() {
        // paper: "intricacies of the SQL semantics of anti-joins".
        // 9 NOT IN (1, NULL) → NULL → row dropped.
        let l = source("l", vec![(Some(9), "b"), (Some(1), "a")]);
        let r = source("r", vec![(Some(1), "x"), (None, "n")]);
        let mut j = join(l, r, JoinType::NullAwareLeftAnti);
        let out = drain(&mut j).unwrap();
        assert_eq!(out.rows(), 0);
    }

    #[test]
    fn null_aware_anti_without_build_null_behaves_like_anti() {
        let l = source("l", vec![(Some(9), "b"), (Some(1), "a"), (None, "c")]);
        let r = source("r", vec![(Some(1), "x")]);
        let mut j = join(l, r, JoinType::NullAwareLeftAnti);
        let out = drain(&mut j).unwrap();
        let names: Vec<String> = rows_of(&out).iter().map(|r| r[1].to_string()).collect();
        // NULL NOT IN (1) → NULL → dropped; 9 NOT IN (1) → true.
        assert_eq!(names, vec!["b"]);
    }

    #[test]
    fn null_aware_anti_empty_build_passes_everything() {
        let l = source("l", vec![(Some(9), "b"), (None, "c")]);
        let r = source("r", vec![]);
        let mut j = join(l, r, JoinType::NullAwareLeftAnti);
        let out = drain(&mut j).unwrap();
        assert_eq!(out.rows(), 2, "x NOT IN (empty) is TRUE for all x");
    }

    #[test]
    fn join_on_string_keys() {
        let schema = Schema::new(vec![Field::nullable("s", TypeId::Str)]).unwrap();
        let mk = |vals: Vec<&str>| -> BoxedOp {
            let rows = vals.into_iter().map(|s| vec![Value::Str(s.into())]).collect();
            Box::new(Values::new(schema.clone(), rows, 8, CancelToken::new()))
        };
        let mut j = HashJoin::new(
            mk(vec!["a", "b", "c"]),
            mk(vec!["b", "c", "d"]),
            key_cols(&[(0, TypeId::Str)]),
            key_cols(&[(0, TypeId::Str)]),
            JoinType::LeftSemi,
            schema.clone(),
            CancelToken::new(),
        );
        let out = drain(&mut j).unwrap();
        assert_eq!(out.rows(), 2);
    }

    #[test]
    fn multi_column_keys() {
        let schema =
            Schema::new(vec![Field::nullable("a", TypeId::I64), Field::nullable("b", TypeId::I64)])
                .unwrap();
        let mk = |rows: Vec<(i64, i64)>| -> BoxedOp {
            let rows = rows.into_iter().map(|(a, b)| vec![Value::I64(a), Value::I64(b)]).collect();
            Box::new(Values::new(schema.clone(), rows, 4, CancelToken::new()))
        };
        let keys = || key_cols(&[(0, TypeId::I64), (1, TypeId::I64)]);
        let mut j = HashJoin::new(
            mk(vec![(1, 10), (1, 20), (2, 10)]),
            mk(vec![(1, 10), (2, 20), (2, 10)]),
            keys(),
            keys(),
            JoinType::LeftSemi,
            schema.clone(),
            CancelToken::new(),
        );
        let out = drain(&mut j).unwrap();
        // Only (1,10) and (2,10) exist on both sides.
        assert_eq!(out.rows(), 2);
    }

    #[test]
    fn probe_profile_reports_chain_steps() {
        let l = source("l", vec![(Some(2), "a"), (Some(3), "b"), (Some(7), "c")]);
        let r = source("r", vec![(Some(2), "x"), (Some(3), "y"), (Some(3), "z")]);
        let mut j = join(l, r, JoinType::Inner);
        let _ = drain(&mut j).unwrap();
        let p = Operator::profile(&j).unwrap();
        assert_eq!(p.probe_rows, 3, "three probe keys hashed");
        assert!(p.probe_chain_steps >= 2, "matching lanes walked chains");
        assert!(p.avg_chain_len() > 0.0);
    }

    #[test]
    fn partitioned_build_matches_serial_for_every_join_type() {
        // min_rows = 0 engages the shard workers immediately, so even this
        // small input exercises scatter, per-shard finalize, rebasing, and
        // the partition-wise probe split.
        let rows_l = vec![
            (Some(1), "a"),
            (Some(2), "b"),
            (Some(3), "c"),
            (None, "d"),
            (Some(2), "e"),
            (Some(9), "f"),
        ];
        let rows_r =
            vec![(Some(2), "x"), (Some(3), "y"), (Some(3), "z"), (None, "n"), (Some(7), "w")];
        for jt in [
            JoinType::Inner,
            JoinType::LeftOuter,
            JoinType::LeftSemi,
            JoinType::LeftAnti,
            JoinType::NullAwareLeftAnti,
        ] {
            let mut serial = join(source("l", rows_l.clone()), source("r", rows_r.clone()), jt);
            let serial_out = rows_of(&drain(&mut serial).unwrap());
            for shards in [2usize, 4, 8] {
                let mut par = join(source("l", rows_l.clone()), source("r", rows_r.clone()), jt)
                    .with_parallel_build(shards, 0);
                let par_out = rows_of(&drain(&mut par).unwrap());
                let sort = |mut v: Vec<Vec<Value>>| {
                    v.sort_by_key(|r| format!("{r:?}"));
                    v
                };
                assert_eq!(
                    sort(par_out),
                    sort(serial_out.clone()),
                    "{jt:?} diverged at {shards} shards"
                );
                let p = Operator::profile(&par).unwrap();
                assert_eq!(p.shards(), shards, "shard build counters recorded");
                let built: u64 = p.shard_build_rows.iter().sum();
                assert_eq!(built, 4, "4 non-NULL build keys sharded");
            }
        }
    }

    #[test]
    fn partitioned_build_stays_serial_below_cost_gate() {
        let l = source("l", vec![(Some(1), "a"), (Some(2), "b")]);
        let r = source("r", vec![(Some(1), "x")]);
        let mut j = join(l, r, JoinType::Inner).with_parallel_build(4, 1_000_000);
        let out = drain(&mut j).unwrap();
        assert_eq!(out.rows(), 1);
        let p = Operator::profile(&j).unwrap();
        assert_eq!(p.shards(), 0, "gate keeps tiny builds serial");
    }

    #[test]
    fn partitioned_large_join_multi_column_keys() {
        // Multi-column keys force the general (SelVec-iterative) probe
        // path through the shard rebasing logic; enough rows to cross a
        // realistic gate mid-build.
        let schema =
            Schema::new(vec![Field::nullable("a", TypeId::I64), Field::nullable("b", TypeId::I64)])
                .unwrap();
        let mk = |n: i64, stride: i64| -> BoxedOp {
            let rows =
                (0..n).map(|i| vec![Value::I64(i % 97), Value::I64((i * stride) % 13)]).collect();
            Box::new(Values::new(schema.clone(), rows, 256, CancelToken::new()))
        };
        let keys = || key_cols(&[(0, TypeId::I64), (1, TypeId::I64)]);
        let run = |par: bool| -> Vec<Vec<Value>> {
            let mut j = HashJoin::new(
                mk(3000, 3),
                mk(2000, 5),
                keys(),
                keys(),
                JoinType::Inner,
                schema.join(&schema),
                CancelToken::new(),
            );
            if par {
                j = j.with_parallel_build(4, 512);
            }
            let out = drain(&mut j).unwrap();
            let mut rows = rows_of(&out);
            rows.sort_by_key(|r| format!("{r:?}"));
            rows
        };
        assert_eq!(run(true), run(false), "partitioned multi-column join diverged");
    }

    #[test]
    fn grace_spill_matches_in_memory_for_every_join_type() {
        use crate::partition::{MemBudget, SpillConfig};
        use vw_storage::SimulatedDisk;
        // NULL-bearing keys on both sides; a 1-byte budget forces every
        // partition to spill, so the whole join runs grace-style.
        let rows_l = vec![
            (Some(1), "a"),
            (Some(2), "b"),
            (Some(3), "c"),
            (None, "d"),
            (Some(2), "e"),
            (Some(9), "f"),
        ];
        let rows_r = vec![(Some(2), "x"), (Some(3), "y"), (Some(3), "z"), (Some(7), "w")];
        for jt in [
            JoinType::Inner,
            JoinType::LeftOuter,
            JoinType::LeftSemi,
            JoinType::LeftAnti,
            JoinType::NullAwareLeftAnti,
        ] {
            let mut serial = join(source("l", rows_l.clone()), source("r", rows_r.clone()), jt);
            let serial_out = rows_of(&drain(&mut serial).unwrap());
            for budget in [1usize, 200, 1 << 30] {
                let disk = SimulatedDisk::instant();
                let tracker = MemBudget::new(budget);
                let cfg = SpillConfig::new(tracker.clone(), disk.clone(), 4);
                let metrics = cfg.metrics.clone();
                let mut gj = join(source("l", rows_l.clone()), source("r", rows_r.clone()), jt)
                    .with_spill(cfg);
                let out = rows_of(&drain(&mut gj).unwrap());
                let sort = |mut v: Vec<Vec<Value>>| {
                    v.sort_by_key(|r| format!("{r:?}"));
                    v
                };
                assert_eq!(
                    sort(out),
                    sort(serial_out.clone()),
                    "{jt:?} diverged at budget {budget}"
                );
                let spilled = metrics.partitions.load(std::sync::atomic::Ordering::Relaxed);
                if budget == 1 {
                    assert!(spilled > 0, "{jt:?}: a 1-byte budget must spill");
                    let p = Operator::profile(&gj).unwrap();
                    assert!(p.spill_partitions > 0 && p.spill_bytes_written > 0, "{jt:?}");
                } else if budget == 1 << 30 {
                    assert_eq!(spilled, 0, "{jt:?}: a huge budget must not spill");
                }
                drop(gj);
                assert_eq!(tracker.used(), 0, "{jt:?}: budget fully uncharged");
                assert_eq!(disk.used_bytes(), 0, "{jt:?}: spill blocks reclaimed");
            }
        }
    }

    #[test]
    fn grace_spill_recursion_on_large_build() {
        use crate::partition::{MemBudget, SpillConfig};
        use vw_storage::SimulatedDisk;
        // Build input several times the budget: partitions spill, and
        // their recursive joins spill again on the next stratum (the
        // budget is shared down the cascade). Probe key k matches build
        // rows with the same k; half the probes miss.
        let n: i64 = 4000;
        let schema = Schema::new(vec![Field::nullable("k", TypeId::I64)]).unwrap();
        let mk = |vals: Vec<i64>| -> BoxedOp {
            let rows = vals.into_iter().map(|v| vec![Value::I64(v)]).collect();
            Box::new(Values::new(schema.clone(), rows, 256, CancelToken::new()))
        };
        let build: Vec<i64> = (0..n).collect();
        let probe: Vec<i64> = (0..2 * n).collect();
        let disk = SimulatedDisk::instant();
        // ~32 KB of staged build (4000 × 8B keys ×2 for key+col) against
        // a 4 KB budget ⇒ ≥ 4× over.
        let tracker = MemBudget::new(4 * 1024);
        let cfg = SpillConfig::new(tracker.clone(), disk.clone(), 4);
        let metrics = cfg.metrics.clone();
        let mut j = HashJoin::new(
            mk(probe),
            mk(build),
            key_cols(&[(0, TypeId::I64)]),
            key_cols(&[(0, TypeId::I64)]),
            JoinType::Inner,
            schema.join(&schema),
            CancelToken::new(),
        )
        .with_spill(cfg);
        let out = drain(&mut j).unwrap();
        assert_eq!(out.rows(), n as usize);
        for i in 0..out.rows() {
            let r = out.row_values(i);
            assert_eq!(r[0], r[1], "probe key equals matched build key");
        }
        use std::sync::atomic::Ordering;
        assert!(metrics.partitions.load(Ordering::Relaxed) >= 4, "all partitions spill");
        assert!(
            metrics.bytes_read.load(Ordering::Relaxed)
                >= metrics.bytes_written.load(Ordering::Relaxed) / 2,
            "spilled rows were rehydrated"
        );
        drop(j);
        assert_eq!(tracker.used(), 0, "budget fully uncharged");
        assert_eq!(disk.used_bytes(), 0, "all spill blocks reclaimed");
    }

    #[test]
    fn grace_spill_null_aware_anti_still_short_circuits() {
        use crate::partition::{MemBudget, SpillConfig};
        use vw_storage::SimulatedDisk;
        // Build contains a NULL key: NOT IN emits nothing, even though the
        // build spilled before the NULL arrived.
        let rows_l: Vec<(Option<i64>, &str)> = (0..50).map(|i| (Some(i), "p")).collect();
        let mut rows_r: Vec<(Option<i64>, &str)> = (0..40).map(|i| (Some(i + 25), "b")).collect();
        rows_r.push((None, "n")); // arrives last (batch size 4)
        let disk = SimulatedDisk::instant();
        let cfg = SpillConfig::new(MemBudget::new(1), disk.clone(), 4);
        let mut j = join(source("l", rows_l), source("r", rows_r), JoinType::NullAwareLeftAnti)
            .with_spill(cfg);
        let out = drain(&mut j).unwrap();
        assert_eq!(out.rows(), 0, "NOT IN against a NULL-bearing set is empty");
        drop(j);
        assert_eq!(disk.used_bytes(), 0);
    }

    #[test]
    fn large_join_correct_across_growth() {
        // Enough build rows to force several directory rebuilds, with a
        // known match pattern: probe key k matches build rows with key k%n.
        let n: i64 = 10_000;
        let schema = Schema::new(vec![Field::nullable("k", TypeId::I64)]).unwrap();
        let mk = |vals: Vec<i64>| -> BoxedOp {
            let rows = vals.into_iter().map(|v| vec![Value::I64(v)]).collect();
            Box::new(Values::new(schema.clone(), rows, 1024, CancelToken::new()))
        };
        let build: Vec<i64> = (0..n).collect();
        let probe: Vec<i64> = (0..2 * n).collect(); // half miss
        let mut j = HashJoin::new(
            mk(probe),
            mk(build),
            key_cols(&[(0, TypeId::I64)]),
            key_cols(&[(0, TypeId::I64)]),
            JoinType::Inner,
            schema.join(&schema),
            CancelToken::new(),
        );
        let out = drain(&mut j).unwrap();
        assert_eq!(out.rows(), n as usize);
        for i in 0..out.rows() {
            let r = out.row_values(i);
            assert_eq!(r[0], r[1], "probe key equals matched build key");
        }
    }
}
