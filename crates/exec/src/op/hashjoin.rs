//! Vectorized hash join.
//!
//! Builds a hash table on the right child, probes with vectors from the
//! left. Supports inner, left outer, left semi, left anti, and the
//! **NULL-aware left anti join** that gives `NOT IN` its treacherous SQL
//! semantics — the paper singles out exactly this: "intricacies of the SQL
//! semantics of anti-joins added significant complexity".
//!
//! NULL-aware anti join semantics (`x NOT IN (SELECT k ...)`):
//! * a probe row whose key matches any build row is dropped;
//! * if the build side contains **any** NULL key, every non-matching probe
//!   row evaluates to NULL (dropped) — so the operator emits nothing;
//! * a probe row with a NULL key is dropped unless the build side is empty;
//! * if the build side is empty, **all** probe rows pass (even NULL keys).

use super::{BoxedOp, Operator};
use crate::cancel::CancelToken;
use crate::expr::{ExprCtx, PhysExpr};
use crate::vector::{Batch, Vector};
use vw_common::hash::{hash_bytes, hash_combine, hash_u64, FxHashMap};
use vw_common::{ColData, Result, Schema, Value, VwError};

/// Join variants supported by the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Emit matching pairs.
    Inner,
    /// Emit matching pairs plus unmatched left rows padded with NULLs.
    LeftOuter,
    /// Emit left rows with at least one match (EXISTS / IN).
    LeftSemi,
    /// Emit left rows with no match (NOT EXISTS).
    LeftAnti,
    /// NOT IN: anti join with three-valued NULL semantics (see module doc).
    NullAwareLeftAnti,
}

impl JoinType {
    /// Does the output include right-side columns?
    pub fn emits_right(self) -> bool {
        matches!(self, JoinType::Inner | JoinType::LeftOuter)
    }
}

/// Hash join operator (right side = build, left side = probe).
pub struct HashJoin {
    left: BoxedOp,
    right: Option<BoxedOp>,
    left_keys: Vec<PhysExpr>,
    right_keys: Vec<PhysExpr>,
    join_type: JoinType,
    schema: Schema,
    ctx: ExprCtx,
    cancel: CancelToken,
    // Build state.
    build_cols: Vec<Vector>,
    build_keys: Vec<Vector>,
    table: FxHashMap<u64, Vec<u32>>,
    build_has_null_key: bool,
    build_rows: usize,
    built: bool,
}

impl HashJoin {
    /// Create a join; `schema` must match the join type's output layout
    /// (left columns, then right columns for inner/outer joins).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        left: BoxedOp,
        right: BoxedOp,
        left_keys: Vec<PhysExpr>,
        right_keys: Vec<PhysExpr>,
        join_type: JoinType,
        schema: Schema,
        ctx: ExprCtx,
        cancel: CancelToken,
    ) -> HashJoin {
        assert_eq!(left_keys.len(), right_keys.len());
        assert!(!left_keys.is_empty(), "joins require at least one key");
        HashJoin {
            left,
            right: Some(right),
            left_keys,
            right_keys,
            join_type,
            schema,
            ctx,
            cancel,
            build_cols: Vec::new(),
            build_keys: Vec::new(),
            table: FxHashMap::default(),
            build_has_null_key: false,
            build_rows: 0,
            built: false,
        }
    }

    fn hash_row(keys: &[Vector], pos: usize) -> u64 {
        let mut h = 0x8f3a_91c2_17b4_55e7u64;
        for k in keys {
            let vh = match &k.data {
                ColData::Bool(v) => v[pos] as u64,
                ColData::I8(v) => v[pos] as u64,
                ColData::I16(v) => v[pos] as u64,
                ColData::I32(v) => v[pos] as u64,
                ColData::I64(v) => v[pos] as u64,
                ColData::F64(v) => v[pos].to_bits(),
                ColData::Date(v) => v[pos] as u64,
                ColData::Str(v) => hash_bytes(v[pos].as_bytes()),
            };
            h = hash_combine(h, hash_u64(vh));
        }
        h
    }

    fn row_has_null_key(keys: &[Vector], pos: usize) -> bool {
        keys.iter().any(|k| k.is_null(pos))
    }

    fn keys_match(build: &[Vector], b: usize, probe: &[Vector], p: usize) -> bool {
        build
            .iter()
            .zip(probe)
            .all(|(bk, pk)| bk.data.get_value(b) == pk.data.get_value(p))
    }

    fn build(&mut self) -> Result<()> {
        let mut right = self.right.take().expect("build once");
        let right_width = right.schema().len();
        self.build_cols = right
            .schema()
            .fields
            .iter()
            .map(|f| Vector::new(ColData::new(f.ty)))
            .collect();
        self.build_keys = self
            .right_keys
            .iter()
            .map(|e| Vector::new(ColData::new(e.type_id())))
            .collect();
        while let Some(batch) = right.next()? {
            self.cancel.check()?;
            let keys: Vec<Vector> = self
                .right_keys
                .iter()
                .map(|e| e.eval(&batch, &self.ctx))
                .collect::<Result<_>>()?;
            for pos in batch.live() {
                if Self::row_has_null_key(&keys, pos) {
                    self.build_has_null_key = true;
                    continue; // NULL keys never match; no need to store
                }
                let idx = self.build_rows as u32;
                self.build_rows += 1;
                for (dst, src) in self.build_cols.iter_mut().zip(&batch.columns) {
                    dst.push(&src.get(pos))?;
                }
                for (dst, src) in self.build_keys.iter_mut().zip(&keys) {
                    dst.push(&src.get(pos))?;
                }
                let h = Self::hash_row(&keys, pos);
                self.table.entry(h).or_default().push(idx);
            }
        }
        let _ = right_width;
        self.built = true;
        Ok(())
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "HashJoin"
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if !self.built {
            self.build()?;
        }
        loop {
            self.cancel.check()?;
            let Some(batch) = self.left.next()? else {
                return Ok(None);
            };
            let keys: Vec<Vector> = self
                .left_keys
                .iter()
                .map(|e| e.eval(&batch, &self.ctx))
                .collect::<Result<_>>()?;
            // (probe position, build row or None-for-outer-miss)
            let mut pairs: Vec<(u32, Option<u32>)> = Vec::with_capacity(batch.rows());
            for pos in batch.live() {
                let null_key = Self::row_has_null_key(&keys, pos);
                match self.join_type {
                    JoinType::Inner | JoinType::LeftSemi => {
                        if null_key {
                            continue;
                        }
                        let h = Self::hash_row(&keys, pos);
                        if let Some(bucket) = self.table.get(&h) {
                            for &b in bucket {
                                if Self::keys_match(&self.build_keys, b as usize, &keys, pos) {
                                    pairs.push((pos as u32, Some(b)));
                                    if self.join_type == JoinType::LeftSemi {
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    JoinType::LeftOuter => {
                        let mut matched = false;
                        if !null_key {
                            let h = Self::hash_row(&keys, pos);
                            if let Some(bucket) = self.table.get(&h) {
                                for &b in bucket {
                                    if Self::keys_match(&self.build_keys, b as usize, &keys, pos) {
                                        pairs.push((pos as u32, Some(b)));
                                        matched = true;
                                    }
                                }
                            }
                        }
                        if !matched {
                            pairs.push((pos as u32, None));
                        }
                    }
                    JoinType::LeftAnti => {
                        let mut matched = false;
                        if !null_key {
                            let h = Self::hash_row(&keys, pos);
                            if let Some(bucket) = self.table.get(&h) {
                                matched = bucket.iter().any(|&b| {
                                    Self::keys_match(&self.build_keys, b as usize, &keys, pos)
                                });
                            }
                        }
                        if !matched {
                            pairs.push((pos as u32, None));
                        }
                    }
                    JoinType::NullAwareLeftAnti => {
                        // Empty build side: everything passes, NULL keys too.
                        if self.build_rows == 0 && !self.build_has_null_key {
                            pairs.push((pos as u32, None));
                            continue;
                        }
                        // Any build NULL key: nothing can pass.
                        if self.build_has_null_key || null_key {
                            continue;
                        }
                        let h = Self::hash_row(&keys, pos);
                        let matched = self.table.get(&h).is_some_and(|bucket| {
                            bucket.iter().any(|&b| {
                                Self::keys_match(&self.build_keys, b as usize, &keys, pos)
                            })
                        });
                        if !matched {
                            pairs.push((pos as u32, None));
                        }
                    }
                }
            }
            if pairs.is_empty() {
                continue;
            }
            // Assemble output: gather left columns by probe position...
            let mut columns: Vec<Vector> = Vec::with_capacity(self.schema.len());
            for src in &batch.columns {
                let mut v = Vector::new(ColData::with_capacity(src.type_id(), pairs.len()));
                for &(p, _) in &pairs {
                    v.push(&src.get(p as usize))?;
                }
                columns.push(v);
            }
            // ...then build columns by matched row (NULLs on outer misses).
            if self.join_type.emits_right() {
                for src in &self.build_cols {
                    let mut v = Vector::new(ColData::with_capacity(src.type_id(), pairs.len()));
                    for &(_, b) in &pairs {
                        match b {
                            Some(b) => v.push(&src.get(b as usize))?,
                            None => v.push(&Value::Null)?,
                        }
                    }
                    columns.push(v);
                }
            }
            if columns.len() != self.schema.len() {
                return Err(VwError::Plan(format!(
                    "join schema arity mismatch: {} vs {}",
                    columns.len(),
                    self.schema.len()
                )));
            }
            return Ok(Some(Batch::new(columns)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::drain;
    use crate::op::simple::Values;
    use vw_common::{Field, TypeId};

    fn schema_kv(prefix: &str) -> Schema {
        Schema::new(vec![
            Field::nullable(format!("{prefix}k"), TypeId::I64),
            Field::nullable(format!("{prefix}v"), TypeId::Str),
        ])
        .unwrap()
    }

    fn source(prefix: &str, rows: Vec<(Option<i64>, &str)>) -> BoxedOp {
        let rows = rows
            .into_iter()
            .map(|(k, v)| {
                vec![
                    k.map_or(Value::Null, Value::I64),
                    Value::Str(v.to_string()),
                ]
            })
            .collect();
        Box::new(Values::new(schema_kv(prefix), rows, 4, CancelToken::new()))
    }

    fn key() -> Vec<PhysExpr> {
        vec![PhysExpr::ColRef(0, TypeId::I64)]
    }

    fn join(left: BoxedOp, right: BoxedOp, jt: JoinType) -> HashJoin {
        let schema = if jt.emits_right() {
            schema_kv("l").join(&schema_kv("r"))
        } else {
            schema_kv("l")
        };
        HashJoin::new(left, right, key(), key(), jt, schema, ExprCtx::default(), CancelToken::new())
    }

    fn rows_of(b: &Batch) -> Vec<Vec<Value>> {
        (0..b.rows()).map(|i| b.row_values(i)).collect()
    }

    #[test]
    fn inner_join_matches_pairs() {
        let l = source("l", vec![(Some(1), "a"), (Some(2), "b"), (Some(3), "c")]);
        let r = source("r", vec![(Some(2), "x"), (Some(3), "y"), (Some(3), "z")]);
        let mut j = join(l, r, JoinType::Inner);
        let out = drain(&mut j).unwrap();
        let mut rows = rows_of(&out);
        rows.sort_by_key(|r| (r[0].to_string(), r[3].to_string()));
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], Value::I64(2));
        assert_eq!(rows[1][3], Value::Str("y".into()));
        assert_eq!(rows[2][3], Value::Str("z".into()));
    }

    #[test]
    fn null_keys_never_match_in_inner_join() {
        let l = source("l", vec![(None, "a"), (Some(1), "b")]);
        let r = source("r", vec![(None, "x"), (Some(1), "y")]);
        let mut j = join(l, r, JoinType::Inner);
        let out = drain(&mut j).unwrap();
        assert_eq!(out.rows(), 1);
        assert_eq!(out.row_values(0)[1], Value::Str("b".into()));
    }

    #[test]
    fn left_outer_pads_misses() {
        let l = source("l", vec![(Some(1), "a"), (Some(9), "b"), (None, "c")]);
        let r = source("r", vec![(Some(1), "x")]);
        let mut j = join(l, r, JoinType::LeftOuter);
        let out = drain(&mut j).unwrap();
        let mut rows = rows_of(&out);
        rows.sort_by_key(|r| r[1].to_string());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][2], Value::I64(1)); // matched
        assert_eq!(rows[1][2], Value::Null); // key 9 missed
        assert_eq!(rows[2][2], Value::Null); // NULL key missed
    }

    #[test]
    fn semi_emits_once_per_probe_row() {
        let l = source("l", vec![(Some(1), "a"), (Some(2), "b")]);
        let r = source("r", vec![(Some(1), "x"), (Some(1), "y")]);
        let mut j = join(l, r, JoinType::LeftSemi);
        let out = drain(&mut j).unwrap();
        assert_eq!(out.rows(), 1);
        assert_eq!(out.row_values(0)[1], Value::Str("a".into()));
    }

    #[test]
    fn anti_emits_non_matching_including_null_probe() {
        let l = source("l", vec![(Some(1), "a"), (Some(9), "b"), (None, "c")]);
        let r = source("r", vec![(Some(1), "x")]);
        let mut j = join(l, r, JoinType::LeftAnti);
        let out = drain(&mut j).unwrap();
        let mut names: Vec<String> =
            rows_of(&out).iter().map(|r| r[1].to_string()).collect();
        names.sort();
        // NOT EXISTS: NULL probe key has no match → emitted.
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn null_aware_anti_with_build_null_emits_nothing() {
        // paper: "intricacies of the SQL semantics of anti-joins".
        // 9 NOT IN (1, NULL) → NULL → row dropped.
        let l = source("l", vec![(Some(9), "b"), (Some(1), "a")]);
        let r = source("r", vec![(Some(1), "x"), (None, "n")]);
        let mut j = join(l, r, JoinType::NullAwareLeftAnti);
        let out = drain(&mut j).unwrap();
        assert_eq!(out.rows(), 0);
    }

    #[test]
    fn null_aware_anti_without_build_null_behaves_like_anti() {
        let l = source("l", vec![(Some(9), "b"), (Some(1), "a"), (None, "c")]);
        let r = source("r", vec![(Some(1), "x")]);
        let mut j = join(l, r, JoinType::NullAwareLeftAnti);
        let out = drain(&mut j).unwrap();
        let names: Vec<String> = rows_of(&out).iter().map(|r| r[1].to_string()).collect();
        // NULL NOT IN (1) → NULL → dropped; 9 NOT IN (1) → true.
        assert_eq!(names, vec!["b"]);
    }

    #[test]
    fn null_aware_anti_empty_build_passes_everything() {
        let l = source("l", vec![(Some(9), "b"), (None, "c")]);
        let r = source("r", vec![]);
        let mut j = join(l, r, JoinType::NullAwareLeftAnti);
        let out = drain(&mut j).unwrap();
        assert_eq!(out.rows(), 2, "x NOT IN (empty) is TRUE for all x");
    }

    #[test]
    fn join_on_string_keys() {
        let schema = Schema::new(vec![Field::nullable("s", TypeId::Str)]).unwrap();
        let mk = |vals: Vec<&str>| -> BoxedOp {
            let rows = vals.into_iter().map(|s| vec![Value::Str(s.into())]).collect();
            Box::new(Values::new(schema.clone(), rows, 8, CancelToken::new()))
        };
        let mut j = HashJoin::new(
            mk(vec!["a", "b", "c"]),
            mk(vec!["b", "c", "d"]),
            vec![PhysExpr::ColRef(0, TypeId::Str)],
            vec![PhysExpr::ColRef(0, TypeId::Str)],
            JoinType::LeftSemi,
            schema.clone(),
            ExprCtx::default(),
            CancelToken::new(),
        );
        let out = drain(&mut j).unwrap();
        assert_eq!(out.rows(), 2);
    }
}
