//! Vectorized hash aggregation (GROUP BY) over the flat hash table.
//!
//! Build: drain the child, hashing group keys a vector at a time, resolving
//! each lane to a group id with the vectorized [`FlatTable`] probe loop
//! (hash-gather heads, re-probe still-unmatched lanes through a `SelVec`),
//! and updating **typed columnar accumulators** — one dense `Vec` per
//! aggregate, indexed by group id, with no boxed `Value`s on the hot path.
//! Lanes whose key is new fall to a scalar insert path that also resolves
//! batch-internal duplicates (two lanes introducing the same key map to one
//! group). Emit: stream groups out in vector-sized batches by slicing the
//! contiguous key vectors and accumulator columns.
//!
//! NULL group keys form their own group (SQL semantics); aggregate inputs
//! skip NULLs (except `COUNT(*)`).
//!
//! With [`HashAggregate::with_parallel_build`] the build radix-partitions
//! across worker threads (see [`crate::partition`]): input batches are
//! hashed once on the consumer, split by the top radix bits of the group
//! hash, and scattered to `P` shard workers, each owning a private
//! `FlatTable` + typed accumulators. Equal keys hash equal, so shards are
//! key-disjoint and "merging" is just emitting the shards one after the
//! other — the partial/final rewrite's merge aggregation is not needed
//! inside the operator.

use super::{BoxedOp, Operator};
use crate::cancel::CancelToken;
use crate::hashtable::{self, FlatTable, EMPTY};
use crate::morsel::BatchPool;
use crate::partition::{
    RadixRouter, ShardSet, ShardWorker, SpillConfig, DEFAULT_PARALLEL_BUILD_MIN_ROWS,
};
use crate::profile::OpProfile;
use crate::program::{ExprProgram, VecRef, VectorPool};
use crate::vector::{Batch, Vector};
use std::sync::Arc;
use std::time::Instant;
use vw_common::hash::{hash_bytes, hash_u64};
use vw_common::{ColData, Result, Schema, SelVec, TypeId, Value, VwError};
use vw_service::WorkerPool;
use vw_storage::{encode_spill_batch, SpillFile};

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows.
    CountStar,
    /// `COUNT(expr)` — counts non-NULL values.
    Count,
    /// `SUM(expr)` — BIGINT (checked) or DOUBLE.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)` — always DOUBLE.
    Avg,
}

/// One aggregate column specification.
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Compiled input program (`None` only for `COUNT(*)`).
    pub input: Option<ExprProgram>,
    /// Output type (determined by the binder).
    pub out_ty: TypeId,
}

/// Typed columnar accumulators: one dense column per aggregate, indexed by
/// group id. MIN/MAX keep their running value in a [`ColData`] of the
/// output type plus a seen-bitmap — no per-group boxed [`Value`]s.
enum AggState {
    Count(Vec<i64>),
    SumI64 { sums: Vec<i64>, seen: Vec<bool> },
    SumF64 { sums: Vec<f64>, seen: Vec<bool> },
    MinMax { vals: ColData, seen: Vec<bool>, is_min: bool },
    Avg { sums: Vec<f64>, counts: Vec<i64> },
}

impl AggState {
    fn new(spec: &AggSpec) -> Result<AggState> {
        Ok(match spec.func {
            AggFunc::CountStar | AggFunc::Count => AggState::Count(Vec::new()),
            AggFunc::Sum => match spec.out_ty {
                TypeId::I64 => AggState::SumI64 { sums: Vec::new(), seen: Vec::new() },
                TypeId::F64 => AggState::SumF64 { sums: Vec::new(), seen: Vec::new() },
                other => {
                    return Err(VwError::Plan(format!(
                        "SUM output must be BIGINT or DOUBLE, got {}",
                        other.sql_name()
                    )))
                }
            },
            AggFunc::Min => {
                AggState::MinMax { vals: ColData::new(spec.out_ty), seen: Vec::new(), is_min: true }
            }
            AggFunc::Max => AggState::MinMax {
                vals: ColData::new(spec.out_ty),
                seen: Vec::new(),
                is_min: false,
            },
            AggFunc::Avg => AggState::Avg { sums: Vec::new(), counts: Vec::new() },
        })
    }

    fn push_group(&mut self) {
        match self {
            AggState::Count(c) => c.push(0),
            AggState::SumI64 { sums, seen } => {
                sums.push(0);
                seen.push(false);
            }
            AggState::SumF64 { sums, seen } => {
                sums.push(0.0);
                seen.push(false);
            }
            AggState::MinMax { vals, seen, .. } => {
                vals.push_safe_default();
                seen.push(false);
            }
            AggState::Avg { sums, counts } => {
                sums.push(0.0);
                counts.push(0);
            }
        }
    }

    /// Vectorized update: fold the selected lanes of `input` into the
    /// accumulators, routing lane `p` to group `gidx[p]`.
    fn update_batch(
        &mut self,
        func: AggFunc,
        gidx: &[u32],
        sel: &SelVec,
        input: Option<&Vector>,
    ) -> Result<()> {
        match (self, func) {
            (AggState::Count(c), AggFunc::CountStar) => {
                for p in sel.iter() {
                    c[gidx[p] as usize] += 1;
                }
            }
            (AggState::Count(c), AggFunc::Count) => {
                let v = input.expect("COUNT has input");
                for p in sel.iter() {
                    if !v.is_null(p) {
                        c[gidx[p] as usize] += 1;
                    }
                }
            }
            (AggState::SumI64 { sums, seen }, _) => {
                let v = input.expect("SUM has input");
                match &v.data {
                    ColData::I64(d) => {
                        for p in sel.iter() {
                            if !v.is_null(p) {
                                let g = gidx[p] as usize;
                                sums[g] =
                                    sums[g].checked_add(d[p]).ok_or(VwError::Overflow("SUM"))?;
                                seen[g] = true;
                            }
                        }
                    }
                    other => {
                        for p in sel.iter() {
                            if !v.is_null(p) {
                                let g = gidx[p] as usize;
                                let x = other.get_value(p).as_i64()?;
                                sums[g] = sums[g].checked_add(x).ok_or(VwError::Overflow("SUM"))?;
                                seen[g] = true;
                            }
                        }
                    }
                }
            }
            (AggState::SumF64 { sums, seen }, _) => {
                let v = input.expect("SUM has input");
                match &v.data {
                    ColData::F64(d) => {
                        for p in sel.iter() {
                            if !v.is_null(p) {
                                let g = gidx[p] as usize;
                                sums[g] += d[p];
                                seen[g] = true;
                            }
                        }
                    }
                    other => {
                        for p in sel.iter() {
                            if !v.is_null(p) {
                                let g = gidx[p] as usize;
                                sums[g] += other.get_value(p).as_f64()?;
                                seen[g] = true;
                            }
                        }
                    }
                }
            }
            (AggState::MinMax { vals, seen, is_min }, _) => {
                let v = input.expect("MIN/MAX has input");
                minmax_update(vals, seen, *is_min, gidx, sel, v)?;
            }
            (AggState::Avg { sums, counts }, _) => {
                let v = input.expect("AVG has input");
                match &v.data {
                    ColData::F64(d) => {
                        for p in sel.iter() {
                            if !v.is_null(p) {
                                let g = gidx[p] as usize;
                                sums[g] += d[p];
                                counts[g] += 1;
                            }
                        }
                    }
                    ColData::I64(d) => {
                        for p in sel.iter() {
                            if !v.is_null(p) {
                                let g = gidx[p] as usize;
                                sums[g] += d[p] as f64;
                                counts[g] += 1;
                            }
                        }
                    }
                    other => {
                        for p in sel.iter() {
                            if !v.is_null(p) {
                                let g = gidx[p] as usize;
                                sums[g] += other.get_value(p).as_f64()?;
                                counts[g] += 1;
                            }
                        }
                    }
                }
            }
            (_, f) => return Err(VwError::Plan(format!("bad aggregate state for {f:?}"))),
        }
        Ok(())
    }

    /// Emit groups `start..end` as an output vector of type `out_ty`.
    fn finish_range(&self, start: usize, end: usize, out_ty: TypeId) -> Result<Vector> {
        let n = end - start;
        Ok(match self {
            AggState::Count(c) => Vector::new(ColData::I64(c[start..end].to_vec())),
            AggState::SumI64 { sums, seen } => Vector::with_nulls(
                ColData::I64(sums[start..end].to_vec()),
                Some(seen[start..end].iter().map(|&s| !s).collect()),
            ),
            AggState::SumF64 { sums, seen } => Vector::with_nulls(
                ColData::F64(sums[start..end].to_vec()),
                Some(seen[start..end].iter().map(|&s| !s).collect()),
            ),
            AggState::MinMax { vals, seen, .. } => {
                let mut data = ColData::with_capacity(out_ty, n);
                data.extend_from_range(vals, start, end);
                Vector::with_nulls(data, Some(seen[start..end].iter().map(|&s| !s).collect()))
            }
            AggState::Avg { sums, counts } => {
                let mut data = Vec::with_capacity(n);
                let mut nulls = Vec::with_capacity(n);
                for g in start..end {
                    if counts[g] > 0 {
                        data.push(sums[g] / counts[g] as f64);
                        nulls.push(false);
                    } else {
                        data.push(0.0);
                        nulls.push(true);
                    }
                }
                Vector::with_nulls(ColData::F64(data), Some(nulls))
            }
        })
    }
}

impl AggState {
    /// Approximate heap bytes of this accumulator column (memory-governor
    /// charging).
    fn approx_bytes(&self) -> usize {
        match self {
            AggState::Count(c) => c.len() * 8,
            AggState::SumI64 { sums, .. } => sums.len() * 9,
            AggState::SumF64 { sums, .. } => sums.len() * 9,
            AggState::MinMax { vals, seen, .. } => vals.byte_size() + seen.len(),
            AggState::Avg { sums, .. } => sums.len() * 16,
        }
    }

    /// Number of columns this aggregate's *partial state* spills as (only
    /// AVG needs two — its running sum and count are not recoverable from
    /// the divided output value).
    fn state_width(func: AggFunc) -> usize {
        match func {
            AggFunc::Avg => 2,
            _ => 1,
        }
    }

    /// The column types [`AggState::spill_columns`] produces, for decoding
    /// a rehydrated state chunk.
    fn state_types(func: AggFunc, out_ty: TypeId) -> Vec<TypeId> {
        match func {
            AggFunc::CountStar | AggFunc::Count => vec![TypeId::I64],
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => vec![out_ty],
            AggFunc::Avg => vec![TypeId::F64, TypeId::I64],
        }
    }

    /// Serialize groups `start..end` as re-mergeable partial-state
    /// columns. For every function except AVG the partial state *is* the
    /// output column ([`AggState::finish_range`]) with NULL marking
    /// "no input seen yet"; AVG spills its running (sum, count) pair.
    fn spill_columns(&self, start: usize, end: usize, out_ty: TypeId) -> Result<Vec<Vector>> {
        Ok(match self {
            AggState::Avg { sums, counts } => vec![
                Vector::new(ColData::F64(sums[start..end].to_vec())),
                Vector::new(ColData::I64(counts[start..end].to_vec())),
            ],
            other => vec![other.finish_range(start, end, out_ty)?],
        })
    }

    /// Fold rehydrated partial-state columns (produced by
    /// [`AggState::spill_columns`], routed by `gidx`) into this
    /// accumulator — the grace re-aggregation path. NULL partial values
    /// mean "that chunk never saw an input for this group" and contribute
    /// nothing.
    fn merge_columns(&mut self, gidx: &[u32], sel: &SelVec, cols: &[Vector]) -> Result<()> {
        match self {
            AggState::Count(c) => {
                let v = &cols[0];
                let d = v.data.as_i64();
                for p in sel.iter() {
                    c[gidx[p] as usize] += d[p];
                }
            }
            AggState::SumI64 { sums, seen } => {
                let v = &cols[0];
                let d = v.data.as_i64();
                for p in sel.iter() {
                    if !v.is_null(p) {
                        let g = gidx[p] as usize;
                        sums[g] = sums[g].checked_add(d[p]).ok_or(VwError::Overflow("SUM"))?;
                        seen[g] = true;
                    }
                }
            }
            AggState::SumF64 { sums, seen } => {
                let v = &cols[0];
                let d = v.data.as_f64();
                for p in sel.iter() {
                    if !v.is_null(p) {
                        let g = gidx[p] as usize;
                        sums[g] += d[p];
                        seen[g] = true;
                    }
                }
            }
            AggState::MinMax { vals, seen, is_min } => {
                // A partial MIN/MAX value merges exactly like an input
                // value of the output type.
                minmax_update(vals, seen, *is_min, gidx, sel, &cols[0])?;
            }
            AggState::Avg { sums, counts } => {
                let (ps, pc) = (cols[0].data.as_f64(), cols[1].data.as_i64());
                for p in sel.iter() {
                    let g = gidx[p] as usize;
                    sums[g] += ps[p];
                    counts[g] += pc[p];
                }
            }
        }
        Ok(())
    }
}

/// Typed MIN/MAX fold. Same-variant input updates through a tight per-type
/// loop; mismatched variants go through the `Value` slow path with SQL
/// comparison semantics (the old behaviour).
fn minmax_update(
    vals: &mut ColData,
    seen: &mut [bool],
    is_min: bool,
    gidx: &[u32],
    sel: &SelVec,
    v: &Vector,
) -> Result<()> {
    macro_rules! typed {
        ($acc:expr, $d:expr, $better:expr) => {{
            let (acc, d) = ($acc, $d);
            #[allow(clippy::redundant_closure_call)]
            for p in sel.iter() {
                if !v.is_null(p) {
                    let g = gidx[p] as usize;
                    if !seen[g] || $better(&d[p], &acc[g]) {
                        acc[g] = d[p].clone();
                        seen[g] = true;
                    }
                }
            }
        }};
    }
    macro_rules! ord_typed {
        ($acc:expr, $d:expr) => {
            if is_min {
                typed!($acc, $d, |x, y| x < y)
            } else {
                typed!($acc, $d, |x, y| x > y)
            }
        };
    }
    match (vals, &v.data) {
        (ColData::Bool(acc), ColData::Bool(d)) => ord_typed!(acc, d),
        (ColData::I8(acc), ColData::I8(d)) => ord_typed!(acc, d),
        (ColData::I16(acc), ColData::I16(d)) => ord_typed!(acc, d),
        (ColData::I32(acc), ColData::I32(d)) => ord_typed!(acc, d),
        (ColData::I64(acc), ColData::I64(d)) => ord_typed!(acc, d),
        (ColData::Date(acc), ColData::Date(d)) => ord_typed!(acc, d),
        (ColData::Str(acc), ColData::Str(d)) => ord_typed!(acc, d),
        // total_cmp matches `Value::sql_cmp` for doubles (NaN sorts last).
        (ColData::F64(acc), ColData::F64(d)) => {
            if is_min {
                typed!(acc, d, |x: &f64, y: &f64| x.total_cmp(y).is_lt())
            } else {
                typed!(acc, d, |x: &f64, y: &f64| x.total_cmp(y).is_gt())
            }
        }
        (vals, other) => {
            // Mixed types: compare via Value (cross-type numeric widening).
            for p in sel.iter() {
                if !v.is_null(p) {
                    let g = gidx[p] as usize;
                    let x = other.get_value(p);
                    let better = if !seen[g] {
                        true
                    } else {
                        match vals.get_value(g).sql_cmp(&x) {
                            None => true,
                            Some(o) => {
                                if is_min {
                                    o == std::cmp::Ordering::Greater
                                } else {
                                    o == std::cmp::Ordering::Less
                                }
                            }
                        }
                    };
                    if better {
                        vals.set_value(g, &x)?;
                        seen[g] = true;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Per-batch probe scratch, reused across batches.
#[derive(Default)]
struct AggScratch {
    lanes: Vec<u64>,
    hashes: Vec<u64>,
    cand: Vec<u32>,
    live: SelVec,
    active: SelVec,
    next_active: SelVec,
    matched: SelVec,
    tmp: SelVec,
    /// Resolved group id per lane (EMPTY = not yet resolved).
    gidx: Vec<u32>,
    /// Dict fast path: group id per dictionary code for the current batch
    /// (EMPTY = code not yet probed this batch).
    code_groups: Vec<u32>,
    /// Rows resolved through the per-code cache instead of per-row
    /// hash+probe (drained into `OpProfile::enc_skipped`).
    enc_skipped: u64,
    /// Staged-probe buffers for the fused fast path.
    buf: hashtable::ProbeBuf,
    /// Group-key program results for the current batch (pool refs).
    refs: Vec<VecRef>,
    /// Aggregate-input program results for the current batch.
    agg_refs: Vec<Option<VecRef>>,
}

/// One radix partition's aggregation state: a private table + accumulators
/// over the shard's (key-disjoint) groups, fed dense gathered packets.
/// Used by the threaded parallel build (one shard per worker) and by the
/// grace build (inline shards the memory governor can evict).
struct AggShard {
    funcs: Vec<AggFunc>,
    out_tys: Vec<TypeId>,
    table: FlatTable,
    group_keys: Vec<Vector>,
    states: Vec<AggState>,
    n_groups: usize,
    scratch: AggScratch,
    probe_rows: u64,
    chain_steps: u64,
}

impl AggShard {
    /// Approximate heap bytes of this shard's group keys + accumulators
    /// (the memory governor's charging unit).
    fn approx_bytes(&self) -> usize {
        self.group_keys.iter().map(|v| v.byte_size()).sum::<usize>()
            + self.states.iter().map(|s| s.approx_bytes()).sum::<usize>()
    }

    /// Serialize this shard's groups as one re-mergeable partial-state
    /// chunk (key columns then flattened state columns) appended to
    /// `file`; returns encoded bytes. The shard itself is not modified —
    /// the caller replaces it with a fresh one.
    fn spill_state(&self, file: &mut SpillFile) -> Result<usize> {
        let n = self.n_groups;
        let mut state_vecs: Vec<Vector> = Vec::new();
        for (st, &ty) in self.states.iter().zip(&self.out_tys) {
            state_vecs.extend(st.spill_columns(0, n, ty)?);
        }
        let mut pairs: Vec<(&ColData, Option<&[bool]>)> =
            self.group_keys.iter().map(|v| (&v.data, v.nulls.as_deref())).collect();
        pairs.extend(state_vecs.iter().map(|v| (&v.data, v.nulls.as_deref())));
        file.append(encode_spill_batch(&pairs))
    }

    /// Fold one rehydrated partial-state chunk into this shard: resolve
    /// the chunk's keys to (existing or fresh) groups, then merge each
    /// aggregate's partial columns — the grace re-aggregation path.
    fn merge_chunk(&mut self, keys: &[Vector], state_cols: &[Vector]) -> Result<()> {
        let n = keys.first().map_or(0, |k| k.len());
        if n == 0 {
            return Ok(());
        }
        let key_refs: Vec<&Vector> = keys.iter().collect();
        self.scratch.live.fill_identity(n);
        let steps = resolve_groups(
            &mut self.table,
            &mut self.group_keys,
            &mut self.states,
            &mut self.n_groups,
            &mut self.scratch,
            &key_refs,
            n,
        )?;
        self.probe_rows += n as u64;
        self.chain_steps += steps;
        let mut off = 0;
        for (st, &func) in self.states.iter_mut().zip(&self.funcs) {
            let w = AggState::state_width(func);
            st.merge_columns(&self.scratch.gidx, &self.scratch.live, &state_cols[off..off + w])?;
            off += w;
        }
        Ok(())
    }
}

/// Memory-governed (grace) aggregation state: inline shards on this
/// operator's hash-bit stratum, each aggregating its partitions' rows in
/// memory; when the query runs over budget the largest shard's partial
/// state is flushed to its spill file and the shard restarts empty.
/// Spilled partitions are re-aggregated (merge of partial states) at emit
/// time, re-partitioning on the next stratum if a partition still does
/// not fit.
struct GraceAgg {
    cfg: SpillConfig,
    router: RadixRouter,
    shards: Vec<AggShard>,
    files: Vec<Option<SpillFile>>,
    charged: Vec<usize>,
    /// Group count at each shard's last byte recompute — `approx_bytes`
    /// walks every group key (O(groups) for strings), so the charge is
    /// refreshed only when a shard gained groups. Fixed-width state grows
    /// only with groups; string MIN/MAX drift between growths is bounded
    /// by the value sizes and corrected at the next growth or spill.
    charged_groups: Vec<usize>,
}

impl GraceAgg {
    /// The shard holding the most charged bytes among those with groups.
    fn largest_charged(&self) -> Option<usize> {
        (0..self.shards.len())
            .filter(|&si| self.shards[si].n_groups > 0)
            .max_by_key(|&si| self.charged[si])
    }

    /// Return every byte still charged (normal completion zeroes the
    /// entries; this also runs on drop for error/KILL unwinds).
    fn uncharge_all(&mut self) {
        for c in &mut self.charged {
            self.cfg.budget.uncharge(*c);
            *c = 0;
        }
    }
}

impl Drop for GraceAgg {
    fn drop(&mut self) {
        self.uncharge_all();
    }
}

/// Dense gathered rows for one (batch, shard) pair: group keys, aggregate
/// inputs, and the group hashes (consumer-side routing; workers rehash
/// through the ordinary resolve path, which is hash-identical).
struct AggPacket {
    keys: Vec<Vector>,
    inputs: Vec<Option<Vector>>,
    hashes: Vec<u64>,
}

/// A finished shard: the groups it owns, ready to emit.
struct AggShardOut {
    group_keys: Vec<Vector>,
    states: Vec<AggState>,
    n_groups: usize,
    probe_rows: u64,
    chain_steps: u64,
}

impl ShardWorker for AggShard {
    type Packet = AggPacket;
    type Output = AggShardOut;

    fn absorb(&mut self, pkt: AggPacket) -> Result<()> {
        let n = pkt.hashes.len();
        let keys: Vec<&Vector> = pkt.keys.iter().collect();
        self.scratch.live.fill_identity(n);
        let steps = resolve_groups(
            &mut self.table,
            &mut self.group_keys,
            &mut self.states,
            &mut self.n_groups,
            &mut self.scratch,
            &keys,
            n,
        )?;
        self.probe_rows += n as u64;
        self.chain_steps += steps;
        for (i, state) in self.states.iter_mut().enumerate() {
            state.update_batch(
                self.funcs[i],
                &self.scratch.gidx,
                &self.scratch.live,
                pkt.inputs[i].as_ref(),
            )?;
        }
        Ok(())
    }

    fn finish(self) -> Result<AggShardOut> {
        Ok(AggShardOut {
            group_keys: self.group_keys,
            states: self.states,
            n_groups: self.n_groups,
            probe_rows: self.probe_rows,
            chain_steps: self.chain_steps,
        })
    }
}

/// Hash GROUP BY operator.
pub struct HashAggregate {
    input: Option<BoxedOp>,
    group_exprs: Vec<ExprProgram>,
    aggs: Vec<AggSpec>,
    schema: Schema,
    pool: VectorPool,
    cancel: CancelToken,
    vector_size: usize,
    // Build state: contiguous group-key columns indexed by group id.
    table: FlatTable,
    group_keys: Vec<Vector>,
    states: Vec<AggState>,
    n_groups: usize,
    /// Radix partitions for the parallel build (1 = serial).
    par_shards: usize,
    /// Staged input rows below which the build stays serial.
    par_min_rows: usize,
    /// Shared worker pool for the parallel build (None = dedicated
    /// threads per shard, the embedder/test path).
    task_pool: Option<Arc<WorkerPool>>,
    /// Finished groups, one entry per shard (serial builds wrap into one);
    /// emission walks the shards in partition order.
    out_shards: Vec<AggShardOut>,
    emit_shard: usize,
    emit_pos: usize,
    built: bool,
    scratch: AggScratch,
    batch_pool: Option<BatchPool>,
    /// Memory-governed spilling, when configured
    /// ([`HashAggregate::with_spill`]).
    spill: Option<SpillConfig>,
    /// Spilled partitions' partial-state files, re-aggregated lazily at
    /// emit time (one partition's merged groups in memory at a time).
    pending: Vec<SpillFile>,
    /// Input columns that must be flattened before programs/accumulators
    /// run (see `new`); bare-column group keys are excluded so they can
    /// stay dictionary-coded.
    flat_cols: Vec<usize>,
    profile: OpProfile,
}

impl HashAggregate {
    /// Aggregate `input` by `group_exprs` computing `aggs`. `schema` covers
    /// group columns followed by aggregate outputs.
    pub fn new(
        input: BoxedOp,
        group_exprs: Vec<ExprProgram>,
        aggs: Vec<AggSpec>,
        schema: Schema,
        vector_size: usize,
        cancel: CancelToken,
    ) -> Result<HashAggregate> {
        let states = aggs.iter().map(AggState::new).collect::<Result<_>>()?;
        let group_keys =
            group_exprs.iter().map(|e| Vector::new(ColData::new(e.type_id()))).collect();
        // Accumulator folds and non-trivial programs read typed data
        // slices, so their input columns must be flat. Bare-column group
        // keys stay encoded — resolve_groups probes dict codes directly.
        let mut flat_cols: Vec<usize> = group_exprs
            .iter()
            .filter(|p| !p.is_bare_col())
            .flat_map(|p| p.cols_used().iter().copied())
            .chain(
                aggs.iter()
                    .filter_map(|a| a.input.as_ref())
                    .flat_map(|p| p.cols_used().iter().copied()),
            )
            .collect();
        flat_cols.sort_unstable();
        flat_cols.dedup();
        Ok(HashAggregate {
            input: Some(input),
            group_exprs,
            aggs,
            flat_cols,
            schema,
            pool: VectorPool::new(),
            cancel,
            vector_size,
            table: FlatTable::new(),
            group_keys,
            states,
            n_groups: 0,
            par_shards: 1,
            par_min_rows: DEFAULT_PARALLEL_BUILD_MIN_ROWS,
            task_pool: None,
            out_shards: Vec::new(),
            emit_shard: 0,
            emit_pos: 0,
            built: false,
            scratch: AggScratch::default(),
            batch_pool: None,
            spill: None,
            pending: Vec::new(),
            profile: OpProfile::new("HashAggr"),
        })
    }

    /// Join the pipeline's batch free-list: input batches are recycled
    /// once their lanes are folded into the accumulators (the aggregate is
    /// a pipeline breaker, so its own outputs exit the loop).
    pub fn with_batch_pool(mut self, pool: BatchPool) -> HashAggregate {
        self.batch_pool = Some(pool);
        self
    }

    /// Enable the radix-partitioned parallel build: `shards` worker threads
    /// (rounded up to a power of two), engaged once at least `min_rows`
    /// input rows are staged. Global aggregates (no group keys) always
    /// stay serial — their single group cannot partition. Ignored when a
    /// memory budget is attached ([`HashAggregate::with_spill`] wins — a
    /// governed build must own its shard lifecycle to evict).
    pub fn with_parallel_build(mut self, shards: usize, min_rows: usize) -> HashAggregate {
        self.par_shards = shards.max(1).next_power_of_two();
        self.par_min_rows = min_rows;
        self
    }

    /// Run the parallel build's shards as cooperative tasks on the
    /// engine's shared worker pool instead of spawning a thread per shard
    /// (see [`ShardSet::spawn_on`]). The engine always sets this; the
    /// bare-operator path keeps dedicated threads.
    pub fn with_task_pool(mut self, pool: Arc<WorkerPool>) -> HashAggregate {
        self.task_pool = Some(pool);
        self
    }

    /// Attach the query's memory governor: the build radix-partitions into
    /// inline shards on `cfg`'s hash-bit stratum and charges `cfg.budget`
    /// as groups accumulate. When the query runs over budget, the largest
    /// shard's partial aggregation state (group keys + re-mergeable
    /// accumulator columns) flushes to a temp spill file and the shard
    /// restarts empty; spilled partitions are re-aggregated by merging
    /// their partial-state chunks at emit time, re-partitioning on the
    /// next hash-bit stratum when a partition still exceeds the budget.
    /// Global aggregates (no group keys) ignore the governor — their
    /// state is one group.
    pub fn with_spill(mut self, cfg: SpillConfig) -> HashAggregate {
        self.spill = Some(cfg);
        self
    }

    /// The decoded column types of one spilled partial-state chunk: group
    /// keys, then each aggregate's state columns.
    fn chunk_types(&self) -> Vec<TypeId> {
        let mut t: Vec<TypeId> = self.group_exprs.iter().map(|e| e.type_id()).collect();
        for a in &self.aggs {
            t.extend(AggState::state_types(a.func, a.out_ty));
        }
        t
    }

    /// Re-aggregate one spilled partition: merge its partial-state chunks
    /// into a fresh shard — or, if the file looks bigger than the budget
    /// and the stratum floor is not reached, re-partition the chunks on
    /// stratum `depth` into sub-files and recurse. Equal keys hash equal,
    /// so every level's partitions stay key-disjoint and the merged
    /// outputs emit without any cross-partition pass.
    fn reaggregate(
        &mut self,
        file: SpillFile,
        cfg: &SpillConfig,
        depth: u32,
    ) -> Result<Vec<AggShardOut>> {
        let types = self.chunk_types();
        let n_keys = self.group_exprs.len();
        // The encoded size underestimates the decoded state (compression),
        // but partial states also over-count the merged result (a key in k
        // chunks merges to one group) — a workable victim of a heuristic.
        // Past the depth floor (recursion cap or hash bits exhausted for
        // this fan-out) the partition merges in memory regardless.
        if file.bytes_written() as usize <= cfg.budget.limit()
            || depth > SpillConfig::max_depth(cfg.partitions)
        {
            let mut shard = self.make_shard()?;
            for i in 0..file.n_chunks() {
                self.cancel.check()?;
                let (vecs, nbytes) = crate::spill::read_vectors(&file, i, &types)?;
                cfg.metrics.record_read(nbytes as u64);
                shard.merge_chunk(&vecs[..n_keys], &vecs[n_keys..])?;
            }
            self.profile.record_probe(shard.probe_rows, shard.chain_steps);
            return Ok(vec![shard.finish()?]);
        }
        // Too big to merge at once: split every chunk's state rows by the
        // next stratum's radix bits and recurse per sub-partition.
        let mut router = RadixRouter::at_depth(cfg.partitions, depth);
        let mut subs: Vec<Option<SpillFile>> = (0..router.partitions()).map(|_| None).collect();
        let (mut lanes, mut hashes) = (Vec::new(), Vec::new());
        for i in 0..file.n_chunks() {
            self.cancel.check()?;
            let (vecs, nbytes) = crate::spill::read_vectors(&file, i, &types)?;
            cfg.metrics.record_read(nbytes as u64);
            let rows = vecs.first().map_or(0, |v| v.len());
            if rows == 0 {
                continue;
            }
            let key_refs: Vec<&Vector> = vecs[..n_keys].iter().collect();
            hashtable::hash_keys(&key_refs, rows, true, &mut lanes, &mut hashes);
            router.split(&hashes, None, rows);
            for (si, slot) in subs.iter_mut().enumerate() {
                let sel = router.shard_sel(si);
                if sel.is_empty() {
                    continue;
                }
                let gathered: Vec<Vector> = vecs.iter().map(|v| v.gather(sel)).collect();
                let pairs: Vec<(&ColData, Option<&[bool]>)> =
                    gathered.iter().map(|v| (&v.data, v.nulls.as_deref())).collect();
                if slot.is_none() {
                    // A deeper-stratum partition spills its first chunk:
                    // the `spill` column counts partitions across all
                    // strata (the join path does the same).
                    cfg.metrics.record_partition();
                }
                let sub = slot.get_or_insert_with(|| SpillFile::new(cfg.disk.clone()));
                let written = sub.append(encode_spill_batch(&pairs))?;
                cfg.metrics.record_write(written as u64);
            }
        }
        drop(file); // this stratum's blocks are free before recursing
        let mut outs = Vec::new();
        for sub in subs.into_iter().flatten() {
            outs.extend(self.reaggregate(sub, cfg, depth + 1)?);
        }
        Ok(outs)
    }

    /// A fresh shard worker mirroring this operator's aggregate layout.
    fn make_shard(&self) -> Result<AggShard> {
        Ok(AggShard {
            funcs: self.aggs.iter().map(|a| a.func).collect(),
            out_tys: self.aggs.iter().map(|a| a.out_ty).collect(),
            table: FlatTable::new(),
            group_keys: self
                .group_exprs
                .iter()
                .map(|e| Vector::new(ColData::new(e.type_id())))
                .collect(),
            states: self.aggs.iter().map(AggState::new).collect::<Result<_>>()?,
            n_groups: 0,
            scratch: AggScratch::default(),
            probe_rows: 0,
            chain_steps: 0,
        })
    }

    fn build(&mut self) -> Result<()> {
        let mut input = self.input.take().expect("build once");
        // Memory-governed build: inline grace shards from the first row so
        // any partition's state can be evicted when the budget trips.
        // Global aggregates cannot partition and ignore the governor.
        let mut grace: Option<GraceAgg> = match &self.spill {
            Some(cfg) if !self.group_exprs.is_empty() => {
                let router = RadixRouter::at_depth(cfg.partitions, cfg.depth);
                let p = router.partitions();
                let shards = (0..p).map(|_| self.make_shard()).collect::<Result<Vec<_>>>()?;
                Some(GraceAgg {
                    cfg: cfg.clone(),
                    router,
                    shards,
                    files: (0..p).map(|_| None).collect(),
                    charged: vec![0; p],
                    charged_groups: vec![usize::MAX; p],
                })
            }
            _ => None,
        };
        // Global aggregates stay serial: one group cannot partition. A
        // governed build replaces the threaded one (grace owns the shard
        // lifecycle).
        let partitionable = self.par_shards > 1 && !self.group_exprs.is_empty() && grace.is_none();
        let mut workers: Option<(RadixRouter, ShardSet<AggShard>)> = None;
        let mut staged: Vec<AggPacket> = Vec::new();
        let mut staged_rows = 0usize;
        while let Some(mut batch) = input.next()? {
            self.cancel.check()?;
            let t0 = Instant::now();
            self.profile.record_enc_batch(batch.columns.iter().any(|c| c.is_encoded()));
            for &c in &self.flat_cols {
                batch.columns[c].ensure_flat();
            }
            // Run the compiled group-key and aggregate-input programs;
            // results stay leased in the pool for the rest of the batch.
            self.scratch.refs.clear();
            for prog in &self.group_exprs {
                let r = prog.run(&mut self.pool, &batch)?;
                self.scratch.refs.push(r);
            }
            self.scratch.agg_refs.clear();
            for a in &self.aggs {
                let r = match &a.input {
                    Some(prog) => Some(prog.run(&mut self.pool, &batch)?),
                    None => None,
                };
                self.scratch.agg_refs.push(r);
            }
            let (mut rows, mut chain_steps) = (0u64, 0u64);
            {
                // Single-key groupings (the common case) resolve through a
                // stack array — a per-batch `Vec` here would be the one
                // steady-state allocation left in the pipeline.
                let single_key;
                let multi_keys: Vec<&Vector>;
                let keys: &[&Vector] = if self.scratch.refs.len() == 1 {
                    single_key = [self.pool.get(&batch, self.scratch.refs[0])];
                    &single_key
                } else {
                    multi_keys =
                        self.scratch.refs.iter().map(|&r| self.pool.get(&batch, r)).collect();
                    &multi_keys
                };
                {
                    let s = &mut self.scratch;
                    match &batch.sel {
                        Some(sel) => s.live.clear_and_extend_from_slice(sel.as_slice()),
                        None => s.live.fill_identity(batch.capacity()),
                    }
                }
                if let Some(g) = &mut grace {
                    // Governed build: hash the group keys once (NULL keys
                    // to their sentinel lane, as everywhere), split by this
                    // stratum's radix bits, and fold each partition's rows
                    // into its inline shard, re-charging the shard's
                    // approximate bytes. Eviction decisions run after the
                    // batch (outside the key-program borrows).
                    let s = &mut self.scratch;
                    hashtable::hash_keys(keys, batch.capacity(), true, &mut s.lanes, &mut s.hashes);
                    let pool = &self.pool;
                    g.router.split(&s.hashes, Some(&s.live), batch.capacity());
                    for si in 0..g.shards.len() {
                        let sel = g.router.shard_sel(si);
                        if sel.is_empty() {
                            continue;
                        }
                        let pkt = AggPacket {
                            keys: keys.iter().map(|v| v.gather(sel)).collect(),
                            inputs: s
                                .agg_refs
                                .iter()
                                .map(|r| r.map(|vr| pool.get(&batch, vr).gather(sel)))
                                .collect(),
                            hashes: sel.iter().map(|p| s.hashes[p]).collect(),
                        };
                        g.shards[si].absorb(pkt)?;
                        // Re-charge only when the shard gained groups (see
                        // `charged_groups`) — byte recomputes are O(groups)
                        // for string keys, and state bytes only grow with
                        // the group count.
                        if g.shards[si].n_groups != g.charged_groups[si] {
                            g.charged_groups[si] = g.shards[si].n_groups;
                            let now = g.shards[si].approx_bytes();
                            let before = g.charged[si];
                            if now >= before {
                                g.cfg.budget.charge(now - before);
                            } else {
                                g.cfg.budget.uncharge(before - now);
                            }
                            g.charged[si] = now;
                        }
                    }
                } else if !partitionable {
                    chain_steps = resolve_groups(
                        &mut self.table,
                        &mut self.group_keys,
                        &mut self.states,
                        &mut self.n_groups,
                        &mut self.scratch,
                        keys,
                        batch.capacity(),
                    )?;
                    rows = self.scratch.live.len() as u64;
                    for ((spec, state), r) in
                        self.aggs.iter().zip(&mut self.states).zip(&self.scratch.agg_refs)
                    {
                        let inp = r.map(|vr| self.pool.get(&batch, vr));
                        state.update_batch(
                            spec.func,
                            &self.scratch.gidx,
                            &self.scratch.live,
                            inp,
                        )?;
                    }
                } else {
                    // Partitioned: hash the group keys once, then either
                    // stage the live lanes densely (pre-gate) or gather
                    // each shard's lanes straight from the batch — one
                    // copy per row, no intermediate dense packet.
                    let s = &mut self.scratch;
                    hashtable::hash_keys(keys, batch.capacity(), true, &mut s.lanes, &mut s.hashes);
                    let pool = &self.pool;
                    match &mut workers {
                        None => {
                            let pkt = AggPacket {
                                keys: keys.iter().map(|v| v.gather(&s.live)).collect(),
                                inputs: s
                                    .agg_refs
                                    .iter()
                                    .map(|r| r.map(|vr| pool.get(&batch, vr).gather(&s.live)))
                                    .collect(),
                                hashes: s.live.iter().map(|p| s.hashes[p]).collect(),
                            };
                            staged_rows += pkt.hashes.len();
                            staged.push(pkt);
                        }
                        Some((router, set)) => {
                            router.split(&s.hashes, Some(&s.live), batch.capacity());
                            for si in 0..router.partitions() {
                                let sel = router.shard_sel(si);
                                if sel.is_empty() {
                                    continue;
                                }
                                let sub = AggPacket {
                                    keys: keys.iter().map(|v| v.gather(sel)).collect(),
                                    inputs: s
                                        .agg_refs
                                        .iter()
                                        .map(|r| r.map(|vr| pool.get(&batch, vr).gather(sel)))
                                        .collect(),
                                    hashes: sel.iter().map(|p| s.hashes[p]).collect(),
                                };
                                set.send(si, sub)?;
                            }
                        }
                    }
                }
            }
            self.pool.recycle();
            if let Some(bp) = &self.batch_pool {
                bp.recycle(batch); // lanes folded: batch goes back
            }
            let (runs, instrs) = self.pool.take_counters();
            self.profile.record_expr(runs, instrs);
            self.profile.record_phase(t0.elapsed());
            self.profile.record_probe(rows, chain_steps);
            // The governor's spill decision: while the query is over
            // budget, flush the largest shard's partial state to its spill
            // file and restart the shard empty. (Runs outside the
            // key-program borrows above.)
            if let Some(g) = &mut grace {
                while g.cfg.budget.over() {
                    let Some(victim) = g.largest_charged() else { break };
                    if g.files[victim].is_none() {
                        g.cfg.metrics.record_partition();
                    }
                    let file =
                        g.files[victim].get_or_insert_with(|| SpillFile::new(g.cfg.disk.clone()));
                    let written = g.shards[victim].spill_state(file)?;
                    g.cfg.metrics.record_write(written as u64);
                    // The evicted shard's probe counters move to the
                    // profile before the shard restarts.
                    let (pr, cs) = (g.shards[victim].probe_rows, g.shards[victim].chain_steps);
                    self.profile.record_probe(pr, cs);
                    self.profile.record_shard_probe(victim, pr, cs);
                    g.shards[victim] = self.make_shard()?;
                    g.cfg.budget.uncharge(g.charged[victim]);
                    g.charged[victim] = 0;
                    g.charged_groups[victim] = usize::MAX; // force a recompute
                }
            }
            if workers.is_none() && partitionable && staged_rows >= self.par_min_rows {
                // Cost gate cleared: spawn the shard workers and flush the
                // staged packets through the radix split.
                let mut router = RadixRouter::new(self.par_shards);
                let shards: Vec<AggShard> =
                    (0..router.partitions()).map(|_| self.make_shard()).collect::<Result<_>>()?;
                let mut set = match &self.task_pool {
                    Some(pool) => ShardSet::spawn_on(pool, shards, &self.cancel),
                    None => ShardSet::spawn(shards, &self.cancel),
                };
                for pkt in staged.drain(..) {
                    scatter_agg(&mut router, &mut set, &pkt)?;
                }
                workers = Some((router, set));
            }
        }
        if let Some(mut g) = grace {
            // Governed finalize: never-spilled partitions emit directly
            // (key-disjoint, exactly like the threaded path). Spilled
            // partitions flush their live remainder state and queue their
            // file for lazy re-aggregation at emit time — one merged
            // partition in memory at a time.
            let shards = std::mem::take(&mut g.shards);
            for (si, shard) in shards.into_iter().enumerate() {
                match g.files[si].take() {
                    None => {
                        self.profile.record_shard_build(si, shard.n_groups as u64);
                        self.profile.record_probe(shard.probe_rows, shard.chain_steps);
                        self.profile.record_shard_probe(si, shard.probe_rows, shard.chain_steps);
                        self.out_shards.push(shard.finish()?);
                    }
                    Some(mut file) => {
                        if shard.n_groups > 0 {
                            let written = shard.spill_state(&mut file)?;
                            g.cfg.metrics.record_write(written as u64);
                        }
                        self.profile.record_probe(shard.probe_rows, shard.chain_steps);
                        self.profile.record_shard_probe(si, shard.probe_rows, shard.chain_steps);
                        self.pending.push(file);
                    }
                }
            }
            g.uncharge_all();
            self.profile.sync_spill(&g.cfg.metrics);
            self.built = true;
            return Ok(());
        }
        match workers {
            // Partitioned: shards are key-disjoint, so the merge is just
            // emitting them in partition order.
            Some((_, set)) => {
                let outs = set.finish()?;
                for (si, out) in outs.iter().enumerate() {
                    self.profile.record_shard_build(si, out.n_groups as u64);
                    self.profile.record_shard_probe(si, out.probe_rows, out.chain_steps);
                    self.profile.record_probe(out.probe_rows, out.chain_steps);
                }
                self.out_shards = outs;
            }
            // Parallel-capable but under the gate: fold the staged packets
            // through one inline shard (no threads spawned).
            None if partitionable && !staged.is_empty() => {
                let mut shard = self.make_shard()?;
                for pkt in staged.drain(..) {
                    shard.absorb(pkt)?;
                }
                self.profile.record_probe(shard.probe_rows, shard.chain_steps);
                self.out_shards.push(shard.finish()?);
            }
            None => {
                // Global aggregation over zero rows still yields one group
                // (COUNT over nothing is 0 — already the initial state).
                if self.group_exprs.is_empty() && self.n_groups == 0 {
                    self.n_groups = 1;
                    for st in &mut self.states {
                        st.push_group();
                    }
                }
                self.out_shards.push(AggShardOut {
                    group_keys: std::mem::take(&mut self.group_keys),
                    states: std::mem::take(&mut self.states),
                    n_groups: self.n_groups,
                    probe_rows: 0,
                    chain_steps: 0,
                });
            }
        }
        self.profile.record_enc_skipped(std::mem::take(&mut self.scratch.enc_skipped));
        self.built = true;
        Ok(())
    }
}

/// Split one dense *staged* packet (accumulated before the cost gate
/// cleared) by the radix of its group hashes and ship the per-shard
/// sub-packets. Post-gate batches scatter directly from the batch inside
/// the build loop and never pass through here.
fn scatter_agg(
    router: &mut RadixRouter,
    set: &mut ShardSet<AggShard>,
    pkt: &AggPacket,
) -> Result<()> {
    let n = pkt.hashes.len();
    router.split(&pkt.hashes, None, n);
    for si in 0..router.partitions() {
        let sel = router.shard_sel(si);
        if sel.is_empty() {
            continue;
        }
        let sub = AggPacket {
            keys: pkt.keys.iter().map(|v| v.gather(sel)).collect(),
            inputs: pkt.inputs.iter().map(|o| o.as_ref().map(|v| v.gather(sel))).collect(),
            hashes: sel.iter().map(|p| pkt.hashes[p]).collect(),
        };
        set.send(si, sub)?;
    }
    Ok(())
}

/// Resolve every live lane to a group id in `scratch.gidx`, creating
/// groups for unseen keys. Returns chain steps visited (profiling).
///
/// A free function over disjoint operator fields: the key vectors are pool
/// references, so the operator cannot also be borrowed mutably.
fn resolve_groups(
    table: &mut FlatTable,
    group_keys: &mut [Vector],
    states: &mut [AggState],
    n_groups: &mut usize,
    s: &mut AggScratch,
    keys: &[&Vector],
    n: usize,
) -> Result<u64> {
    if s.gidx.len() < n {
        s.gidx.resize(n, EMPTY);
    }
    let mut chain_steps = 0u64;
    // Dictionary-coded single key (the low-cardinality GROUP BY shape):
    // one hash + chain probe per distinct code present in the batch;
    // every other lane resolves with a per-code table lookup. Probing a
    // code hashes its dictionary entry exactly like `hash_keys` would
    // hash the inflated string, so groups unify with flat-keyed batches.
    if keys.len() == 1 {
        if let Some((codes, dict)) = keys[0].dict_parts() {
            let nulls = keys[0].nulls.as_deref();
            if s.code_groups.len() < dict.len() {
                s.code_groups.resize(dict.len(), EMPTY);
            }
            s.code_groups[..dict.len()].fill(EMPTY);
            let mut null_group = EMPTY;
            let mut probes = 0u64;
            for p in s.live.iter() {
                if nulls.is_some_and(|m| m[p]) {
                    if null_group == EMPTY {
                        probes += 1;
                        let h = hash_u64(hashtable::NULL_KEY_LANE);
                        null_group =
                            match table.find_chain(h, |row| group_keys[0].is_null(row as usize)) {
                                Some(g) => g,
                                None => {
                                    let g = table.insert(h);
                                    debug_assert_eq!(g as usize, *n_groups);
                                    *n_groups += 1;
                                    group_keys[0].push(&Value::Null)?;
                                    for st in states.iter_mut() {
                                        st.push_group();
                                    }
                                    g
                                }
                            };
                    }
                    s.gidx[p] = null_group;
                    continue;
                }
                let c = codes[p] as usize;
                let mut g = s.code_groups[c];
                if g == EMPTY {
                    probes += 1;
                    let val = dict[c].as_str();
                    let h = hash_u64(hash_bytes(val.as_bytes()));
                    let gk = &group_keys[0];
                    g = match table.find_chain(h, |row| {
                        let row = row as usize;
                        !gk.is_null(row) && gk.data.as_str()[row] == val
                    }) {
                        Some(g) => g,
                        None => {
                            let g = table.insert(h);
                            debug_assert_eq!(g as usize, *n_groups);
                            *n_groups += 1;
                            group_keys[0].push(&Value::Str(val.to_string()))?;
                            for st in states.iter_mut() {
                                st.push_group();
                            }
                            g
                        }
                    };
                    s.code_groups[c] = g;
                }
                s.gidx[p] = g;
            }
            s.enc_skipped += (s.live.len() as u64).saturating_sub(probes);
            return Ok(chain_steps);
        }
    }
    // Fast path: a single NULL-free key column resolves through the
    // fused, type-monomorphized kernel — hash, chain walk, and key
    // compare in one staged pass (the miss lanes fall to the scalar
    // insert pass below, exactly like the general path's).
    if keys.len() == 1 && keys[0].nulls.is_none() && group_keys[0].nulls.is_none() {
        let n = keys[0].len();
        let sel = if s.live.len() == n { None } else { Some(&s.live) };
        macro_rules! fused {
            ($pa:expr, $ba:expr, $hash:expr, $eq:expr) => {{
                let (pa, ba) = ($pa, $ba);
                #[allow(clippy::redundant_closure_call)]
                table.probe_groups(
                    n,
                    sel,
                    |p| $hash(&pa[p]),
                    |p, row| $eq(&pa[p], &ba[row as usize]),
                    &mut s.gidx,
                    &mut s.buf,
                    &mut chain_steps,
                )
            }};
        }
        let mut fused_ran = true;
        hashtable::dispatch_typed_keys!(&keys[0].data, &group_keys[0].data, fused, {
            fused_ran = false;
        });
        if fused_ran {
            return insert_misses(table, group_keys, states, n_groups, s, keys, true, chain_steps);
        }
    }
    // General path: hash all lanes (NULL keys hash to the NULL-group
    // sentinel), then find existing groups for all lanes at once.
    hashtable::hash_keys(keys, n, true, &mut s.lanes, &mut s.hashes);
    for p in s.live.iter() {
        s.gidx[p] = EMPTY;
    }
    // Vectorized pass: find existing groups for all lanes at once.
    // `gather_matching` skips hash-mismatching chain entries inline, so
    // every active lane holds a candidate needing only key confirmation.
    table.gather_matching(&s.hashes, &s.live, &mut s.cand, &mut s.active, &mut chain_steps);
    while !s.active.is_empty() {
        hashtable::keys_match_sel(
            keys,
            group_keys,
            &s.cand,
            &s.active,
            &mut s.tmp,
            &mut s.matched,
            true, // grouping: NULL keys compare equal
        );
        for p in s.matched.iter() {
            s.gidx[p] = s.cand[p];
        }
        // Resolved lanes stop walking; the rest advance down the chain.
        let gidx = &s.gidx;
        s.active.retain_from(|p| gidx[p] == EMPTY, &mut s.tmp);
        table.advance_matching(
            &s.hashes,
            &s.tmp,
            &mut s.cand,
            &mut s.next_active,
            &mut chain_steps,
        );
        std::mem::swap(&mut s.active, &mut s.next_active);
    }
    insert_misses(table, group_keys, states, n_groups, s, keys, false, chain_steps)
}

/// Scalar leftover pass: unseen keys become new groups. Walking the
/// chain again here also catches duplicates introduced earlier in this
/// very batch (lane A inserts key K, lane B then finds it). Lane hashes
/// come from the fused kernel's staging buffer (`from_buf`) or the
/// general path's hash vector.
#[allow(clippy::too_many_arguments)]
fn insert_misses(
    table: &mut FlatTable,
    group_keys: &mut [Vector],
    states: &mut [AggState],
    n_groups: &mut usize,
    s: &mut AggScratch,
    keys: &[&Vector],
    from_buf: bool,
    chain_steps: u64,
) -> Result<u64> {
    for p in s.live.iter() {
        if s.gidx[p] != EMPTY {
            continue;
        }
        let h = if from_buf { s.buf.lane_hash(p) } else { s.hashes[p] };
        let found = table.find_chain(h, |row| keys_equal_row(keys, p, group_keys, row as usize));
        let g = match found {
            Some(row) => row,
            None => {
                let g = table.insert(h);
                debug_assert_eq!(g as usize, *n_groups);
                *n_groups += 1;
                for (gk, k) in group_keys.iter_mut().zip(keys) {
                    gk.push(&k.get(p))?;
                }
                for st in states.iter_mut() {
                    st.push_group();
                }
                g
            }
        };
        s.gidx[p] = g;
    }
    Ok(chain_steps)
}

/// Scalar key comparison for the new-group insert path (grouping
/// semantics: NULL equals NULL). Probe keys may be dict-coded (their flat
/// data is the empty placeholder), so string columns compare through the
/// encoding-aware `str_at`; stored group keys are always flat.
fn keys_equal_row(probe: &[&Vector], p: usize, stored: &[Vector], row: usize) -> bool {
    probe.iter().zip(stored).all(|(pk, sk)| match (pk.is_null(p), sk.is_null(row)) {
        (true, true) => true,
        (false, false) => {
            if pk.type_id() == TypeId::Str && sk.type_id() == TypeId::Str {
                pk.str_at(p) == sk.str_at(row)
            } else {
                pk.data.get_value(p) == sk.data.get_value(row)
            }
        }
        _ => false,
    })
}

impl Operator for HashAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "HashAggr"
    }

    fn profile(&self) -> Option<&OpProfile> {
        Some(&self.profile)
    }

    fn profile_mut(&mut self) -> Option<&mut OpProfile> {
        Some(&mut self.profile)
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        self.cancel.check()?;
        if !self.built {
            self.build()?;
        }
        // Emit the shards in partition order (serial builds hold one),
        // slicing each shard's contiguous key columns and accumulators
        // into vector-sized batches. When the finished shards run dry,
        // spilled partitions re-aggregate lazily, one file at a time, so
        // only one merged partition's groups sit in memory at once.
        loop {
            if self.emit_shard < self.out_shards.len() {
                if self.emit_pos < self.out_shards[self.emit_shard].n_groups {
                    break;
                }
                // Fully drained: free this shard's keys and accumulators
                // now, so the governed emit phase really does hold only
                // one partition's groups at a time (rather than silently
                // re-accumulating the whole unbounded state).
                self.out_shards[self.emit_shard] = AggShardOut {
                    group_keys: Vec::new(),
                    states: Vec::new(),
                    n_groups: 0,
                    probe_rows: 0,
                    chain_steps: 0,
                };
                self.emit_shard += 1;
                self.emit_pos = 0;
                continue;
            }
            let Some(file) = self.pending.pop() else {
                return Ok(None);
            };
            let cfg = self.spill.clone().expect("pending implies a spill config");
            let outs = self.reaggregate(file, &cfg, cfg.depth + 1)?;
            self.out_shards.extend(outs);
            self.profile.sync_spill(&cfg.metrics);
        }
        let shard = &self.out_shards[self.emit_shard];
        let t0 = Instant::now();
        let end = (self.emit_pos + self.vector_size).min(shard.n_groups);
        let mut columns: Vec<Vector> = Vec::with_capacity(self.schema.len());
        for gk in &shard.group_keys {
            // Slice the contiguous key column — no per-value Value boxing.
            let mut v = Vector::new(ColData::with_capacity(gk.type_id(), end - self.emit_pos));
            v.extend_range(gk, self.emit_pos, end);
            columns.push(v);
        }
        for (spec, st) in self.aggs.iter().zip(&shard.states) {
            columns.push(st.finish_range(self.emit_pos, end, spec.out_ty)?);
        }
        let rows = end - self.emit_pos;
        self.emit_pos = end;
        self.profile.record(rows, t0.elapsed());
        Ok(Some(Batch::new(columns)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ExprCtx, PhysExpr};
    use crate::op::drain;
    use crate::op::simple::Values;
    use vw_common::{Field, Value};

    fn schema2() -> Schema {
        Schema::new(vec![Field::nullable("k", TypeId::Str), Field::nullable("v", TypeId::I64)])
            .unwrap()
    }

    fn source(rows: Vec<(Option<&str>, Option<i64>)>) -> BoxedOp {
        let rows = rows
            .into_iter()
            .map(|(k, v)| {
                vec![
                    k.map_or(Value::Null, |s| Value::Str(s.into())),
                    v.map_or(Value::Null, Value::I64),
                ]
            })
            .collect();
        Box::new(Values::new(schema2(), rows, 3, CancelToken::new()))
    }

    fn agg(src: BoxedOp, group: bool, specs: Vec<AggSpec>, out: Vec<Field>) -> HashAggregate {
        let group_exprs = if group {
            vec![ExprProgram::compile(&PhysExpr::ColRef(0, TypeId::Str), &ExprCtx::default())]
        } else {
            vec![]
        };
        HashAggregate::new(
            src,
            group_exprs,
            specs,
            Schema::unchecked(out),
            1024,
            CancelToken::new(),
        )
        .unwrap()
    }

    fn col_v() -> Option<ExprProgram> {
        Some(ExprProgram::compile(&PhysExpr::ColRef(1, TypeId::I64), &ExprCtx::default()))
    }

    #[test]
    fn grouped_sum_count() {
        let src = source(vec![
            (Some("a"), Some(1)),
            (Some("b"), Some(10)),
            (Some("a"), Some(2)),
            (Some("b"), None),
            (Some("a"), Some(3)),
        ]);
        let mut op = agg(
            src,
            true,
            vec![
                AggSpec { func: AggFunc::Sum, input: col_v(), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Count, input: col_v(), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::CountStar, input: None, out_ty: TypeId::I64 },
            ],
            vec![
                Field::nullable("k", TypeId::Str),
                Field::nullable("sum", TypeId::I64),
                Field::not_null("cnt", TypeId::I64),
                Field::not_null("cntstar", TypeId::I64),
            ],
        );
        let out = drain(&mut op).unwrap();
        assert_eq!(out.rows(), 2);
        let mut rows: Vec<Vec<Value>> = (0..2).map(|i| out.row_values(i)).collect();
        rows.sort_by_key(|r| r[0].to_string());
        assert_eq!(
            rows[0],
            vec![Value::Str("a".into()), Value::I64(6), Value::I64(3), Value::I64(3)]
        );
        assert_eq!(
            rows[1],
            vec![Value::Str("b".into()), Value::I64(10), Value::I64(1), Value::I64(2)]
        );
    }

    #[test]
    fn null_keys_group_together() {
        let src = source(vec![(None, Some(1)), (None, Some(2)), (Some("x"), Some(3))]);
        let mut op = agg(
            src,
            true,
            vec![AggSpec { func: AggFunc::Sum, input: col_v(), out_ty: TypeId::I64 }],
            vec![Field::nullable("k", TypeId::Str), Field::nullable("sum", TypeId::I64)],
        );
        let out = drain(&mut op).unwrap();
        assert_eq!(out.rows(), 2);
        let null_group = (0..2).map(|i| out.row_values(i)).find(|r| r[0].is_null()).unwrap();
        assert_eq!(null_group[1], Value::I64(3));
    }

    #[test]
    fn empty_string_key_distinct_from_null_key() {
        // The NULL group's stored safe default is "" — a real "" key must
        // still form its own group.
        let src = source(vec![(None, Some(1)), (Some(""), Some(10)), (None, Some(2))]);
        let mut op = agg(
            src,
            true,
            vec![AggSpec { func: AggFunc::Sum, input: col_v(), out_ty: TypeId::I64 }],
            vec![Field::nullable("k", TypeId::Str), Field::nullable("sum", TypeId::I64)],
        );
        let out = drain(&mut op).unwrap();
        assert_eq!(out.rows(), 2);
        let rows: Vec<Vec<Value>> = (0..2).map(|i| out.row_values(i)).collect();
        let null_group = rows.iter().find(|r| r[0].is_null()).unwrap();
        let empty_group = rows.iter().find(|r| !r[0].is_null()).unwrap();
        assert_eq!(null_group[1], Value::I64(3));
        assert_eq!(empty_group[0], Value::Str(String::new()));
        assert_eq!(empty_group[1], Value::I64(10));
    }

    #[test]
    fn global_agg_on_empty_input_yields_one_row() {
        let src = source(vec![]);
        let mut op = agg(
            src,
            false,
            vec![
                AggSpec { func: AggFunc::CountStar, input: None, out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Sum, input: col_v(), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Avg, input: col_v(), out_ty: TypeId::F64 },
            ],
            vec![
                Field::not_null("cnt", TypeId::I64),
                Field::nullable("sum", TypeId::I64),
                Field::nullable("avg", TypeId::F64),
            ],
        );
        let out = drain(&mut op).unwrap();
        assert_eq!(out.rows(), 1);
        assert_eq!(out.row_values(0), vec![Value::I64(0), Value::Null, Value::Null]);
    }

    #[test]
    fn min_max_avg() {
        let src = source(vec![
            (Some("g"), Some(5)),
            (Some("g"), Some(-3)),
            (Some("g"), None),
            (Some("g"), Some(10)),
        ]);
        let mut op = agg(
            src,
            true,
            vec![
                AggSpec { func: AggFunc::Min, input: col_v(), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Max, input: col_v(), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Avg, input: col_v(), out_ty: TypeId::F64 },
            ],
            vec![
                Field::nullable("k", TypeId::Str),
                Field::nullable("min", TypeId::I64),
                Field::nullable("max", TypeId::I64),
                Field::nullable("avg", TypeId::F64),
            ],
        );
        let out = drain(&mut op).unwrap();
        assert_eq!(
            out.row_values(0),
            vec![Value::Str("g".into()), Value::I64(-3), Value::I64(10), Value::F64(4.0)]
        );
    }

    #[test]
    fn min_max_all_null_inputs_yield_null() {
        let src = source(vec![(Some("g"), None), (Some("g"), None)]);
        let mut op = agg(
            src,
            true,
            vec![
                AggSpec { func: AggFunc::Min, input: col_v(), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Max, input: col_v(), out_ty: TypeId::I64 },
            ],
            vec![
                Field::nullable("k", TypeId::Str),
                Field::nullable("min", TypeId::I64),
                Field::nullable("max", TypeId::I64),
            ],
        );
        let out = drain(&mut op).unwrap();
        assert_eq!(out.row_values(0), vec![Value::Str("g".into()), Value::Null, Value::Null]);
    }

    #[test]
    fn sum_overflow_detected() {
        let src = source(vec![(Some("g"), Some(i64::MAX)), (Some("g"), Some(1))]);
        let mut op = agg(
            src,
            true,
            vec![AggSpec { func: AggFunc::Sum, input: col_v(), out_ty: TypeId::I64 }],
            vec![Field::nullable("k", TypeId::Str), Field::nullable("sum", TypeId::I64)],
        );
        assert!(matches!(op.next(), Err(VwError::Overflow(_))));
    }

    #[test]
    fn duplicate_new_keys_within_one_batch_merge() {
        // Batch size 3 → first batch introduces "a" twice; both lanes must
        // resolve to one group.
        let src = source(vec![
            (Some("a"), Some(1)),
            (Some("a"), Some(2)),
            (Some("b"), Some(4)),
            (Some("a"), Some(8)),
        ]);
        let mut op = agg(
            src,
            true,
            vec![AggSpec { func: AggFunc::Sum, input: col_v(), out_ty: TypeId::I64 }],
            vec![Field::nullable("k", TypeId::Str), Field::nullable("sum", TypeId::I64)],
        );
        let out = drain(&mut op).unwrap();
        assert_eq!(out.rows(), 2);
        let mut rows: Vec<Vec<Value>> = (0..2).map(|i| out.row_values(i)).collect();
        rows.sort_by_key(|r| r[0].to_string());
        assert_eq!(rows[0], vec![Value::Str("a".into()), Value::I64(11)]);
        assert_eq!(rows[1], vec![Value::Str("b".into()), Value::I64(4)]);
    }

    #[test]
    fn agg_profile_reports_probe_stats() {
        let src = source(vec![
            (Some("a"), Some(1)),
            (Some("b"), Some(2)),
            (Some("a"), Some(3)),
            (Some("b"), Some(4)),
            (Some("a"), Some(5)),
        ]);
        let mut op = agg(
            src,
            true,
            vec![AggSpec { func: AggFunc::CountStar, input: None, out_ty: TypeId::I64 }],
            vec![Field::nullable("k", TypeId::Str), Field::not_null("c", TypeId::I64)],
        );
        let _ = drain(&mut op).unwrap();
        let p = Operator::profile(&op).unwrap();
        assert_eq!(p.probe_rows, 5, "every input row probed");
        assert!(p.probe_chain_steps > 0, "repeat keys walked chains");
    }

    #[test]
    fn partitioned_build_matches_serial() {
        // NULL keys, NULL inputs, every aggregate kind; min_rows = 0
        // engages the shard workers from the first batch.
        let rows: Vec<(Option<&str>, Option<i64>)> = vec![
            (Some("a"), Some(1)),
            (Some("b"), Some(10)),
            (None, Some(7)),
            (Some("a"), Some(2)),
            (Some("b"), None),
            (None, Some(3)),
            (Some("c"), Some(-5)),
            (Some("a"), Some(3)),
        ];
        let specs = || {
            vec![
                AggSpec { func: AggFunc::CountStar, input: None, out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Count, input: col_v(), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Sum, input: col_v(), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Min, input: col_v(), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Max, input: col_v(), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Avg, input: col_v(), out_ty: TypeId::F64 },
            ]
        };
        let fields = || {
            vec![
                Field::nullable("k", TypeId::Str),
                Field::not_null("cnt", TypeId::I64),
                Field::not_null("cntv", TypeId::I64),
                Field::nullable("sum", TypeId::I64),
                Field::nullable("min", TypeId::I64),
                Field::nullable("max", TypeId::I64),
                Field::nullable("avg", TypeId::F64),
            ]
        };
        let sort = |out: &Batch| {
            let mut v: Vec<Vec<Value>> = (0..out.rows()).map(|i| out.row_values(i)).collect();
            v.sort_by_key(|r| format!("{r:?}"));
            v
        };
        let mut serial = agg(source(rows.clone()), true, specs(), fields());
        let expect = sort(&drain(&mut serial).unwrap());
        for shards in [2usize, 4, 8] {
            let mut par =
                agg(source(rows.clone()), true, specs(), fields()).with_parallel_build(shards, 0);
            let got = sort(&drain(&mut par).unwrap());
            assert_eq!(got, expect, "partitioned GROUP BY diverged at {shards} shards");
            let p = Operator::profile(&par).unwrap();
            assert_eq!(p.shards(), shards);
            let groups: u64 = p.shard_build_rows.iter().sum();
            assert_eq!(groups, 4, "a, b, c and the NULL group");
            assert_eq!(p.probe_rows, 8, "every input row probed (via shard counters)");
        }
    }

    #[test]
    fn partitioned_below_gate_folds_inline_without_threads() {
        let rows = vec![(Some("a"), Some(1)), (Some("b"), Some(2)), (Some("a"), Some(3))];
        let mut op = agg(
            source(rows),
            true,
            vec![AggSpec { func: AggFunc::Sum, input: col_v(), out_ty: TypeId::I64 }],
            vec![Field::nullable("k", TypeId::Str), Field::nullable("sum", TypeId::I64)],
        )
        .with_parallel_build(4, 1_000_000);
        let out = drain(&mut op).unwrap();
        assert_eq!(out.rows(), 2);
        let p = Operator::profile(&op).unwrap();
        assert_eq!(p.shards(), 0, "gate keeps tiny builds serial");
        assert_eq!(p.probe_rows, 3, "inline fold still counts probes");
    }

    #[test]
    fn global_aggregate_ignores_parallel_build() {
        let src = source(vec![(Some("x"), Some(4)), (Some("y"), Some(6))]);
        let mut op = agg(
            src,
            false,
            vec![AggSpec { func: AggFunc::Sum, input: col_v(), out_ty: TypeId::I64 }],
            vec![Field::nullable("sum", TypeId::I64)],
        )
        .with_parallel_build(4, 0);
        let out = drain(&mut op).unwrap();
        assert_eq!(out.rows(), 1);
        assert_eq!(out.row_values(0)[0], Value::I64(10));
        assert_eq!(Operator::profile(&op).unwrap().shards(), 0);
    }

    #[test]
    fn grace_spill_matches_in_memory_aggregation() {
        use crate::partition::{MemBudget, SpillConfig};
        use vw_storage::SimulatedDisk;
        // Every aggregate kind, NULL keys and NULL inputs; budgets from
        // "spill everything, repeatedly" to "never spill".
        let rows: Vec<(Option<&str>, Option<i64>)> = vec![
            (Some("a"), Some(1)),
            (Some("b"), Some(10)),
            (None, Some(7)),
            (Some("a"), Some(2)),
            (Some("b"), None),
            (None, Some(3)),
            (Some("c"), Some(-5)),
            (Some("a"), Some(3)),
            (Some("d"), None),
        ];
        let specs = || {
            vec![
                AggSpec { func: AggFunc::CountStar, input: None, out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Count, input: col_v(), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Sum, input: col_v(), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Min, input: col_v(), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Max, input: col_v(), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Avg, input: col_v(), out_ty: TypeId::F64 },
            ]
        };
        let fields = || {
            vec![
                Field::nullable("k", TypeId::Str),
                Field::not_null("cnt", TypeId::I64),
                Field::not_null("cntv", TypeId::I64),
                Field::nullable("sum", TypeId::I64),
                Field::nullable("min", TypeId::I64),
                Field::nullable("max", TypeId::I64),
                Field::nullable("avg", TypeId::F64),
            ]
        };
        let sort = |out: &Batch| {
            let mut v: Vec<Vec<Value>> = (0..out.rows()).map(|i| out.row_values(i)).collect();
            v.sort_by_key(|r| format!("{r:?}"));
            v
        };
        let mut serial = agg(source(rows.clone()), true, specs(), fields());
        let expect = sort(&drain(&mut serial).unwrap());
        for budget in [1usize, 300, 1 << 30] {
            let disk = SimulatedDisk::instant();
            let tracker = MemBudget::new(budget);
            let cfg = SpillConfig::new(tracker.clone(), disk.clone(), 4);
            let metrics = cfg.metrics.clone();
            let mut op = agg(source(rows.clone()), true, specs(), fields()).with_spill(cfg);
            let got = sort(&drain(&mut op).unwrap());
            assert_eq!(got, expect, "grace GROUP BY diverged at budget {budget}");
            use std::sync::atomic::Ordering;
            let spilled = metrics.partitions.load(Ordering::Relaxed);
            if budget == 1 {
                assert!(spilled > 0, "1-byte budget must spill");
                let p = Operator::profile(&op).unwrap();
                assert!(p.spill_partitions > 0 && p.spill_bytes_written > 0);
                assert!(p.spill_bytes_read > 0, "partial states rehydrated");
            } else if budget == 1 << 30 {
                assert_eq!(spilled, 0, "huge budget must not spill");
            }
            drop(op);
            assert_eq!(tracker.used(), 0, "budget fully uncharged at {budget}");
            assert_eq!(disk.used_bytes(), 0, "spill blocks reclaimed at {budget}");
        }
    }

    #[test]
    fn grace_spill_reaggregates_many_groups_with_recursion() {
        use crate::partition::{MemBudget, SpillConfig};
        use vw_storage::SimulatedDisk;
        // 2500 distinct keys, each seen twice, under a budget several
        // times smaller than the state: partitions spill repeatedly and
        // the partial states (including AVG's sum/count pair) must merge
        // back to exact results.
        let n = 5000;
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::Str(format!("k{}", i % 2500)), Value::I64((i % 7) as i64)])
            .collect();
        let mk = || -> BoxedOp {
            Box::new(Values::new(schema2(), rows.clone(), 512, CancelToken::new()))
        };
        let specs = || {
            vec![
                AggSpec { func: AggFunc::CountStar, input: None, out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Sum, input: col_v(), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Avg, input: col_v(), out_ty: TypeId::F64 },
            ]
        };
        let fields = || {
            vec![
                Field::nullable("k", TypeId::Str),
                Field::not_null("cnt", TypeId::I64),
                Field::nullable("sum", TypeId::I64),
                Field::nullable("avg", TypeId::F64),
            ]
        };
        let sort = |out: &Batch| {
            let mut v: Vec<Vec<Value>> = (0..out.rows()).map(|i| out.row_values(i)).collect();
            v.sort_by_key(|r| format!("{r:?}"));
            v
        };
        let mut serial = agg(mk(), true, specs(), fields());
        let expect = sort(&drain(&mut serial).unwrap());
        assert_eq!(expect.len(), 2500);
        let disk = SimulatedDisk::instant();
        let tracker = MemBudget::new(8 * 1024); // state is ~100KB ⇒ ≥10× over
        let cfg = SpillConfig::new(tracker.clone(), disk.clone(), 4);
        let metrics = cfg.metrics.clone();
        let mut op = agg(mk(), true, specs(), fields()).with_spill(cfg);
        let got = sort(&drain(&mut op).unwrap());
        assert_eq!(got, expect, "re-aggregated groups diverged");
        use std::sync::atomic::Ordering;
        assert!(metrics.partitions.load(Ordering::Relaxed) >= 4, "all partitions spilled");
        drop(op);
        assert_eq!(tracker.used(), 0);
        assert_eq!(disk.used_bytes(), 0, "all spill (and re-partition) blocks reclaimed");
    }

    #[test]
    fn grace_spill_ignored_for_global_aggregates() {
        use crate::partition::{MemBudget, SpillConfig};
        use vw_storage::SimulatedDisk;
        let src = source(vec![(Some("x"), Some(4)), (Some("y"), Some(6))]);
        let cfg = SpillConfig::new(MemBudget::new(1), SimulatedDisk::instant(), 4);
        let metrics = cfg.metrics.clone();
        let mut op = agg(
            src,
            false,
            vec![AggSpec { func: AggFunc::Sum, input: col_v(), out_ty: TypeId::I64 }],
            vec![Field::nullable("sum", TypeId::I64)],
        )
        .with_spill(cfg);
        let out = drain(&mut op).unwrap();
        assert_eq!(out.row_values(0)[0], Value::I64(10));
        assert_eq!(metrics.partitions.load(std::sync::atomic::Ordering::Relaxed), 0);
    }

    #[test]
    fn many_groups_stream_in_vector_sized_batches() {
        let rows: Vec<(Option<String>, Option<i64>)> =
            (0..5000).map(|i| (Some(format!("k{}", i % 2500)), Some(1))).collect();
        let rows = rows
            .into_iter()
            .map(|(k, v)| {
                vec![k.map_or(Value::Null, Value::Str), v.map_or(Value::Null, Value::I64)]
            })
            .collect();
        let src: BoxedOp = Box::new(Values::new(schema2(), rows, 512, CancelToken::new()));
        let mut op = HashAggregate::new(
            src,
            vec![ExprProgram::compile(&PhysExpr::ColRef(0, TypeId::Str), &ExprCtx::default())],
            vec![AggSpec { func: AggFunc::CountStar, input: None, out_ty: TypeId::I64 }],
            Schema::unchecked(vec![
                Field::nullable("k", TypeId::Str),
                Field::not_null("c", TypeId::I64),
            ]),
            1000,
            CancelToken::new(),
        )
        .unwrap();
        let mut batches = 0;
        let mut total = 0;
        while let Some(b) = op.next().unwrap() {
            batches += 1;
            total += b.rows();
            for i in 0..b.rows() {
                assert_eq!(b.row_values(i)[1], Value::I64(2));
            }
        }
        assert_eq!(total, 2500);
        assert_eq!(batches, 3);
    }
}
