//! Vectorized hash aggregation (GROUP BY).
//!
//! Build: drain the child, hashing group keys a vector at a time and
//! accumulating per-group aggregate states. Emit: stream the groups out in
//! vector-sized batches. NULL group keys form their own group (SQL
//! semantics); aggregate inputs skip NULLs (except `COUNT(*)`).

use super::{BoxedOp, Operator};
use crate::cancel::CancelToken;
use crate::expr::{ExprCtx, PhysExpr};
use crate::vector::{Batch, Vector};
use vw_common::hash::{hash_bytes, hash_combine, hash_u64, FxHashMap};
use vw_common::{ColData, Result, Schema, TypeId, Value, VwError};

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows.
    CountStar,
    /// `COUNT(expr)` — counts non-NULL values.
    Count,
    /// `SUM(expr)` — BIGINT (checked) or DOUBLE.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)` — always DOUBLE.
    Avg,
}

/// One aggregate column specification.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Input expression (`None` only for `COUNT(*)`).
    pub input: Option<PhysExpr>,
    /// Output type (determined by the binder).
    pub out_ty: TypeId,
}

enum AggState {
    Count(Vec<i64>),
    SumI64 { sums: Vec<i64>, seen: Vec<bool> },
    SumF64 { sums: Vec<f64>, seen: Vec<bool> },
    MinMax { vals: Vec<Value>, is_min: bool },
    Avg { sums: Vec<f64>, counts: Vec<i64> },
}

impl AggState {
    fn new(spec: &AggSpec) -> Result<AggState> {
        Ok(match spec.func {
            AggFunc::CountStar | AggFunc::Count => AggState::Count(Vec::new()),
            AggFunc::Sum => match spec.out_ty {
                TypeId::I64 => AggState::SumI64 { sums: Vec::new(), seen: Vec::new() },
                TypeId::F64 => AggState::SumF64 { sums: Vec::new(), seen: Vec::new() },
                other => {
                    return Err(VwError::Plan(format!(
                        "SUM output must be BIGINT or DOUBLE, got {}",
                        other.sql_name()
                    )))
                }
            },
            AggFunc::Min => AggState::MinMax { vals: Vec::new(), is_min: true },
            AggFunc::Max => AggState::MinMax { vals: Vec::new(), is_min: false },
            AggFunc::Avg => AggState::Avg { sums: Vec::new(), counts: Vec::new() },
        })
    }

    fn push_group(&mut self) {
        match self {
            AggState::Count(c) => c.push(0),
            AggState::SumI64 { sums, seen } => {
                sums.push(0);
                seen.push(false);
            }
            AggState::SumF64 { sums, seen } => {
                sums.push(0.0);
                seen.push(false);
            }
            AggState::MinMax { vals, .. } => vals.push(Value::Null),
            AggState::Avg { sums, counts } => {
                sums.push(0.0);
                counts.push(0);
            }
        }
    }

    fn update(&mut self, g: usize, input: Option<(&Vector, usize)>, func: AggFunc) -> Result<()> {
        match (self, func) {
            (AggState::Count(c), AggFunc::CountStar) => c[g] += 1,
            (AggState::Count(c), AggFunc::Count) => {
                let (v, i) = input.expect("COUNT has input");
                if !v.is_null(i) {
                    c[g] += 1;
                }
            }
            (AggState::SumI64 { sums, seen }, _) => {
                let (v, i) = input.expect("SUM has input");
                if !v.is_null(i) {
                    let x = match &v.data {
                        ColData::I64(d) => d[i],
                        other => other.get_value(i).as_i64()?,
                    };
                    sums[g] = sums[g].checked_add(x).ok_or(VwError::Overflow("SUM"))?;
                    seen[g] = true;
                }
            }
            (AggState::SumF64 { sums, seen }, _) => {
                let (v, i) = input.expect("SUM has input");
                if !v.is_null(i) {
                    sums[g] += v.data.get_value(i).as_f64()?;
                    seen[g] = true;
                }
            }
            (AggState::MinMax { vals, is_min }, _) => {
                let (v, i) = input.expect("MIN/MAX has input");
                if !v.is_null(i) {
                    let x = v.data.get_value(i);
                    let better = match vals[g].sql_cmp(&x) {
                        None => true, // current is NULL
                        Some(o) => {
                            if *is_min {
                                o == std::cmp::Ordering::Greater
                            } else {
                                o == std::cmp::Ordering::Less
                            }
                        }
                    };
                    if better {
                        vals[g] = x;
                    }
                }
            }
            (AggState::Avg { sums, counts }, _) => {
                let (v, i) = input.expect("AVG has input");
                if !v.is_null(i) {
                    sums[g] += v.data.get_value(i).as_f64()?;
                    counts[g] += 1;
                }
            }
            (_, f) => return Err(VwError::Plan(format!("bad aggregate state for {f:?}"))),
        }
        Ok(())
    }

    fn finish(&self, g: usize) -> Value {
        match self {
            AggState::Count(c) => Value::I64(c[g]),
            AggState::SumI64 { sums, seen } => {
                if seen[g] {
                    Value::I64(sums[g])
                } else {
                    Value::Null
                }
            }
            AggState::SumF64 { sums, seen } => {
                if seen[g] {
                    Value::F64(sums[g])
                } else {
                    Value::Null
                }
            }
            AggState::MinMax { vals, .. } => vals[g].clone(),
            AggState::Avg { sums, counts } => {
                if counts[g] > 0 {
                    Value::F64(sums[g] / counts[g] as f64)
                } else {
                    Value::Null
                }
            }
        }
    }
}

/// Hash GROUP BY operator.
pub struct HashAggregate {
    input: Option<BoxedOp>,
    group_exprs: Vec<PhysExpr>,
    aggs: Vec<AggSpec>,
    schema: Schema,
    ctx: ExprCtx,
    cancel: CancelToken,
    vector_size: usize,
    // Build state.
    table: FxHashMap<u64, Vec<u32>>,
    group_keys: Vec<Vector>,
    states: Vec<AggState>,
    n_groups: usize,
    emit_pos: usize,
    built: bool,
}

impl HashAggregate {
    /// Aggregate `input` by `group_exprs` computing `aggs`. `schema` covers
    /// group columns followed by aggregate outputs.
    pub fn new(
        input: BoxedOp,
        group_exprs: Vec<PhysExpr>,
        aggs: Vec<AggSpec>,
        schema: Schema,
        ctx: ExprCtx,
        vector_size: usize,
        cancel: CancelToken,
    ) -> Result<HashAggregate> {
        let states = aggs.iter().map(AggState::new).collect::<Result<_>>()?;
        let group_keys = group_exprs
            .iter()
            .map(|e| Vector::new(ColData::new(e.type_id())))
            .collect();
        Ok(HashAggregate {
            input: Some(input),
            group_exprs,
            aggs,
            schema,
            ctx,
            cancel,
            vector_size,
            table: FxHashMap::default(),
            group_keys,
            states,
            n_groups: 0,
            emit_pos: 0,
            built: false,
        })
    }

    fn hash_row(keys: &[Vector], pos: usize) -> u64 {
        let mut h = 0x2545_f491_4f6c_dd1du64;
        for k in keys {
            let vh = if k.is_null(pos) {
                0x6b43_1293
            } else {
                match &k.data {
                    ColData::Bool(v) => v[pos] as u64,
                    ColData::I8(v) => v[pos] as u64,
                    ColData::I16(v) => v[pos] as u64,
                    ColData::I32(v) => v[pos] as u64,
                    ColData::I64(v) => v[pos] as u64,
                    ColData::F64(v) => v[pos].to_bits(),
                    ColData::Date(v) => v[pos] as u64,
                    ColData::Str(v) => hash_bytes(v[pos].as_bytes()),
                }
            };
            h = hash_combine(h, hash_u64(vh));
        }
        h
    }

    fn keys_equal(stored: &[Vector], g: usize, probe: &[Vector], pos: usize) -> bool {
        stored.iter().zip(probe).all(|(s, p)| {
            match (s.is_null(g), p.is_null(pos)) {
                (true, true) => true, // grouping treats NULLs as equal
                (false, false) => s.data.get_value(g) == p.data.get_value(pos),
                _ => false,
            }
        })
    }

    fn build(&mut self) -> Result<()> {
        let mut input = self.input.take().expect("build once");
        while let Some(batch) = input.next()? {
            self.cancel.check()?;
            let keys: Vec<Vector> = self
                .group_exprs
                .iter()
                .map(|e| e.eval(&batch, &self.ctx))
                .collect::<Result<_>>()?;
            let agg_inputs: Vec<Option<Vector>> = self
                .aggs
                .iter()
                .map(|a| a.input.as_ref().map(|e| e.eval(&batch, &self.ctx)).transpose())
                .collect::<Result<_>>()?;
            for pos in batch.live() {
                let h = Self::hash_row(&keys, pos);
                let bucket = self.table.entry(h).or_default();
                let mut gidx = None;
                for &g in bucket.iter() {
                    if Self::keys_equal(&self.group_keys, g as usize, &keys, pos) {
                        gidx = Some(g as usize);
                        break;
                    }
                }
                let g = match gidx {
                    Some(g) => g,
                    None => {
                        let g = self.n_groups;
                        self.n_groups += 1;
                        bucket.push(g as u32);
                        for (gk, k) in self.group_keys.iter_mut().zip(&keys) {
                            gk.push(&k.get(pos))?;
                        }
                        for st in &mut self.states {
                            st.push_group();
                        }
                        g
                    }
                };
                for ((spec, state), inp) in
                    self.aggs.iter().zip(&mut self.states).zip(&agg_inputs)
                {
                    state.update(g, inp.as_ref().map(|v| (v, pos)), spec.func)?;
                }
            }
        }
        // Global aggregation over zero rows still yields one group.
        if self.group_exprs.is_empty() && self.n_groups == 0 {
            self.n_groups = 1;
            for st in &mut self.states {
                st.push_group();
            }
            // COUNT over nothing is 0 (already the initial state).
        }
        self.built = true;
        Ok(())
    }
}

impl Operator for HashAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "HashAggr"
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        self.cancel.check()?;
        if !self.built {
            self.build()?;
        }
        if self.emit_pos >= self.n_groups {
            return Ok(None);
        }
        let end = (self.emit_pos + self.vector_size).min(self.n_groups);
        let mut columns: Vec<Vector> = Vec::with_capacity(self.schema.len());
        for gk in &self.group_keys {
            let mut v = Vector::new(ColData::with_capacity(gk.type_id(), end - self.emit_pos));
            for g in self.emit_pos..end {
                v.push(&gk.get(g))?;
            }
            columns.push(v);
        }
        for (spec, st) in self.aggs.iter().zip(&self.states) {
            let mut v = Vector::new(ColData::with_capacity(spec.out_ty, end - self.emit_pos));
            for g in self.emit_pos..end {
                v.push(&st.finish(g))?;
            }
            columns.push(v);
        }
        self.emit_pos = end;
        Ok(Some(Batch::new(columns)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::simple::Values;
    use crate::op::drain;
    use vw_common::Field;

    fn schema2() -> Schema {
        Schema::new(vec![
            Field::nullable("k", TypeId::Str),
            Field::nullable("v", TypeId::I64),
        ])
        .unwrap()
    }

    fn source(rows: Vec<(Option<&str>, Option<i64>)>) -> BoxedOp {
        let rows = rows
            .into_iter()
            .map(|(k, v)| {
                vec![
                    k.map_or(Value::Null, |s| Value::Str(s.into())),
                    v.map_or(Value::Null, Value::I64),
                ]
            })
            .collect();
        Box::new(Values::new(schema2(), rows, 3, CancelToken::new()))
    }

    fn agg(
        src: BoxedOp,
        group: bool,
        specs: Vec<AggSpec>,
        out: Vec<Field>,
    ) -> HashAggregate {
        let group_exprs = if group {
            vec![PhysExpr::ColRef(0, TypeId::Str)]
        } else {
            vec![]
        };
        HashAggregate::new(
            src,
            group_exprs,
            specs,
            Schema::unchecked(out),
            ExprCtx::default(),
            1024,
            CancelToken::new(),
        )
        .unwrap()
    }

    fn col_v() -> PhysExpr {
        PhysExpr::ColRef(1, TypeId::I64)
    }

    #[test]
    fn grouped_sum_count() {
        let src = source(vec![
            (Some("a"), Some(1)),
            (Some("b"), Some(10)),
            (Some("a"), Some(2)),
            (Some("b"), None),
            (Some("a"), Some(3)),
        ]);
        let mut op = agg(
            src,
            true,
            vec![
                AggSpec { func: AggFunc::Sum, input: Some(col_v()), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Count, input: Some(col_v()), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::CountStar, input: None, out_ty: TypeId::I64 },
            ],
            vec![
                Field::nullable("k", TypeId::Str),
                Field::nullable("sum", TypeId::I64),
                Field::not_null("cnt", TypeId::I64),
                Field::not_null("cntstar", TypeId::I64),
            ],
        );
        let out = drain(&mut op).unwrap();
        assert_eq!(out.rows(), 2);
        let mut rows: Vec<Vec<Value>> = (0..2).map(|i| out.row_values(i)).collect();
        rows.sort_by_key(|r| r[0].to_string());
        assert_eq!(rows[0], vec![Value::Str("a".into()), Value::I64(6), Value::I64(3), Value::I64(3)]);
        assert_eq!(rows[1], vec![Value::Str("b".into()), Value::I64(10), Value::I64(1), Value::I64(2)]);
    }

    #[test]
    fn null_keys_group_together() {
        let src = source(vec![(None, Some(1)), (None, Some(2)), (Some("x"), Some(3))]);
        let mut op = agg(
            src,
            true,
            vec![AggSpec { func: AggFunc::Sum, input: Some(col_v()), out_ty: TypeId::I64 }],
            vec![
                Field::nullable("k", TypeId::Str),
                Field::nullable("sum", TypeId::I64),
            ],
        );
        let out = drain(&mut op).unwrap();
        assert_eq!(out.rows(), 2);
        let null_group = (0..2)
            .map(|i| out.row_values(i))
            .find(|r| r[0].is_null())
            .unwrap();
        assert_eq!(null_group[1], Value::I64(3));
    }

    #[test]
    fn global_agg_on_empty_input_yields_one_row() {
        let src = source(vec![]);
        let mut op = agg(
            src,
            false,
            vec![
                AggSpec { func: AggFunc::CountStar, input: None, out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Sum, input: Some(col_v()), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Avg, input: Some(col_v()), out_ty: TypeId::F64 },
            ],
            vec![
                Field::not_null("cnt", TypeId::I64),
                Field::nullable("sum", TypeId::I64),
                Field::nullable("avg", TypeId::F64),
            ],
        );
        let out = drain(&mut op).unwrap();
        assert_eq!(out.rows(), 1);
        assert_eq!(
            out.row_values(0),
            vec![Value::I64(0), Value::Null, Value::Null]
        );
    }

    #[test]
    fn min_max_avg() {
        let src = source(vec![
            (Some("g"), Some(5)),
            (Some("g"), Some(-3)),
            (Some("g"), None),
            (Some("g"), Some(10)),
        ]);
        let mut op = agg(
            src,
            true,
            vec![
                AggSpec { func: AggFunc::Min, input: Some(col_v()), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Max, input: Some(col_v()), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Avg, input: Some(col_v()), out_ty: TypeId::F64 },
            ],
            vec![
                Field::nullable("k", TypeId::Str),
                Field::nullable("min", TypeId::I64),
                Field::nullable("max", TypeId::I64),
                Field::nullable("avg", TypeId::F64),
            ],
        );
        let out = drain(&mut op).unwrap();
        assert_eq!(
            out.row_values(0),
            vec![
                Value::Str("g".into()),
                Value::I64(-3),
                Value::I64(10),
                Value::F64(4.0)
            ]
        );
    }

    #[test]
    fn sum_overflow_detected() {
        let src = source(vec![(Some("g"), Some(i64::MAX)), (Some("g"), Some(1))]);
        let mut op = agg(
            src,
            true,
            vec![AggSpec { func: AggFunc::Sum, input: Some(col_v()), out_ty: TypeId::I64 }],
            vec![
                Field::nullable("k", TypeId::Str),
                Field::nullable("sum", TypeId::I64),
            ],
        );
        assert!(matches!(op.next(), Err(VwError::Overflow(_))));
    }

    #[test]
    fn many_groups_stream_in_vector_sized_batches() {
        let rows: Vec<(Option<String>, Option<i64>)> =
            (0..5000).map(|i| (Some(format!("k{}", i % 2500)), Some(1))).collect();
        let rows = rows
            .into_iter()
            .map(|(k, v)| vec![k.map_or(Value::Null, Value::Str), v.map_or(Value::Null, Value::I64)])
            .collect();
        let src: BoxedOp = Box::new(Values::new(schema2(), rows, 512, CancelToken::new()));
        let mut op = HashAggregate::new(
            src,
            vec![PhysExpr::ColRef(0, TypeId::Str)],
            vec![AggSpec { func: AggFunc::CountStar, input: None, out_ty: TypeId::I64 }],
            Schema::unchecked(vec![
                Field::nullable("k", TypeId::Str),
                Field::not_null("c", TypeId::I64),
            ]),
            ExprCtx::default(),
            1000,
            CancelToken::new(),
        )
        .unwrap();
        let mut batches = 0;
        let mut total = 0;
        while let Some(b) = op.next().unwrap() {
            batches += 1;
            total += b.rows();
            for i in 0..b.rows() {
                assert_eq!(b.row_values(i)[1], Value::I64(2));
            }
        }
        assert_eq!(total, 2500);
        assert_eq!(batches, 3);
    }
}
