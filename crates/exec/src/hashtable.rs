//! Flat vectorized hash table — the shared engine under hash join and hash
//! aggregation.
//!
//! The X100 lesson this module applies: operator-internal data structures
//! decide whether the hot loop stays a tight, allocation-free, vector-at-a-
//! time primitive. The previous implementation funneled every probe row
//! through a `FxHashMap<u64, Vec<u32>>` — a heap-allocated bucket `Vec` per
//! distinct key and a tuple-at-a-time map lookup per row. This table
//! replaces it with:
//!
//! * a power-of-two **directory** of `u32` chain heads indexed by the low
//!   bits of the key hash (`EMPTY` marks a free bucket);
//! * a **`next` chain array** parallel to the contiguously numbered build
//!   rows — row `r`'s bucket successor is `next[r]`, so collision chains
//!   live in one flat allocation instead of many little `Vec`s;
//! * the **full 64-bit hash per row**, so probe lanes reject mismatched
//!   candidates with one integer compare before any key comparison.
//!
//! The table stores *only* hashes and links. Key and payload columns live in
//! ordinary contiguous [`Vector`]s owned by the operator, indexed by row id
//! — which is what makes the probe a gather over columnar data rather than
//! a pointer chase through per-key heap nodes.
//!
//! Probing is fully vectorized: hash the whole key vector with the
//! `vw_common::hash` kernels ([`hash_keys`]), gather hash-matching
//! candidates for all lanes ([`FlatTable::gather_matching`]), then
//! iteratively confirm keys and re-probe only the still-unmatched lanes
//! via a [`SelVec`] ([`keys_match_sel`] → [`FlatTable::advance_matching`]).
//! Single-column keys take a fused, type-monomorphized fast path instead
//! ([`FlatTable::probe_join`] / [`FlatTable::probe_groups`]) that stages
//! hash → prefetch → scan across the whole vector. Hash join additionally
//! [`finalize`](FlatTable::finalize)s its build into a bucket-grouped
//! contiguous (CSR) layout whose probes are short sequential scans — or,
//! when the whole build input is staged first, bulk-constructs that layout
//! directly ([`FlatTable::build_csr`]: histogram → prefix sum → scatter,
//! no chain phase at all). All scratch buffers are caller-owned and reused
//! across batches, so the steady-state probe loop performs no allocations.
//!
//! **Partitioned builds** (see [`crate::partition`]): one `FlatTable` is
//! also the unit of radix sharding. The partition id is the *top* bits of
//! the same 64-bit key hash — provably disjoint from the directory index
//! (low bits) and nearly so from the bloom tag (bits 57..60) — so `P`
//! shard tables built from a radix split stay exactly as balanced as one
//! big table, while each is `P`× smaller. Shards are never merged; probes
//! split partition-wise by the same bits and run these same kernels
//! against the owning shard.
//!
//! **Grace-spilled builds** rehydrate through the same entry point:
//! a spilled partition's rows are replayed from its spill file
//! ([`crate::spill`]), their key hashes recomputed with [`hash_keys`]
//! (hashing is a pure function of the key values, so rehydrated runs
//! land in the same buckets), and the partition's table bulk-built with
//! [`FlatTable::build_csr`] exactly like any staged-then-finalized build.
//! Nothing in this module knows whether its input ever touched disk.

use crate::primitives;
use crate::vector::Vector;
use vw_common::hash::{hash_bytes, hash_u64};
use vw_common::{ColData, SelVec};

/// Sentinel row id: a free directory bucket or the end of a chain.
pub const EMPTY: u32 = u32::MAX;

/// Lane value hashed in place of NULL keys when NULLs form their own group
/// (GROUP BY semantics). Collisions with real data are resolved by the
/// NULL-aware key comparison, so this only affects chain length.
pub(crate) const NULL_KEY_LANE: u64 = 0x6b43_1293_9e1f_75adu64;

/// One chain entry: the row's full hash and its bucket successor, packed
/// together so a chain step costs a single cache line instead of one miss
/// in a hash array plus one in a next array.
#[derive(Debug, Clone, Copy)]
struct Entry {
    hash: u64,
    next: u32,
}

/// One finalized (CSR) slot: a row's full hash and its row id, stored
/// bucket-grouped and contiguous so probing a bucket is a short sequential
/// scan instead of a pointer chase.
#[derive(Debug, Clone, Copy)]
struct Slot {
    hash: u64,
    row: u32,
}

/// Open-addressing directory + chain array over contiguous build rows.
///
/// Two layouts share this type:
///
/// * **chain mode** (initial): `heads[h & mask]` points at the newest row
///   of the bucket; rows link through `entries[row].next`. Supports
///   incremental find-or-insert — hash aggregation lives here.
/// * **finalized mode** (after [`FlatTable::finalize`]): entries are
///   counting-sorted into bucket-grouped contiguous `slots` with a CSR
///   `offsets` directory. Probing a bucket becomes a bounded sequential
///   scan — the layout hash join probes after its build phase completes.
///   Finalized tables reject further inserts.
#[derive(Debug, Clone)]
pub struct FlatTable {
    /// Chain-mode directory (empty once finalized).
    heads: Vec<u32>,
    /// Chain-mode entries, indexed by row id (empty once finalized).
    entries: Vec<Entry>,
    /// Finalized CSR directory: bucket `b` owns `slots[offsets[b]..offsets[b + 1]]`.
    offsets: Vec<u32>,
    /// Finalized bucket-grouped slots.
    slots: Vec<Slot>,
    /// Finalized per-bucket 8-bit bloom tag (one bit per resident hash's
    /// high bits). One byte per bucket keeps the array dense enough to stay
    /// cache-resident, so most probe *misses* resolve without ever touching
    /// the (much larger) offsets or slot arrays — the same trick behind
    /// SwissTable control bytes and Vectorwise's bloom-filtered joins.
    bloom: Vec<u8>,
    finalized: bool,
    mask: u64,
}

/// Bloom tag bit for hash `h`: derived from bits far above the bucket
/// index so tag and bucket stay independent.
#[inline(always)]
fn bloom_bit(h: u64) -> u8 {
    1u8 << ((h >> 57) & 7)
}

impl Default for FlatTable {
    fn default() -> FlatTable {
        FlatTable::new()
    }
}

impl FlatTable {
    /// An empty table.
    pub fn new() -> FlatTable {
        FlatTable::with_capacity(0)
    }

    /// An empty table sized for `rows` build rows without regrowing.
    pub fn with_capacity(rows: usize) -> FlatTable {
        let dir = directory_size(rows);
        FlatTable {
            heads: vec![EMPTY; dir],
            entries: Vec::with_capacity(rows),
            offsets: Vec::new(),
            slots: Vec::new(),
            bloom: Vec::new(),
            finalized: false,
            mask: dir as u64 - 1,
        }
    }

    /// Number of inserted rows.
    pub fn len(&self) -> usize {
        if self.finalized {
            self.slots.len()
        } else {
            self.entries.len()
        }
    }

    /// True when no rows have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Directory size (power of two) — exposed for bench introspection.
    pub fn directory_len(&self) -> usize {
        if self.finalized {
            self.offsets.len() - 1
        } else {
            self.heads.len()
        }
    }

    /// Has [`FlatTable::finalize`] run?
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    #[inline]
    fn bucket(&self, h: u64) -> usize {
        (h & self.mask) as usize
    }

    /// Pre-size for `additional` more rows so [`FlatTable::insert`] will not
    /// rebuild mid-batch.
    pub fn reserve(&mut self, additional: usize) {
        debug_assert!(!self.finalized, "reserve on finalized table");
        let need = directory_size(self.len() + additional);
        if need > self.heads.len() {
            self.rebuild_directory(need);
        }
        self.entries.reserve(additional);
    }

    /// Insert the next row (id = current [`FlatTable::len`]) with hash `h`;
    /// returns the new row id. New rows prepend to their bucket chain.
    #[inline]
    pub fn insert(&mut self, h: u64) -> u32 {
        debug_assert!(!self.finalized, "insert on finalized table");
        if (self.len() + 1) * 2 > self.heads.len() {
            self.rebuild_directory(self.heads.len() * 2);
        }
        let row = self.entries.len() as u32;
        assert!(row != EMPTY, "flat table holds at most u32::MAX - 1 rows");
        let b = self.bucket(h);
        self.entries.push(Entry { hash: h, next: self.heads[b] });
        self.heads[b] = row;
        row
    }

    /// Vectorized insert: append one row per selected lane, in lane order.
    /// Row ids are assigned contiguously, matching the order in which the
    /// caller appended the corresponding key/payload values.
    pub fn insert_batch(&mut self, hashes: &[u64], sel: Option<&SelVec>) {
        match sel {
            None => {
                self.reserve(hashes.len());
                for &h in hashes {
                    self.insert(h);
                }
            }
            Some(s) => {
                self.reserve(s.len());
                for p in s.iter() {
                    self.insert(hashes[p]);
                }
            }
        }
    }

    /// Bulk-build a finalized (CSR) table directly from a complete hash
    /// array: histogram → prefix sum → scatter. Row `r` is `hashes[r]`.
    ///
    /// This skips the chain-insert phase entirely — no `heads`/`entries`
    /// arrays, no incremental directory doublings with their relink passes
    /// — so it is the build of choice whenever the whole input is known
    /// before the first probe (hash join; each radix shard of a
    /// partitioned build). Aggregation keeps the incremental chain path:
    /// it interleaves lookups with inserts.
    pub fn build_csr(hashes: &[u64]) -> FlatTable {
        assert!(hashes.len() < EMPTY as usize, "flat table holds at most u32::MAX - 1 rows");
        let dir = directory_size(hashes.len());
        let mask = dir as u64 - 1;
        let mut offsets = vec![0u32; dir + 1];
        let mut bloom = vec![0u8; dir];
        for &h in hashes {
            let b = (h & mask) as usize;
            offsets[b + 1] += 1;
            bloom[b] |= bloom_bit(h);
        }
        for b in 1..offsets.len() {
            offsets[b] += offsets[b - 1];
        }
        let mut cursor = offsets[..dir].to_vec();
        let mut slots = vec![Slot { hash: 0, row: EMPTY }; hashes.len()];
        for (row, &h) in hashes.iter().enumerate() {
            let b = (h & mask) as usize;
            slots[cursor[b] as usize] = Slot { hash: h, row: row as u32 };
            cursor[b] += 1;
        }
        FlatTable {
            heads: Vec::new(),
            entries: Vec::new(),
            offsets,
            slots,
            bloom,
            finalized: true,
            mask,
        }
    }

    /// Convert chains into the finalized CSR layout: one counting-sort pass
    /// groups every bucket's rows contiguously (in ascending row order), so
    /// probes scan a cache-friendly range instead of chasing `next` links.
    /// Hash join calls this once its build side is drained; further inserts
    /// are rejected. No-op on an already-finalized table.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        let dir = self.heads.len();
        self.offsets.clear();
        self.offsets.resize(dir + 1, 0);
        self.bloom.clear();
        self.bloom.resize(dir, 0);
        for e in &self.entries {
            let b = (e.hash & self.mask) as usize;
            self.offsets[b + 1] += 1;
            self.bloom[b] |= bloom_bit(e.hash);
        }
        for b in 1..self.offsets.len() {
            self.offsets[b] += self.offsets[b - 1];
        }
        let mut cursor = self.offsets.clone();
        self.slots.clear();
        self.slots.resize(self.entries.len(), Slot { hash: 0, row: EMPTY });
        for (row, e) in self.entries.iter().enumerate() {
            let b = (e.hash & self.mask) as usize;
            self.slots[cursor[b] as usize] = Slot { hash: e.hash, row: row as u32 };
            cursor[b] += 1;
        }
        self.heads = Vec::new();
        self.entries = Vec::new();
        self.finalized = true;
    }

    /// Double (or jump) the chain directory and relink every row. Rows are
    /// relinked in id order so chains stay deterministic.
    fn rebuild_directory(&mut self, dir: usize) {
        debug_assert!(dir.is_power_of_two());
        self.heads.clear();
        self.heads.resize(dir, EMPTY);
        self.mask = dir as u64 - 1;
        for row in 0..self.entries.len() {
            let b = self.bucket(self.entries[row].hash);
            self.entries[row].next = self.heads[b];
            self.heads[b] = row as u32;
        }
    }

    /// Walk one bucket looking for a row whose stored hash equals `h` and
    /// whose keys match (scalar path: aggregation's new-group insertion,
    /// where at most a handful of lanes per batch miss).
    #[inline]
    pub fn find_chain(&self, h: u64, mut matches: impl FnMut(u32) -> bool) -> Option<u32> {
        debug_assert!(!self.finalized, "find_chain on finalized table");
        let mut row = self.heads[self.bucket(h)];
        while row != EMPTY {
            let e = self.entries[row as usize];
            if e.hash == h && matches(row) {
                return Some(row);
            }
            row = e.next;
        }
        None
    }

    /// Gather each selected lane's first *hash-matching* candidate:
    /// chain mode walks from the bucket head skipping entries whose stored
    /// hash differs (one integer compare each); finalized mode scans the
    /// bucket's slot range. `active` receives the lanes that found one;
    /// their `cand[p]` (a chain row / slot index — translate with
    /// [`FlatTable::candidate_rows`]) needs only key confirmation. Entries
    /// visited are added to `steps` (profiling).
    pub fn gather_matching(
        &self,
        hashes: &[u64],
        sel: &SelVec,
        cand: &mut Vec<u32>,
        active: &mut SelVec,
        steps: &mut u64,
    ) {
        if cand.len() < hashes.len() {
            cand.resize(hashes.len(), EMPTY);
        }
        let mut visited = 0u64;
        if self.finalized {
            sel.retain_from(
                |p| {
                    let h = hashes[p];
                    let b = self.bucket(h);
                    let end = self.offsets[b + 1] as usize;
                    let mut i = self.offsets[b] as usize;
                    while i < end {
                        visited += 1;
                        if self.slots[i].hash == h {
                            cand[p] = i as u32;
                            return true;
                        }
                        i += 1;
                    }
                    false
                },
                active,
            );
        } else {
            sel.retain_from(
                |p| {
                    let h = hashes[p];
                    let mut row = self.heads[self.bucket(h)];
                    while row != EMPTY {
                        visited += 1;
                        let e = self.entries[row as usize];
                        if e.hash == h {
                            cand[p] = row;
                            return true;
                        }
                        row = e.next;
                    }
                    false
                },
                active,
            );
        }
        *steps += visited;
    }

    /// Advance every selected lane past its current candidate to the next
    /// hash-matching one (see [`FlatTable::gather_matching`]); `out`
    /// receives the lanes that found another candidate.
    pub fn advance_matching(
        &self,
        hashes: &[u64],
        sel: &SelVec,
        cand: &mut [u32],
        out: &mut SelVec,
        steps: &mut u64,
    ) {
        let mut visited = 0u64;
        if self.finalized {
            sel.retain_from(
                |p| {
                    let h = hashes[p];
                    let end = self.offsets[self.bucket(h) + 1] as usize;
                    let mut i = cand[p] as usize + 1;
                    while i < end {
                        visited += 1;
                        if self.slots[i].hash == h {
                            cand[p] = i as u32;
                            return true;
                        }
                        i += 1;
                    }
                    false
                },
                out,
            );
        } else {
            sel.retain_from(
                |p| {
                    let h = hashes[p];
                    let mut row = self.entries[cand[p] as usize].next;
                    while row != EMPTY {
                        visited += 1;
                        let e = self.entries[row as usize];
                        if e.hash == h {
                            cand[p] = row;
                            return true;
                        }
                        row = e.next;
                    }
                    false
                },
                out,
            );
        }
        *steps += visited;
    }

    /// Translate candidate handles (chain rows / finalized slot indices)
    /// into build row ids for the selected lanes: `rows[p]` receives the
    /// row id behind `cand[p]`. Key comparison and output assembly index
    /// build columns by row id.
    pub fn candidate_rows(&self, cand: &[u32], sel: &SelVec, rows: &mut Vec<u32>) {
        if rows.len() < cand.len() {
            rows.resize(cand.len(), EMPTY);
        }
        if self.finalized {
            for p in sel.iter() {
                rows[p] = self.slots[cand[p] as usize].row;
            }
        } else {
            for p in sel.iter() {
                rows[p] = cand[p];
            }
        }
    }

    /// Fully fused join probe for type-specialized single-column keys: the
    /// monomorphized equivalent of the gather/compare/advance pipeline with
    /// zero intermediate `SelVec` traffic. `emit_all` records every match
    /// (inner/outer join); otherwise the lane stops at its first match
    /// (semi/anti existence). Matches set `matched_flags[p]` and, under
    /// `emit_all`, append the `(probe lane, build row)` pair.
    ///
    /// `hash_of` computes the lane hash inline (monomorphized — e.g.
    /// `hash_u64` of an `i64` key); `sel = None` probes all `n` lanes
    /// (dense batch, no NULL keys) without selection-vector indirection.
    ///
    /// Large tables probe in stages — hash all lanes, bloom-test all lanes
    /// (prefetching directory lines), gather all bucket ranges (prefetching
    /// slot lines), then scan — so the dependent cache misses of many lanes
    /// are in flight at once. Small, cache-resident tables use a single
    /// fused pass where staging would be pure overhead.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn probe_join<H: FnMut(usize) -> u64, F: FnMut(usize, u32) -> bool>(
        &self,
        n: usize,
        sel: Option<&SelVec>,
        emit_all: bool,
        mut hash_of: H,
        mut key_eq: F,
        matched_flags: &mut [bool],
        out_probe: &mut Vec<u32>,
        out_build: &mut Vec<u32>,
        buf: &mut ProbeBuf,
        steps: &mut u64,
    ) {
        let mut visited = 0u64;
        macro_rules! for_lanes {
            ($lane:ident) => {
                match sel {
                    None => {
                        for p in 0..n {
                            $lane!(p);
                        }
                    }
                    Some(s) => {
                        for p in s.iter() {
                            $lane!(p);
                        }
                    }
                }
            };
        }
        macro_rules! emit {
            ($p:expr, $row:expr, $brk:stmt) => {{
                matched_flags[$p] = true;
                if !emit_all {
                    $brk
                }
                out_probe.push($p as u32);
                out_build.push($row);
            }};
        }
        if self.finalized {
            if self.slots.len() <= SMALL_TABLE {
                macro_rules! lane {
                    ($p:expr) => {{
                        let p = $p;
                        let h = hash_of(p);
                        let b = self.bucket(h);
                        if self.bloom[b] & bloom_bit(h) != 0 {
                            let end = self.offsets[b + 1] as usize;
                            let mut i = self.offsets[b] as usize;
                            while i < end {
                                visited += 1;
                                let slot = self.slots[i];
                                if slot.hash == h && key_eq(p, slot.row) {
                                    emit!(p, slot.row, break);
                                }
                                i += 1;
                            }
                        }
                    }};
                }
                for_lanes!(lane);
            } else {
                self.stage_csr(n, sel, &mut hash_of, buf);
                macro_rules! lane {
                    ($p:expr) => {{
                        let p = $p;
                        let h = buf.hashes[p];
                        let end = buf.ends[p] as usize;
                        let mut i = buf.cand[p] as usize;
                        while i < end {
                            visited += 1;
                            let slot = self.slots[i];
                            if slot.hash == h && key_eq(p, slot.row) {
                                emit!(p, slot.row, break);
                            }
                            i += 1;
                        }
                    }};
                }
                for_lanes!(lane);
            }
        } else if self.entries.len() <= SMALL_TABLE {
            macro_rules! lane {
                ($p:expr) => {{
                    let p = $p;
                    let h = hash_of(p);
                    let mut row = self.heads[self.bucket(h)];
                    while row != EMPTY {
                        visited += 1;
                        let e = self.entries[row as usize];
                        if e.hash == h && key_eq(p, row) {
                            emit!(p, row, break);
                        }
                        row = e.next;
                    }
                }};
            }
            for_lanes!(lane);
        } else {
            self.stage_chain(n, sel, &mut hash_of, buf);
            macro_rules! lane {
                ($p:expr) => {{
                    let p = $p;
                    let h = buf.hashes[p];
                    let mut row = buf.cand[p];
                    while row != EMPTY {
                        visited += 1;
                        let e = self.entries[row as usize];
                        if e.hash == h && key_eq(p, row) {
                            emit!(p, row, break);
                        }
                        row = e.next;
                    }
                }};
            }
            for_lanes!(lane);
        }
        *steps += visited;
    }

    /// Fused group lookup (aggregation): `gidx[p]` receives the first
    /// hash-and-key-matching row for each selected lane, or [`EMPTY`] when
    /// the key is unseen. Staged like [`FlatTable::probe_join`], over the
    /// chain layout (aggregation keeps inserting, so it never finalizes).
    /// The lane hashes remain in `buf` for the caller's miss-insert pass.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn probe_groups<H: FnMut(usize) -> u64, F: FnMut(usize, u32) -> bool>(
        &self,
        n: usize,
        sel: Option<&SelVec>,
        mut hash_of: H,
        mut key_eq: F,
        gidx: &mut [u32],
        buf: &mut ProbeBuf,
        steps: &mut u64,
    ) {
        debug_assert!(!self.finalized, "probe_groups on finalized table");
        let mut visited = 0u64;
        // The miss-insert pass needs every lane's hash afterwards, so the
        // staging pass runs even for small tables.
        self.stage_chain(n, sel, &mut hash_of, buf);
        macro_rules! lane {
            ($p:expr) => {{
                let p = $p;
                let h = buf.hashes[p];
                let mut row = buf.cand[p];
                gidx[p] = EMPTY;
                while row != EMPTY {
                    visited += 1;
                    let e = self.entries[row as usize];
                    if e.hash == h && key_eq(p, row) {
                        gidx[p] = row;
                        break;
                    }
                    row = e.next;
                }
            }};
        }
        match sel {
            None => {
                for p in 0..n {
                    lane!(p);
                }
            }
            Some(s) => {
                for p in s.iter() {
                    lane!(p);
                }
            }
        }
        *steps += visited;
    }

    fn ensure_buf(n: usize, buf: &mut ProbeBuf) {
        if buf.hashes.len() < n {
            buf.hashes.resize(n, 0);
            buf.cand.resize(n, EMPTY);
            buf.ends.resize(n, 0);
        }
    }

    /// Chain-mode probe staging: hash every lane (prefetching its
    /// directory line), then gather every lane's chain head (prefetching
    /// its entry). Fills `buf.hashes` and `buf.cand`; unselected lanes are
    /// garbage.
    #[inline]
    fn stage_chain<H: FnMut(usize) -> u64>(
        &self,
        n: usize,
        sel: Option<&SelVec>,
        hash_of: &mut H,
        buf: &mut ProbeBuf,
    ) {
        Self::ensure_buf(n, buf);
        macro_rules! hash_lane {
            ($p:expr) => {{
                let p = $p;
                let h = hash_of(p);
                buf.hashes[p] = h;
                prefetch(&self.heads[self.bucket(h)]);
            }};
        }
        macro_rules! head_lane {
            ($p:expr) => {{
                let p = $p;
                let row = self.heads[self.bucket(buf.hashes[p])];
                buf.cand[p] = row;
                if row != EMPTY {
                    prefetch(&self.entries[row as usize]);
                }
            }};
        }
        match sel {
            None => {
                for p in 0..n {
                    hash_lane!(p);
                }
                for p in 0..n {
                    head_lane!(p);
                }
            }
            Some(s) => {
                for p in s.iter() {
                    hash_lane!(p);
                }
                for p in s.iter() {
                    head_lane!(p);
                }
            }
        }
    }

    /// Finalized-mode probe staging: hash every lane, bloom-test every
    /// lane on the dense tag array (prefetching the offsets line only for
    /// bloom-positive lanes), then gather bucket ranges (prefetching the
    /// first slot). Bloom-negative lanes get an empty range and never
    /// touch the large arrays. Fills `buf.hashes`/`cand`/`ends`.
    #[inline]
    fn stage_csr<H: FnMut(usize) -> u64>(
        &self,
        n: usize,
        sel: Option<&SelVec>,
        hash_of: &mut H,
        buf: &mut ProbeBuf,
    ) {
        Self::ensure_buf(n, buf);
        macro_rules! hash_lane {
            ($p:expr) => {{
                let p = $p;
                let h = hash_of(p);
                buf.hashes[p] = h;
                prefetch(&self.bloom[self.bucket(h)]);
            }};
        }
        macro_rules! bloom_lane {
            ($p:expr) => {{
                let p = $p;
                let h = buf.hashes[p];
                let b = self.bucket(h);
                if self.bloom[b] & bloom_bit(h) != 0 {
                    buf.cand[p] = b as u32;
                    buf.ends[p] = 1; // marker: range to be resolved
                    prefetch(&self.offsets[b]);
                } else {
                    buf.cand[p] = 0;
                    buf.ends[p] = 0;
                }
            }};
        }
        macro_rules! range_lane {
            ($p:expr) => {{
                let p = $p;
                if buf.ends[p] != 0 {
                    let b = buf.cand[p] as usize;
                    let start = self.offsets[b];
                    let end = self.offsets[b + 1];
                    buf.cand[p] = start;
                    buf.ends[p] = end;
                    if start != end {
                        prefetch(&self.slots[start as usize]);
                    }
                }
            }};
        }
        match sel {
            None => {
                for p in 0..n {
                    hash_lane!(p);
                }
                for p in 0..n {
                    bloom_lane!(p);
                }
                for p in 0..n {
                    range_lane!(p);
                }
            }
            Some(s) => {
                for p in s.iter() {
                    hash_lane!(p);
                }
                for p in s.iter() {
                    bloom_lane!(p);
                }
                for p in s.iter() {
                    range_lane!(p);
                }
            }
        }
    }
}

/// Dispatch a single-column key-kernel body over same-variant column
/// pairs. Expands `$body!(pa, ba, hash_closure, eq_closure)` with the
/// typed slices and the *canonical* per-type hash projection / equality —
/// the same scheme [`hash_keys`]'s `project_lanes` uses — so the fused
/// operator fast paths cannot drift from the general hashing path.
/// Mixed-variant pairs run `$fallback`.
macro_rules! dispatch_typed_keys {
    ($pcol:expr, $bcol:expr, $body:ident, $fallback:expr) => {
        match ($pcol, $bcol) {
            (vw_common::ColData::Bool(pa), vw_common::ColData::Bool(ba)) => $body!(
                pa,
                ba,
                |x: &bool| vw_common::hash::hash_u64(*x as u64),
                |x: &bool, y: &bool| x == y
            ),
            (vw_common::ColData::I8(pa), vw_common::ColData::I8(ba)) => {
                $body!(pa, ba, |x: &i8| vw_common::hash::hash_u64(*x as u64), |x: &i8, y: &i8| x
                    == y)
            }
            (vw_common::ColData::I16(pa), vw_common::ColData::I16(ba)) => $body!(
                pa,
                ba,
                |x: &i16| vw_common::hash::hash_u64(*x as u64),
                |x: &i16, y: &i16| x == y
            ),
            (vw_common::ColData::I32(pa), vw_common::ColData::I32(ba)) => $body!(
                pa,
                ba,
                |x: &i32| vw_common::hash::hash_u64(*x as u64),
                |x: &i32, y: &i32| x == y
            ),
            (vw_common::ColData::I64(pa), vw_common::ColData::I64(ba)) => $body!(
                pa,
                ba,
                |x: &i64| vw_common::hash::hash_u64(*x as u64),
                |x: &i64, y: &i64| x == y
            ),
            // Bit equality, matching `Value`'s structural semantics for
            // grouping (NaN groups with NaN; 0.0 and -0.0 are distinct).
            (vw_common::ColData::F64(pa), vw_common::ColData::F64(ba)) => $body!(
                pa,
                ba,
                |x: &f64| vw_common::hash::hash_u64(x.to_bits()),
                |x: &f64, y: &f64| x.to_bits() == y.to_bits()
            ),
            (vw_common::ColData::Date(pa), vw_common::ColData::Date(ba)) => $body!(
                pa,
                ba,
                |x: &i32| vw_common::hash::hash_u64(*x as u64),
                |x: &i32, y: &i32| x == y
            ),
            (vw_common::ColData::Str(pa), vw_common::ColData::Str(ba)) => $body!(
                pa,
                ba,
                |x: &String| vw_common::hash::hash_u64(vw_common::hash::hash_bytes(x.as_bytes())),
                |x: &String, y: &String| x == y
            ),
            _ => $fallback,
        }
    };
}
pub(crate) use dispatch_typed_keys;

/// Tables at or below this row count are treated as cache-resident:
/// probes skip the staged-prefetch passes, whose latency-hiding only pays
/// off once the directory and slots spill out of the last-level cache.
const SMALL_TABLE: usize = 1 << 17;

/// Smallest power-of-two directory keeping load factor ≤ 0.5.
fn directory_size(rows: usize) -> usize {
    (rows.max(4) * 2).next_power_of_two()
}

/// Reusable per-batch probe buffers (lane hashes and chain candidates)
/// for the fused kernels; owned by the operators so the steady-state probe
/// loop never allocates.
#[derive(Debug, Default)]
pub struct ProbeBuf {
    hashes: Vec<u64>,
    cand: Vec<u32>,
    /// Finalized-mode bucket end bound per lane.
    ends: Vec<u32>,
}

impl ProbeBuf {
    /// The staged hash of lane `p` from the last fused probe (valid for
    /// lanes that were selected; aggregation's miss-insert pass reuses it).
    #[inline]
    pub fn lane_hash(&self, p: usize) -> u64 {
        self.hashes[p]
    }
}

/// Hint the CPU to pull `p`'s cache line toward L1. Purely a performance
/// hint issued between the staged probe passes; never dereferences.
#[inline(always)]
fn prefetch<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch has no side effects and tolerates any address; the
    // pointer comes from an in-bounds slice index.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = p;
    }
}

// ---------------------------------------------------------------------------
// vectorized key hashing
// ---------------------------------------------------------------------------

/// Project one key column to per-lane `u64` hash inputs (the same value
/// scheme the old scalar `hash_row` used, so numeric types keep their
/// cheap identity projection and strings hash their bytes).
fn project_lanes(v: &Vector, nulls_as_group: bool, out: &mut Vec<u64>) {
    out.clear();
    if let Some((codes, dict)) = v.dict_parts() {
        // Dictionary-coded keys: hash each distinct value once, then
        // project rows through the code. Must match the `Str` arm below
        // byte-for-byte so coded and flat sides of a join agree.
        let per_code: Vec<u64> = dict.iter().map(|s| hash_bytes(s.as_bytes())).collect();
        out.extend(codes.iter().map(|&c| per_code[c as usize]));
        if nulls_as_group {
            if let Some(m) = &v.nulls {
                for (lane, &is_null) in m.iter().enumerate() {
                    if is_null {
                        out[lane] = NULL_KEY_LANE;
                    }
                }
            }
        }
        return;
    }
    match &v.data {
        ColData::Bool(d) => out.extend(d.iter().map(|&x| x as u64)),
        ColData::I8(d) => out.extend(d.iter().map(|&x| x as u64)),
        ColData::I16(d) => out.extend(d.iter().map(|&x| x as u64)),
        ColData::I32(d) => out.extend(d.iter().map(|&x| x as u64)),
        ColData::I64(d) => out.extend(d.iter().map(|&x| x as u64)),
        ColData::F64(d) => out.extend(d.iter().map(|&x| x.to_bits())),
        ColData::Date(d) => out.extend(d.iter().map(|&x| x as u64)),
        ColData::Str(d) => out.extend(d.iter().map(|s| hash_bytes(s.as_bytes()))),
    }
    if nulls_as_group {
        if let Some(m) = &v.nulls {
            for (lane, &is_null) in m.iter().enumerate() {
                if is_null {
                    out[lane] = NULL_KEY_LANE;
                }
            }
        }
    }
}

/// Hash multi-column keys a vector at a time into `out[0..n]`.
///
/// `nulls_as_group` selects GROUP BY semantics (NULL lanes hash to a fixed
/// sentinel so NULLs land in one group); with it off, NULL lanes hash their
/// safe-default data — callers exclude those lanes from the selection, so
/// the garbage hash is never observed (join semantics: NULL never matches).
///
/// `lanes` is per-column projection scratch; both buffers are reused across
/// batches. Zero key columns (global aggregate) hash every lane to the same
/// constant.
pub fn hash_keys<K: std::borrow::Borrow<Vector>>(
    keys: &[K],
    n: usize,
    nulls_as_group: bool,
    lanes: &mut Vec<u64>,
    out: &mut Vec<u64>,
) {
    let Some(first) = keys.first() else {
        out.clear();
        out.resize(n, hash_u64(0));
        return;
    };
    debug_assert!(keys.iter().all(|k| k.borrow().len() == n));
    project_lanes(first.borrow(), nulls_as_group, lanes);
    primitives::hash_start(lanes.iter().copied(), out);
    for col in &keys[1..] {
        project_lanes(col.borrow(), nulls_as_group, lanes);
        primitives::hash_combine_col(lanes.iter().copied(), out);
    }
}

// ---------------------------------------------------------------------------
// vectorized key comparison
// ---------------------------------------------------------------------------

/// Narrow `sel` to lanes where every probe key column at lane `p` equals
/// the corresponding build key column at row `cand[p]`.
///
/// `null_equals_null` selects grouping semantics (NULL keys compare equal);
/// join probes never present NULL lanes, so either setting is correct
/// there. `scratch` ping-pongs with `out` between key columns; both are
/// reused across batches.
pub fn keys_match_sel<K: std::borrow::Borrow<Vector>>(
    probe: &[K],
    build: &[Vector],
    cand: &[u32],
    sel: &SelVec,
    scratch: &mut SelVec,
    out: &mut SelVec,
    null_equals_null: bool,
) {
    debug_assert_eq!(probe.len(), build.len());
    if probe.is_empty() {
        // Zero key columns: everything matches (global aggregate).
        out.clear_and_extend_from_slice(sel.as_slice());
        return;
    }
    filter_col_eq(probe[0].borrow(), &build[0], cand, sel, out, null_equals_null);
    for (p, b) in probe[1..].iter().zip(&build[1..]) {
        if out.is_empty() {
            return;
        }
        std::mem::swap(scratch, out);
        filter_col_eq(p.borrow(), b, cand, scratch, out, null_equals_null);
    }
}

/// Null-aware selective gather-equality over one column pair.
fn filter_col_eq(
    probe: &Vector,
    build: &Vector,
    cand: &[u32],
    sel: &SelVec,
    out: &mut SelVec,
    null_eq: bool,
) {
    macro_rules! typed {
        ($pa:expr, $ba:expr, $eq:expr) => {{
            let (pa, ba) = ($pa, $ba);
            #[allow(clippy::redundant_closure_call)]
            match (&probe.nulls, &build.nulls) {
                (None, None) => primitives::select_eq_gather_by(pa, ba, cand, sel, out, $eq),
                _ => sel.retain_from(
                    |p| {
                        let b = cand[p] as usize;
                        match (probe.is_null(p), build.is_null(b)) {
                            (false, false) => $eq(&pa[p], &ba[b]),
                            (true, true) => null_eq,
                            _ => false,
                        }
                    },
                    out,
                ),
            }
        }};
    }
    match (probe.dict_parts(), build.dict_parts()) {
        // Same shared dictionary on both sides: keys match iff codes match.
        (Some((pa, pd)), Some((ba, bd))) if std::sync::Arc::ptr_eq(pd, bd) => {
            return typed!(pa, ba, |x: &u32, y: &u32| x == y);
        }
        // One or both sides coded (different dictionaries): remap through
        // the string values — `str_at` reads dict entries without inflating.
        (Some(_), _) | (_, Some(_))
            if probe.type_id() == vw_common::TypeId::Str
                && build.type_id() == vw_common::TypeId::Str =>
        {
            return sel.retain_from(
                |p| {
                    let b = cand[p] as usize;
                    match (probe.is_null(p), build.is_null(b)) {
                        (false, false) => probe.str_at(p) == build.str_at(b),
                        (true, true) => null_eq,
                        _ => false,
                    }
                },
                out,
            );
        }
        // Coded against a non-string column (type-mismatched plan keys):
        // structural Value equality, like the mixed-type fallback below.
        (Some(_), _) | (_, Some(_)) => {
            return sel.retain_from(
                |p| {
                    let b = cand[p] as usize;
                    match (probe.is_null(p), build.is_null(b)) {
                        (false, false) => probe.get(p) == build.get(b),
                        (true, true) => null_eq,
                        _ => false,
                    }
                },
                out,
            );
        }
        (None, None) => {}
    }
    match (&probe.data, &build.data) {
        (ColData::Bool(pa), ColData::Bool(ba)) => typed!(pa, ba, |x: &bool, y: &bool| x == y),
        (ColData::I8(pa), ColData::I8(ba)) => typed!(pa, ba, |x: &i8, y: &i8| x == y),
        (ColData::I16(pa), ColData::I16(ba)) => typed!(pa, ba, |x: &i16, y: &i16| x == y),
        (ColData::I32(pa), ColData::I32(ba)) => typed!(pa, ba, |x: &i32, y: &i32| x == y),
        (ColData::I64(pa), ColData::I64(ba)) => typed!(pa, ba, |x: &i64, y: &i64| x == y),
        // Bit equality, matching `Value`'s structural semantics for grouping
        // (NaN groups with NaN; 0.0 and -0.0 are distinct keys).
        (ColData::F64(pa), ColData::F64(ba)) => {
            typed!(pa, ba, |x: &f64, y: &f64| x.to_bits() == y.to_bits())
        }
        (ColData::Date(pa), ColData::Date(ba)) => typed!(pa, ba, |x: &i32, y: &i32| x == y),
        (ColData::Str(pa), ColData::Str(ba)) => typed!(pa, ba, |x: &String, y: &String| x == y),
        // Mixed-type keys: fall back to structural Value equality (always
        // false across variants — the old scalar path's behaviour).
        _ => sel.retain_from(
            |p| {
                let b = cand[p] as usize;
                match (probe.is_null(p), build.is_null(b)) {
                    (false, false) => probe.data.get_value(p) == build.data.get_value(b),
                    (true, true) => null_eq,
                    _ => false,
                }
            },
            out,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::TypeId;

    fn i64_vec(vals: Vec<i64>) -> Vector {
        Vector::new(ColData::I64(vals))
    }

    #[test]
    fn insert_and_chain_walk() {
        let mut t = FlatTable::new();
        let h = hash_u64(42);
        assert_eq!(t.insert(h), 0);
        assert_eq!(t.insert(h), 1); // same bucket chains
        assert_eq!(t.insert(hash_u64(7)), 2);
        assert_eq!(t.len(), 3);
        let mut seen = Vec::new();
        t.find_chain(h, |row| {
            seen.push(row);
            false
        });
        assert_eq!(seen, vec![1, 0], "newest row heads the chain");
        assert_eq!(t.find_chain(h, |_| true), Some(1));
        assert_eq!(t.find_chain(hash_u64(999_999), |_| true), None);
    }

    #[test]
    fn directory_grows_and_relinks() {
        let mut t = FlatTable::with_capacity(0);
        let start_dir = t.directory_len();
        for i in 0..1000u64 {
            t.insert(hash_u64(i));
        }
        assert!(t.directory_len() > start_dir);
        assert!(t.directory_len() >= 2 * t.len());
        // Every row stays findable after rebuilds.
        for i in 0..1000u64 {
            assert!(t.find_chain(hash_u64(i), |_| true).is_some(), "key {i} lost");
        }
    }

    /// Drive the general SelVec-iterative probe pipeline over a table.
    fn iterative_pairs(
        t: &FlatTable,
        probe_keys: &[Vector],
        build_keys: &[Vector],
        ph: &[u64],
        n: usize,
        null_eq: bool,
    ) -> Vec<(usize, u32)> {
        let sel = SelVec::identity(n);
        let (mut cand, mut rows, mut active) = (Vec::new(), Vec::new(), SelVec::new());
        let mut steps = 0u64;
        t.gather_matching(ph, &sel, &mut cand, &mut active, &mut steps);
        let mut pairs: Vec<(usize, u32)> = Vec::new();
        let (mut matched, mut tmp, mut next_active) = (SelVec::new(), SelVec::new(), SelVec::new());
        while !active.is_empty() {
            t.candidate_rows(&cand, &active, &mut rows);
            keys_match_sel(probe_keys, build_keys, &rows, &active, &mut tmp, &mut matched, null_eq);
            for p in matched.iter() {
                pairs.push((p, rows[p]));
            }
            t.advance_matching(ph, &active, &mut cand, &mut next_active, &mut steps);
            std::mem::swap(&mut active, &mut next_active);
        }
        assert!(steps > 0, "probing visited entries");
        pairs
    }

    #[test]
    fn vectorized_probe_roundtrip_chain_and_finalized() {
        let build_keys = vec![i64_vec(vec![10, 20, 30, 20])];
        let mut t = FlatTable::new();
        let (mut lanes, mut hashes) = (Vec::new(), Vec::new());
        hash_keys(&build_keys, 4, false, &mut lanes, &mut hashes);
        t.insert_batch(&hashes, None);

        let probe_keys = vec![i64_vec(vec![20, 99, 10, 20])];
        let mut ph = Vec::new();
        hash_keys(&probe_keys, 4, false, &mut lanes, &mut ph);

        // Lane 0 (20) matches rows 1 and 3; lane 2 (10) matches row 0;
        // lane 3 (20) matches rows 1 and 3; lane 1 (99) matches nothing.
        let expect = vec![(0, 1), (0, 3), (2, 0), (3, 1), (3, 3)];

        let mut pairs = iterative_pairs(&t, &probe_keys, &build_keys, &ph, 4, false);
        pairs.sort_unstable();
        assert_eq!(pairs, expect, "chain mode");

        t.finalize();
        assert!(t.is_finalized());
        assert_eq!(t.len(), 4);
        let mut pairs = iterative_pairs(&t, &probe_keys, &build_keys, &ph, 4, false);
        pairs.sort_unstable();
        assert_eq!(pairs, expect, "finalized (CSR) mode");
    }

    #[test]
    fn fused_probe_matches_iterative() {
        let build = i64_vec(vec![10, 20, 30, 20, 7]);
        let build_keys = vec![build];
        let mut t = FlatTable::new();
        let (mut lanes, mut hashes) = (Vec::new(), Vec::new());
        hash_keys(&build_keys, 5, false, &mut lanes, &mut hashes);
        t.insert_batch(&hashes, None);
        t.finalize();

        let probe = i64_vec(vec![20, 99, 10, 7]);
        let pa = probe.data.as_i64().to_vec();
        let ba = build_keys[0].data.as_i64();
        let mut flags = vec![false; 4];
        let (mut op, mut ob) = (Vec::new(), Vec::new());
        let mut buf = ProbeBuf::default();
        let mut steps = 0u64;
        t.probe_join(
            4,
            None,
            true,
            |p| hash_u64(pa[p] as u64),
            |p, row| pa[p] == ba[row as usize],
            &mut flags,
            &mut op,
            &mut ob,
            &mut buf,
            &mut steps,
        );
        let mut pairs: Vec<(u32, u32)> = op.iter().copied().zip(ob.iter().copied()).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (0, 3), (2, 0), (3, 4)]);
        assert_eq!(flags, vec![true, false, true, true]);
        assert!(steps > 0);
    }

    #[test]
    fn build_csr_equals_insert_then_finalize() {
        // Bulk CSR construction must produce the identical layout the
        // incremental insert + finalize path produces (same directory,
        // same bucket-grouped slot order), so probes cannot diverge.
        let hashes: Vec<u64> = (0..10_000u64).map(|i| hash_u64(i % 4096)).collect();
        let mut incremental = FlatTable::new();
        incremental.insert_batch(&hashes, None);
        incremental.finalize();
        let bulk = FlatTable::build_csr(&hashes);
        assert_eq!(bulk.len(), incremental.len());
        assert_eq!(bulk.directory_len(), incremental.directory_len());
        assert_eq!(bulk.offsets, incremental.offsets);
        assert_eq!(bulk.bloom, incremental.bloom);
        assert!(bulk
            .slots
            .iter()
            .zip(&incremental.slots)
            .all(|(a, b)| a.hash == b.hash && a.row == b.row));
        assert!(bulk.is_finalized());
    }

    #[test]
    fn build_csr_empty() {
        let t = FlatTable::build_csr(&[]);
        assert!(t.is_empty() && t.is_finalized());
    }

    #[test]
    fn finalize_rejects_insert_and_preserves_lookup() {
        let mut t = FlatTable::new();
        for i in 0..500u64 {
            t.insert(hash_u64(i));
        }
        t.finalize();
        t.finalize(); // idempotent
        assert_eq!(t.len(), 500);
        // Every hash remains findable through the fused probe.
        let keys: Vec<i64> = (0..500).collect();
        let mut flags = vec![false; 500];
        let (mut op, mut ob) = (Vec::new(), Vec::new());
        let mut buf = ProbeBuf::default();
        let mut steps = 0u64;
        t.probe_join(
            500,
            None,
            true,
            |p| hash_u64(keys[p] as u64),
            |_, _| true,
            &mut flags,
            &mut op,
            &mut ob,
            &mut buf,
            &mut steps,
        );
        assert!(flags.iter().all(|&f| f), "all 500 hashes found after finalize");
        // Slot order within the probe output is ascending row per bucket.
        assert_eq!(op.len(), 500);
    }

    #[test]
    fn null_group_semantics() {
        // Build: one NULL key row (group semantics) at row 0, value 5 at 1.
        let mut bk = Vector::new(ColData::new(TypeId::I64));
        bk.push(&vw_common::Value::Null).unwrap();
        bk.push(&vw_common::Value::I64(5)).unwrap();
        let build_keys = vec![bk];
        let mut t = FlatTable::new();
        let (mut lanes, mut hashes) = (Vec::new(), Vec::new());
        hash_keys(&build_keys, 2, true, &mut lanes, &mut hashes);
        t.insert_batch(&hashes, None);

        // Probe: NULL, 5, 0 (0 is the safe default stored under NULLs —
        // must NOT match the NULL group).
        let mut pk = Vector::new(ColData::new(TypeId::I64));
        pk.push(&vw_common::Value::Null).unwrap();
        pk.push(&vw_common::Value::I64(5)).unwrap();
        pk.push(&vw_common::Value::I64(0)).unwrap();
        let probe_keys = vec![pk];
        let mut ph = Vec::new();
        hash_keys(&probe_keys, 3, true, &mut lanes, &mut ph);

        let pairs = iterative_pairs(&t, &probe_keys, &build_keys, &ph, 3, true);
        let mut found = [None::<u32>; 3];
        for (p, row) in pairs {
            found[p] = Some(row);
        }
        assert_eq!(found[0], Some(0), "NULL probe joins the NULL group");
        assert_eq!(found[1], Some(1));
        assert_eq!(found[2], None, "0 must not alias the NULL group's default");
    }

    #[test]
    fn multi_column_keys_narrow_per_column() {
        let build = vec![i64_vec(vec![1, 1, 2]), i64_vec(vec![10, 20, 10])];
        let probe = vec![i64_vec(vec![1]), i64_vec(vec![20])];
        // Candidate row per lane: try every build row for lane 0.
        for (cand_row, expect) in [(0u32, false), (1, true), (2, false)] {
            let sel = SelVec::identity(1);
            let (mut tmp, mut out) = (SelVec::new(), SelVec::new());
            keys_match_sel(&probe, &build, &[cand_row], &sel, &mut tmp, &mut out, false);
            assert_eq!(!out.is_empty(), expect, "row {cand_row}");
        }
    }

    #[test]
    fn zero_key_columns_match_everything() {
        let sel = SelVec::identity(3);
        let (mut tmp, mut out) = (SelVec::new(), SelVec::new());
        keys_match_sel::<Vector>(&[], &[], &[0, 0, 0], &sel, &mut tmp, &mut out, false);
        assert_eq!(out.len(), 3);
        let mut lanes = Vec::new();
        let mut hashes = Vec::new();
        hash_keys::<Vector>(&[], 3, false, &mut lanes, &mut hashes);
        assert_eq!(hashes.len(), 3);
        assert!(hashes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn reserve_prevents_mid_batch_rebuild() {
        let mut t = FlatTable::new();
        t.reserve(10_000);
        let dir = t.directory_len();
        for i in 0..10_000u64 {
            t.insert(hash_u64(i));
        }
        assert_eq!(t.directory_len(), dir, "no rebuild after reserve");
    }
}
