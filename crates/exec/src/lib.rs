//! # vw-exec — the X100 vectorized execution kernel
//!
//! (Repo-wide orientation — the crate map and the life of a query — is
//! in the root `ARCHITECTURE.md`; this header maps only this crate.)
//!
//! The "Vectorized Execution" box of Figure 1 and the performance heart of
//! the system: operators exchange **vectors** (~1000 values, configurable)
//! instead of single tuples, so interpretation overhead is paid once per
//! vector while the data stays resident in the CPU cache.
//!
//! Layout of the crate:
//!
//! * [`vector`] — [`Vector`] (typed values + optional NULL indicator) and
//!   [`Batch`] (a set of equally-long vectors plus an optional selection
//!   vector);
//! * [`primitives`] — the branch-light per-type kernels (map, compare/select,
//!   hash, gather) in *full* and *selective* variants, including the three
//!   overflow-checking strategies of benchmark C7;
//! * [`expr`] — the physical expression tree ([`expr::PhysExpr`]) plus the
//!   reference tree-walking interpreter: arithmetic, comparisons, CASE,
//!   casts, and the SQL function library ("many functions" — §1);
//! * [`program`] — the **compiled** expression path every operator uses:
//!   [`program::ExprProgram`] flattens a `PhysExpr` once per query into
//!   primitive invocations over a register file leased from a reusable
//!   [`program::VectorPool`], so the per-batch loop neither re-walks the
//!   tree nor allocates; [`program::SelectProgram`] is the fused predicate
//!   variant chaining selective kernels through a `SelVec`;
//! * [`hashtable`] — the flat vectorized hash table (directory + chain
//!   array over contiguous build rows) shared by hash join and hash
//!   aggregation, with fully vectorized insert and probe;
//! * [`partition`] — radix partitioning for parallel hash builds:
//!   [`partition::RadixRouter`] splits key hashes into `P` partitions,
//!   [`partition::ShardSet`] runs one `FlatTable` shard per worker thread,
//!   and probes route partition-wise through reused `SelVec`s; also home
//!   of the [`partition::MemBudget`] memory governor and the
//!   [`partition::SpillConfig`] grace-spilling policy;
//! * [`spill`] — the disk half of grace spilling: vectors ⇄ compressed
//!   spill chunks on a temp [`vw_storage::SpillFile`], plus
//!   [`spill::SpillScan`], the operator that replays a spilled partition;
//! * [`op`] — the relational operators: scan (with PDT merge), select,
//!   project, hash join (inner/left/semi/anti/**NULL-aware anti**), hash
//!   aggregation, sort, top-n, limit, union, and the Volcano-style **Xchg**
//!   exchange operators that the rewriter uses for multi-core parallelism;
//! * [`cancel`] — cooperative query cancellation (checked once per vector);
//! * [`profile`] — per-operator profiling counters for the monitoring layer.

pub mod cancel;
pub mod expr;
pub mod hashtable;
pub mod morsel;
pub mod op;
pub mod partition;
pub mod primitives;
pub mod profile;
pub mod program;
pub mod spill;
pub mod vector;

pub use cancel::{CancelToken, TimeoutGuard};
pub use expr::PhysExpr;
pub use morsel::{BatchPool, MorselSource};
pub use op::Operator;
pub use partition::MemBudget;
pub use program::{ExprProgram, SelectProgram, VecRef, VectorPool};
pub use vector::{Batch, Vector};
