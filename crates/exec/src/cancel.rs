//! Cooperative query cancellation and statement deadlines.
//!
//! The paper calls this "one of more unexpected feature requests": killing a
//! research prototype was `Ctrl-C`; killing one query of a production
//! server must not take the process down, must interrupt long loops
//! promptly, and must unwind cleanly through parallel operators and
//! asynchronous I/O.
//!
//! The kernel's answer is *cooperative checks at vector granularity*: every
//! operator calls [`CancelToken::check`] at least once per vector it
//! produces, so cancellation latency is bounded by the cost of processing
//! one vector per pipeline stage (benchmark C8 measures it). The token is
//! shared across all threads of a parallel (Xchg) plan.
//!
//! # Statement timeouts
//!
//! A token built with [`CancelToken::with_deadline`] additionally carries a
//! wall-clock deadline. Cooperative checks do *not* read the clock (that
//! would put a syscall on the hot path); instead a [`TimeoutGuard`]
//! watchdog thread sleeps until the deadline and fires [`CancelToken::
//! cancel`], setting a `timed_out` marker so the monitor can distinguish
//! `TimedOut` from a user `KILL`. A query without a timeout constructs
//! neither the deadline state nor the watchdog thread. Timeout semantics
//! and the surrounding error taxonomy are documented in the repo-root
//! ARCHITECTURE.md ("Failure model").

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use vw_common::{Result, VwError};

/// Shared cancellation flag (plus optional deadline) for one query
/// execution.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    /// Set (only ever by a [`TimeoutGuard`]) when the cancellation was a
    /// deadline firing rather than an explicit `KILL`.
    timed_out: Arc<AtomicBool>,
    /// The statement deadline, if one was configured. Immutable after
    /// construction; the cooperative check never reads it.
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fresh, un-cancelled token with no deadline.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A fresh token that should be cancelled at `deadline` — pair it with
    /// a [`TimeoutGuard`] to actually enforce it.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken { deadline: Some(deadline), ..CancelToken::default() }
    }

    /// Request cancellation (user `kill`, session close, timeout).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// The statement deadline this token carries, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// True when the cancellation was fired by a statement timeout (as
    /// opposed to an explicit `KILL` or session teardown).
    pub fn timed_out(&self) -> bool {
        self.timed_out.load(Ordering::Acquire)
    }

    /// Bail out with [`VwError::Cancelled`] if cancellation was requested.
    /// Called once per vector by every operator.
    #[inline]
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            Err(VwError::Cancelled)
        } else {
            Ok(())
        }
    }
}

/// State shared between a [`TimeoutGuard`] and its watchdog thread.
struct GuardShared {
    /// Set by the guard's `Drop` to wake the watchdog early (query
    /// finished before the deadline).
    done: Mutex<bool>,
    cv: Condvar,
}

/// Watchdog enforcing a [`CancelToken`] deadline: one thread sleeps on a
/// condvar until the deadline, then marks the token timed-out and cancels
/// it. Dropping the guard (the query finished first) wakes and joins the
/// thread immediately, so a guarded query never leaves a stray thread
/// behind — one of the reclamation invariants in ARCHITECTURE.md
/// ("Failure model").
pub struct TimeoutGuard {
    shared: Arc<GuardShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TimeoutGuard {
    /// Spawn a watchdog for `token`. Returns `None` when the token has no
    /// deadline — the no-timeout path constructs nothing.
    pub fn spawn(token: &CancelToken) -> Option<TimeoutGuard> {
        let deadline = token.deadline?;
        let shared = Arc::new(GuardShared { done: Mutex::new(false), cv: Condvar::new() });
        let th_shared = shared.clone();
        let th_token = token.clone();
        let handle = std::thread::Builder::new()
            .name("vw-stmt-timeout".into())
            .spawn(move || {
                let mut done = th_shared.done.lock().expect("watchdog mutex poisoned");
                loop {
                    if *done {
                        return; // query finished before the deadline
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        th_token.timed_out.store(true, Ordering::Release);
                        th_token.cancel();
                        return;
                    }
                    let (guard, _) = th_shared
                        .cv
                        .wait_timeout(done, deadline - now)
                        .expect("watchdog mutex poisoned");
                    done = guard;
                }
            })
            .expect("spawn statement-timeout watchdog");
        Some(TimeoutGuard { shared, handle: Some(handle) })
    }
}

impl Drop for TimeoutGuard {
    fn drop(&mut self) {
        *self.shared.done.lock().expect("watchdog mutex poisoned") = true;
        self.shared.cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn starts_clear_then_trips() {
        let t = CancelToken::new();
        assert!(t.check().is_ok());
        t.cancel();
        assert!(matches!(t.check(), Err(VwError::Cancelled)));
        assert!(t.is_cancelled());
        assert!(!t.timed_out(), "a plain cancel is not a timeout");
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn visible_across_threads() {
        let t = CancelToken::new();
        let c = t.clone();
        let h = std::thread::spawn(move || {
            while !c.is_cancelled() {
                std::hint::spin_loop();
            }
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        t.cancel();
        assert!(h.join().unwrap());
    }

    #[test]
    fn no_deadline_spawns_no_guard() {
        let t = CancelToken::new();
        assert!(t.deadline().is_none());
        assert!(TimeoutGuard::spawn(&t).is_none(), "no-timeout path constructs nothing");
    }

    #[test]
    fn deadline_fires_and_marks_timeout() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_millis(30));
        let guard = TimeoutGuard::spawn(&t).expect("deadline token spawns a guard");
        let t0 = Instant::now();
        while !t.is_cancelled() {
            assert!(t0.elapsed() < Duration::from_secs(5), "watchdog never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(t.timed_out(), "deadline cancellation is marked as a timeout");
        assert!(t0.elapsed() >= Duration::from_millis(25), "fired no earlier than the deadline");
        drop(guard);
    }

    #[test]
    fn dropping_guard_before_deadline_reclaims_the_watchdog() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        let guard = TimeoutGuard::spawn(&t).unwrap();
        let t0 = Instant::now();
        drop(guard); // joins the watchdog — must return promptly, not at the deadline
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert!(!t.is_cancelled(), "early completion never cancels");
        assert!(!t.timed_out());
    }
}
