//! Cooperative query cancellation.
//!
//! The paper calls this "one of more unexpected feature requests": killing a
//! research prototype was `Ctrl-C`; killing one query of a production
//! server must not take the process down, must interrupt long loops
//! promptly, and must unwind cleanly through parallel operators and
//! asynchronous I/O.
//!
//! The kernel's answer is *cooperative checks at vector granularity*: every
//! operator calls [`CancelToken::check`] at least once per vector it
//! produces, so cancellation latency is bounded by the cost of processing
//! one vector per pipeline stage (benchmark C8 measures it). The token is
//! shared across all threads of a parallel (Xchg) plan.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use vw_common::{Result, VwError};

/// Shared cancellation flag for one query execution.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation (user `kill`, session close, timeout).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Bail out with [`VwError::Cancelled`] if cancellation was requested.
    /// Called once per vector by every operator.
    #[inline]
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            Err(VwError::Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clear_then_trips() {
        let t = CancelToken::new();
        assert!(t.check().is_ok());
        t.cancel();
        assert!(matches!(t.check(), Err(VwError::Cancelled)));
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn visible_across_threads() {
        let t = CancelToken::new();
        let c = t.clone();
        let h = std::thread::spawn(move || {
            while !c.is_cancelled() {
                std::hint::spin_loop();
            }
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        t.cancel();
        assert!(h.join().unwrap());
    }
}
