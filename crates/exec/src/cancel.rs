//! Cooperative query cancellation and statement deadlines.
//!
//! The token itself lives in [`vw_common::cancel`] (re-exported here as
//! [`CancelToken`]) so the query-service scheduling layer can share it
//! without depending on this crate; see that module for the cooperative
//! check contract (every operator checks at least once per vector).
//!
//! # Statement timeouts
//!
//! A token built with [`CancelToken::with_deadline`] carries a wall-clock
//! deadline. Cooperative checks do *not* read the clock (that would put a
//! syscall on the hot path); instead deadline machinery fires
//! [`CancelToken::cancel`] after setting the `timed_out` marker so the
//! monitor can distinguish `TimedOut` from a user `KILL`. Two enforcers
//! exist:
//!
//! * [`TimeoutGuard`] (here) — a dedicated watchdog thread per guarded
//!   query. Simple and self-contained; used by unit tests and embedders of
//!   the bare executor.
//! * `vw_service::timer::DeadlineQueue` — one shared timer thread for the
//!   whole engine, used by `vw-core` so N in-flight statements cost one
//!   thread, not N (the thread-count budget is O(workers); see
//!   ARCHITECTURE.md "Failure model" and "Life of a query").
//!
//! A query without a timeout constructs neither the deadline state nor any
//! watchdog machinery.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

pub use vw_common::cancel::CancelToken;

/// State shared between a [`TimeoutGuard`] and its watchdog thread.
struct GuardShared {
    /// Set by the guard's `Drop` to wake the watchdog early (query
    /// finished before the deadline).
    done: Mutex<bool>,
    cv: Condvar,
}

/// Watchdog enforcing a [`CancelToken`] deadline: one thread sleeps on a
/// condvar until the deadline, then marks the token timed-out and cancels
/// it. Dropping the guard (the query finished first) wakes and joins the
/// thread immediately, so a guarded query never leaves a stray thread
/// behind — one of the reclamation invariants in ARCHITECTURE.md
/// ("Failure model").
pub struct TimeoutGuard {
    shared: Arc<GuardShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TimeoutGuard {
    /// Spawn a watchdog for `token`. Returns `None` when the token has no
    /// deadline — the no-timeout path constructs nothing.
    pub fn spawn(token: &CancelToken) -> Option<TimeoutGuard> {
        let deadline = token.deadline()?;
        let shared = Arc::new(GuardShared { done: Mutex::new(false), cv: Condvar::new() });
        let th_shared = shared.clone();
        let th_token = token.clone();
        let handle = std::thread::Builder::new()
            .name("vw-stmt-timeout".into())
            .spawn(move || {
                let mut done = th_shared.done.lock().expect("watchdog mutex poisoned");
                loop {
                    if *done {
                        return; // query finished before the deadline
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        th_token.mark_timed_out();
                        th_token.cancel();
                        return;
                    }
                    let (guard, _) = th_shared
                        .cv
                        .wait_timeout(done, deadline - now)
                        .expect("watchdog mutex poisoned");
                    done = guard;
                }
            })
            .expect("spawn statement-timeout watchdog");
        Some(TimeoutGuard { shared, handle: Some(handle) })
    }
}

impl Drop for TimeoutGuard {
    fn drop(&mut self) {
        *self.shared.done.lock().expect("watchdog mutex poisoned") = true;
        self.shared.cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn no_deadline_spawns_no_guard() {
        let t = CancelToken::new();
        assert!(t.deadline().is_none());
        assert!(TimeoutGuard::spawn(&t).is_none(), "no-timeout path constructs nothing");
    }

    #[test]
    fn deadline_fires_and_marks_timeout() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_millis(30));
        let guard = TimeoutGuard::spawn(&t).expect("deadline token spawns a guard");
        let t0 = Instant::now();
        while !t.is_cancelled() {
            assert!(t0.elapsed() < Duration::from_secs(5), "watchdog never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(t.timed_out(), "deadline cancellation is marked as a timeout");
        assert!(t0.elapsed() >= Duration::from_millis(25), "fired no earlier than the deadline");
        drop(guard);
    }

    #[test]
    fn dropping_guard_before_deadline_reclaims_the_watchdog() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        let guard = TimeoutGuard::spawn(&t).unwrap();
        let t0 = Instant::now();
        drop(guard); // joins the watchdog — must return promptly, not at the deadline
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert!(!t.is_cancelled(), "early completion never cancels");
        assert!(!t.timed_out());
    }
}
