//! Spill-file glue for the grace-spilling hash operators.
//!
//! The Vectorwise paper's complaint about research prototypes is that they
//! assume everything fits in RAM; a production engine must degrade
//! gracefully when a hash build exceeds memory. This module is the disk
//! half of that story: it serializes operator [`Vector`] runs into
//! [`SpillFile`]s using the pack writer's compressed block format
//! (`vw_storage::pack::encode_spill_batch` — the same per-column codecs
//! stable storage uses) and rehydrates them as ordinary [`Batch`]es.
//!
//! The policy half — *when* to spill, *which* partition, and how spilled
//! partitions are re-processed — lives in the operators
//! (`op/hashjoin.rs`, `op/hashagg.rs`) and in
//! [`crate::partition`] (the [`MemBudget`](crate::partition::MemBudget)
//! governor, radix strata, recursion depth floor).
//!
//! Temp space is owned by the operator: a [`SpillFile`] frees its blocks
//! on drop, so spill storage is reclaimed whether the query completes,
//! errors, or is `KILL`ed mid-spill.

use crate::cancel::CancelToken;
use crate::op::Operator;
use crate::partition::SpillMetrics;
use crate::profile::OpProfile;
use crate::vector::{Batch, Vector};
use std::sync::Arc;
use vw_common::{Result, Schema, TypeId};
use vw_storage::{decode_spill_batch, encode_spill_batch, SpillFile};

/// Encode one run of equally-long vectors as a spill chunk and append it
/// to `file`; returns the encoded size in bytes. Transient device faults
/// are retried inside [`SpillFile::append`]; terminal ones surface here
/// and fail the spilling operator (its temp blocks still free on drop).
pub fn append_vectors(file: &mut SpillFile, cols: &[Vector]) -> Result<usize> {
    // Spill chunks hold flat values — the pack codecs re-derive their own
    // per-column encoding. Dict-coded vectors inflate into a scratch copy
    // here (a late-materialization boundary, like Sort and emit).
    let flat: Vec<Option<Vector>> = cols
        .iter()
        .map(|v| {
            v.is_encoded().then(|| {
                let mut c = v.clone();
                c.ensure_flat();
                c
            })
        })
        .collect();
    let encoded: Vec<(&vw_common::ColData, Option<&[bool]>)> = cols
        .iter()
        .zip(&flat)
        .map(|(v, f)| {
            let v = f.as_ref().unwrap_or(v);
            (&v.data, v.nulls.as_deref())
        })
        .collect();
    file.append(encode_spill_batch(&encoded))
}

/// Decode spill chunk `i` of `file` back into vectors of `types`; also
/// returns the encoded chunk size so the caller can record rehydration
/// traffic into its [`SpillMetrics`].
pub fn read_vectors(file: &SpillFile, i: usize, types: &[TypeId]) -> Result<(Vec<Vector>, usize)> {
    let bytes = file.read_chunk(i)?;
    let cols = decode_spill_batch(&bytes, types)?;
    Ok((
        cols.into_iter().map(|(data, nulls)| Vector::with_nulls(data, nulls)).collect(),
        bytes.len(),
    ))
}

/// An operator that replays a finished spill file as a batch stream — the
/// input side of a recursive grace join over one spilled partition pair.
/// Chunk boundaries become batch boundaries (one chunk was one gathered
/// input batch, or one flushed staging run).
pub struct SpillScan {
    file: SpillFile,
    schema: Schema,
    types: Vec<TypeId>,
    next_chunk: usize,
    cancel: CancelToken,
    metrics: Arc<SpillMetrics>,
    profile: OpProfile,
}

impl SpillScan {
    /// Replay `file` as batches of `schema`. Actual rehydration traffic is
    /// recorded into `metrics` (shared with the spilling operator, so the
    /// top-level profile sees the whole cascade).
    pub fn new(
        file: SpillFile,
        schema: Schema,
        cancel: CancelToken,
        metrics: Arc<SpillMetrics>,
    ) -> SpillScan {
        let types = schema.fields.iter().map(|f| f.ty).collect();
        SpillScan {
            file,
            schema,
            types,
            next_chunk: 0,
            cancel,
            metrics,
            profile: OpProfile::new("SpillScan"),
        }
    }
}

impl Operator for SpillScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "SpillScan"
    }

    fn profile(&self) -> Option<&OpProfile> {
        Some(&self.profile)
    }

    fn profile_mut(&mut self) -> Option<&mut OpProfile> {
        Some(&mut self.profile)
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        loop {
            self.cancel.check()?;
            if self.next_chunk >= self.file.n_chunks() {
                return Ok(None);
            }
            let i = self.next_chunk;
            self.next_chunk += 1;
            let retries_before = self.file.disk().stats().io_retries;
            let (columns, nbytes) = read_vectors(&self.file, i, &self.types)?;
            let retries_after = self.file.disk().stats().io_retries;
            self.profile.record_io_retries(retries_after - retries_before);
            self.metrics.record_read(nbytes as u64);
            let batch = Batch::new(columns);
            if batch.rows() == 0 {
                continue; // an empty chunk (possible after an empty flush)
            }
            self.profile.record(batch.rows(), std::time::Duration::ZERO);
            return Ok(Some(batch));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::{ColData, Field, Value, VwError};
    use vw_storage::SimulatedDisk;

    fn kv(vals: &[(Option<i64>, &str)]) -> Vec<Vector> {
        let mut k = Vector::new(ColData::new(TypeId::I64));
        let mut v = Vector::new(ColData::new(TypeId::Str));
        for (a, b) in vals {
            k.push(&a.map_or(Value::Null, Value::I64)).unwrap();
            v.push(&Value::Str(b.to_string())).unwrap();
        }
        vec![k, v]
    }

    fn kv_schema() -> Schema {
        Schema::new(vec![Field::nullable("k", TypeId::I64), Field::nullable("v", TypeId::Str)])
            .unwrap()
    }

    #[test]
    fn vectors_roundtrip_through_a_spill_file() {
        let mut file = SpillFile::new(SimulatedDisk::instant());
        let cols = kv(&[(Some(1), "a"), (None, "b"), (Some(3), "c")]);
        let n = append_vectors(&mut file, &cols).unwrap();
        assert!(n > 0);
        let (back, nbytes) = read_vectors(&file, 0, &[TypeId::I64, TypeId::Str]).unwrap();
        assert_eq!(back, cols);
        assert_eq!(nbytes, n, "encoded size reported for traffic accounting");
    }

    #[test]
    fn spill_scan_replays_chunks_as_batches() {
        let disk = SimulatedDisk::instant();
        let mut file = SpillFile::new(disk.clone());
        append_vectors(&mut file, &kv(&[(Some(1), "a"), (Some(2), "b")])).unwrap();
        append_vectors(&mut file, &kv(&[])).unwrap();
        append_vectors(&mut file, &kv(&[(None, "c")])).unwrap();
        let metrics = SpillMetrics::new();
        let mut scan = SpillScan::new(file, kv_schema(), CancelToken::new(), metrics.clone());
        let b1 = scan.next().unwrap().unwrap();
        assert_eq!(b1.rows(), 2);
        let b2 = scan.next().unwrap().unwrap();
        assert_eq!(b2.rows(), 1, "empty chunk skipped");
        assert!(b2.columns[0].is_null(0));
        assert!(scan.next().unwrap().is_none());
        assert!(
            metrics.bytes_read.load(std::sync::atomic::Ordering::Relaxed) > 0,
            "rehydration traffic recorded"
        );
        drop(scan);
        assert_eq!(disk.used_bytes(), 0, "spill blocks reclaimed when the scan drops");
    }

    #[test]
    fn spill_scan_observes_cancellation() {
        let mut file = SpillFile::new(SimulatedDisk::instant());
        append_vectors(&mut file, &kv(&[(Some(1), "a")])).unwrap();
        let cancel = CancelToken::new();
        let mut scan = SpillScan::new(file, kv_schema(), cancel.clone(), SpillMetrics::new());
        cancel.cancel();
        assert!(matches!(scan.next(), Err(VwError::Cancelled)));
    }
}
