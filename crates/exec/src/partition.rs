//! Radix partitioning — the parallel-build engine under hash join and hash
//! aggregation.
//!
//! The paper's "when more cores hurts" lesson: naively threading a shared
//! hash table serializes on cache-line ping-pong exactly where the flat
//! layout was supposed to win. This module attacks the scaling wall with
//! the classic radix-partitioned design instead:
//!
//! * **Radix split** ([`RadixRouter`]) — every build row's key hash (the
//!   same `hash_keys` output the table indexes by) is routed by its *top*
//!   `bits` bits into one of `P = next_pow2(dop)` partitions. The top bits
//!   are provably independent of the [`FlatTable`](crate::hashtable)
//!   directory index (low bits) and nearly independent of the 8-bit bloom
//!   tag (bits 57..60), so each shard's table stays as balanced as the
//!   unpartitioned one.
//! * **Shard ownership** — each partition owns a *private* `FlatTable`
//!   shard plus the contiguous key/payload vectors it indexes, built and
//!   `finalize()`d on its own worker thread ([`ShardSet`], the same
//!   bounded-channel/cancel machinery as `op/xchg.rs`). No shard is ever
//!   touched by two threads, so there is no synchronization on the hot
//!   path — the only cross-thread traffic is handing over gathered row
//!   packets.
//! * **Partition-wise probe** — probes are *not* merged back into one
//!   table. A probe batch is hashed once, split by the same radix bits
//!   into per-partition [`SelVec`]s (reused scratch — the steady-state
//!   probe loop stays allocation-free), and each sub-selection runs the
//!   ordinary fused per-shard probe kernel against a table `P`× smaller
//!   (and that much more cache-resident) than the monolithic one.
//!
//! Worker bodies run under `catch_unwind`: a panic inside a shard (or an
//! `Xchg` partition) becomes a [`VwError`] on the consumer side instead of
//! a silently dropped channel.

use crate::cancel::CancelToken;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use vw_common::{Result, SelVec, VwError};
use vw_service::WorkerPool;
use vw_storage::SimulatedDisk;

/// Default staged-row cost gate: a parallel-capable hash build stays
/// serial until this many build rows are staged (thread spawn + scatter
/// overhead only pays off past roughly this point).
pub const DEFAULT_PARALLEL_BUILD_MIN_ROWS: usize = 8192;

/// Deepest hash-bit stratum grace spilling will re-partition on. Each
/// recursion level consumes `log2(P)` fresh hash bits below the previous
/// level's; past this depth a partition is rehydrated and built in memory
/// regardless of the budget (a graceful floor — at 8 partitions, 8 levels
/// divide the build 8^8 ≈ 16M ways first).
pub const MAX_SPILL_DEPTH: u32 = 8;

/// Routes hashes to radix partitions and splits probe selections
/// partition-wise. All scratch (`P` selection vectors) is reused across
/// batches.
///
/// A router lives on a hash-bit **stratum**: depth 0 routes on the top
/// `bits` bits (disjoint from the [`FlatTable`](crate::hashtable) low-bit
/// directory index), depth `d` on the next `bits` bits below stratum
/// `d - 1`. Grace-spill recursion re-partitions an oversized partition on
/// the next stratum, so every level's split is independent of all levels
/// above it.
#[derive(Debug)]
pub struct RadixRouter {
    bits: u32,
    /// Right-shift that brings this stratum's bits to the bottom.
    shift: u32,
    sels: Vec<SelVec>,
}

impl RadixRouter {
    /// A router over `next_pow2(partitions)` radix partitions on stratum 0
    /// (the hash's top bits).
    pub fn new(partitions: usize) -> RadixRouter {
        RadixRouter::at_depth(partitions, 0)
    }

    /// A router on hash-bit stratum `depth` (grace-spill recursion).
    pub fn at_depth(partitions: usize, depth: u32) -> RadixRouter {
        let p = partitions.max(1).next_power_of_two();
        let bits = p.trailing_zeros();
        assert!(bits * (depth + 1) <= 48, "radix strata exhausted the hash");
        RadixRouter { bits, shift: 64 - bits * (depth + 1), sels: vec![SelVec::new(); p] }
    }

    /// Number of partitions (a power of two).
    pub fn partitions(&self) -> usize {
        self.sels.len()
    }

    /// The partition owning hash `h` (this stratum's `bits` bits —
    /// independent of the low-bit table directory index and of every
    /// shallower stratum).
    #[inline]
    pub fn shard_of(&self, h: u64) -> usize {
        if self.bits == 0 {
            0
        } else {
            ((h >> self.shift) as usize) & (self.sels.len() - 1)
        }
    }

    /// Split the selected lanes (`sel`, or `0..n` when `None`) by radix
    /// into per-partition selections — the per-batch radix histogram in
    /// selection form (each partition's `SelVec` length is its count, and
    /// the positions double as the scatter order). Each `SelVec` stays
    /// sorted (lanes are visited in ascending order); the buffers are
    /// reused, so steady-state splitting allocates nothing once warm.
    pub fn split(&mut self, hashes: &[u64], sel: Option<&SelVec>, n: usize) -> &[SelVec] {
        for s in &mut self.sels {
            s.clear();
        }
        if self.bits == 0 {
            match sel {
                None => self.sels[0].fill_identity(n),
                Some(s) => self.sels[0].clear_and_extend_from_slice(s.as_slice()),
            }
            return &self.sels;
        }
        let (shift, mask) = (self.shift, self.sels.len() - 1);
        match sel {
            None => {
                for (p, &h) in hashes.iter().enumerate().take(n) {
                    self.sels[(h >> shift) as usize & mask].push(p as u32);
                }
            }
            Some(s) => {
                for p in s.iter() {
                    self.sels[(hashes[p] >> shift) as usize & mask].push(p as u32);
                }
            }
        }
        &self.sels
    }

    /// The per-partition selections filled by the last [`RadixRouter::split`]
    /// (borrow-friendly accessor for callers that also hold the shards).
    pub fn shard_sel(&self, shard: usize) -> &SelVec {
        &self.sels[shard]
    }
}

/// One partition's build-side consumer: absorbs gathered row packets on a
/// worker thread, then finalizes into its output (a built table shard, a
/// merged aggregation state, ...).
pub trait ShardWorker: Send + 'static {
    /// The unit of work scattered to this shard (gathered rows for one
    /// input batch).
    type Packet: Send + 'static;
    /// What the shard hands back when the build input is exhausted.
    type Output: Send + 'static;

    /// Fold one packet into the shard state.
    fn absorb(&mut self, pkt: Self::Packet) -> Result<()>;

    /// Input exhausted: finalize and hand the shard back.
    fn finish(self) -> Result<Self::Output>;
}

/// Packets a shard cell queues ahead of its worker; matches the
/// bounded(2) channel of the dedicated-thread mode.
const CELL_QUEUE_CAP: usize = 2;

/// Packets a pool-scheduled shard task absorbs before voluntarily
/// requeueing itself (cross-query fairness on a small pool).
const CELL_QUANTUM: usize = 8;

/// State of one pool-scheduled shard: an actor mailbox plus the worker it
/// protects. A task is scheduled for the cell only while there is work
/// (`scheduled`), and the task never blocks — it parks by clearing
/// `scheduled` and returning, and the next `send`/`finish` reschedules it.
struct CellState<W: ShardWorker> {
    queue: VecDeque<W::Packet>,
    worker: Option<W>,
    /// A pool task for this cell is queued or running.
    scheduled: bool,
    /// No further packets; finalize once the queue drains.
    closed: bool,
    /// Consumer dropped mid-build: discard everything, produce no output.
    aborted: bool,
    /// The shard's result (set by finalize, error, or cancellation).
    output: Option<Result<W::Output>>,
}

struct Cell<W: ShardWorker> {
    m: Mutex<CellState<W>>,
    cv: Condvar,
}

/// A set of shard workers — the `Xchg` worker/cancel design pointed at
/// operator-internal build parallelism instead of whole plan fragments.
/// Two scheduling modes, mirroring [`crate::op::xchg::Xchg`]:
///
/// * [`ShardSet::spawn`] — one dedicated thread per shard, fed through
///   bounded channels (capacity 2 keeps the scatter slightly ahead of the
///   builders without unbounded buffering).
/// * [`ShardSet::spawn_on`] — each shard is an actor-style `Cell` whose
///   packets are absorbed by cooperative tasks on the engine's shared
///   [`WorkerPool`]; thread count stays O(pool workers) no matter how
///   many queries build concurrently.
pub struct ShardSet<W: ShardWorker> {
    inner: ShardSetInner<W>,
}

enum ShardSetInner<W: ShardWorker> {
    Threads {
        txs: Vec<Option<Sender<W::Packet>>>,
        handles: Vec<Option<JoinHandle<Result<W::Output>>>>,
    },
    Pool {
        cells: Vec<Arc<Cell<W>>>,
        pool: Arc<WorkerPool>,
        cancel: CancelToken,
    },
}

impl<W: ShardWorker> ShardSet<W> {
    /// Spawn one worker thread per shard. `cancel` is the query-wide
    /// token: a cancelled query makes every worker bail out between
    /// packets with [`VwError::Cancelled`].
    pub fn spawn(workers: Vec<W>, cancel: &CancelToken) -> ShardSet<W> {
        let mut txs = Vec::with_capacity(workers.len());
        let mut handles = Vec::with_capacity(workers.len());
        for w in workers {
            let (tx, rx) = bounded::<W::Packet>(2);
            let cancel = cancel.clone();
            handles.push(Some(std::thread::spawn(move || run_shard(w, rx, cancel))));
            txs.push(Some(tx));
        }
        ShardSet { inner: ShardSetInner::Threads { txs, handles } }
    }

    /// Schedule the shards as cooperative tasks on the engine's shared
    /// worker pool instead of spawning threads. Absorption order, error
    /// surfacing, and cancellation semantics match [`ShardSet::spawn`].
    pub fn spawn_on(pool: &Arc<WorkerPool>, workers: Vec<W>, cancel: &CancelToken) -> ShardSet<W> {
        let cells = workers
            .into_iter()
            .map(|w| {
                Arc::new(Cell {
                    m: Mutex::new(CellState {
                        queue: VecDeque::new(),
                        worker: Some(w),
                        scheduled: false,
                        closed: false,
                        aborted: false,
                        output: None,
                    }),
                    cv: Condvar::new(),
                })
            })
            .collect();
        ShardSet {
            inner: ShardSetInner::Pool { cells, pool: pool.clone(), cancel: cancel.clone() },
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        match &self.inner {
            ShardSetInner::Threads { handles, .. } => handles.len(),
            ShardSetInner::Pool { cells, .. } => cells.len(),
        }
    }

    /// True when no shards were spawned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hand a packet to shard `s`. While the shard's queue is full the
    /// caller *helps*: it runs queued pool tasks on its own thread rather
    /// than sleeping, so a plan fragment (itself a pool task) driving this
    /// build cannot starve the shard cells of workers. If the worker died,
    /// its error (or panic) is surfaced here.
    pub fn send(&mut self, s: usize, pkt: W::Packet) -> Result<()> {
        match &mut self.inner {
            ShardSetInner::Threads { txs, handles } => {
                let alive = match &txs[s] {
                    Some(tx) => tx.send(pkt).is_ok(),
                    None => false,
                };
                if alive {
                    return Ok(());
                }
                txs[s] = None; // worker gone: join it to learn why
                match handles[s].take() {
                    Some(h) => match h.join() {
                        Ok(Ok(_)) => Err(VwError::Exec("shard worker exited early".into())),
                        Ok(Err(e)) => Err(e),
                        Err(p) => Err(panic_error("hash build shard", p)),
                    },
                    None => Err(VwError::Exec("shard worker already joined".into())),
                }
            }
            ShardSetInner::Pool { cells, pool, cancel } => {
                let cell = &cells[s];
                let mut st = cell.m.lock().expect("shard cell poisoned");
                loop {
                    if let Some(out) = st.output.take() {
                        // The shard terminated early (error/panic/cancel);
                        // surface its reason once, like the joining path.
                        return match out {
                            Ok(_) => Err(VwError::Exec("shard worker exited early".into())),
                            Err(e) => Err(e),
                        };
                    }
                    if st.worker.is_none() && !st.scheduled {
                        return Err(VwError::Exec("shard worker already joined".into()));
                    }
                    if st.queue.len() < CELL_QUEUE_CAP {
                        st.queue.push_back(pkt);
                        let schedule = !st.scheduled;
                        if schedule {
                            st.scheduled = true;
                        }
                        drop(st);
                        if schedule {
                            // Submit outside the lock: a closed pool runs
                            // the task inline, and the task re-takes it.
                            let (c, p, t) = (cell.clone(), pool.clone(), cancel.clone());
                            pool.submit(cancel, move || run_cell(&c, &p, &t));
                        }
                        return Ok(());
                    }
                    if cancel.is_cancelled() {
                        return Err(VwError::Cancelled);
                    }
                    // Queue full. The caller may *itself* be a pool task (a
                    // plan fragment driving this build), so sleeping here
                    // could starve the cell task of the very worker it
                    // needs — donate this thread to the pool instead.
                    drop(st);
                    if !pool.help_run_one() {
                        // Pool tasks notify on every dequeue; the timeout
                        // only bounds staleness against a racing cancel.
                        let guard = cell.m.lock().expect("shard cell poisoned");
                        let (guard, _) = cell
                            .cv
                            .wait_timeout(guard, Duration::from_millis(1))
                            .expect("shard cell poisoned");
                        st = guard;
                    } else {
                        st = cell.m.lock().expect("shard cell poisoned");
                    }
                }
            }
        }
    }

    /// Close all shards, wait for every worker, and collect the shard
    /// outputs in partition order. The first worker error (or panic)
    /// aborts the collection.
    pub fn finish(mut self) -> Result<Vec<W::Output>> {
        match &mut self.inner {
            ShardSetInner::Threads { txs, handles } => {
                txs.clear(); // senders drop → workers drain and finalize
                let mut outs = Vec::with_capacity(handles.len());
                let mut first_err = None;
                for h in handles {
                    let Some(h) = h.take() else { continue };
                    match h.join() {
                        Ok(Ok(out)) => outs.push(out),
                        Ok(Err(e)) => {
                            first_err.get_or_insert(e);
                        }
                        Err(p) => {
                            first_err.get_or_insert(panic_error("hash build shard", p));
                        }
                    }
                }
                match first_err {
                    Some(e) => Err(e),
                    None => Ok(outs),
                }
            }
            ShardSetInner::Pool { cells, pool, cancel } => {
                // Close every cell (scheduling idle ones so they finalize),
                // then collect outputs in partition order.
                for cell in cells.iter() {
                    let mut st = cell.m.lock().expect("shard cell poisoned");
                    st.closed = true;
                    let schedule = !st.scheduled && st.output.is_none() && st.worker.is_some();
                    if schedule {
                        st.scheduled = true;
                    }
                    drop(st);
                    if schedule {
                        let (c, p, t) = (cell.clone(), pool.clone(), cancel.clone());
                        pool.submit(cancel, move || run_cell(&c, &p, &t));
                    }
                }
                let mut outs = Vec::with_capacity(cells.len());
                let mut first_err = None;
                for cell in cells.iter() {
                    let mut st = cell.m.lock().expect("shard cell poisoned");
                    let out = loop {
                        if let Some(out) = st.output.take() {
                            break out;
                        }
                        if st.worker.is_none() && !st.scheduled {
                            break Err(VwError::Exec("shard worker already joined".into()));
                        }
                        // Same helping rule as `send`: the barrier may be
                        // waiting on tasks only this thread can run.
                        drop(st);
                        if !pool.help_run_one() {
                            let guard = cell.m.lock().expect("shard cell poisoned");
                            let (guard, _) = cell
                                .cv
                                .wait_timeout(guard, Duration::from_millis(1))
                                .expect("shard cell poisoned");
                            st = guard;
                        } else {
                            st = cell.m.lock().expect("shard cell poisoned");
                        }
                    };
                    match out {
                        Ok(o) => outs.push(o),
                        Err(e) => {
                            first_err.get_or_insert(e);
                        }
                    }
                }
                match first_err {
                    Some(e) => Err(e),
                    None => Ok(outs),
                }
            }
        }
    }
}

impl<W: ShardWorker> Drop for ShardSet<W> {
    fn drop(&mut self) {
        match &mut self.inner {
            ShardSetInner::Threads { txs, handles } => {
                // Error path: close the channels and join so no worker
                // outlives the query (their outputs are discarded).
                txs.clear();
                for h in handles {
                    if let Some(h) = h.take() {
                        let _ = h.join();
                    }
                }
            }
            ShardSetInner::Pool { cells, pool, .. } => {
                // Abort every cell, then wait until no task references it
                // before discarding worker state — the memory the workers
                // staged must be released (and uncharged from any
                // MemBudget) before drop returns, because callers assert
                // `MemBudget::global_in_use() == 0` right after a query
                // unwinds.
                for cell in cells.iter() {
                    let mut st = cell.m.lock().expect("shard cell poisoned");
                    st.aborted = true;
                    st.queue.clear();
                    drop(st);
                    cell.cv.notify_all();
                }
                for cell in cells.iter() {
                    let mut st = cell.m.lock().expect("shard cell poisoned");
                    while st.scheduled {
                        // Helping again: the unwind path can run on a pool
                        // worker (a fragment dropping its operators), and
                        // the cell's final task may be queued behind us.
                        drop(st);
                        if !pool.help_run_one() {
                            let guard = cell.m.lock().expect("shard cell poisoned");
                            let (guard, _) = cell
                                .cv
                                .wait_timeout(guard, Duration::from_millis(1))
                                .expect("shard cell poisoned");
                            st = guard;
                        } else {
                            st = cell.m.lock().expect("shard cell poisoned");
                        }
                    }
                    let worker = st.worker.take();
                    let output = st.output.take();
                    drop(st);
                    drop(worker);
                    drop(output);
                }
            }
        }
    }
}

fn run_shard<W: ShardWorker>(
    mut w: W,
    rx: Receiver<W::Packet>,
    cancel: CancelToken,
) -> Result<W::Output> {
    // catch_unwind so a worker panic surfaces as an error at the consumer
    // instead of a silently dropped channel end.
    catch_unwind(AssertUnwindSafe(move || loop {
        if cancel.is_cancelled() {
            return Err(VwError::Cancelled);
        }
        match rx.recv() {
            Ok(pkt) => w.absorb(pkt)?,
            // Senders dropped: input exhausted (or consumer bailed).
            Err(_) => return w.finish(),
        }
    }))
    .unwrap_or_else(|p| Err(panic_error("hash build shard", p)))
}

/// Drive one pool-scheduled shard cell for up to a quantum of packets.
/// Exit paths: parked (queue empty, not closed — `scheduled` cleared),
/// yielded (quantum spent — resubmitted, `scheduled` stays set),
/// finalized, errored, cancelled, or aborted. All but the yield clear
/// `scheduled`; every exit notifies the cell's condvar.
fn run_cell<W: ShardWorker>(cell: &Arc<Cell<W>>, pool: &Arc<WorkerPool>, cancel: &CancelToken) {
    let mut absorbed = 0;
    loop {
        let mut st = cell.m.lock().expect("shard cell poisoned");
        if st.aborted {
            st.queue.clear();
            st.scheduled = false;
            drop(st);
            cell.cv.notify_all();
            return;
        }
        if cancel.is_cancelled() {
            if st.output.is_none() {
                st.output = Some(Err(VwError::Cancelled));
            }
            st.queue.clear();
            st.worker = None;
            st.scheduled = false;
            drop(st);
            cell.cv.notify_all();
            return;
        }
        if let Some(pkt) = st.queue.pop_front() {
            let Some(mut w) = st.worker.take() else {
                st.scheduled = false;
                drop(st);
                cell.cv.notify_all();
                return;
            };
            drop(st);
            cell.cv.notify_all(); // queue space freed: wake a blocked send
            let res = catch_unwind(AssertUnwindSafe(|| w.absorb(pkt)));
            let mut st = cell.m.lock().expect("shard cell poisoned");
            match res {
                Ok(Ok(())) => {
                    st.worker = Some(w);
                    absorbed += 1;
                    if absorbed >= CELL_QUANTUM && !pool.is_closed() {
                        drop(st); // stay scheduled; requeue at the tail
                        let (c, p, t) = (cell.clone(), pool.clone(), cancel.clone());
                        pool.submit(cancel, move || run_cell(&c, &p, &t));
                        return;
                    }
                    drop(st);
                    continue;
                }
                Ok(Err(e)) => {
                    st.output = Some(Err(e));
                }
                Err(p) => {
                    st.output = Some(Err(panic_error("hash build shard", p)));
                }
            }
            st.queue.clear();
            st.scheduled = false;
            drop(st);
            cell.cv.notify_all();
            return;
        }
        if st.closed {
            let Some(w) = st.worker.take() else {
                st.scheduled = false;
                drop(st);
                cell.cv.notify_all();
                return;
            };
            drop(st);
            let res = catch_unwind(AssertUnwindSafe(|| w.finish()))
                .unwrap_or_else(|p| Err(panic_error("hash build shard", p)));
            let mut st = cell.m.lock().expect("shard cell poisoned");
            st.output = Some(res);
            st.scheduled = false;
            drop(st);
            cell.cv.notify_all();
            return;
        }
        // Idle: park until the next send/finish reschedules the cell.
        st.scheduled = false;
        drop(st);
        cell.cv.notify_all();
        return;
    }
}

/// The per-query memory governor: a shared byte counter every memory-
/// governed hash build charges as its staged shards grow, with a hard
/// budget above which the grace-spill machinery starts evicting the
/// largest shards to disk.
///
/// One `MemBudget` is created per query (see `vw-core::compile`) and
/// shared — through an `Arc` — by every hash join build side and every
/// aggregation in the plan, including Exchange worker clones and the
/// recursive joins/re-aggregations of already-spilled partitions. The
/// budget is therefore a *query-wide* ceiling on hash build state, not a
/// per-operator one: whichever operator pushes the total over the line
/// spills its own largest shard first.
///
/// Charging is advisory bookkeeping, not an allocator: operators report
/// the approximate bytes of rows they stage
/// ([`Vector::byte_size`](crate::vector::Vector::byte_size)-based) and
/// uncharge when the rows
/// are spilled, handed downstream, or dropped.
#[derive(Debug)]
pub struct MemBudget {
    limit: usize,
    used: AtomicUsize,
}

/// Process-wide mirror of every [`MemBudget`]'s charged bytes — the leak
/// observable: with no query running it must read zero, which the chaos
/// suite asserts after every run (ARCHITECTURE.md "Failure model").
static GLOBAL_CHARGED: AtomicUsize = AtomicUsize::new(0);

impl MemBudget {
    /// A budget of `limit` bytes (callers never construct an unlimited
    /// one — an unlimited query simply has no `MemBudget` at all, so the
    /// zero-spill path carries none of this machinery).
    pub fn new(limit: usize) -> Arc<MemBudget> {
        Arc::new(MemBudget { limit: limit.max(1), used: AtomicUsize::new(0) })
    }

    /// Bytes currently charged across *all* budgets in the process. Zero
    /// whenever no query holds staged build state — any other resting
    /// value is a reclamation leak.
    pub fn global_in_use() -> usize {
        GLOBAL_CHARGED.load(Ordering::Relaxed)
    }

    /// The configured ceiling in bytes.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Bytes currently charged across the query.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Charge `bytes` of newly staged build state.
    pub fn charge(&self, bytes: usize) {
        self.used.fetch_add(bytes, Ordering::Relaxed);
        GLOBAL_CHARGED.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Return `bytes` of staged state (spilled, emitted, or dropped).
    pub fn uncharge(&self, bytes: usize) {
        let prev = self.used.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "uncharge below zero ({prev} - {bytes})");
        GLOBAL_CHARGED.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Is the query over its budget right now?
    pub fn over(&self) -> bool {
        self.used() > self.limit
    }
}

/// Spill traffic counters for one operator's subtree, shared with the
/// recursive joins / re-aggregations its spilled partitions spawn so the
/// top-level operator's profile reports the whole cascade. Rendered as the
/// `spill` column of `EXPLAIN ANALYZE` (see [`crate::profile`]).
#[derive(Debug, Default)]
pub struct SpillMetrics {
    /// Partitions that spilled at least one chunk (all strata).
    pub partitions: AtomicU64,
    /// Encoded bytes written to spill files.
    pub bytes_written: AtomicU64,
    /// Encoded bytes read back while rehydrating.
    pub bytes_read: AtomicU64,
}

impl SpillMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> Arc<SpillMetrics> {
        Arc::new(SpillMetrics::default())
    }

    /// Record one partition's first spill.
    pub fn record_partition(&self) {
        self.partitions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` encoded bytes appended to a spill file.
    pub fn record_write(&self, n: u64) {
        self.bytes_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` encoded bytes rehydrated from a spill file.
    pub fn record_read(&self, n: u64) {
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }
}

/// Everything a memory-governed hash operator needs to spill: the shared
/// query budget, the device temp spill files live on, the partition fan-out
/// per stratum, the stratum this operator routes on, and the shared
/// traffic counters. `deeper()` derives the config for the recursive
/// operator a spilled partition is re-processed with.
#[derive(Clone)]
pub struct SpillConfig {
    /// The query-wide memory governor.
    pub budget: Arc<MemBudget>,
    /// Device for temp spill files.
    pub disk: Arc<SimulatedDisk>,
    /// Radix partitions per stratum (power of two, ≥ 2 so recursion can
    /// always split further).
    pub partitions: usize,
    /// This operator's hash-bit stratum (0 = top bits; spilled partitions
    /// recurse at `depth + 1`).
    pub depth: u32,
    /// Spill traffic counters shared down the recursion.
    pub metrics: Arc<SpillMetrics>,
}

impl SpillConfig {
    /// A stratum-0 config over `partitions` grace partitions (rounded up
    /// to a power of two, minimum 2).
    pub fn new(budget: Arc<MemBudget>, disk: Arc<SimulatedDisk>, partitions: usize) -> SpillConfig {
        SpillConfig {
            budget,
            disk,
            partitions: partitions.max(2).next_power_of_two(),
            depth: 0,
            metrics: SpillMetrics::new(),
        }
    }

    /// The deepest usable stratum for `partitions`-way splits: capped by
    /// [`MAX_SPILL_DEPTH`] *and* by the hash bits available — each level
    /// consumes `log2(P)` bits and strata must stay clear of the low-bit
    /// table directory (we keep the bottom 16 bits untouched). At 1024
    /// partitions (10 bits) that is depth 3; at the default 8 it is the
    /// full `MAX_SPILL_DEPTH`.
    pub fn max_depth(partitions: usize) -> u32 {
        let bits = partitions.max(2).next_power_of_two().trailing_zeros();
        MAX_SPILL_DEPTH.min(48 / bits - 1)
    }

    /// The config for re-processing one spilled partition on the next
    /// hash-bit stratum — `None` once [`SpillConfig::max_depth`] is
    /// reached (the recursion floor: build in memory regardless of the
    /// budget).
    pub fn deeper(&self) -> Option<SpillConfig> {
        if self.depth >= SpillConfig::max_depth(self.partitions) {
            return None;
        }
        let mut next = self.clone();
        next.depth += 1;
        Some(next)
    }
}

impl std::fmt::Debug for SpillConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillConfig")
            .field("limit", &self.budget.limit())
            .field("partitions", &self.partitions)
            .field("depth", &self.depth)
            .finish()
    }
}

/// Convert a caught panic payload into a `VwError` naming the worker kind
/// (shared with the `Xchg` exchange workers).
pub fn panic_error(what: &str, payload: Box<dyn std::any::Any + Send>) -> VwError {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into());
    VwError::Exec(format!("{what} worker panicked: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::hash::hash_u64;

    #[test]
    fn router_splits_cover_all_lanes_disjointly() {
        let hashes: Vec<u64> = (0..1000u64).map(hash_u64).collect();
        let mut r = RadixRouter::new(4);
        assert_eq!(r.partitions(), 4);
        r.split(&hashes, None, hashes.len());
        let mut seen = vec![false; hashes.len()];
        let mut counts = vec![0usize; 4];
        for (s, count) in counts.iter_mut().enumerate() {
            let sel = r.shard_sel(s);
            *count = sel.len();
            for p in sel.iter() {
                assert!(!seen[p], "lane routed twice");
                seen[p] = true;
                assert_eq!(r.shard_of(hashes[p]), s);
            }
            assert!(sel.as_slice().windows(2).all(|w| w[0] < w[1]), "sorted");
        }
        assert!(seen.iter().all(|&b| b), "every lane routed");
        // Reasonable balance: a good hash spreads lanes within 2x of even.
        assert!(counts.iter().all(|&c| c > 125 && c < 500), "{counts:?}");
    }

    #[test]
    fn router_rounds_up_to_power_of_two_and_handles_one() {
        assert_eq!(RadixRouter::new(3).partitions(), 4);
        assert_eq!(RadixRouter::new(5).partitions(), 8);
        let mut r = RadixRouter::new(1);
        let hashes = vec![7u64, 8, 9];
        let sels = r.split(&hashes, None, 3);
        assert_eq!(sels.len(), 1);
        assert_eq!(sels[0].as_slice(), &[0, 1, 2]);
    }

    #[test]
    fn split_respects_selection() {
        let hashes: Vec<u64> = (0..64u64).map(hash_u64).collect();
        let sel: SelVec = (0..64u32).filter(|p| p % 3 == 0).collect();
        let mut r = RadixRouter::new(2);
        let total: usize = r.split(&hashes, Some(&sel), 64).iter().map(|s| s.len()).sum();
        assert_eq!(total, sel.len());
    }

    struct SummingShard {
        sum: u64,
        fail_at: Option<u64>,
        panic_at: Option<u64>,
    }

    impl ShardWorker for SummingShard {
        type Packet = Vec<u64>;
        type Output = u64;

        fn absorb(&mut self, pkt: Vec<u64>) -> Result<()> {
            for v in pkt {
                self.sum += v;
                if self.fail_at.is_some_and(|f| self.sum >= f) {
                    return Err(VwError::Exec("shard boom".into()));
                }
                if self.panic_at.is_some_and(|f| self.sum >= f) {
                    panic!("shard worker panic at {}", self.sum);
                }
            }
            Ok(())
        }

        fn finish(self) -> Result<u64> {
            Ok(self.sum)
        }
    }

    fn shard(fail_at: Option<u64>, panic_at: Option<u64>) -> SummingShard {
        SummingShard { sum: 0, fail_at, panic_at }
    }

    #[test]
    fn router_strata_are_independent() {
        // The same hash set splits differently (and completely) on every
        // stratum, and a deeper stratum subdivides one shallow partition.
        let hashes: Vec<u64> = (0..4000u64).map(hash_u64).collect();
        let mut d0 = RadixRouter::at_depth(4, 0);
        let mut d1 = RadixRouter::at_depth(4, 1);
        d0.split(&hashes, None, hashes.len());
        let part0: SelVec = d0.shard_sel(0).iter().map(|p| p as u32).collect();
        assert!(!part0.is_empty());
        d1.split(&hashes, Some(&part0), hashes.len());
        let sub_counts: Vec<usize> = (0..4).map(|s| d1.shard_sel(s).len()).collect();
        assert_eq!(sub_counts.iter().sum::<usize>(), part0.len());
        // A good hash splits the sub-partition across all deeper shards.
        assert!(sub_counts.iter().all(|&c| c > 0), "{sub_counts:?}");
        for s in 0..4 {
            for p in d1.shard_sel(s).iter() {
                assert_eq!(d0.shard_of(hashes[p]), 0, "stratum 0 routing preserved");
                assert_eq!(d1.shard_of(hashes[p]), s);
            }
        }
    }

    #[test]
    fn mem_budget_charges_and_trips() {
        let b = MemBudget::new(1000);
        assert_eq!(b.limit(), 1000);
        assert!(!b.over());
        b.charge(600);
        assert!(!b.over());
        b.charge(600);
        assert!(b.over());
        assert_eq!(b.used(), 1200);
        b.uncharge(600);
        assert!(!b.over());
    }

    #[test]
    fn spill_config_deepens_to_a_floor() {
        let cfg = SpillConfig::new(MemBudget::new(1), SimulatedDisk::instant(), 3);
        assert_eq!(cfg.partitions, 4, "rounded to a power of two");
        assert_eq!(cfg.depth, 0);
        let mut d = cfg.clone();
        for expect in 1..=MAX_SPILL_DEPTH {
            d = d.deeper().expect("within the recursion floor");
            assert_eq!(d.depth, expect);
        }
        assert!(d.deeper().is_none(), "recursion floor reached");
    }

    #[test]
    fn spill_depth_floor_respects_hash_bit_supply() {
        // Wide fan-outs burn hash bits fast: the floor must stop the
        // recursion before a stratum would collide with the table
        // directory bits (previously an assert panic mid-query).
        assert_eq!(SpillConfig::max_depth(8), MAX_SPILL_DEPTH);
        assert_eq!(SpillConfig::max_depth(64), 7, "6 bits/level → 8 levels fit in 48");
        assert_eq!(SpillConfig::max_depth(1024), 3, "10 bits/level → 4 levels fit in 48");
        let mut cfg = SpillConfig::new(MemBudget::new(1), SimulatedDisk::instant(), 1024);
        let mut levels = 0;
        while let Some(next) = cfg.deeper() {
            cfg = next;
            levels += 1;
            // Every reachable stratum must construct without panicking.
            let _ = RadixRouter::at_depth(cfg.partitions, cfg.depth);
        }
        assert_eq!(levels, 3);
    }

    #[test]
    fn shard_set_collects_outputs_in_order() {
        let mut set =
            ShardSet::spawn(vec![shard(None, None), shard(None, None)], &CancelToken::new());
        for i in 0..10u64 {
            set.send((i % 2) as usize, vec![i]).unwrap();
        }
        let outs = set.finish().unwrap();
        assert_eq!(outs, vec![2 + 4 + 6 + 8, 1 + 3 + 5 + 7 + 9]);
    }

    #[test]
    fn shard_error_surfaces_to_consumer() {
        // The worker's error comes back either from the send that found the
        // channel closed (the operator aborts the build on it) or, if every
        // send squeaked through first, from finish().
        let mut set =
            ShardSet::spawn(vec![shard(None, None), shard(Some(5), None)], &CancelToken::new());
        let mut err = None;
        for i in 0..100u64 {
            if let Err(e) = set.send((i % 2) as usize, vec![i]) {
                err = Some(e);
                break;
            }
        }
        let err = match err {
            Some(e) => e,
            None => set.finish().expect_err("worker error must surface"),
        };
        assert!(matches!(err, VwError::Exec(ref m) if m.contains("shard boom")), "{err:?}");
    }

    #[test]
    fn shard_panic_becomes_error_not_hang() {
        let mut set = ShardSet::spawn(vec![shard(None, Some(3))], &CancelToken::new());
        let mut send_err = None;
        for i in 0..1000u64 {
            if let Err(e) = set.send(0, vec![i]) {
                send_err = Some(e);
                break;
            }
        }
        let err = match send_err {
            Some(e) => e,
            None => set.finish().unwrap_err(),
        };
        match err {
            VwError::Exec(msg) => assert!(msg.contains("panicked"), "{msg}"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn cancellation_stops_workers() {
        let cancel = CancelToken::new();
        let mut set = ShardSet::spawn(vec![shard(None, None)], &cancel);
        set.send(0, vec![1]).unwrap();
        cancel.cancel();
        // Workers observe the token between packets; finish must surface
        // Cancelled (or a clean sum if the worker finished first).
        match set.finish() {
            Err(VwError::Cancelled) | Ok(_) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn pool_shards_collect_outputs_in_order_on_one_worker() {
        // Four shards on a single-worker pool: the cells must absorb
        // cooperatively without a dedicated thread each (and without
        // deadlocking the lone worker).
        let pool = WorkerPool::new(1);
        let cancel = CancelToken::new();
        let workers: Vec<_> = (0..4).map(|_| shard(None, None)).collect();
        let mut set = ShardSet::spawn_on(&pool, workers, &cancel);
        assert_eq!(set.len(), 4);
        let mut expect = [0u64; 4];
        for i in 0..200u64 {
            let s = (i % 4) as usize;
            expect[s] += i;
            set.send(s, vec![i]).unwrap();
        }
        let outs = set.finish().unwrap();
        assert_eq!(outs, expect);
    }

    #[test]
    fn pool_shard_error_and_panic_surface() {
        let pool = WorkerPool::new(2);
        let cancel = CancelToken::new();
        for (w, needle) in
            [(shard(Some(5), None), "shard boom"), (shard(None, Some(3)), "panicked")]
        {
            let mut set = ShardSet::spawn_on(&pool, vec![w], &cancel);
            let mut send_err = None;
            for i in 0..1000u64 {
                if let Err(e) = set.send(0, vec![i]) {
                    send_err = Some(e);
                    break;
                }
            }
            let err = match send_err {
                Some(e) => e,
                None => set.finish().unwrap_err(),
            };
            match err {
                VwError::Exec(msg) => assert!(msg.contains(needle), "{msg}"),
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn pool_shard_cancellation_and_drop_reclaim_cells() {
        let pool = WorkerPool::new(1);
        let cancel = CancelToken::new();
        let mut set = ShardSet::spawn_on(&pool, vec![shard(None, None)], &cancel);
        set.send(0, vec![1]).unwrap();
        cancel.cancel();
        match set.finish() {
            Err(VwError::Cancelled) | Ok(_) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
        // Drop path: a consumer that bails mid-build must not leave tasks
        // or packets behind on the shared pool.
        let cancel = CancelToken::new();
        let mut set =
            ShardSet::spawn_on(&pool, vec![shard(None, None), shard(None, None)], &cancel);
        for i in 0..20u64 {
            set.send((i % 2) as usize, vec![i]).unwrap();
        }
        drop(set);
        assert_eq!(pool.queued(), 0, "abandoned cells must drain off the pool");
    }
}
