//! Radix partitioning — the parallel-build engine under hash join and hash
//! aggregation.
//!
//! The paper's "when more cores hurts" lesson: naively threading a shared
//! hash table serializes on cache-line ping-pong exactly where the flat
//! layout was supposed to win. This module attacks the scaling wall with
//! the classic radix-partitioned design instead:
//!
//! * **Radix split** ([`RadixRouter`]) — every build row's key hash (the
//!   same `hash_keys` output the table indexes by) is routed by its *top*
//!   `bits` bits into one of `P = next_pow2(dop)` partitions. The top bits
//!   are provably independent of the [`FlatTable`](crate::hashtable)
//!   directory index (low bits) and nearly independent of the 8-bit bloom
//!   tag (bits 57..60), so each shard's table stays as balanced as the
//!   unpartitioned one.
//! * **Shard ownership** — each partition owns a *private* `FlatTable`
//!   shard plus the contiguous key/payload vectors it indexes, built and
//!   `finalize()`d on its own worker thread ([`ShardSet`], the same
//!   bounded-channel/cancel machinery as `op/xchg.rs`). No shard is ever
//!   touched by two threads, so there is no synchronization on the hot
//!   path — the only cross-thread traffic is handing over gathered row
//!   packets.
//! * **Partition-wise probe** — probes are *not* merged back into one
//!   table. A probe batch is hashed once, split by the same radix bits
//!   into per-partition [`SelVec`]s (reused scratch — the steady-state
//!   probe loop stays allocation-free), and each sub-selection runs the
//!   ordinary fused per-shard probe kernel against a table `P`× smaller
//!   (and that much more cache-resident) than the monolithic one.
//!
//! Worker bodies run under `catch_unwind`: a panic inside a shard (or an
//! `Xchg` partition) becomes a [`VwError`] on the consumer side instead of
//! a silently dropped channel.

use crate::cancel::CancelToken;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;
use vw_common::{Result, SelVec, VwError};

/// Default staged-row cost gate: a parallel-capable hash build stays
/// serial until this many build rows are staged (thread spawn + scatter
/// overhead only pays off past roughly this point).
pub const DEFAULT_PARALLEL_BUILD_MIN_ROWS: usize = 8192;

/// Routes hashes to radix partitions and splits probe selections
/// partition-wise. All scratch (`P` selection vectors) is reused across
/// batches.
#[derive(Debug)]
pub struct RadixRouter {
    bits: u32,
    sels: Vec<SelVec>,
}

impl RadixRouter {
    /// A router over `next_pow2(partitions)` radix partitions.
    pub fn new(partitions: usize) -> RadixRouter {
        let p = partitions.max(1).next_power_of_two();
        RadixRouter { bits: p.trailing_zeros(), sels: vec![SelVec::new(); p] }
    }

    /// Number of partitions (a power of two).
    pub fn partitions(&self) -> usize {
        self.sels.len()
    }

    /// The partition owning hash `h` (top `bits` bits — independent of the
    /// low-bit table directory index).
    #[inline]
    pub fn shard_of(&self, h: u64) -> usize {
        if self.bits == 0 {
            0
        } else {
            (h >> (64 - self.bits)) as usize
        }
    }

    /// Split the selected lanes (`sel`, or `0..n` when `None`) by radix
    /// into per-partition selections — the per-batch radix histogram in
    /// selection form (each partition's `SelVec` length is its count, and
    /// the positions double as the scatter order). Each `SelVec` stays
    /// sorted (lanes are visited in ascending order); the buffers are
    /// reused, so steady-state splitting allocates nothing once warm.
    pub fn split(&mut self, hashes: &[u64], sel: Option<&SelVec>, n: usize) -> &[SelVec] {
        for s in &mut self.sels {
            s.clear();
        }
        if self.bits == 0 {
            match sel {
                None => self.sels[0].fill_identity(n),
                Some(s) => self.sels[0].clear_and_extend_from_slice(s.as_slice()),
            }
            return &self.sels;
        }
        let shift = 64 - self.bits;
        match sel {
            None => {
                for (p, &h) in hashes.iter().enumerate().take(n) {
                    self.sels[(h >> shift) as usize].push(p as u32);
                }
            }
            Some(s) => {
                for p in s.iter() {
                    self.sels[(hashes[p] >> shift) as usize].push(p as u32);
                }
            }
        }
        &self.sels
    }

    /// The per-partition selections filled by the last [`RadixRouter::split`]
    /// (borrow-friendly accessor for callers that also hold the shards).
    pub fn shard_sel(&self, shard: usize) -> &SelVec {
        &self.sels[shard]
    }
}

/// One partition's build-side consumer: absorbs gathered row packets on a
/// worker thread, then finalizes into its output (a built table shard, a
/// merged aggregation state, ...).
pub trait ShardWorker: Send + 'static {
    /// The unit of work scattered to this shard (gathered rows for one
    /// input batch).
    type Packet: Send + 'static;
    /// What the shard hands back when the build input is exhausted.
    type Output: Send + 'static;

    /// Fold one packet into the shard state.
    fn absorb(&mut self, pkt: Self::Packet) -> Result<()>;

    /// Input exhausted: finalize and hand the shard back.
    fn finish(self) -> Result<Self::Output>;
}

/// A set of shard workers, one thread per partition, fed through bounded
/// channels (capacity 2 keeps the scatter slightly ahead of the builders
/// without unbounded buffering) — the `Xchg` worker/channel/cancel design,
/// pointed at operator-internal build parallelism instead of whole plan
/// fragments.
pub struct ShardSet<W: ShardWorker> {
    txs: Vec<Option<Sender<W::Packet>>>,
    handles: Vec<Option<JoinHandle<Result<W::Output>>>>,
}

impl<W: ShardWorker> ShardSet<W> {
    /// Spawn one worker thread per shard. `cancel` is the query-wide
    /// token: a cancelled query makes every worker bail out between
    /// packets with [`VwError::Cancelled`].
    pub fn spawn(workers: Vec<W>, cancel: &CancelToken) -> ShardSet<W> {
        let mut txs = Vec::with_capacity(workers.len());
        let mut handles = Vec::with_capacity(workers.len());
        for w in workers {
            let (tx, rx) = bounded::<W::Packet>(2);
            let cancel = cancel.clone();
            handles.push(Some(std::thread::spawn(move || run_shard(w, rx, cancel))));
            txs.push(Some(tx));
        }
        ShardSet { txs, handles }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True when no shards were spawned.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Hand a packet to shard `s` (blocks while the shard's channel is
    /// full). If the worker died, its error (or panic) is joined and
    /// surfaced here.
    pub fn send(&mut self, s: usize, pkt: W::Packet) -> Result<()> {
        let alive = match &self.txs[s] {
            Some(tx) => tx.send(pkt).is_ok(),
            None => false,
        };
        if alive {
            return Ok(());
        }
        self.txs[s] = None; // worker gone: join it to learn why
        match self.handles[s].take() {
            Some(h) => match h.join() {
                Ok(Ok(_)) => Err(VwError::Exec("shard worker exited early".into())),
                Ok(Err(e)) => Err(e),
                Err(p) => Err(panic_error("hash build shard", p)),
            },
            None => Err(VwError::Exec("shard worker already joined".into())),
        }
    }

    /// Close all channels, join every worker, and collect the shard
    /// outputs in partition order. The first worker error (or panic)
    /// aborts the collection.
    pub fn finish(mut self) -> Result<Vec<W::Output>> {
        self.txs.clear(); // senders drop → workers drain and finalize
        let mut outs = Vec::with_capacity(self.handles.len());
        let mut first_err = None;
        for h in &mut self.handles {
            let Some(h) = h.take() else { continue };
            match h.join() {
                Ok(Ok(out)) => outs.push(out),
                Ok(Err(e)) => {
                    first_err.get_or_insert(e);
                }
                Err(p) => {
                    first_err.get_or_insert(panic_error("hash build shard", p));
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(outs),
        }
    }
}

impl<W: ShardWorker> Drop for ShardSet<W> {
    fn drop(&mut self) {
        // Error path: close the channels and join so no worker outlives
        // the query (their outputs are discarded).
        self.txs.clear();
        for h in &mut self.handles {
            if let Some(h) = h.take() {
                let _ = h.join();
            }
        }
    }
}

fn run_shard<W: ShardWorker>(
    mut w: W,
    rx: Receiver<W::Packet>,
    cancel: CancelToken,
) -> Result<W::Output> {
    // catch_unwind so a worker panic surfaces as an error at the consumer
    // instead of a silently dropped channel end.
    catch_unwind(AssertUnwindSafe(move || loop {
        if cancel.is_cancelled() {
            return Err(VwError::Cancelled);
        }
        match rx.recv() {
            Ok(pkt) => w.absorb(pkt)?,
            // Senders dropped: input exhausted (or consumer bailed).
            Err(_) => return w.finish(),
        }
    }))
    .unwrap_or_else(|p| Err(panic_error("hash build shard", p)))
}

/// Convert a caught panic payload into a `VwError` naming the worker kind
/// (shared with the `Xchg` exchange workers).
pub fn panic_error(what: &str, payload: Box<dyn std::any::Any + Send>) -> VwError {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into());
    VwError::Exec(format!("{what} worker panicked: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::hash::hash_u64;

    #[test]
    fn router_splits_cover_all_lanes_disjointly() {
        let hashes: Vec<u64> = (0..1000u64).map(hash_u64).collect();
        let mut r = RadixRouter::new(4);
        assert_eq!(r.partitions(), 4);
        r.split(&hashes, None, hashes.len());
        let mut seen = vec![false; hashes.len()];
        let mut counts = vec![0usize; 4];
        for (s, count) in counts.iter_mut().enumerate() {
            let sel = r.shard_sel(s);
            *count = sel.len();
            for p in sel.iter() {
                assert!(!seen[p], "lane routed twice");
                seen[p] = true;
                assert_eq!(r.shard_of(hashes[p]), s);
            }
            assert!(sel.as_slice().windows(2).all(|w| w[0] < w[1]), "sorted");
        }
        assert!(seen.iter().all(|&b| b), "every lane routed");
        // Reasonable balance: a good hash spreads lanes within 2x of even.
        assert!(counts.iter().all(|&c| c > 125 && c < 500), "{counts:?}");
    }

    #[test]
    fn router_rounds_up_to_power_of_two_and_handles_one() {
        assert_eq!(RadixRouter::new(3).partitions(), 4);
        assert_eq!(RadixRouter::new(5).partitions(), 8);
        let mut r = RadixRouter::new(1);
        let hashes = vec![7u64, 8, 9];
        let sels = r.split(&hashes, None, 3);
        assert_eq!(sels.len(), 1);
        assert_eq!(sels[0].as_slice(), &[0, 1, 2]);
    }

    #[test]
    fn split_respects_selection() {
        let hashes: Vec<u64> = (0..64u64).map(hash_u64).collect();
        let sel: SelVec = (0..64u32).filter(|p| p % 3 == 0).collect();
        let mut r = RadixRouter::new(2);
        let total: usize = r.split(&hashes, Some(&sel), 64).iter().map(|s| s.len()).sum();
        assert_eq!(total, sel.len());
    }

    struct SummingShard {
        sum: u64,
        fail_at: Option<u64>,
        panic_at: Option<u64>,
    }

    impl ShardWorker for SummingShard {
        type Packet = Vec<u64>;
        type Output = u64;

        fn absorb(&mut self, pkt: Vec<u64>) -> Result<()> {
            for v in pkt {
                self.sum += v;
                if self.fail_at.is_some_and(|f| self.sum >= f) {
                    return Err(VwError::Exec("shard boom".into()));
                }
                if self.panic_at.is_some_and(|f| self.sum >= f) {
                    panic!("shard worker panic at {}", self.sum);
                }
            }
            Ok(())
        }

        fn finish(self) -> Result<u64> {
            Ok(self.sum)
        }
    }

    fn shard(fail_at: Option<u64>, panic_at: Option<u64>) -> SummingShard {
        SummingShard { sum: 0, fail_at, panic_at }
    }

    #[test]
    fn shard_set_collects_outputs_in_order() {
        let mut set =
            ShardSet::spawn(vec![shard(None, None), shard(None, None)], &CancelToken::new());
        for i in 0..10u64 {
            set.send((i % 2) as usize, vec![i]).unwrap();
        }
        let outs = set.finish().unwrap();
        assert_eq!(outs, vec![2 + 4 + 6 + 8, 1 + 3 + 5 + 7 + 9]);
    }

    #[test]
    fn shard_error_surfaces_to_consumer() {
        // The worker's error comes back either from the send that found the
        // channel closed (the operator aborts the build on it) or, if every
        // send squeaked through first, from finish().
        let mut set =
            ShardSet::spawn(vec![shard(None, None), shard(Some(5), None)], &CancelToken::new());
        let mut err = None;
        for i in 0..100u64 {
            if let Err(e) = set.send((i % 2) as usize, vec![i]) {
                err = Some(e);
                break;
            }
        }
        let err = match err {
            Some(e) => e,
            None => set.finish().expect_err("worker error must surface"),
        };
        assert!(matches!(err, VwError::Exec(ref m) if m.contains("shard boom")), "{err:?}");
    }

    #[test]
    fn shard_panic_becomes_error_not_hang() {
        let mut set = ShardSet::spawn(vec![shard(None, Some(3))], &CancelToken::new());
        let mut send_err = None;
        for i in 0..1000u64 {
            if let Err(e) = set.send(0, vec![i]) {
                send_err = Some(e);
                break;
            }
        }
        let err = match send_err {
            Some(e) => e,
            None => set.finish().unwrap_err(),
        };
        match err {
            VwError::Exec(msg) => assert!(msg.contains("panicked"), "{msg}"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn cancellation_stops_workers() {
        let cancel = CancelToken::new();
        let mut set = ShardSet::spawn(vec![shard(None, None)], &cancel);
        set.send(0, vec![1]).unwrap();
        cancel.cancel();
        // Workers observe the token between packets; finish must surface
        // Cancelled (or a clean sum if the worker finished first).
        match set.finish() {
            Err(VwError::Cancelled) | Ok(_) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
}
