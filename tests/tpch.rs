//! TPC-H golden-file harness (SLT style).
//!
//! One `tests/tpch_golden/qNN.slt` per TPC-H query, run against the pinned
//! deterministic micro-scale instance from `vw_bench::tpch::load_tpch_micro`
//! (seed 1). Each file holds three `----`-separated sections:
//!
//! ```text
//! # comments
//! SELECT ...            -- the query (possibly TPC-H-rewritten; see notes)
//! ----
//! a|b|1234.5678         -- expected rows, |-separated, floats at %.4f
//! ----
//! Sort ...              -- expected EXPLAIN, pinned lane only
//! ```
//!
//! A file whose expected section is a single `error: <substring>` line
//! documents a construct the engine deliberately rejects — the harness then
//! asserts the typed `E_UNSUPPORTED` message instead of rows.
//!
//! Every query runs across **8 lanes**: dop {1,4} × compressed_exec {0,1}
//! × optimizer {0,1}. Rows must match in every lane (floats compared with a
//! print-granularity tolerance); the EXPLAIN text is byte-compared at the
//! pinned lane (optimizer=1, dop=1, compressed_exec=0) only, since the
//! cost-based pipeline annotates plans with estimates.
//!
//! The run prints `N of 22 pass`, writes a per-query × per-lane pass
//! matrix to `target/tpch_pass_matrix.tsv` (uploaded as a CI artifact),
//! and fails if N drops below [`FLOOR`].
//!
//! Regenerate goldens with `VW_TPCH_BLESS=1 cargo test --test tpch`.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use vectorwise::common::Value;
use vectorwise::core::Database;
use vw_bench::tpch::load_tpch_micro;

/// Committed floor: the run fails if fewer queries pass all 8 lanes.
const FLOOR: usize = 15;

/// The pinned data seed. Changing it invalidates every golden.
const SEED: u64 = 1;

/// The 8 execution lanes: (dop, compressed_exec, optimizer).
const LANES: [(usize, usize, usize); 8] =
    [(1, 0, 0), (1, 0, 1), (1, 1, 0), (1, 1, 1), (4, 0, 0), (4, 0, 1), (4, 1, 0), (4, 1, 1)];

/// The lane whose EXPLAIN output is committed as the golden.
const PINNED: (usize, usize, usize) = (1, 0, 1);

struct Golden {
    path: PathBuf,
    /// Leading `#` comment lines, preserved verbatim by bless.
    header: Vec<String>,
    sql: String,
    /// `Ok(rows)` or `Err(substring)` for deliberate-rejection goldens.
    expect: std::result::Result<Vec<String>, String>,
    explain: String,
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/tpch_golden")
}

fn parse_golden(path: PathBuf) -> Golden {
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
    let mut header = Vec::new();
    let mut sql = Vec::new();
    let mut rows = Vec::new();
    let mut explain = Vec::new();
    let mut section = 0;
    for line in text.lines() {
        if line == "----" {
            section += 1;
            continue;
        }
        match section {
            0 => {
                if sql.is_empty() && (line.starts_with('#') || line.is_empty()) {
                    header.push(line.to_string());
                } else {
                    sql.push(line.to_string());
                }
            }
            1 => rows.push(line.to_string()),
            _ => explain.push(line.to_string()),
        }
    }
    let expect = match rows.first().and_then(|l| l.strip_prefix("error: ")) {
        Some(msg) => Err(msg.to_string()),
        None => Ok(rows),
    };
    Golden { path, header, sql: sql.join("\n"), expect, explain: explain.join("\n") }
}

fn fmt_value(v: &Value) -> String {
    match v {
        Value::F64(x) => format!("{x:.4}"),
        other => other.to_string(),
    }
}

fn fmt_rows(rows: &[Vec<Value>]) -> Vec<String> {
    rows.iter().map(|r| r.iter().map(fmt_value).collect::<Vec<_>>().join("|")).collect()
}

/// Cell equality with float tolerance: printed `%.4f` granularity plus
/// relative slack for dop-dependent reassociation of float aggregates.
fn cells_eq(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    match (a.parse::<f64>(), b.parse::<f64>()) {
        (Ok(x), Ok(y)) => (x - y).abs() <= 1.5e-4 + 1e-9 * y.abs().max(1.0),
        _ => false,
    }
}

fn rows_eq(actual: &[String], expected: &[String]) -> bool {
    actual.len() == expected.len()
        && actual.iter().zip(expected).all(|(a, e)| {
            let (ac, ec): (Vec<_>, Vec<_>) = (a.split('|').collect(), e.split('|').collect());
            ac.len() == ec.len() && ac.iter().zip(&ec).all(|(x, y)| cells_eq(x, y))
        })
}

fn set_lane(db: &Arc<Database>, (dop, compressed, optimizer): (usize, usize, usize)) {
    db.execute(&format!("SET parallelism = {dop}")).unwrap();
    db.execute(&format!("SET compressed_exec = {compressed}")).unwrap();
    db.execute(&format!("SET optimizer = {optimizer}")).unwrap();
}

fn bless(db: &Arc<Database>, goldens: &[Golden]) {
    for g in goldens {
        set_lane(db, PINNED);
        let mut out = String::new();
        for line in &g.header {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&g.sql);
        out.push_str("\n----\n");
        match db.execute(&g.sql) {
            Ok(r) => {
                for row in fmt_rows(r.rows()) {
                    out.push_str(&row);
                    out.push('\n');
                }
                let e = db.execute(&format!("EXPLAIN {}", g.sql)).unwrap();
                out.push_str("----\n");
                out.push_str(e.text.as_deref().unwrap().trim_end());
                out.push('\n');
            }
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
            }
        }
        std::fs::write(&g.path, out).unwrap();
        println!("blessed {:?}", g.path.file_name().unwrap());
    }
}

/// Satellite: every TPC-H construct the engine still rejects must fail
/// with a typed `E_UNSUPPORTED` naming the exact construct — not a parse
/// error, not a wrong answer.
#[test]
fn unsupported_tpch_constructs_name_the_offender() {
    let db = Database::open_in_memory();
    load_tpch_micro(&db, SEED);
    let cases: &[(&str, &str)] = &[
        // Q16's COUNT(DISTINCT ps_suppkey).
        (
            "SELECT COUNT(DISTINCT ps_suppkey) FROM partsupp",
            "E_UNSUPPORTED: unsupported: DISTINCT aggregates (COUNT(DISTINCT ...))",
        ),
        // Q21's inner EXISTS correlates on an inequality.
        (
            "SELECT s_name FROM supplier WHERE EXISTS \
             (SELECT 1 FROM lineitem WHERE l_suppkey <> s_suppkey)",
            "E_UNSUPPORTED: unsupported: correlated predicate that is not an equality \
             (only `outer = inner` correlation decorrelates to a hash join)",
        ),
        // Window functions (the usual Q17/Q2 rewrite target).
        (
            "SELECT RANK() OVER (ORDER BY s_acctbal) FROM supplier",
            "E_UNSUPPORTED: unsupported: window functions (RANK(...) OVER)",
        ),
        // Correlated NOT IN has anti-join NULL semantics the decorrelator
        // refuses to guess at.
        (
            "SELECT o_orderkey FROM orders WHERE o_orderkey NOT IN \
             (SELECT l_orderkey FROM lineitem WHERE l_suppkey = o_custkey)",
            "E_UNSUPPORTED: unsupported: correlated NOT IN subquery (rewrite as NOT EXISTS)",
        ),
        // Correlated COUNT: an empty group must count 0, a join yields no row.
        (
            "SELECT o_orderkey FROM orders WHERE 2 < \
             (SELECT COUNT(*) FROM lineitem WHERE l_orderkey = o_orderkey)",
            "E_UNSUPPORTED: unsupported: correlated COUNT subquery \
             (an empty group's count cannot decorrelate to a join)",
        ),
        // Scalar subqueries live in WHERE/HAVING conjuncts only.
        (
            "SELECT (SELECT MAX(o_totalprice) FROM orders) FROM customer",
            "E_UNSUPPORTED: unsupported: scalar subquery in this position \
             (supported in WHERE and HAVING conjuncts)",
        ),
        // Uncorrelated scalar with no single-row guarantee.
        (
            "SELECT c_custkey FROM customer WHERE c_acctbal > \
             (SELECT o_totalprice FROM orders)",
            "E_UNSUPPORTED: unsupported: uncorrelated scalar subquery without a \
             single-row guarantee (use an aggregate without GROUP BY, or LIMIT 1)",
        ),
        // Per-group LIMIT does not decorrelate.
        (
            "SELECT o_orderkey FROM orders WHERE EXISTS \
             (SELECT 1 FROM lineitem WHERE l_orderkey = o_orderkey LIMIT 1)",
            "E_UNSUPPORTED: unsupported: LIMIT/OFFSET in a correlated subquery \
             (per-group limits do not decorrelate)",
        ),
        // Bag-semantics set operations.
        (
            "SELECT o_orderkey FROM orders INTERSECT ALL SELECT l_orderkey FROM lineitem",
            "E_UNSUPPORTED: unsupported: INTERSECT ALL",
        ),
    ];
    let squash = |s: &str| s.split_whitespace().collect::<Vec<_>>().join(" ");
    for (sql, want) in cases {
        let err = db.execute(sql).expect_err(sql).to_string();
        assert_eq!(squash(&err), squash(want), "message drift for: {sql}");
    }
}

#[test]
fn tpch_goldens() {
    let mut files: Vec<PathBuf> = std::fs::read_dir(golden_dir())
        .expect("tests/tpch_golden missing")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "slt"))
        .collect();
    files.sort();
    assert_eq!(files.len(), 22, "expected 22 golden files, found {}", files.len());
    let goldens: Vec<Golden> = files.into_iter().map(parse_golden).collect();

    let db = Database::open_in_memory();
    load_tpch_micro(&db, SEED);

    if std::env::var("VW_TPCH_BLESS").is_ok() {
        bless(&db, &goldens);
        return;
    }

    // matrix[q] = per-lane pass/fail, plus the first failure detail.
    let mut matrix: Vec<(String, Vec<bool>)> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for g in &goldens {
        let name = g.path.file_stem().unwrap().to_string_lossy().into_owned();
        let mut lanes_ok = Vec::new();
        for &lane in &LANES {
            set_lane(&db, lane);
            let result = db.execute(&g.sql);
            let ok = match (&g.expect, &result) {
                (Ok(expected), Ok(r)) => {
                    let actual = fmt_rows(r.rows());
                    let mut ok = rows_eq(&actual, expected);
                    if ok && lane == PINNED {
                        let e = db.execute(&format!("EXPLAIN {}", g.sql)).unwrap();
                        let text = e.text.as_deref().unwrap().trim_end();
                        if text != g.explain {
                            failures.push(format!(
                                "{name} lane {lane:?}: EXPLAIN drift\n--- expected\n{}\n--- actual\n{text}",
                                g.explain
                            ));
                            ok = false;
                        }
                    } else if !ok {
                        failures.push(format!(
                            "{name} lane {lane:?}: rows mismatch\n--- expected\n{}\n--- actual\n{}",
                            expected.join("\n"),
                            actual.join("\n")
                        ));
                    }
                    ok
                }
                (Err(want), Err(e)) => {
                    let msg = e.to_string();
                    let ok = msg.contains(want.as_str());
                    if !ok {
                        failures.push(format!(
                            "{name} lane {lane:?}: error message drift\nwant substring: {want}\ngot: {msg}"
                        ));
                    }
                    ok
                }
                (Ok(_), Err(e)) => {
                    failures.push(format!("{name} lane {lane:?}: unexpected error: {e}"));
                    false
                }
                (Err(want), Ok(_)) => {
                    failures.push(format!(
                        "{name} lane {lane:?}: expected rejection ({want}) but query succeeded"
                    ));
                    false
                }
            };
            lanes_ok.push(ok);
        }
        matrix.push((name, lanes_ok));
    }

    // Per-query × per-lane artifact for CI.
    let mut tsv = String::from("query");
    for (d, c, o) in LANES {
        let _ = write!(tsv, "\tdop{d}_c{c}_o{o}");
    }
    tsv.push('\n');
    let mut passing = 0;
    for (name, lanes) in &matrix {
        let all = lanes.iter().all(|&b| b);
        passing += usize::from(all);
        tsv.push_str(name);
        for &ok in lanes {
            tsv.push_str(if ok { "\tpass" } else { "\tFAIL" });
        }
        tsv.push('\n');
    }
    let artifact = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/tpch_pass_matrix.tsv");
    std::fs::write(&artifact, &tsv).unwrap();

    println!("{passing} of {} pass", matrix.len());
    println!("{tsv}");
    for f in &failures {
        println!("----\n{f}");
    }
    assert!(
        passing >= FLOOR,
        "{passing} of {} TPC-H queries pass; committed floor is {FLOOR}",
        matrix.len()
    );
}
