//! Chaos differential suite — the robustness capstone.
//!
//! Runs hundreds of randomized statements (scans, spilling joins and
//! aggregations, DML, checkpoints, DOP 1/4, statement timeouts) against a
//! database whose simulated disk injects transient read/write errors and
//! corruption, while a helper thread randomly KILLs running queries.
//! Every execution must either return the exact fault-free answer
//! (checked against an unfaulted mirror database running the same
//! statement stream) or surface a *typed* `VwError` — never a panic,
//! never a hang, never a leaked resource.
//!
//! After every statement the suite asserts the global memory-budget gauge
//! is fully uncharged and (for read-only statements) that the disk holds
//! exactly the blocks it held before — spill chunks from interrupted
//! queries must not survive. At the end it checks the full table contents
//! still match the mirror and that the process thread count returned to
//! its post-warmup baseline, i.e. no worker or watchdog thread leaked.
//!
//! The run is deterministic per seed. Set `VW_CHAOS_SEED` to reproduce a
//! failure; the seed in use is printed at the start of the run. The whole
//! suite runs under a watchdog: if the statement loop wedges, the test
//! fails within its own deadline instead of hanging CI.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vectorwise::common::{ColData, EngineConfig, FaultConfig, VwError};
use vectorwise::core::monitor::QueryState;
use vectorwise::core::{bulk_load, Database, QueryResult};
use vectorwise::exec::MemBudget;
use vectorwise::storage::SimulatedDisk;

/// Total chaotic statement executions (the acceptance floor is 200).
const ITERATIONS: usize = 220;
/// Whole-suite deadline enforced by the harness watchdog.
const SUITE_DEADLINE: Duration = Duration::from_secs(240);
const DEFAULT_SEED: u64 = 0x5EED_CA05;

fn chaos_seed() -> u64 {
    match std::env::var("VW_CHAOS_SEED") {
        Ok(s) => s.trim().parse().unwrap_or_else(|_| panic!("bad VW_CHAOS_SEED: {s:?}")),
        Err(_) => DEFAULT_SEED,
    }
}

/// Current thread count of this process, from /proc/self/status.
fn live_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line in /proc/self/status")
}

/// Rows of a result as a sorted multiset of debug-printed tuples, so
/// results compare independent of output order (DOP 4 reorders rows).
fn row_set(r: &QueryResult) -> Vec<String> {
    let mut v: Vec<String> = r.rows().iter().map(|row| format!("{row:?}")).collect();
    v.sort();
    v
}

fn load_tables(db: &Arc<Database>) {
    db.execute("CREATE TABLE t1 (k BIGINT NOT NULL, v BIGINT NOT NULL)").unwrap();
    db.execute("CREATE TABLE t2 (k BIGINT NOT NULL, w BIGINT NOT NULL)").unwrap();
    let n1 = 6000i64;
    let k1 = ColData::I64((0..n1).map(|i| i % 101).collect());
    let v1 = ColData::I64((0..n1).map(|i| (i * 37) % 1000).collect());
    bulk_load(db, "t1", &[k1, v1], &[None, None]).unwrap();
    let n2 = 3000i64;
    let k2 = ColData::I64((0..n2).map(|i| i % 101).collect());
    let w2 = ColData::I64((0..n2).map(|i| i % 10).collect());
    bulk_load(db, "t2", &[k2, w2], &[None, None]).unwrap();
}

/// One randomized statement. `dml` marks statements that mutate `t1` and
/// must be replayed on the mirror when (and only when) the chaotic
/// execution succeeded; `chaos_only` marks statements (CHECKPOINT, SET)
/// that have no answer to compare.
struct Stmt {
    sql: String,
    dml: bool,
    chaos_only: bool,
    /// Run the statement with a racing KILL thread.
    kill: bool,
    /// Run the statement under a tiny statement timeout.
    timeout: bool,
}

fn pick_statement(rng: &mut SmallRng) -> Stmt {
    let roll = rng.gen_range(0..100u32);
    let (sql, dml, chaos_only) = match roll {
        0..=13 => ("SELECT COUNT(*), SUM(v) FROM t1".to_string(), false, false),
        14..=27 => {
            let m = rng.gen_range(3..10i64);
            let c = rng.gen_range(0..m);
            (format!("SELECT COUNT(*) FROM t1 WHERE v % {m} = {c}"), false, false)
        }
        28..=41 => {
            ("SELECT COUNT(*), SUM(a.v) FROM t1 a JOIN t2 b ON a.k = b.k".to_string(), false, false)
        }
        42..=53 => ("SELECT MAX(v) FROM t1 GROUP BY k".to_string(), false, false),
        54..=65 => {
            let c = rng.gen_range(0..5i64);
            (
                format!("SELECT COUNT(*) FROM t1 a JOIN t1 b ON a.k = b.k WHERE a.v % 5 = {c}"),
                false,
                false,
            )
        }
        66..=73 => {
            let k = rng.gen_range(0..101i64);
            let v = rng.gen_range(0..1000i64);
            let k2 = rng.gen_range(0..101i64);
            let v2 = rng.gen_range(0..1000i64);
            (format!("INSERT INTO t1 VALUES ({k}, {v}), ({k2}, {v2})"), true, false)
        }
        74..=81 => {
            let d = rng.gen_range(1..50i64);
            let kk = rng.gen_range(0..101i64);
            (format!("UPDATE t1 SET v = v + {d} WHERE k = {kk}"), true, false)
        }
        82..=89 => {
            let c = rng.gen_range(0..53i64);
            (format!("DELETE FROM t1 WHERE v % 53 = {c}"), true, false)
        }
        _ => ("CHECKPOINT t1".to_string(), false, true),
    };
    // Only read-only statements race a KILL or a timeout: a half-applied
    // DML would make the differential ambiguous (KILL-vs-DML races are
    // covered separately in tests/robustness.rs).
    let killable = !dml && !chaos_only;
    Stmt {
        sql,
        dml,
        chaos_only,
        kill: killable && rng.gen_bool(0.2),
        timeout: killable && rng.gen_bool(0.1),
    }
}

/// Execute `sql` on the chaotic database, optionally with a racing KILL
/// issued from a helper thread. The helper is always joined before this
/// returns, so it can never touch a later statement.
fn run_chaotic(
    db: &Arc<Database>,
    sql: &str,
    kill: bool,
    delay_us: u64,
) -> Result<QueryResult, VwError> {
    let killer = kill.then(|| {
        let kdb = db.clone();
        std::thread::spawn(move || {
            for _ in 0..200 {
                if let Some(q) =
                    kdb.monitor.list_queries().iter().find(|q| q.state == QueryState::Running)
                {
                    std::thread::sleep(Duration::from_micros(delay_us));
                    // The query may have finished while we slept; a clean
                    // Exec error ("not running") is the expected outcome.
                    let _ = kdb.kill(q.id);
                    return;
                }
                std::thread::sleep(Duration::from_micros(500));
            }
        })
    });
    let out = db.execute(sql);
    if let Some(h) = killer {
        h.join().expect("killer thread panicked");
    }
    out
}

#[test]
fn chaos_differential() {
    let seed = chaos_seed();
    println!("chaos seed: {seed} (set VW_CHAOS_SEED={seed} to reproduce)");

    // The statement loop runs in a worker thread; the test thread is the
    // suite watchdog. A wedged query (the one failure mode cooperative
    // cancellation cannot survive) fails the suite instead of hanging it.
    let (done_tx, done_rx) = mpsc::channel::<()>();
    let worker = std::thread::Builder::new()
        .name("vw-chaos-driver".into())
        .spawn(move || {
            chaos_body(seed);
            let _ = done_tx.send(());
        })
        .unwrap();
    match done_rx.recv_timeout(SUITE_DEADLINE) {
        Ok(()) => worker.join().expect("chaos worker panicked"),
        Err(_) => {
            // Join would hang too; abort carries the diagnostic out.
            eprintln!("chaos suite wedged after {SUITE_DEADLINE:?} (seed {seed}) — aborting");
            std::process::abort();
        }
    }
}

fn chaos_body(seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);

    // Chaotic database: transient faults on every device op, plus a tiny
    // buffer pool so scans actually reach the faulted device instead of
    // being absorbed by the cache. Probabilities are low enough that the
    // bounded retry (MAX_IO_RETRIES) absorbs almost every fault; the rare
    // exhaustion must surface as a typed Io error.
    let faults = FaultConfig {
        seed: seed ^ 0xD15C_FA11,
        read_err: 0.02,
        write_err: 0.02,
        corrupt: 0.02,
        ..Default::default()
    };
    let mut cfg = EngineConfig::default().with_faults(faults);
    cfg.buffer_pool_bytes = 64 * 1024;
    let chaos = Database::open_with(cfg, SimulatedDisk::instant());
    assert!(chaos.disk().faults_armed());

    // Fault-free mirror: the oracle for every answer and for the final
    // table image.
    let mirror = Database::open_in_memory();
    load_tables(&chaos);
    load_tables(&mirror);

    // Warm up the parallel machinery once, then take the thread baseline:
    // everything spawned per-query after this point must be joined again.
    chaos.execute("SET parallelism = 4").unwrap();
    chaos.execute("SELECT COUNT(*) FROM t1 a JOIN t2 b ON a.k = b.k").unwrap();
    let thread_baseline = live_threads();

    let (mut ok, mut cancelled, mut io_errs) = (0u32, 0u32, 0u32);
    for iter in 0..ITERATIONS {
        // Random execution knobs, chaos side only (the mirror's answers
        // do not depend on DOP or spilling).
        let dop = if rng.gen_bool(0.5) { 1 } else { 4 };
        chaos.execute(&format!("SET parallelism = {dop}")).unwrap();
        let budget = [65_536usize, 1 << 20, 1 << 30][rng.gen_range(0..3usize)];
        chaos.execute(&format!("SET mem_budget = {budget}")).unwrap();

        let stmt = pick_statement(&mut rng);
        if stmt.timeout {
            chaos.execute("SET statement_timeout = 5").unwrap();
        }
        let disk_before = chaos.disk().used_bytes();
        let kill_delay = rng.gen_range(0..3000u64);
        let res = run_chaotic(&chaos, &stmt.sql, stmt.kill, kill_delay);
        if stmt.timeout {
            chaos.execute("SET statement_timeout = 0").unwrap();
        }

        match res {
            Ok(r) => {
                ok += 1;
                if stmt.chaos_only {
                    // CHECKPOINT rewrites packs; no answer to compare.
                } else {
                    let m = mirror.execute(&stmt.sql).unwrap_or_else(|e| {
                        panic!("mirror failed fault-free on {:?}: {e}", stmt.sql)
                    });
                    if stmt.dml {
                        // DML answers are row counts; equality of effects is
                        // checked by every later read and the final image.
                        let _ = m;
                    } else {
                        assert_eq!(
                            row_set(&r),
                            row_set(&m),
                            "iter {iter}: {:?} diverged from the fault-free mirror (seed {seed})",
                            stmt.sql
                        );
                    }
                }
            }
            Err(e) => {
                // A failed chaotic DML must not be replayed on the mirror;
                // the engine rolled it back, so the tables stay in sync.
                let msg = format!("{e}");
                assert!(
                    !msg.to_lowercase().contains("panic"),
                    "iter {iter}: error leaked a panic: {msg}"
                );
                match e {
                    VwError::Cancelled => cancelled += 1,
                    VwError::Io { .. } => io_errs += 1,
                    other => panic!(
                        "iter {iter}: {:?} surfaced unexpected error {other} (seed {seed})",
                        stmt.sql
                    ),
                }
            }
        }

        // Per-statement reclamation invariants.
        assert_eq!(
            MemBudget::global_in_use(),
            0,
            "iter {iter}: memory budget still charged after {:?} (seed {seed})",
            stmt.sql
        );
        if !stmt.dml && !stmt.chaos_only {
            assert_eq!(
                chaos.disk().used_bytes(),
                disk_before,
                "iter {iter}: read-only {:?} leaked disk blocks (seed {seed})",
                stmt.sql
            );
        }
    }
    println!(
        "chaos: {ITERATIONS} executions — {ok} ok, {cancelled} cancelled, {io_errs} io errors"
    );
    assert!(ok as usize > ITERATIONS / 2, "chaos should mostly succeed: only {ok} ok");

    // Final differential: the full table image survived every fault, KILL
    // and rollback identically on both sides.
    chaos.execute("SET parallelism = 1").unwrap();
    chaos.execute("SET mem_budget = 0").unwrap();
    for probe in [
        "SELECT k, v FROM t1",
        "SELECT COUNT(*), SUM(v) FROM t1",
        "SELECT MAX(v) FROM t1 GROUP BY k",
    ] {
        let c = chaos.execute(probe).unwrap_or_else(|e| {
            // One retry: the final probe itself can (rarely) exhaust
            // retries on the still-faulted device.
            if matches!(e, VwError::Io { .. }) {
                chaos.execute(probe).expect("final probe failed twice")
            } else {
                panic!("final probe failed: {e}")
            }
        });
        let m = mirror.execute(probe).unwrap();
        assert_eq!(row_set(&c), row_set(&m), "final image diverged on {probe:?} (seed {seed})");
    }

    // The faulted device was genuinely exercised, and retries absorbed
    // faults rather than queries merely never hitting the disk.
    let stats = chaos.disk().stats();
    assert!(stats.faults_injected > 0, "no faults fired — chaos was a no-op");
    assert!(stats.io_retries > 0, "faults fired but nothing retried");

    // No worker, exchange, killer or watchdog thread leaked.
    let mut threads = live_threads();
    for _ in 0..100 {
        if threads <= thread_baseline {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        threads = live_threads();
    }
    assert!(
        threads <= thread_baseline,
        "leaked threads: {threads} live vs baseline {thread_baseline} (seed {seed})"
    );
    assert_eq!(MemBudget::global_in_use(), 0, "memory budget charged at suite end");
}
