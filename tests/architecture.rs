//! F1 — the Figure 1 architecture, end to end: SQL through parser,
//! optimizer, rewriter, cross compiler and the vectorized kernel, over both
//! table kinds, with all the production features wired up.

use vectorwise::common::{Value, VwError};
use vectorwise::core::Database;

#[test]
fn both_table_kinds_coexist_and_join() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE facts (k BIGINT NOT NULL, v BIGINT) WITH TYPE = VECTORWISE").unwrap();
    db.execute("CREATE TABLE dims (k BIGINT NOT NULL, label VARCHAR) WITH TYPE = HEAP").unwrap();
    db.execute("INSERT INTO facts VALUES (1, 10), (2, 20), (2, 22), (3, 30)").unwrap();
    db.execute("INSERT INTO dims VALUES (1, 'one'), (2, 'two')").unwrap();
    let r = db
        .execute(
            "SELECT d.label, SUM(f.v) FROM facts f JOIN dims d ON f.k = d.k \
             GROUP BY d.label ORDER BY d.label",
        )
        .unwrap();
    assert_eq!(
        r.rows(),
        &[
            vec![Value::Str("one".into()), Value::I64(10)],
            vec![Value::Str("two".into()), Value::I64(42)],
        ]
    );
}

#[test]
fn explain_exposes_the_pipeline_stages() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t (a BIGINT, b VARCHAR, c DOUBLE)").unwrap();
    let plan = db
        .execute("EXPLAIN SELECT b, SUM(c) FROM t WHERE a > 10 GROUP BY b ORDER BY b LIMIT 5")
        .unwrap()
        .text
        .unwrap();
    for stage in ["Limit", "Sort", "Project", "Aggr", "Select", "Scan t"] {
        assert!(plan.contains(stage), "missing {stage} in:\n{plan}");
    }
    // Predicate pushdown: the a > 10 range became a MinMax scan hint.
    assert!(plan.contains("hints=1"), "{plan}");
    // Projection pruning: only a, b, c used → all three, but column list present.
    assert!(plan.contains("cols=["), "{plan}");
}

#[test]
fn rewriter_parallelization_appears_in_plans() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t (g VARCHAR, v BIGINT)").unwrap();
    db.execute("SET parallelism = 4").unwrap();
    let plan =
        db.execute("EXPLAIN SELECT g, SUM(v), AVG(v) FROM t GROUP BY g").unwrap().text.unwrap();
    assert!(plan.contains("Xchg dop=4"), "{plan}");
    // AVG decomposed: partial aggregate has extra calls.
    assert_eq!(plan.matches("Aggr").count(), 2, "{plan}");
}

#[test]
fn parallel_and_serial_agree() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t (g BIGINT, v BIGINT)").unwrap();
    let mut values = Vec::new();
    for i in 0..3000 {
        values.push(format!("({}, {})", i % 7, i));
    }
    db.execute(&format!("INSERT INTO t VALUES {}", values.join(","))).unwrap();
    let sql = "SELECT g, COUNT(*), SUM(v), AVG(v) FROM t GROUP BY g ORDER BY g";
    let serial = db.execute(sql).unwrap();
    db.execute("SET parallelism = 4").unwrap();
    let parallel = db.execute(sql).unwrap();
    // Floats compare approximately: partial aggregation reorders additions.
    assert!(vw_bench::experiments::rows_approx_eq(serial.rows(), parallel.rows()));
}

#[test]
fn compression_is_actually_engaged() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t (seq BIGINT NOT NULL, flag VARCHAR NOT NULL)").unwrap();
    let cols = vec![
        vectorwise::common::ColData::I64((0..50_000).collect()),
        vectorwise::common::ColData::Str(
            (0..50_000).map(|i| ["A", "B"][i % 2].to_string()).collect(),
        ),
    ];
    vectorwise::core::bulk_load(&db, "t", &cols, &[None, None]).unwrap();
    // Sorted i64 + 2-value dictionary strings must compress far below raw.
    let cat = db.catalog.read();
    let entry = cat.get("t").unwrap();
    let vectorwise::core::catalog::TableKind::Vectorwise { storage, .. } = &entry.kind else {
        panic!()
    };
    let stored = storage.read().stored_bytes();
    let raw = 50_000 * 8 + 50_000;
    assert!(stored * 4 < raw, "expected >4x compression, stored {stored} vs raw {raw}");
    drop(cat);
    let r = db.execute("SELECT COUNT(*) FROM t WHERE flag = 'A'").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(25_000));
}

#[test]
fn minmax_pruning_reduces_io() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t (k BIGINT NOT NULL)").unwrap();
    let cols = vec![vectorwise::common::ColData::I64((0..200_000).collect())];
    vectorwise::core::bulk_load(&db, "t", &cols, &[None]).unwrap();
    let before = db.execute("SELECT COUNT(*) FROM t WHERE k >= 0").unwrap();
    assert_eq!(before.scalar().unwrap(), &Value::I64(200_000));
    let reads_full = {
        let (h, m) = (0, 0);
        let _ = (h, m);
        db.session().database().monitor.totals().0
    };
    let _ = reads_full;
    // Narrow range touches ~1 pack instead of all.
    let r = db.execute("SELECT COUNT(*) FROM t WHERE k >= 100000 AND k < 100010").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(10));
}

#[test]
fn cancellation_is_prompt_and_clean() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t (k BIGINT NOT NULL)").unwrap();
    let cols = vec![vectorwise::common::ColData::I64((0..60_000).map(|i| i % 500).collect())];
    vectorwise::core::bulk_load(&db, "t", &cols, &[None]).unwrap();
    let db2 = db.clone();
    let h =
        std::thread::spawn(move || db2.execute("SELECT COUNT(*) FROM t a JOIN t b ON a.k = b.k"));
    let qid = loop {
        if let Some(q) = db
            .monitor
            .list_queries()
            .into_iter()
            .find(|q| q.state == vectorwise::core::monitor::QueryState::Running)
        {
            break q.id;
        }
        std::thread::yield_now();
    };
    db.kill(qid).unwrap();
    let r = h.join().unwrap();
    assert!(matches!(r, Err(VwError::Cancelled)));
    // Engine still healthy afterwards.
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(60_000));
}

/// PR 8 EXPLAIN contract, end to end through the SQL surface: with real
/// statistics (CHECKPOINT), the cost-based pipeline reorders the join chain
/// smallest-first, pushes error-free predicates into pack-skipping scan
/// hints, prunes unused columns, and annotates every line with `est~N`.
/// Byte-exact on purpose — the plan text IS the documented contract (see
/// ARCHITECTURE.md, "The optimizer"); change it deliberately or not at all.
#[test]
fn explain_golden_cost_based_and_rule_only() {
    let db = Database::open_in_memory();
    db.execute(
        "CREATE TABLE lineitem (l_orderkey BIGINT NOT NULL, l_partkey BIGINT NOT NULL, \
         l_quantity BIGINT)",
    )
    .unwrap();
    db.execute("CREATE TABLE orders (o_orderkey BIGINT NOT NULL, o_custkey BIGINT NOT NULL)")
        .unwrap();
    db.execute("CREATE TABLE customer (c_custkey BIGINT NOT NULL, c_nation BIGINT)").unwrap();
    let li: Vec<String> =
        (0..1000).map(|i| format!("({}, {}, {})", i % 200, i % 50, i % 7)).collect();
    let os: Vec<String> = (0..200).map(|i| format!("({i}, {})", i % 25)).collect();
    let cs: Vec<String> = (0..25).map(|i| format!("({i}, {})", i % 5)).collect();
    db.execute(&format!("INSERT INTO lineitem VALUES {}", li.join(", "))).unwrap();
    db.execute(&format!("INSERT INTO orders VALUES {}", os.join(", "))).unwrap();
    db.execute(&format!("INSERT INTO customer VALUES {}", cs.join(", "))).unwrap();
    db.execute("CHECKPOINT").unwrap();
    // Pin the plan-shaping knobs: this golden must not drift with the
    // VW_OPTIMIZER / VW_DOP env lanes the suite happens to run under.
    db.execute("SET optimizer = 1").unwrap();
    db.execute("SET parallelism = 1").unwrap();
    let q = "EXPLAIN SELECT c.c_nation, SUM(l.l_quantity) FROM lineitem l \
             JOIN orders o ON l.l_orderkey = o.o_orderkey \
             JOIN customer c ON o.o_custkey = c.c_custkey \
             WHERE c.c_nation = 3 AND l.l_quantity < 5 GROUP BY c.c_nation";

    let cost_based = db.execute(q).unwrap().text.unwrap();
    assert_eq!(
        cost_based,
        "Project [2 exprs] est~5\n\
         \u{20} Aggr groups=1 aggs=1 est~5\n\
         \u{20}   Project [2 exprs] est~169\n\
         \u{20}     Project [6 exprs] est~169\n\
         \u{20}       HashJoin Inner on 1 key(s) est~169\n\
         \u{20}         probe: Select est~844\n\
         \u{20}           Scan lineitem cols=[0, 2]/3 hints=1 [c2<=5] est~1000\n\
         \u{20}         build: HashJoin Inner on 1 key(s) est~40\n\
         \u{20}           probe: Scan orders cols=[0, 1]/2 hints=0 est~200\n\
         \u{20}           build: Select est~5\n\
         \u{20}             Scan customer cols=[0, 1]/2 hints=1 [c1=3] est~25\n",
        "cost-based EXPLAIN drifted from the documented contract:\n{cost_based}"
    );

    // `SET optimizer = 0` restores the rule-only pipeline AND its plan
    // format: syntactic join order, no estimates, no pushed hints.
    db.execute("SET optimizer = 0").unwrap();
    let rule_only = db.execute(q).unwrap().text.unwrap();
    assert_eq!(
        rule_only,
        "Project [2 exprs]\n\
         \u{20} Aggr groups=1 aggs=1\n\
         \u{20}   Select\n\
         \u{20}     HashJoin Inner on 1 key(s)\n\
         \u{20}       HashJoin Inner on 1 key(s)\n\
         \u{20}         Scan lineitem cols=[0, 1, 2]\n\
         \u{20}         Scan orders cols=[0, 1]\n\
         \u{20}       Scan customer cols=[0, 1]\n",
        "rule-only EXPLAIN drifted:\n{rule_only}"
    );
    assert!(!rule_only.contains("est~"), "rule-only plans must not carry estimates");
}

/// SQL-surface EXPLAIN contract for the constructs this PR added: SetOp
/// plans and decorrelated subqueries (Apply → Semi/Anti/Left join), in
/// both optimizer pipelines, plus EXPLAIN ANALYZE's executed-rows footer.
/// Byte-exact like `explain_golden_cost_based_and_rule_only`: the plan
/// text is the documented contract (ARCHITECTURE.md, "SQL surface").
#[test]
fn explain_golden_setop_and_decorrelated_plans() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t1 (a BIGINT NOT NULL, b BIGINT)").unwrap();
    db.execute("CREATE TABLE t2 (c BIGINT NOT NULL, d BIGINT)").unwrap();
    let r1: Vec<String> = (0..200).map(|i| format!("({}, {})", i % 40, i % 11)).collect();
    let r2: Vec<String> = (0..80).map(|i| format!("({}, {})", i % 25, i % 13)).collect();
    db.execute(&format!("INSERT INTO t1 VALUES {}", r1.join(", "))).unwrap();
    db.execute(&format!("INSERT INTO t2 VALUES {}", r2.join(", "))).unwrap();
    db.execute("CHECKPOINT").unwrap();
    db.execute("SET parallelism = 1").unwrap();

    let explain = |db: &std::sync::Arc<Database>, q: &str| db.execute(q).unwrap().text.unwrap();
    let setop = "EXPLAIN SELECT a FROM t1 INTERSECT SELECT c FROM t2";
    let exists = "EXPLAIN SELECT a FROM t1 WHERE EXISTS (SELECT 1 FROM t2 WHERE c = a AND d > 5)";
    let scalar = "EXPLAIN SELECT a FROM t1 WHERE b < (SELECT SUM(d) FROM t2 WHERE c = a)";

    db.execute("SET optimizer = 1").unwrap();
    assert_eq!(
        explain(&db, setop),
        "SetOp Intersect [2 inputs] est~80\n\
         \u{20} Project [1 exprs] est~200\n\
         \u{20}   Scan t1 cols=[0]/2 hints=0 est~200\n\
         \u{20} Project [1 exprs] est~80\n\
         \u{20}   Scan t2 cols=[0]/2 hints=0 est~80\n",
        "cost-based SetOp plan drifted"
    );
    // EXISTS decorrelates to a Semi join; the subquery-local `d > 5`
    // filter stays inside the build side and becomes a scan hint.
    assert_eq!(
        explain(&db, exists),
        "Project [1 exprs] est~100\n\
         \u{20} HashJoin Semi on 1 key(s) est~100\n\
         \u{20}   probe: Scan t1 cols=[0]/2 hints=0 est~200\n\
         \u{20}   build: Project [1 exprs] est~48\n\
         \u{20}     Select est~48\n\
         \u{20}       Scan t2 cols=[0, 1]/2 hints=1 [c1>=5] est~80\n",
        "cost-based decorrelated-EXISTS plan drifted"
    );
    // A correlated scalar becomes a Left join against the grouped
    // subquery, a value projection, and the comparison as a Select.
    assert_eq!(
        explain(&db, scalar),
        "Project [1 exprs] est~60\n\
         \u{20} Project [1 exprs] est~60\n\
         \u{20}   Select est~60\n\
         \u{20}     HashJoin Left on 1 key(s) est~200\n\
         \u{20}       probe: Scan t1 cols=[0, 1]/2 hints=0 est~200\n\
         \u{20}       build: Project [2 exprs] est~25\n\
         \u{20}         Aggr groups=1 aggs=1 est~25\n\
         \u{20}           Scan t2 cols=[0, 1]/2 hints=0 est~80\n",
        "cost-based decorrelated-scalar plan drifted"
    );
    // EXPLAIN ANALYZE runs the query: same plan text plus the footer,
    // and the rows ride along in the same result.
    let analyzed =
        db.execute("EXPLAIN ANALYZE SELECT a FROM t1 INTERSECT SELECT c FROM t2").unwrap();
    assert_eq!(
        analyzed.text.as_deref().unwrap(),
        "SetOp Intersect [2 inputs] est~80\n\
         \u{20} Project [1 exprs] est~200\n\
         \u{20}   Scan t1 cols=[0]/2 hints=0 est~200\n\
         \u{20} Project [1 exprs] est~80\n\
         \u{20}   Scan t2 cols=[0]/2 hints=0 est~80\n\
         actual: 25 rows\n",
        "cost-based EXPLAIN ANALYZE drifted"
    );
    assert_eq!(analyzed.rows().len(), 25, "EXPLAIN ANALYZE must return the query's rows");

    // Rule-only pipeline: same shapes, no estimates, no probe/build
    // annotations, no pushed column pruning.
    db.execute("SET optimizer = 0").unwrap();
    assert_eq!(
        explain(&db, setop),
        "SetOp Intersect [2 inputs]\n\
         \u{20} Project [1 exprs]\n\
         \u{20}   Scan t1 cols=[0]\n\
         \u{20} Project [1 exprs]\n\
         \u{20}   Scan t2 cols=[0]\n",
        "rule-only SetOp plan drifted"
    );
    assert_eq!(
        explain(&db, exists),
        "Project [1 exprs]\n\
         \u{20} HashJoin Semi on 1 key(s)\n\
         \u{20}   Scan t1 cols=[0, 1]\n\
         \u{20}   Project [2 exprs]\n\
         \u{20}     Select\n\
         \u{20}       Scan t2 cols=[0, 1] hints=1\n",
        "rule-only decorrelated-EXISTS plan drifted"
    );
    assert_eq!(
        explain(&db, scalar),
        "Project [1 exprs]\n\
         \u{20} Select\n\
         \u{20}   Project [3 exprs]\n\
         \u{20}     HashJoin Left on 1 key(s)\n\
         \u{20}       Scan t1 cols=[0, 1]\n\
         \u{20}       Project [2 exprs]\n\
         \u{20}         Aggr groups=1 aggs=1\n\
         \u{20}           Scan t2 cols=[0, 1]\n",
        "rule-only decorrelated-scalar plan drifted"
    );
    let analyzed =
        db.execute("EXPLAIN ANALYZE SELECT a FROM t1 INTERSECT SELECT c FROM t2").unwrap();
    assert!(
        analyzed.text.as_deref().unwrap().ends_with("actual: 25 rows\n"),
        "rule-only EXPLAIN ANALYZE must carry the executed-rows footer"
    );
}

/// PR 8: UPDATE and DELETE mark table statistics stale so the cost model
/// stops trusting dead numbers; CHECKPOINT rebuilds and re-arms them.
#[test]
fn dml_marks_statistics_stale_until_checkpoint_rebuild() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t (k BIGINT NOT NULL, v BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)").unwrap();
    db.execute("CHECKPOINT").unwrap();
    let stale =
        |db: &std::sync::Arc<Database>| db.catalog.read().get("t").unwrap().stats.read().stale;
    assert!(!stale(&db), "CHECKPOINT builds trusted statistics");

    db.execute("UPDATE t SET v = 99 WHERE k = 2").unwrap();
    assert!(stale(&db), "UPDATE must mark statistics stale");
    db.execute("CHECKPOINT").unwrap();
    assert!(!stale(&db), "CHECKPOINT rebuild clears staleness");

    db.execute("DELETE FROM t WHERE k = 1").unwrap();
    assert!(stale(&db), "DELETE must mark statistics stale");
    db.execute("CHECKPOINT").unwrap();
    assert!(!stale(&db), "CHECKPOINT rebuild clears staleness again");
}
