//! SQL semantics the paper calls treacherous: NULL three-valued logic,
//! anti-join NULL intricacies, error detection, and the function battery.

use std::sync::Arc;
use vectorwise::common::{Value, VwError};
use vectorwise::core::Database;

fn db_with(ddl: &str, inserts: &[&str]) -> Arc<Database> {
    let db = Database::open_in_memory();
    db.execute(ddl).unwrap();
    for i in inserts {
        db.execute(i).unwrap();
    }
    db
}

#[test]
fn not_in_with_null_semantics() {
    // The paper: "intricacies of the SQL semantics of anti-joins".
    let db = db_with(
        "CREATE TABLE l (x BIGINT); CREATE TABLE r (y BIGINT)",
        &["INSERT INTO l VALUES (1), (2), (NULL)", "INSERT INTO r VALUES (1), (NULL)"],
    );
    // r contains NULL → NOT IN yields no rows at all.
    let r = db.execute("SELECT x FROM l WHERE x NOT IN (SELECT y FROM r)").unwrap();
    assert_eq!(r.rows().len(), 0, "NOT IN against a NULL-bearing set is empty");

    // Remove the NULL → 2 qualifies, NULL probe is dropped.
    let db = db_with(
        "CREATE TABLE l (x BIGINT); CREATE TABLE r (y BIGINT)",
        &["INSERT INTO l VALUES (1), (2), (NULL)", "INSERT INTO r VALUES (1)"],
    );
    let r = db.execute("SELECT x FROM l WHERE x NOT IN (SELECT y FROM r)").unwrap();
    assert_eq!(r.rows(), &[vec![Value::I64(2)]]);

    // Empty set → everything qualifies, NULL probes included.
    let db = db_with(
        "CREATE TABLE l (x BIGINT); CREATE TABLE r (y BIGINT)",
        &["INSERT INTO l VALUES (1), (NULL)"],
    );
    let r = db.execute("SELECT COUNT(*) FROM l WHERE x NOT IN (SELECT y FROM r)").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(2));

    // NOT EXISTS differs: NULLs don't poison it.
    let db = db_with(
        "CREATE TABLE l (x BIGINT); CREATE TABLE r (y BIGINT)",
        &["INSERT INTO l VALUES (1), (2)", "INSERT INTO r VALUES (1), (NULL)"],
    );
    let r = db.execute("SELECT COUNT(*) FROM l WHERE NOT EXISTS (SELECT y FROM r)").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(0), "r is nonempty");
}

#[test]
fn three_valued_logic_in_where() {
    let db = db_with("CREATE TABLE t (x BIGINT)", &["INSERT INTO t VALUES (1), (NULL), (3)"]);
    // NULL comparisons drop rows...
    let r = db.execute("SELECT COUNT(*) FROM t WHERE x > 0").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(2));
    // ...NOT(NULL) stays NULL (dropped)...
    let r = db.execute("SELECT COUNT(*) FROM t WHERE NOT (x > 0)").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(0));
    // ...IS NULL sees them.
    let r = db.execute("SELECT COUNT(*) FROM t WHERE x IS NULL").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(1));
    // Aggregates skip NULLs; COUNT(*) does not.
    let r = db.execute("SELECT COUNT(x), COUNT(*), SUM(x), AVG(x) FROM t").unwrap();
    assert_eq!(r.rows()[0], vec![Value::I64(2), Value::I64(3), Value::I64(4), Value::F64(2.0)]);
}

#[test]
fn error_detection_is_exact_not_approximate() {
    let db = db_with(
        "CREATE TABLE t (x BIGINT, y BIGINT)",
        &["INSERT INTO t VALUES (10, 2), (20, 0), (30, 5)"],
    );
    // Division by zero in row 2 must fail the query...
    assert!(matches!(db.execute("SELECT x / y FROM t"), Err(VwError::DivideByZero)));
    // ...but not when the filter removes the offending row first (lazy
    // vectorized checking must respect selection vectors).
    let r = db.execute("SELECT x / y FROM t WHERE y <> 0 ORDER BY 1").unwrap();
    assert_eq!(r.rows(), &[vec![Value::I64(5)], vec![Value::I64(6)]]);
    // Division by NULL is NULL, not an error.
    db.execute("INSERT INTO t VALUES (40, NULL)").unwrap();
    let r = db.execute("SELECT x / y FROM t WHERE x = 40").unwrap();
    assert!(r.rows()[0][0].is_null());
    // Overflow detection.
    db.execute("INSERT INTO t VALUES (9223372036854775807, 1)").unwrap();
    assert!(matches!(db.execute("SELECT x * 2 FROM t"), Err(VwError::Overflow(_))));
    // Invalid function parameters.
    let db2 = db_with("CREATE TABLE s (v VARCHAR)", &["INSERT INTO s VALUES ('abc')"]);
    assert!(matches!(db2.execute("SELECT SUBSTR(v, 0) FROM s"), Err(VwError::InvalidParameter(_))));
    assert!(matches!(db2.execute("SELECT SQRT(-1.0)"), Err(VwError::InvalidParameter(_))));
}

#[test]
fn function_battery() {
    let db = Database::open_in_memory();
    let checks: Vec<(&str, Value)> = vec![
        ("SELECT UPPER('hello')", Value::Str("HELLO".into())),
        ("SELECT LOWER('WORLD')", Value::Str("world".into())),
        ("SELECT LENGTH('héllo')", Value::I64(5)),
        ("SELECT SUBSTR('vectorwise', 7, 4)", Value::Str("wise".into())),
        ("SELECT CONCAT('x100', '->vw')", Value::Str("x100->vw".into())),
        ("SELECT TRIM('  pad  ')", Value::Str("pad".into())),
        ("SELECT REPLACE('a-b-c', '-', '+')", Value::Str("a+b+c".into())),
        ("SELECT ABS(-42)", Value::I64(42)),
        ("SELECT SQRT(9.0)", Value::F64(3.0)),
        ("SELECT FLOOR(2.7)", Value::F64(2.0)),
        ("SELECT CEIL(2.1)", Value::F64(3.0)),
        ("SELECT ROUND(2.5)", Value::F64(3.0)),
        ("SELECT COALESCE(NULL, NULL, 5)", Value::I64(5)),
        ("SELECT IFNULL(NULL, 'dflt')", Value::Str("dflt".into())),
        ("SELECT NULLIF(7, 7)", Value::Null),
        ("SELECT NULLIF(7, 8)", Value::I64(7)),
        ("SELECT GREATEST(3, 9, 5)", Value::I64(9)),
        ("SELECT LEAST(3, 9, 5)", Value::I64(3)),
        ("SELECT SIGN(-12)", Value::I64(-1)),
        ("SELECT EXTRACT(YEAR FROM DATE '1996-03-13')", Value::I64(1996)),
        ("SELECT EXTRACT(QUARTER FROM DATE '1996-05-01')", Value::I64(2)),
        ("SELECT DATEDIFF(DATE '1996-03-13', DATE '1996-03-01')", Value::I64(12)),
        ("SELECT CAST('42' AS BIGINT)", Value::I64(42)),
        ("SELECT CAST(3.9 AS BIGINT)", Value::I64(4)),
        (
            "SELECT CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' ELSE 'c' END",
            Value::Str("b".into()),
        ),
    ];
    for (sql, expected) in checks {
        let r = db.execute(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        assert_eq!(r.scalar().unwrap(), &expected, "{sql}");
    }
}

#[test]
fn like_and_in_lists() {
    let db = db_with(
        "CREATE TABLE t (s VARCHAR, n BIGINT)",
        &["INSERT INTO t VALUES ('apple', 1), ('apricot', 2), ('banana', 3), (NULL, 4)"],
    );
    let r = db.execute("SELECT COUNT(*) FROM t WHERE s LIKE 'ap%'").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(2));
    let r = db.execute("SELECT COUNT(*) FROM t WHERE s NOT LIKE 'ap%'").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(1), "NULL row is dropped");
    let r = db.execute("SELECT COUNT(*) FROM t WHERE s LIKE '_pple'").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(1));
    let r = db.execute("SELECT COUNT(*) FROM t WHERE n IN (1, 3, 99)").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(2));
    let r = db.execute("SELECT COUNT(*) FROM t WHERE n NOT IN (1, 3)").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(2));
}

#[test]
fn order_by_null_placement_and_limits() {
    let db = db_with("CREATE TABLE t (x BIGINT)", &["INSERT INTO t VALUES (3), (NULL), (1), (2)"]);
    let r = db.execute("SELECT x FROM t ORDER BY x ASC").unwrap();
    assert!(r.rows()[3][0].is_null(), "ASC default: NULLS LAST");
    let r = db.execute("SELECT x FROM t ORDER BY x ASC NULLS FIRST").unwrap();
    assert!(r.rows()[0][0].is_null());
    let r = db.execute("SELECT x FROM t ORDER BY x DESC LIMIT 2").unwrap();
    assert_eq!(r.rows().len(), 2);
    assert!(r.rows()[0][0].is_null(), "DESC default: NULLS FIRST");
    let r = db.execute("SELECT x FROM t ORDER BY x LIMIT 2 OFFSET 1").unwrap();
    assert_eq!(r.rows(), &[vec![Value::I64(2)], vec![Value::I64(3)]]);
}

#[test]
fn left_outer_join_null_padding() {
    let db = db_with(
        "CREATE TABLE a (k BIGINT, v VARCHAR); CREATE TABLE b (k BIGINT, w VARCHAR)",
        &["INSERT INTO a VALUES (1, 'x'), (2, 'y')", "INSERT INTO b VALUES (1, 'match')"],
    );
    let r = db.execute("SELECT a.v, b.w FROM a LEFT JOIN b ON a.k = b.k ORDER BY a.v").unwrap();
    assert_eq!(r.rows()[0], vec![Value::Str("x".into()), Value::Str("match".into())]);
    assert_eq!(r.rows()[1], vec![Value::Str("y".into()), Value::Null]);
}

#[test]
fn having_and_expressions_over_aggregates() {
    let db = db_with(
        "CREATE TABLE t (g VARCHAR, v BIGINT)",
        &["INSERT INTO t VALUES ('a',1),('a',2),('b',10),('b',20),('c',5)"],
    );
    let r = db
        .execute(
            "SELECT g, SUM(v) * 2 AS double_sum FROM t GROUP BY g \
             HAVING SUM(v) > 4 ORDER BY double_sum DESC",
        )
        .unwrap();
    assert_eq!(
        r.rows(),
        &[
            vec![Value::Str("b".into()), Value::I64(60)],
            vec![Value::Str("c".into()), Value::I64(10)],
        ]
    );
}

// ---------------------------------------------------------------------------
// Differential tests: the vectorized hash operators vs. the tuple-at-a-time
// volcano baseline on randomized data. Any divergence in join or GROUP BY
// semantics (NULL keys, duplicate keys, empty sides, NOT IN three-valued
// logic) shows up as a row-set mismatch.
// ---------------------------------------------------------------------------

mod differential {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use vectorwise::common::{Field, Schema, TypeId, Value};
    use vectorwise::exec::cancel::CancelToken;
    use vectorwise::exec::expr::{ExprCtx, PhysExpr};
    use vectorwise::exec::op::{
        drain, AggFunc, AggSpec, HashAggregate, HashJoin, JoinType, Operator, Values,
    };
    use vectorwise::exec::program::ExprProgram;

    fn prog(e: &PhysExpr) -> ExprProgram {
        ExprProgram::compile(e, &ExprCtx::default())
    }
    use vectorwise::volcano::{
        collect_rows, TupleAgg, TupleAggregate, TupleHashJoin, TupleJoinKind, TupleValues,
    };

    fn kv_schema() -> Schema {
        Schema::new(vec![Field::nullable("k", TypeId::I64), Field::nullable("v", TypeId::Str)])
            .unwrap()
    }

    /// Random rows: small key domain (forced collisions), ~12% NULL keys.
    fn random_rows(rng: &mut SmallRng, n: usize, tag: &str) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| {
                let k = if rng.gen_range(0..100) < 12 {
                    Value::Null
                } else {
                    Value::I64(rng.gen_range(0..16i64))
                };
                vec![k, Value::Str(format!("{tag}{i}"))]
            })
            .collect()
    }

    fn sort_rows(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort_by_key(|r| format!("{r:?}"));
        rows
    }

    fn vectorized_join(
        left: Vec<Vec<Value>>,
        right: Vec<Vec<Value>>,
        jt: JoinType,
        vector_size: usize,
    ) -> Vec<Vec<Value>> {
        let schema = kv_schema();
        let out_schema = if jt.emits_right() { schema.join(&schema) } else { schema.clone() };
        let l = Box::new(Values::new(schema.clone(), left, vector_size, CancelToken::new()));
        let r = Box::new(Values::new(schema, right, vector_size, CancelToken::new()));
        let mut j = HashJoin::new(
            l,
            r,
            vec![prog(&PhysExpr::ColRef(0, TypeId::I64))],
            vec![prog(&PhysExpr::ColRef(0, TypeId::I64))],
            jt,
            out_schema,
            CancelToken::new(),
        );
        let out = drain(&mut j).unwrap();
        let rows = (0..out.rows()).map(|i| out.row_values(i)).collect();
        assert!(Operator::profile(&j).is_some(), "join must expose probe profiling");
        rows
    }

    fn volcano_join(
        left: Vec<Vec<Value>>,
        right: Vec<Vec<Value>>,
        kind: TupleJoinKind,
    ) -> Vec<Vec<Value>> {
        let schema = kv_schema();
        let l = Box::new(TupleValues::new(schema.clone(), left));
        let r = Box::new(TupleValues::new(schema, right));
        let mut j = TupleHashJoin::with_kind(l, r, 0, 0, kind);
        collect_rows(&mut j).unwrap()
    }

    #[test]
    fn every_join_type_agrees_with_volcano_on_random_data() {
        let cases = [
            (JoinType::Inner, TupleJoinKind::Inner),
            (JoinType::LeftOuter, TupleJoinKind::LeftOuter),
            (JoinType::LeftSemi, TupleJoinKind::LeftSemi),
            (JoinType::LeftAnti, TupleJoinKind::LeftAnti),
            (JoinType::NullAwareLeftAnti, TupleJoinKind::NullAwareLeftAnti),
        ];
        for seed in 0..4u64 {
            let mut rng = SmallRng::seed_from_u64(0x10_1ed + seed);
            let left = random_rows(&mut rng, 257, "l");
            let right = random_rows(&mut rng, 131, "r");
            for (jt, kind) in cases {
                for vector_size in [4usize, 64] {
                    let vec_rows =
                        sort_rows(vectorized_join(left.clone(), right.clone(), jt, vector_size));
                    let vol_rows = sort_rows(volcano_join(left.clone(), right.clone(), kind));
                    assert_eq!(
                        vec_rows, vol_rows,
                        "join {jt:?} diverged (seed {seed}, vs {vector_size})"
                    );
                }
            }
        }
    }

    #[test]
    fn join_edge_cases_agree_with_volcano() {
        let all_null: Vec<Vec<Value>> =
            (0..5).map(|i| vec![Value::Null, Value::Str(format!("n{i}"))]).collect();
        let empty: Vec<Vec<Value>> = Vec::new();
        let mut rng = SmallRng::seed_from_u64(99);
        let normal = random_rows(&mut rng, 40, "x");
        let cases = [
            (JoinType::Inner, TupleJoinKind::Inner),
            (JoinType::LeftOuter, TupleJoinKind::LeftOuter),
            (JoinType::LeftSemi, TupleJoinKind::LeftSemi),
            (JoinType::LeftAnti, TupleJoinKind::LeftAnti),
            (JoinType::NullAwareLeftAnti, TupleJoinKind::NullAwareLeftAnti),
        ];
        for (jt, kind) in cases {
            for (l, r) in [
                (normal.clone(), empty.clone()),
                (empty.clone(), normal.clone()),
                (normal.clone(), all_null.clone()),
                (all_null.clone(), normal.clone()),
            ] {
                let vec_rows = sort_rows(vectorized_join(l.clone(), r.clone(), jt, 8));
                let vol_rows = sort_rows(volcano_join(l, r, kind));
                assert_eq!(vec_rows, vol_rows, "edge case diverged for {jt:?}");
            }
        }
    }

    #[test]
    fn group_by_agrees_with_volcano_on_random_data() {
        for seed in 0..4u64 {
            let mut rng = SmallRng::seed_from_u64(1000 + seed);
            let schema = Schema::new(vec![
                Field::nullable("k", TypeId::I64),
                Field::nullable("v", TypeId::I64),
            ])
            .unwrap();
            let rows: Vec<Vec<Value>> = (0..311)
                .map(|_| {
                    let k = if rng.gen_range(0..100) < 10 {
                        Value::Null
                    } else {
                        Value::I64(rng.gen_range(0..12i64))
                    };
                    let v = if rng.gen_range(0..100) < 15 {
                        Value::Null
                    } else {
                        Value::I64(rng.gen_range(-50..50i64))
                    };
                    vec![k, v]
                })
                .collect();

            let out_fields = vec![
                Field::nullable("k", TypeId::I64),
                Field::not_null("cnt", TypeId::I64),
                Field::not_null("cntv", TypeId::I64),
                Field::nullable("sum", TypeId::I64),
                Field::nullable("min", TypeId::I64),
                Field::nullable("max", TypeId::I64),
                Field::nullable("avg", TypeId::F64),
            ];
            let col_v = || Some(prog(&PhysExpr::ColRef(1, TypeId::I64)));
            let mut agg = HashAggregate::new(
                Box::new(Values::new(schema.clone(), rows.clone(), 32, CancelToken::new())),
                vec![prog(&PhysExpr::ColRef(0, TypeId::I64))],
                vec![
                    AggSpec { func: AggFunc::CountStar, input: None, out_ty: TypeId::I64 },
                    AggSpec { func: AggFunc::Count, input: col_v(), out_ty: TypeId::I64 },
                    AggSpec { func: AggFunc::Sum, input: col_v(), out_ty: TypeId::I64 },
                    AggSpec { func: AggFunc::Min, input: col_v(), out_ty: TypeId::I64 },
                    AggSpec { func: AggFunc::Max, input: col_v(), out_ty: TypeId::I64 },
                    AggSpec { func: AggFunc::Avg, input: col_v(), out_ty: TypeId::F64 },
                ],
                Schema::unchecked(out_fields.clone()),
                64,
                CancelToken::new(),
            )
            .unwrap();
            let out = drain(&mut agg).unwrap();
            let vec_rows = sort_rows((0..out.rows()).map(|i| out.row_values(i)).collect());

            let mut vol = TupleAggregate::new(
                Box::new(TupleValues::new(schema.clone(), rows.clone())),
                vec![0],
                vec![
                    TupleAgg::CountStar,
                    TupleAgg::Count(1),
                    TupleAgg::Sum(1),
                    TupleAgg::Min(1),
                    TupleAgg::Max(1),
                    TupleAgg::Avg(1),
                ],
                Schema::unchecked(out_fields),
            );
            let vol_rows = sort_rows(collect_rows(&mut vol).unwrap());
            assert_eq!(vec_rows, vol_rows, "GROUP BY diverged (seed {seed})");
        }
    }
}

// ---------------------------------------------------------------------------
// Differential tests for the radix-partitioned parallel hash build: the
// same randomized joins and aggregations run through the partitioned
// operators at DOP ∈ {1, 2, 8} and are pitted against the serial
// vectorized engine and the tuple-at-a-time volcano engine. NULL-bearing
// multi-column keys exercise the general (SelVec-iterative) probe path
// through the shard rebasing logic.
// ---------------------------------------------------------------------------

mod partitioned_differential {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use vectorwise::common::{Field, Schema, TypeId, Value};
    use vectorwise::exec::cancel::CancelToken;
    use vectorwise::exec::expr::{ExprCtx, PhysExpr};
    use vectorwise::exec::op::{
        drain, AggFunc, AggSpec, HashAggregate, HashJoin, JoinType, Operator, Values,
    };
    use vectorwise::exec::program::ExprProgram;
    use vectorwise::volcano::{
        collect_rows, TupleAgg, TupleAggregate, TupleHashJoin, TupleJoinKind, TupleValues,
    };

    fn prog(e: &PhysExpr) -> ExprProgram {
        ExprProgram::compile(e, &ExprCtx::default())
    }

    fn kv_schema() -> Schema {
        Schema::new(vec![Field::nullable("k", TypeId::I64), Field::nullable("v", TypeId::Str)])
            .unwrap()
    }

    fn kkv_schema() -> Schema {
        Schema::new(vec![
            Field::nullable("k1", TypeId::I64),
            Field::nullable("k2", TypeId::I64),
            Field::nullable("v", TypeId::I64),
        ])
        .unwrap()
    }

    /// Random single-column-key rows: small key domain (forced
    /// collisions), ~12% NULL keys.
    fn random_kv(rng: &mut SmallRng, n: usize, tag: &str) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| {
                let k = if rng.gen_range(0..100) < 12 {
                    Value::Null
                } else {
                    Value::I64(rng.gen_range(0..16i64))
                };
                vec![k, Value::Str(format!("{tag}{i}"))]
            })
            .collect()
    }

    /// Random multi-column-key rows with NULLs in both key columns and
    /// the aggregated value.
    fn random_kkv(rng: &mut SmallRng, n: usize) -> Vec<Vec<Value>> {
        (0..n)
            .map(|_| {
                let k1 = if rng.gen_range(0..100) < 10 {
                    Value::Null
                } else {
                    Value::I64(rng.gen_range(0..8i64))
                };
                let k2 = if rng.gen_range(0..100) < 10 {
                    Value::Null
                } else {
                    Value::I64(rng.gen_range(0..5i64))
                };
                let v = if rng.gen_range(0..100) < 15 {
                    Value::Null
                } else {
                    Value::I64(rng.gen_range(-50..50i64))
                };
                vec![k1, k2, v]
            })
            .collect()
    }

    fn sort_rows(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort_by_key(|r| format!("{r:?}"));
        rows
    }

    /// Join at a given shard count (0 = serial build). `min_rows = 0`
    /// engages the partitioned build from the first batch.
    fn join_at(
        left: Vec<Vec<Value>>,
        right: Vec<Vec<Value>>,
        jt: JoinType,
        shards: usize,
        vector_size: usize,
    ) -> Vec<Vec<Value>> {
        let schema = kv_schema();
        let out_schema = if jt.emits_right() { schema.join(&schema) } else { schema.clone() };
        let l = Box::new(Values::new(schema.clone(), left, vector_size, CancelToken::new()));
        let r = Box::new(Values::new(schema, right, vector_size, CancelToken::new()));
        let mut j = HashJoin::new(
            l,
            r,
            vec![prog(&PhysExpr::ColRef(0, TypeId::I64))],
            vec![prog(&PhysExpr::ColRef(0, TypeId::I64))],
            jt,
            out_schema,
            CancelToken::new(),
        );
        if shards > 0 {
            j = j.with_parallel_build(shards, 0);
        }
        let out = drain(&mut j).unwrap();
        if shards > 1 {
            let p = Operator::profile(&j).unwrap();
            assert_eq!(p.shards(), shards, "partitioned build must engage");
        }
        (0..out.rows()).map(|i| out.row_values(i)).collect()
    }

    #[test]
    fn partitioned_joins_agree_with_serial_and_volcano_at_every_dop() {
        let cases = [
            (JoinType::Inner, TupleJoinKind::Inner),
            (JoinType::LeftOuter, TupleJoinKind::LeftOuter),
            (JoinType::LeftSemi, TupleJoinKind::LeftSemi),
            (JoinType::LeftAnti, TupleJoinKind::LeftAnti),
            (JoinType::NullAwareLeftAnti, TupleJoinKind::NullAwareLeftAnti),
        ];
        for seed in 0..3u64 {
            let mut rng = SmallRng::seed_from_u64(0x9a9_d10 + seed);
            let left = random_kv(&mut rng, 223, "l");
            let right = random_kv(&mut rng, 157, "r");
            for (jt, kind) in cases {
                let serial = sort_rows(join_at(left.clone(), right.clone(), jt, 0, 64));
                let volcano = {
                    let l = Box::new(TupleValues::new(kv_schema(), left.clone()));
                    let r = Box::new(TupleValues::new(kv_schema(), right.clone()));
                    let mut j = TupleHashJoin::with_kind(l, r, 0, 0, kind);
                    sort_rows(collect_rows(&mut j).unwrap())
                };
                assert_eq!(serial, volcano, "serial diverged from volcano for {jt:?}");
                for dop in [1usize, 2, 8] {
                    for vector_size in [16usize, 64] {
                        let part =
                            sort_rows(join_at(left.clone(), right.clone(), jt, dop, vector_size));
                        assert_eq!(
                            part, serial,
                            "partitioned {jt:?} diverged (seed {seed}, dop {dop}, vs {vector_size})"
                        );
                    }
                }
            }
        }
    }

    /// Aggregate the kkv rows at a given shard count (0 = serial build).
    fn agg_at(rows: Vec<Vec<Value>>, shards: usize, vector_size: usize) -> Vec<Vec<Value>> {
        let col_v = || Some(prog(&PhysExpr::ColRef(2, TypeId::I64)));
        let out_fields = vec![
            Field::nullable("k1", TypeId::I64),
            Field::nullable("k2", TypeId::I64),
            Field::not_null("cnt", TypeId::I64),
            Field::nullable("sum", TypeId::I64),
            Field::nullable("min", TypeId::I64),
            Field::nullable("max", TypeId::I64),
            Field::nullable("avg", TypeId::F64),
        ];
        let mut agg = HashAggregate::new(
            Box::new(Values::new(kkv_schema(), rows, vector_size, CancelToken::new())),
            vec![prog(&PhysExpr::ColRef(0, TypeId::I64)), prog(&PhysExpr::ColRef(1, TypeId::I64))],
            vec![
                AggSpec { func: AggFunc::CountStar, input: None, out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Sum, input: col_v(), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Min, input: col_v(), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Max, input: col_v(), out_ty: TypeId::I64 },
                AggSpec { func: AggFunc::Avg, input: col_v(), out_ty: TypeId::F64 },
            ],
            Schema::unchecked(out_fields),
            64,
            CancelToken::new(),
        )
        .unwrap();
        if shards > 0 {
            agg = agg.with_parallel_build(shards, 0);
        }
        let out = drain(&mut agg).unwrap();
        if shards > 1 {
            let p = Operator::profile(&agg).unwrap();
            assert_eq!(p.shards(), shards, "partitioned build must engage");
        }
        (0..out.rows()).map(|i| out.row_values(i)).collect()
    }

    #[test]
    fn partitioned_multi_column_group_by_agrees_three_ways() {
        for seed in 0..3u64 {
            let mut rng = SmallRng::seed_from_u64(0x5ca1e + seed);
            let rows = random_kkv(&mut rng, 409);

            let serial = sort_rows(agg_at(rows.clone(), 0, 32));
            let volcano = {
                let mut vol = TupleAggregate::new(
                    Box::new(TupleValues::new(kkv_schema(), rows.clone())),
                    vec![0, 1],
                    vec![
                        TupleAgg::CountStar,
                        TupleAgg::Sum(2),
                        TupleAgg::Min(2),
                        TupleAgg::Max(2),
                        TupleAgg::Avg(2),
                    ],
                    Schema::unchecked(vec![
                        Field::nullable("k1", TypeId::I64),
                        Field::nullable("k2", TypeId::I64),
                        Field::not_null("cnt", TypeId::I64),
                        Field::nullable("sum", TypeId::I64),
                        Field::nullable("min", TypeId::I64),
                        Field::nullable("max", TypeId::I64),
                        Field::nullable("avg", TypeId::F64),
                    ]),
                );
                sort_rows(collect_rows(&mut vol).unwrap())
            };
            assert_eq!(serial, volcano, "serial diverged from volcano (seed {seed})");
            for dop in [1usize, 2, 8] {
                for vector_size in [16usize, 64] {
                    let part = sort_rows(agg_at(rows.clone(), dop, vector_size));
                    assert_eq!(
                        part, serial,
                        "partitioned GROUP BY diverged (seed {seed}, dop {dop}, vs {vector_size})"
                    );
                }
            }
        }
    }

    /// End-to-end: the same SQL through the full engine at DOP 1 vs 4 —
    /// the rewriter's Exchange shapes plus the operators' partitioned
    /// builds must not change any answer.
    #[test]
    fn sql_answers_stable_across_dop() {
        use vectorwise::core::Database;
        let queries = [
            "SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k ORDER BY k",
            "SELECT COUNT(*) FROM t a JOIN t b ON a.k = b.k",
            "SELECT a.k, b.v FROM t a JOIN t b ON a.k = b.k ORDER BY a.k, b.v LIMIT 20",
            "SELECT COUNT(*) FROM t WHERE k NOT IN (SELECT k FROM t WHERE v > 900)",
        ];
        let build = |dop: usize| {
            let db = Database::open_in_memory();
            db.execute("CREATE TABLE t (k BIGINT, v BIGINT)").unwrap();
            let mut rng = SmallRng::seed_from_u64(77);
            let rows: Vec<String> = (0..500)
                .map(|_| {
                    let k = if rng.gen_range(0..100) < 10 {
                        "NULL".to_string()
                    } else {
                        rng.gen_range(0..25i64).to_string()
                    };
                    format!("({k}, {})", rng.gen_range(0..1000i64))
                })
                .collect();
            db.execute(&format!("INSERT INTO t VALUES {}", rows.join(", "))).unwrap();
            db.execute(&format!("SET parallelism = {dop}")).unwrap();
            db.execute("SET partition_min_rows = 0").unwrap();
            db
        };
        let serial = build(1);
        let parallel = build(4);
        for q in queries {
            let a = serial.execute(q).unwrap();
            let b = parallel.execute(q).unwrap();
            assert_eq!(sort_rows(a.rows().to_vec()), sort_rows(b.rows().to_vec()), "{q}");
        }
    }
}

// ---------------------------------------------------------------------------
// Differential tests for the compiled expression path: random expression
// trees evaluated three ways — compiled ExprProgram, the reference tree
// interpreter, and the tuple-at-a-time volcano evaluator — over randomized
// NULL-bearing data. Any compile-time transformation (constant folding,
// CSE, register reuse, the fused select path) that changes semantics shows
// up as a lane mismatch.
// ---------------------------------------------------------------------------

mod expr_differential {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use vectorwise::common::{ColData, SelVec, TypeId, Value};
    use vectorwise::exec::expr::{BinOp, CmpOp, ExprCtx, Func, PhysExpr};
    use vectorwise::exec::program::{ExprProgram, SelectProgram, VectorPool};
    use vectorwise::exec::vector::Batch;
    use vectorwise::exec::Vector;
    use vectorwise::volcano::ScalarExpr;

    fn nullable_i64(vals: &[Option<i64>]) -> Vector {
        let mut v = Vector::new(ColData::new(TypeId::I64));
        for x in vals {
            v.push(&x.map_or(Value::Null, Value::I64)).unwrap();
        }
        v
    }

    /// Random i64-typed expression over columns 0 and 1, mirrored as a
    /// volcano ScalarExpr. Div/Rem denominators are nonzero constants: the
    /// NULL-denominator and zero-denominator corners have dedicated unit
    /// tests, and vectorized-vs-volcano error timing differs there by
    /// design (the kernel touches safe values the row engine never sees).
    fn gen_i64(rng: &mut SmallRng, depth: usize) -> (PhysExpr, ScalarExpr) {
        let leaf = depth == 0 || rng.gen_range(0..100) < 25;
        if leaf {
            if rng.gen_bool(0.5) {
                let c = rng.gen_range(0..2usize);
                (PhysExpr::ColRef(c, TypeId::I64), ScalarExpr::Col(c))
            } else {
                let k = rng.gen_range(-8..=8i64);
                (PhysExpr::Const(Value::I64(k), TypeId::I64), ScalarExpr::Lit(Value::I64(k)))
            }
        } else {
            let (op, ch) = match rng.gen_range(0..5) {
                0 => (BinOp::Add, '+'),
                1 => (BinOp::Sub, '-'),
                2 => (BinOp::Mul, '*'),
                3 => (BinOp::Div, '/'),
                _ => (BinOp::Rem, '%'),
            };
            let (pl, vl) = gen_i64(rng, depth - 1);
            let (pr, vr) = if matches!(op, BinOp::Div | BinOp::Rem) {
                let mut k = rng.gen_range(1..=6i64);
                if rng.gen_bool(0.5) {
                    k = -k;
                }
                (PhysExpr::Const(Value::I64(k), TypeId::I64), ScalarExpr::Lit(Value::I64(k)))
            } else {
                gen_i64(rng, depth - 1)
            };
            (
                PhysExpr::Arith { op, lhs: Box::new(pl), rhs: Box::new(pr), ty: TypeId::I64 },
                ScalarExpr::Arith(ch, Box::new(vl), Box::new(vr)),
            )
        }
    }

    /// Random boolean expression (comparisons, 3VL AND/OR/NOT).
    fn gen_bool(rng: &mut SmallRng, depth: usize) -> (PhysExpr, ScalarExpr) {
        if depth == 0 || rng.gen_range(0..100) < 40 {
            let (op, sv) = match rng.gen_range(0..6) {
                0 => (CmpOp::Eq, "="),
                1 => (CmpOp::Ne, "!="),
                2 => (CmpOp::Lt, "<"),
                3 => (CmpOp::Le, "<="),
                4 => (CmpOp::Gt, ">"),
                _ => (CmpOp::Ge, ">="),
            };
            let (pl, vl) = gen_i64(rng, depth.min(2));
            let (pr, vr) = gen_i64(rng, depth.min(2));
            (
                PhysExpr::Cmp { op, lhs: Box::new(pl), rhs: Box::new(pr) },
                ScalarExpr::Cmp(sv, Box::new(vl), Box::new(vr)),
            )
        } else {
            match rng.gen_range(0..3) {
                0 => {
                    let (pl, vl) = gen_bool(rng, depth - 1);
                    let (pr, vr) = gen_bool(rng, depth - 1);
                    (PhysExpr::And(vec![pl, pr]), ScalarExpr::And(Box::new(vl), Box::new(vr)))
                }
                1 => {
                    let (pl, vl) = gen_bool(rng, depth - 1);
                    let (pr, vr) = gen_bool(rng, depth - 1);
                    (PhysExpr::Or(vec![pl, pr]), ScalarExpr::Or(Box::new(vl), Box::new(vr)))
                }
                _ => {
                    let (p, v) = gen_bool(rng, depth - 1);
                    (PhysExpr::Not(Box::new(p)), ScalarExpr::Not(Box::new(v)))
                }
            }
        }
    }

    fn random_rows(rng: &mut SmallRng, n: usize) -> Vec<(Option<i64>, Option<i64>)> {
        (0..n)
            .map(|_| {
                let v = |rng: &mut SmallRng| {
                    if rng.gen_range(0..100) < 20 {
                        None
                    } else {
                        Some(rng.gen_range(-6..=6i64))
                    }
                };
                (v(rng), v(rng))
            })
            .collect()
    }

    fn batch_of(rows: &[(Option<i64>, Option<i64>)]) -> Batch {
        Batch::new(vec![
            nullable_i64(&rows.iter().map(|r| r.0).collect::<Vec<_>>()),
            nullable_i64(&rows.iter().map(|r| r.1).collect::<Vec<_>>()),
        ])
    }

    fn volcano_eval_all(
        e: &ScalarExpr,
        rows: &[(Option<i64>, Option<i64>)],
    ) -> Result<Vec<Value>, ()> {
        rows.iter()
            .map(|&(a, b)| {
                let row =
                    vec![a.map_or(Value::Null, Value::I64), b.map_or(Value::Null, Value::I64)];
                e.eval(&row).map_err(|_| ())
            })
            .collect()
    }

    /// Core three-way check for one expression over one data set.
    fn check_three_ways(
        pe: &PhysExpr,
        ve: &ScalarExpr,
        rows: &[(Option<i64>, Option<i64>)],
        label: &str,
    ) {
        let ctx = ExprCtx::default();
        let batch = batch_of(rows);
        let interp = pe.eval(&batch, &ctx);
        let prog = ExprProgram::compile(pe, &ctx);
        let mut pool = VectorPool::new();
        let compiled = prog.run(&mut pool, &batch);
        let volcano = volcano_eval_all(ve, rows);
        assert_eq!(
            interp.is_err(),
            compiled.is_err(),
            "{label}: interpreter vs compiled error disagreement for {pe:?}"
        );
        assert_eq!(
            interp.is_err(),
            volcano.is_err(),
            "{label}: vectorized vs volcano error disagreement for {pe:?}"
        );
        if let (Ok(iv), Ok(vr), Ok(vol)) = (&interp, &compiled, &volcano) {
            let cv = pool.get(&batch, *vr);
            for (i, vol_val) in vol.iter().enumerate() {
                assert_eq!(
                    iv.get(i),
                    cv.get(i),
                    "{label}: interpreter vs compiled lane {i} for {pe:?}"
                );
                assert_eq!(
                    &iv.get(i),
                    vol_val,
                    "{label}: vectorized vs volcano lane {i} for {pe:?}"
                );
            }
        }
    }

    #[test]
    fn random_arithmetic_agrees_three_ways() {
        for seed in 0..30u64 {
            let mut rng = SmallRng::seed_from_u64(0xa17_000 + seed);
            let rows = random_rows(&mut rng, 97);
            let (pe, ve) = gen_i64(&mut rng, 4);
            check_three_ways(&pe, &ve, &rows, "arith");
        }
    }

    #[test]
    fn random_booleans_agree_three_ways() {
        for seed in 0..30u64 {
            let mut rng = SmallRng::seed_from_u64(0xb0_0100 + seed);
            let rows = random_rows(&mut rng, 83);
            let (pe, ve) = gen_bool(&mut rng, 3);
            check_three_ways(&pe, &ve, &rows, "bool");
        }
    }

    #[test]
    fn random_predicates_select_identically() {
        // The fused SelectProgram path vs the interpreter's eval_select,
        // with and without an incoming selection.
        let ctx = ExprCtx::default();
        for seed in 0..30u64 {
            let mut rng = SmallRng::seed_from_u64(0x5e1_000 + seed);
            let rows = random_rows(&mut rng, 101);
            let (pe, _) = gen_bool(&mut rng, 3);
            let mut batch = batch_of(&rows);
            let interp = pe.eval_select(&batch, &ctx);
            let sp = SelectProgram::compile(&pe, &ctx);
            let mut pool = VectorPool::new();
            let compiled = sp.run(&mut pool, &batch);
            assert_eq!(interp.is_err(), compiled.is_err(), "seed {seed}: {pe:?}");
            if let (Ok(a), Ok(b)) = (&interp, &compiled) {
                assert_eq!(a.as_slice(), b.as_slice(), "seed {seed}: {pe:?}");
            }
            // Under a narrowed incoming selection.
            let sel: Vec<u32> = (0..rows.len() as u32).filter(|p| p % 3 != 1).collect();
            batch.sel = Some(SelVec::from_positions(sel));
            let interp = pe.eval_select(&batch, &ctx);
            let mut pool = VectorPool::new();
            let compiled = sp.run(&mut pool, &batch);
            assert_eq!(interp.is_err(), compiled.is_err(), "seed {seed} (sel): {pe:?}");
            if let (Ok(a), Ok(b)) = (&interp, &compiled) {
                assert_eq!(a.as_slice(), b.as_slice(), "seed {seed} (sel): {pe:?}");
            }
        }
    }

    /// Scalar functions and NULL propagation: compiled vs interpreter
    /// (volcano has no function battery) over NULL-bearing strings.
    #[test]
    fn scalar_funcs_agree_with_interpreter() {
        let ctx = ExprCtx::default();
        let mut rng = SmallRng::seed_from_u64(0xf0_0d);
        let mut sv = Vector::new(ColData::new(TypeId::Str));
        let mut iv = Vector::new(ColData::new(TypeId::I64));
        for _ in 0..64 {
            if rng.gen_range(0..100) < 20 {
                sv.push(&Value::Null).unwrap();
            } else {
                let n = rng.gen_range(0..8);
                let s: String = (0..n).map(|_| (b'a' + rng.gen_range(0..26u8)) as char).collect();
                sv.push(&Value::Str(format!(" {s} "))).unwrap();
            }
            if rng.gen_range(0..100) < 20 {
                iv.push(&Value::Null).unwrap();
            } else {
                iv.push(&Value::I64(rng.gen_range(-40..40))).unwrap();
            }
        }
        let batch = Batch::new(vec![sv, iv]);
        let s0 = || PhysExpr::ColRef(0, TypeId::Str);
        let i1 = || PhysExpr::ColRef(1, TypeId::I64);
        let lit = |k: i64| PhysExpr::Const(Value::I64(k), TypeId::I64);
        let f = |func, args, ty| PhysExpr::FuncCall { func, args, ty };
        let exprs = vec![
            f(Func::Upper, vec![s0()], TypeId::Str),
            f(Func::Lower, vec![s0()], TypeId::Str),
            f(Func::Trim, vec![s0()], TypeId::Str),
            f(Func::Length, vec![f(Func::Trim, vec![s0()], TypeId::Str)], TypeId::I64),
            f(Func::Concat, vec![s0(), f(Func::Upper, vec![s0()], TypeId::Str)], TypeId::Str),
            f(Func::Substr, vec![s0(), lit(2), lit(3)], TypeId::Str),
            f(Func::Abs, vec![i1()], TypeId::I64),
            PhysExpr::Like { input: Box::new(s0()), pattern: "%a%".into(), negated: false },
            PhysExpr::Like { input: Box::new(s0()), pattern: "_b%".into(), negated: true },
            f(
                Func::Floor,
                vec![PhysExpr::Cast { input: Box::new(i1()), to: TypeId::F64 }],
                TypeId::F64,
            ),
            PhysExpr::IsNull(Box::new(s0())),
            PhysExpr::IsNotNull(Box::new(i1())),
        ];
        for e in &exprs {
            let interp = e.eval(&batch, &ctx).unwrap();
            let prog = ExprProgram::compile(e, &ctx);
            let mut pool = VectorPool::new();
            let vr = prog.run(&mut pool, &batch).unwrap();
            let got = pool.get(&batch, vr);
            for i in 0..batch.capacity() {
                assert_eq!(interp.get(i), got.get(i), "{e:?} lane {i}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Differential tests for morsel-driven scheduling: the same randomized
// queries run through the full engine at DOP ∈ {1, 2, 8} and forced tiny /
// large morsel sizes, over uniform and skewed (tail-heavy) data, and are
// pitted against the serial engine and the tuple-at-a-time volcano engine.
// Plus the treacherous shutdown paths: mid-query cancellation at many-
// morsel DOP 4, and a panicking worker that shares a MorselSource.
// ---------------------------------------------------------------------------

mod morsel_differential {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;
    use vectorwise::common::{ColData, Field, Schema, TypeId, Value, VwError};
    use vectorwise::core::{bulk_load, Database};
    use vectorwise::volcano::{
        collect_rows, TupleAgg, TupleAggregate, TupleHashJoin, TupleJoinKind, TupleValues,
    };

    fn sort_rows(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort_by_key(|r| format!("{r:?}"));
        rows
    }

    fn kv_schema() -> Schema {
        Schema::new(vec![Field::nullable("k", TypeId::I64), Field::nullable("v", TypeId::I64)])
            .unwrap()
    }

    /// Random (k, v) rows. `skewed` clusters the data the way that broke
    /// static partitioning: the first 90% of rows use a tiny key domain
    /// and small values, the last 10% carry a wide key domain and the
    /// value mass — so nearly all groups and most aggregate work sit in
    /// the tail of the row space. ~10% NULL keys either way.
    fn gen_rows(rng: &mut SmallRng, n: usize, skewed: bool) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| {
                let tail = skewed && i >= n * 9 / 10;
                let k = if rng.gen_range(0..100) < 10 {
                    Value::Null
                } else if skewed && !tail {
                    // Head of a skewed table: tiny key domain.
                    Value::I64(rng.gen_range(0..3i64))
                } else {
                    Value::I64(rng.gen_range(0..20i64))
                };
                let v = if tail { rng.gen_range(500..1000i64) } else { rng.gen_range(0..10i64) };
                vec![k, Value::I64(v)]
            })
            .collect()
    }

    fn load_db(rows: &[Vec<Value>], dop: usize, morsel_rows: usize) -> Arc<Database> {
        let db = Database::open_in_memory();
        db.execute("CREATE TABLE t (k BIGINT, v BIGINT)").unwrap();
        let lits: Vec<String> = rows
            .iter()
            .map(|r| {
                let k = match &r[0] {
                    Value::Null => "NULL".to_string(),
                    Value::I64(k) => k.to_string(),
                    other => panic!("{other:?}"),
                };
                let v = match &r[1] {
                    Value::I64(v) => v.to_string(),
                    other => panic!("{other:?}"),
                };
                format!("({k}, {v})")
            })
            .collect();
        db.execute(&format!("INSERT INTO t VALUES {}", lits.join(", "))).unwrap();
        db.execute(&format!("SET parallelism = {dop}")).unwrap();
        db.execute(&format!("SET morsel_rows = {morsel_rows}")).unwrap();
        db.execute("SET partition_min_rows = 0").unwrap();
        db
    }

    #[test]
    fn morsel_sql_agrees_with_serial_and_volcano_over_uniform_and_skewed_data() {
        let queries = [
            "SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k",
            "SELECT COUNT(*) FROM t a JOIN t b ON a.k = b.k",
            "SELECT a.k, COUNT(*), SUM(b.v) FROM t a JOIN t b ON a.k = b.k GROUP BY a.k",
            "SELECT k, SUM(v) FROM t WHERE v >= 500 GROUP BY k",
        ];
        for seed in 0..2u64 {
            for skewed in [false, true] {
                let mut rng = SmallRng::seed_from_u64(0x40_15e1 + seed);
                let rows = gen_rows(&mut rng, 600, skewed);

                // Volcano references for the first two query shapes.
                let vol_group = {
                    let mut agg = TupleAggregate::new(
                        Box::new(TupleValues::new(kv_schema(), rows.clone())),
                        vec![0],
                        vec![TupleAgg::CountStar, TupleAgg::Sum(1)],
                        Schema::unchecked(vec![
                            Field::nullable("k", TypeId::I64),
                            Field::not_null("cnt", TypeId::I64),
                            Field::nullable("sum", TypeId::I64),
                        ]),
                    );
                    sort_rows(collect_rows(&mut agg).unwrap())
                };
                let vol_join_count = {
                    let l = Box::new(TupleValues::new(kv_schema(), rows.clone()));
                    let r = Box::new(TupleValues::new(kv_schema(), rows.clone()));
                    let mut j = TupleHashJoin::with_kind(l, r, 0, 0, TupleJoinKind::Inner);
                    collect_rows(&mut j).unwrap().len() as i64
                };

                let serial = load_db(&rows, 1, 16 * 1024);
                let serial_answers: Vec<Vec<Vec<Value>>> = queries
                    .iter()
                    .map(|q| sort_rows(serial.execute(q).unwrap().rows().to_vec()))
                    .collect();
                assert_eq!(
                    serial_answers[0], vol_group,
                    "serial GROUP BY diverged from volcano (seed {seed}, skewed {skewed})"
                );
                assert_eq!(
                    serial_answers[1],
                    vec![vec![Value::I64(vol_join_count)]],
                    "serial join count diverged from volcano (seed {seed}, skewed {skewed})"
                );

                for dop in [2usize, 8] {
                    for morsel_rows in [16usize, 256] {
                        let db = load_db(&rows, dop, morsel_rows);
                        for (q, expect) in queries.iter().zip(&serial_answers) {
                            let got = sort_rows(db.execute(q).unwrap().rows().to_vec());
                            assert_eq!(
                                &got, expect,
                                "morsel run diverged (seed {seed}, skewed {skewed}, \
                                 dop {dop}, morsel_rows {morsel_rows}): {q}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn mid_query_cancellation_with_shared_morsel_sources() {
        // A long self-join at DOP 4 with 64-row morsels: KILL must surface
        // VwError::Cancelled promptly even though four workers share the
        // scan dispensers mid-claim.
        let db = Database::open_in_memory();
        db.execute("CREATE TABLE big (k BIGINT NOT NULL, v BIGINT NOT NULL)").unwrap();
        let n = 100_000i64;
        let k = ColData::I64((0..n).map(|i| i % 100).collect());
        let v = ColData::I64((0..n).collect());
        bulk_load(&db, "big", &[k, v], &[None, None]).unwrap();
        db.execute("SET parallelism = 4").unwrap();
        db.execute("SET morsel_rows = 64").unwrap();

        let db2 = db.clone();
        let handle = std::thread::spawn(move || {
            db2.execute("SELECT COUNT(*) FROM big a JOIN big b ON a.k = b.k")
        });
        // Wait for the query to register, then kill it.
        let qid = loop {
            let running: Vec<_> = db
                .monitor
                .list_queries()
                .into_iter()
                .filter(|q| q.state == vectorwise::core::monitor::QueryState::Running)
                .collect();
            if let Some(q) = running.first() {
                break q.id;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        db.kill(qid).unwrap();
        let result = handle.join().unwrap();
        assert!(
            matches!(result, Err(VwError::Cancelled)),
            "killed morsel query must report cancellation, got {result:?}"
        );
    }

    #[test]
    fn worker_panic_with_shared_source_surfaces_as_error() {
        // Two Xchg workers share one MorselSource; one panics mid-stream.
        // The catch_unwind path must turn that into a VwError at the
        // consumer (not a truncated stream), and dropping the exchange
        // must join the surviving worker that keeps claiming morsels.
        use vectorwise::exec::cancel::CancelToken;
        use vectorwise::exec::morsel::MorselSource;
        use vectorwise::exec::op::{BoxedOp, Operator, VectorScan, Xchg};
        use vectorwise::exec::vector::Batch;
        use vectorwise::storage::{BufferPool, Layout, SimulatedDisk, TableStorage};

        struct PanicAfter {
            inner: BoxedOp,
            batches: usize,
        }
        impl Operator for PanicAfter {
            fn schema(&self) -> &Schema {
                self.inner.schema()
            }
            fn name(&self) -> &'static str {
                "PanicAfter"
            }
            fn next(&mut self) -> vectorwise::common::Result<Option<Batch>> {
                if self.batches == 0 {
                    panic!("worker exploded between morsel claims");
                }
                self.batches -= 1;
                self.inner.next()
            }
        }

        let disk = SimulatedDisk::instant();
        let pool = BufferPool::new(disk.clone(), 16 << 20);
        let schema = Schema::new(vec![Field::not_null("x", TypeId::I64)]).unwrap();
        let mut t = TableStorage::new(disk, schema, Layout::Dsm);
        t.append_columns(&[ColData::I64((0..20_000).collect())], &[None], 1024).unwrap();
        let table = Arc::new(t);

        let source = MorselSource::new(VectorScan::stable_items(20_000), 64, 2);
        let cancel = CancelToken::new();
        let mk_scan = |consumer: usize| {
            VectorScan::with_source(
                table.clone(),
                pool.clone(),
                vec![0],
                source.clone(),
                consumer,
                128,
                cancel.clone(),
            )
        };
        let parts: Vec<BoxedOp> = vec![
            Box::new(PanicAfter { inner: Box::new(mk_scan(0)), batches: 2 }),
            Box::new(mk_scan(1)),
        ];
        let mut x = Xchg::spawn(parts, cancel).with_sources(vec![source]);
        let mut saw_panic_error = false;
        loop {
            match x.next() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(VwError::Exec(msg)) => {
                    assert!(msg.contains("panicked"), "{msg}");
                    assert!(msg.contains("worker exploded"), "{msg}");
                    saw_panic_error = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_panic_error, "worker panic must surface as VwError::Exec");
        drop(x); // join must not deadlock while the sibling still claims
    }
}

mod spill_differential {
    //! The memory governor under randomized SQL: a budget several times
    //! smaller than the hash build state forces grace spilling through
    //! joins and GROUP BYs, whose answers must match the unbounded run and
    //! the volcano reference exactly — plus a mid-spill KILL that must
    //! surface `Cancelled` and reclaim every temp spill block.

    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;
    use vectorwise::common::{ColData, Field, Schema, TypeId, Value, VwError};
    use vectorwise::core::{bulk_load, Database};
    use vectorwise::volcano::{
        collect_rows, TupleAgg, TupleAggregate, TupleHashJoin, TupleJoinKind, TupleValues,
    };

    fn sort_rows(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort_by_key(|r| format!("{r:?}"));
        rows
    }

    fn kv_schema() -> Schema {
        Schema::new(vec![Field::nullable("k", TypeId::I64), Field::nullable("v", TypeId::I64)])
            .unwrap()
    }

    /// Random (k, v) rows with ~10% NULL keys over a key domain wide
    /// enough that the join build and the group state dwarf a small
    /// budget.
    fn gen_rows(rng: &mut SmallRng, n: usize) -> Vec<Vec<Value>> {
        (0..n)
            .map(|_| {
                let k = if rng.gen_range(0..100) < 10 {
                    Value::Null
                } else {
                    Value::I64(rng.gen_range(0..200i64))
                };
                vec![k, Value::I64(rng.gen_range(0..1000i64))]
            })
            .collect()
    }

    fn load_db(rows: &[Vec<Value>], dop: usize, mem_budget: usize) -> Arc<Database> {
        let db = Database::open_in_memory();
        db.execute("CREATE TABLE t (k BIGINT, v BIGINT)").unwrap();
        let lits: Vec<String> = rows
            .iter()
            .map(|r| {
                let k = match &r[0] {
                    Value::Null => "NULL".to_string(),
                    Value::I64(k) => k.to_string(),
                    other => panic!("{other:?}"),
                };
                let v = match &r[1] {
                    Value::I64(v) => v.to_string(),
                    other => panic!("{other:?}"),
                };
                format!("({k}, {v})")
            })
            .collect();
        db.execute(&format!("INSERT INTO t VALUES {}", lits.join(", "))).unwrap();
        db.execute(&format!("SET parallelism = {dop}")).unwrap();
        db.execute(&format!("SET mem_budget = {mem_budget}")).unwrap();
        db
    }

    #[test]
    fn spilled_sql_agrees_with_unbounded_and_volcano() {
        let queries = [
            "SELECT k, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM t GROUP BY k",
            "SELECT COUNT(*) FROM t a JOIN t b ON a.k = b.k",
            "SELECT a.k, COUNT(*), SUM(b.v) FROM t a JOIN t b ON a.k = b.k GROUP BY a.k",
            "SELECT COUNT(*) FROM t WHERE k NOT IN (SELECT k FROM t WHERE v > 990)",
        ];
        for seed in 0..2u64 {
            let mut rng = SmallRng::seed_from_u64(0x5b111 + seed);
            let rows = gen_rows(&mut rng, 800);

            // Volcano references for the first two query shapes.
            let vol_group = {
                let mut agg = TupleAggregate::new(
                    Box::new(TupleValues::new(kv_schema(), rows.clone())),
                    vec![0],
                    vec![TupleAgg::CountStar, TupleAgg::Sum(1)],
                    Schema::unchecked(vec![
                        Field::nullable("k", TypeId::I64),
                        Field::not_null("cnt", TypeId::I64),
                        Field::nullable("sum", TypeId::I64),
                    ]),
                );
                sort_rows(collect_rows(&mut agg).unwrap())
            };
            let vol_join_count = {
                let l = Box::new(TupleValues::new(kv_schema(), rows.clone()));
                let r = Box::new(TupleValues::new(kv_schema(), rows.clone()));
                let mut j = TupleHashJoin::with_kind(l, r, 0, 0, TupleJoinKind::Inner);
                collect_rows(&mut j).unwrap().len() as i64
            };

            // The unbounded engine is the primary reference.
            let unbounded = load_db(&rows, 1, 0);
            let expected: Vec<Vec<Vec<Value>>> = queries
                .iter()
                .map(|q| sort_rows(unbounded.execute(q).unwrap().rows().to_vec()))
                .collect();
            {
                let group = sort_rows(
                    unbounded
                        .execute("SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k")
                        .unwrap()
                        .rows()
                        .to_vec(),
                );
                assert_eq!(group, vol_group, "unbounded GROUP BY diverged from volcano");
            }
            assert_eq!(
                expected[1],
                vec![vec![Value::I64(vol_join_count)]],
                "unbounded join count diverged from volcano (seed {seed})"
            );

            // A build of ~800 rows × 2 BIGINT columns is tens of KB of
            // staged state: a 2 KB budget forces deep spilling, a 16 KB
            // one partial spilling.
            for dop in [1usize, 4] {
                for budget in [2 * 1024usize, 16 * 1024] {
                    let db = load_db(&rows, dop, budget);
                    for (q, expect) in queries.iter().zip(&expected) {
                        let got = sort_rows(db.execute(q).unwrap().rows().to_vec());
                        assert_eq!(
                            &got, expect,
                            "spilled run diverged (seed {seed}, dop {dop}, budget {budget}): {q}"
                        );
                    }
                    // Only table blocks remain: every temp spill file must
                    // be gone once the queries finish. The unbounded db is
                    // an identically loaded instance that never spilled,
                    // so its disk usage is the table baseline.
                    assert_eq!(
                        db.disk().used_bytes(),
                        unbounded.disk().used_bytes(),
                        "spill blocks leaked (seed {seed}, dop {dop}, budget {budget})"
                    );
                }
            }
        }
    }

    #[test]
    fn mid_spill_kill_cancels_and_reclaims_temp_space() {
        // A self-join whose build is far over a tiny budget, killed while
        // it spills: the query must surface Cancelled and every temp spill
        // block must be freed (tables stay).
        let db = Database::open_in_memory();
        db.execute("CREATE TABLE big (k BIGINT NOT NULL, v BIGINT NOT NULL)").unwrap();
        let n = 200_000i64;
        let k = ColData::I64((0..n).map(|i| i % 5000).collect());
        let v = ColData::I64((0..n).collect());
        bulk_load(&db, "big", &[k, v], &[None, None]).unwrap();
        db.execute("SET mem_budget = 8192").unwrap();
        let baseline = db.disk().used_bytes();

        let db2 = db.clone();
        let handle = std::thread::spawn(move || {
            db2.execute("SELECT COUNT(*) FROM big a JOIN big b ON a.k = b.k")
        });
        // Bounded poll: the join takes seconds under this budget, but if
        // the spill path ever gets fast enough to finish first, fail with
        // a message instead of spinning forever.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let qid = loop {
            let running: Vec<_> = db
                .monitor
                .list_queries()
                .into_iter()
                .filter(|q| q.state == vectorwise::core::monitor::QueryState::Running)
                .collect();
            if let Some(q) = running.first() {
                break q.id;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "query never observed Running; grow the input so the kill lands mid-spill"
            );
            std::thread::sleep(std::time::Duration::from_micros(200));
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        db.kill(qid).unwrap();
        let result = handle.join().unwrap();
        assert!(
            matches!(result, Err(VwError::Cancelled)),
            "killed spilling query must report cancellation, got {result:?}"
        );
        assert_eq!(
            db.disk().used_bytes(),
            baseline,
            "temp spill blocks must be reclaimed when the killed query unwinds"
        );
    }
}

// ---------------------------------------------------------------------------
// Differential tests for the cost-based optimizer (PR 8): multi-join and
// filtered queries over NULL-bearing data answered three ways — cost-based
// plans (`SET optimizer = 1`), rule-only plans (`SET optimizer = 0`), and
// the tuple-at-a-time volcano path (HEAP twin tables) — at DOP 1 and 4.
// Join reordering, build-side swaps, filter pushdown into zone-map hints
// and join-aware column pruning must all be invisible in the answers.
// ---------------------------------------------------------------------------

mod optimizer_differential {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;
    use vectorwise::common::{EngineConfig, Value};
    use vectorwise::core::Database;
    use vectorwise::storage::SimulatedDisk;

    fn sort_rows(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        rows
    }

    /// A star schema (`fact` referencing `dim1`/`dim2`) materialized twice:
    /// as VECTORWISE tables and as HEAP twins (`*_h`) holding identical
    /// NULL-bearing data, so the same query text can be answered by both
    /// engines. CHECKPOINT builds real statistics for the cost model.
    fn star_db(seed: u64) -> Arc<Database> {
        let db = Database::open_in_memory();
        for (name, ty) in [("fact", "VECTORWISE"), ("fact_h", "HEAP")] {
            db.execute(&format!(
                "CREATE TABLE {name} (k1 BIGINT, k2 BIGINT, v BIGINT) WITH TYPE = {ty}"
            ))
            .unwrap();
        }
        for (name, ty) in
            [("dim1", "VECTORWISE"), ("dim1_h", "HEAP"), ("dim2", "VECTORWISE"), ("dim2_h", "HEAP")]
        {
            db.execute(&format!(
                "CREATE TABLE {name} (k BIGINT NOT NULL, a BIGINT) WITH TYPE = {ty}"
            ))
            .unwrap();
        }
        let mut rng = SmallRng::seed_from_u64(0x0b71 ^ seed);
        let opt = |rng: &mut SmallRng, null_pct: u32, hi: i64| {
            if rng.gen_range(0..100) < null_pct {
                "NULL".to_string()
            } else {
                rng.gen_range(0..hi).to_string()
            }
        };
        let facts: Vec<String> = (0..400)
            .map(|_| {
                format!(
                    "({}, {}, {})",
                    opt(&mut rng, 10, 40),
                    opt(&mut rng, 10, 8),
                    opt(&mut rng, 5, 1000)
                )
            })
            .collect();
        let dim1: Vec<String> =
            (0..40).map(|k| format!("({k}, {})", opt(&mut rng, 10, 100))).collect();
        let dim2: Vec<String> =
            (0..8).map(|k| format!("({k}, {})", opt(&mut rng, 10, 5))).collect();
        for (t, lits) in [("fact", &facts), ("dim1", &dim1), ("dim2", &dim2)] {
            db.execute(&format!("INSERT INTO {t} VALUES {}", lits.join(", "))).unwrap();
            db.execute(&format!("INSERT INTO {t}_h VALUES {}", lits.join(", "))).unwrap();
        }
        db.execute("CHECKPOINT").unwrap();
        db
    }

    #[test]
    fn multi_join_filtered_queries_agree_across_optimizer_dop_and_volcano() {
        // Each query exists in a VECTORWISE and a HEAP spelling; the heap
        // twin is the volcano reference answer.
        let queries = [
            "SELECT COUNT(*), SUM(f.v) FROM fact@ f \
             JOIN dim1@ d1 ON f.k1 = d1.k JOIN dim2@ d2 ON f.k2 = d2.k \
             WHERE d1.a > 50 AND f.v < 900",
            "SELECT d2.a, COUNT(*), SUM(f.v) FROM fact@ f \
             JOIN dim1@ d1 ON f.k1 = d1.k JOIN dim2@ d2 ON f.k2 = d2.k \
             WHERE f.v >= 100 GROUP BY d2.a",
            "SELECT COUNT(*) FROM fact@ f LEFT JOIN dim1@ d1 ON f.k1 = d1.k \
             WHERE f.v < 500",
            "SELECT COUNT(*) FROM fact@ WHERE k1 NOT IN (SELECT k FROM dim1@ WHERE a > 70)",
        ];
        for seed in 0..3u64 {
            let db = star_db(seed);
            for q in queries {
                let volcano = {
                    db.execute("SET optimizer = 0").unwrap();
                    let heap_q = q.replace("@", "_h");
                    sort_rows(db.execute(&heap_q).unwrap().rows().to_vec())
                };
                for dop in [1usize, 4] {
                    db.execute(&format!("SET parallelism = {dop}")).unwrap();
                    db.execute("SET partition_min_rows = 0").unwrap();
                    for optimizer in [0, 1] {
                        db.execute(&format!("SET optimizer = {optimizer}")).unwrap();
                        let got =
                            sort_rows(db.execute(&q.replace("@", "")).unwrap().rows().to_vec());
                        assert_eq!(
                            got, volcano,
                            "optimizer={optimizer} dop={dop} seed={seed} diverged from \
                             volcano: {q}"
                        );
                    }
                }
            }
        }
    }

    /// Zone-map safety: with tiny packs and clustered keys, pushed-down
    /// range predicates turn into MinMax hints that skip most packs. The
    /// skipping must never change answers — compare against rule-only plans
    /// and the volcano twin over multi-pack data.
    #[test]
    fn zone_map_skips_over_multi_pack_data_are_answer_preserving() {
        // 256-row packs: 4000 rows => ~16 packs.
        let cfg = EngineConfig { pack_size: 256, ..EngineConfig::default() };
        let db = Database::open_with(cfg, SimulatedDisk::instant());
        db.execute("CREATE TABLE t (k BIGINT NOT NULL, v BIGINT) WITH TYPE = VECTORWISE").unwrap();
        db.execute("CREATE TABLE t_h (k BIGINT NOT NULL, v BIGINT) WITH TYPE = HEAP").unwrap();
        db.execute("CREATE TABLE d (k BIGINT NOT NULL, lbl BIGINT) WITH TYPE = VECTORWISE")
            .unwrap();
        db.execute("CREATE TABLE d_h (k BIGINT NOT NULL, lbl BIGINT) WITH TYPE = HEAP").unwrap();
        let mut rng = SmallRng::seed_from_u64(0xfade);
        // Clustered: pack p holds keys [256p, 256p+255], so zone maps are
        // tight and a narrow range predicate skips nearly every pack.
        let rows: Vec<String> = (0..4000i64)
            .map(|k| {
                let v = if rng.gen_range(0..20) == 0 {
                    "NULL".to_string()
                } else {
                    rng.gen_range(0..100i64).to_string()
                };
                format!("({k}, {v})")
            })
            .collect();
        for chunk in rows.chunks(1000) {
            db.execute(&format!("INSERT INTO t VALUES {}", chunk.join(", "))).unwrap();
            db.execute(&format!("INSERT INTO t_h VALUES {}", chunk.join(", "))).unwrap();
        }
        let dims: Vec<String> = (0..4000i64).step_by(7).map(|k| format!("({k}, {k})")).collect();
        db.execute(&format!("INSERT INTO d VALUES {}", dims.join(", "))).unwrap();
        db.execute(&format!("INSERT INTO d_h VALUES {}", dims.join(", "))).unwrap();
        db.execute("CHECKPOINT").unwrap();

        let queries = [
            "SELECT COUNT(*), SUM(v) FROM t@ WHERE k >= 1000 AND k < 1100",
            "SELECT COUNT(*), SUM(v) FROM t@ WHERE k = 2048 OR k = 3333",
            "SELECT COUNT(*), SUM(t@.v) FROM t@ JOIN d@ ON t@.k = d@.k \
             WHERE t@.k >= 512 AND t@.k <= 768 AND d@.lbl < 4000",
        ];
        for q in queries {
            let volcano = {
                db.execute("SET optimizer = 0").unwrap();
                sort_rows(db.execute(&q.replace("@", "_h")).unwrap().rows().to_vec())
            };
            for dop in [1usize, 4] {
                db.execute(&format!("SET parallelism = {dop}")).unwrap();
                for optimizer in [0, 1] {
                    db.execute(&format!("SET optimizer = {optimizer}")).unwrap();
                    let got = sort_rows(db.execute(&q.replace("@", "")).unwrap().rows().to_vec());
                    assert_eq!(
                        got, volcano,
                        "zone-map run diverged (optimizer={optimizer} dop={dop}): {q}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Differential tests for compressed execution (PR 9): the encoded path
// (dict codes and RLE runs flowing through Select/Project/HashJoin/
// HashAggregate, late-materialized at emit/Sort/spill) vs the flat path
// (`SET compressed_exec = 0`, inflate-at-scan) vs the tuple-at-a-time
// volcano engine (HEAP twin tables), over randomized NULL-bearing low-
// and high-cardinality string and clustered int data, at DOP 1 and 4 —
// plus all five join types over dictionary-coded keys at the operator
// level (shared and per-batch dictionaries), and a mem-budget run that
// proves encoded build batches round-trip through grace spill files.
// ---------------------------------------------------------------------------

mod compressed_differential {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;
    use std::sync::Arc;
    use vectorwise::common::{ColData, EngineConfig, Field, Schema, TypeId, Value};
    use vectorwise::core::Database;
    use vectorwise::exec::cancel::CancelToken;
    use vectorwise::exec::expr::{ExprCtx, PhysExpr};
    use vectorwise::exec::op::{drain, HashJoin, JoinType, Operator};
    use vectorwise::exec::program::ExprProgram;
    use vectorwise::exec::vector::Batch;
    use vectorwise::exec::Vector;
    use vectorwise::storage::SimulatedDisk;
    use vectorwise::volcano::{collect_rows, TupleHashJoin, TupleJoinKind, TupleValues};

    fn sort_rows(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort_by_key(|r| format!("{r:?}"));
        rows
    }

    fn kv_schema() -> Schema {
        Schema::new(vec![Field::nullable("k", TypeId::Str), Field::nullable("v", TypeId::Str)])
            .unwrap()
    }

    /// Random string-keyed rows: 10-value key domain (forced collisions
    /// and dictionary sharing), ~12% NULL keys, unique payloads.
    fn random_rows(rng: &mut SmallRng, n: usize, tag: &str) -> Vec<Vec<Value>> {
        const DOMAIN: [&str; 10] =
            ["ash", "bay", "cedar", "elm", "fir", "gum", "hazel", "ivy", "kapok", "larch"];
        (0..n)
            .map(|i| {
                let k = if rng.gen_range(0..100) < 12 {
                    Value::Null
                } else {
                    Value::Str(DOMAIN[rng.gen_range(0..DOMAIN.len())].to_string())
                };
                vec![k, Value::Str(format!("{tag}{i}"))]
            })
            .collect()
    }

    /// Serve pre-encoded batches: the key column arrives dictionary-coded
    /// the way the pack reader hands it to a scan. `shared` uses one
    /// dictionary Arc across every batch (the same-dictionary code-compare
    /// join path); otherwise each batch builds its own first-appearance
    /// dictionary (the per-pack remap fallback).
    struct DictBatches {
        schema: Schema,
        batches: Vec<Batch>,
        pos: usize,
    }

    impl DictBatches {
        fn new(rows: &[Vec<Value>], chunk: usize, shared: Option<Arc<Vec<String>>>) -> DictBatches {
            let batches = rows
                .chunks(chunk.max(1))
                .map(|ch| {
                    let mut dict: Vec<String> =
                        shared.as_ref().map(|d| (**d).clone()).unwrap_or_default();
                    let mut index: HashMap<String, u32> =
                        dict.iter().enumerate().map(|(i, s)| (s.clone(), i as u32)).collect();
                    let mut codes = Vec::with_capacity(ch.len());
                    let mut nulls = Vec::with_capacity(ch.len());
                    let mut payload = Vector::new(ColData::new(TypeId::Str));
                    for r in ch {
                        match &r[0] {
                            Value::Null => {
                                codes.push(0);
                                nulls.push(true);
                            }
                            Value::Str(s) => {
                                let c = *index.entry(s.clone()).or_insert_with(|| {
                                    dict.push(s.clone());
                                    (dict.len() - 1) as u32
                                });
                                codes.push(c);
                                nulls.push(false);
                            }
                            other => panic!("{other:?}"),
                        }
                        payload.push(&r[1]).unwrap();
                    }
                    // A batch of only-NULL keys still needs a nonempty
                    // dictionary for code 0 to index into.
                    if dict.is_empty() {
                        dict.push(String::new());
                    }
                    let arc = match &shared {
                        Some(d) if dict.len() == d.len() => d.clone(),
                        _ => Arc::new(dict),
                    };
                    let k = Vector::from_dict(codes, arc, Some(nulls));
                    assert!(k.is_encoded(), "key column must enter the join dict-coded");
                    Batch::new(vec![k, payload])
                })
                .collect();
            DictBatches { schema: kv_schema(), batches, pos: 0 }
        }
    }

    impl Operator for DictBatches {
        fn schema(&self) -> &Schema {
            &self.schema
        }
        fn name(&self) -> &'static str {
            "DictBatches"
        }
        fn next(&mut self) -> vectorwise::common::Result<Option<Batch>> {
            if self.pos >= self.batches.len() {
                return Ok(None);
            }
            self.pos += 1;
            Ok(Some(self.batches[self.pos - 1].clone()))
        }
    }

    fn dict_join(
        left: &[Vec<Value>],
        right: &[Vec<Value>],
        jt: JoinType,
        chunk: usize,
        shared: Option<&Arc<Vec<String>>>,
    ) -> Vec<Vec<Value>> {
        let prog = |e: &PhysExpr| ExprProgram::compile(e, &ExprCtx::default());
        let schema = kv_schema();
        let out_schema = if jt.emits_right() { schema.join(&schema) } else { schema };
        let l = Box::new(DictBatches::new(left, chunk, shared.cloned()));
        let r = Box::new(DictBatches::new(right, chunk, shared.cloned()));
        let mut j = HashJoin::new(
            l,
            r,
            vec![prog(&PhysExpr::ColRef(0, TypeId::Str))],
            vec![prog(&PhysExpr::ColRef(0, TypeId::Str))],
            jt,
            out_schema,
            CancelToken::new(),
        );
        let out = drain(&mut j).unwrap();
        (0..out.rows()).map(|i| out.row_values(i)).collect()
    }

    #[test]
    fn every_join_type_agrees_with_volcano_over_dict_coded_keys() {
        let cases = [
            (JoinType::Inner, TupleJoinKind::Inner),
            (JoinType::LeftOuter, TupleJoinKind::LeftOuter),
            (JoinType::LeftSemi, TupleJoinKind::LeftSemi),
            (JoinType::LeftAnti, TupleJoinKind::LeftAnti),
            (JoinType::NullAwareLeftAnti, TupleJoinKind::NullAwareLeftAnti),
        ];
        let domain: Arc<Vec<String>> = Arc::new(
            ["ash", "bay", "cedar", "elm", "fir", "gum", "hazel", "ivy", "kapok", "larch"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        for seed in 0..3u64 {
            let mut rng = SmallRng::seed_from_u64(0xd1c7 + seed);
            let left = random_rows(&mut rng, 157, "l");
            let right = random_rows(&mut rng, 93, "r");
            for (jt, kind) in cases {
                let volcano = {
                    let l = Box::new(TupleValues::new(kv_schema(), left.clone()));
                    let r = Box::new(TupleValues::new(kv_schema(), right.clone()));
                    let mut j = TupleHashJoin::with_kind(l, r, 0, 0, kind);
                    sort_rows(collect_rows(&mut j).unwrap())
                };
                for chunk in [7usize, 64] {
                    // Both sides share one dictionary Arc: the join
                    // compares codes without touching strings.
                    let same = sort_rows(dict_join(&left, &right, jt, chunk, Some(&domain)));
                    assert_eq!(
                        same, volcano,
                        "shared-dict {jt:?} diverged (seed {seed}, chunk {chunk})"
                    );
                    // Every batch carries its own dictionary: the remap
                    // fallback must agree too.
                    let per = sort_rows(dict_join(&left, &right, jt, chunk, None));
                    assert_eq!(
                        per, volcano,
                        "per-batch-dict {jt:?} diverged (seed {seed}, chunk {chunk})"
                    );
                }
            }
        }
    }

    /// Twin-table database: VECTORWISE tables (multi-pack, 256-row packs,
    /// so low-cardinality strings dictionary-code and the clustered int
    /// column RLE-codes in stable storage) plus HEAP twins (`*_h`) holding
    /// identical rows for the volcano reference. Columns of `t`:
    /// `s` low-cardinality string (~10% NULL), `hs` high-cardinality
    /// string (~8% NULL, distinct per-pack dictionaries), `c` clustered
    /// NOT NULL int (RLE runs of ~40), `v` int values (~10% NULL).
    fn twin_db(seed: u64, rows_n: usize) -> Arc<Database> {
        const DOMAIN: [&str; 12] = [
            "ash", "bay", "cedar", "elm", "fir", "gum", "hazel", "ivy", "kapok", "larch", "maple",
            "oak",
        ];
        let cfg = EngineConfig { pack_size: 256, ..EngineConfig::default() };
        let db = Database::open_with(cfg, SimulatedDisk::instant());
        for (name, ty) in [("t", "VECTORWISE"), ("t_h", "HEAP")] {
            db.execute(&format!(
                "CREATE TABLE {name} (s VARCHAR, hs VARCHAR, c BIGINT NOT NULL, v BIGINT) \
                 WITH TYPE = {ty}"
            ))
            .unwrap();
        }
        for (name, ty) in [("r", "VECTORWISE"), ("r_h", "HEAP")] {
            db.execute(&format!("CREATE TABLE {name} (s VARCHAR, w BIGINT) WITH TYPE = {ty}"))
                .unwrap();
        }
        let mut rng = SmallRng::seed_from_u64(0xc0de ^ seed);
        let t_rows: Vec<String> = (0..rows_n)
            .map(|i| {
                let s = if rng.gen_range(0..100) < 10 {
                    "NULL".to_string()
                } else {
                    format!("'{}'", DOMAIN[rng.gen_range(0..DOMAIN.len())])
                };
                let hs = if rng.gen_range(0..100) < 8 {
                    "NULL".to_string()
                } else {
                    format!("'h{:04}'", rng.gen_range(0..3000))
                };
                let c = (i / 40) as i64;
                let v = if rng.gen_range(0..100) < 10 {
                    "NULL".to_string()
                } else {
                    rng.gen_range(0..1000i64).to_string()
                };
                format!("({s}, {hs}, {c}, {v})")
            })
            .collect();
        let r_rows: Vec<String> = (0..40)
            .map(|_| {
                let s = if rng.gen_range(0..100) < 10 {
                    "NULL".to_string()
                } else {
                    format!("'{}'", DOMAIN[rng.gen_range(0..DOMAIN.len())])
                };
                format!("({s}, {})", rng.gen_range(0..10i64))
            })
            .collect();
        for (t, lits) in [("t", &t_rows), ("r", &r_rows)] {
            for chunk in lits.chunks(500) {
                db.execute(&format!("INSERT INTO {t} VALUES {}", chunk.join(", "))).unwrap();
                db.execute(&format!("INSERT INTO {t}_h VALUES {}", chunk.join(", "))).unwrap();
            }
        }
        // Flush deltas into stable packs: that is where columns pick up
        // their dictionary / RLE encodings for the scan to hand out.
        db.execute("CHECKPOINT").unwrap();
        db
    }

    const QUERIES: [&str; 12] = [
        // Dict-coded GROUP BY, unfiltered and under a dict range filter.
        "SELECT s, COUNT(*), SUM(v) FROM t@ GROUP BY s",
        "SELECT s, COUNT(*), SUM(v) FROM t@ WHERE s >= 'gum' GROUP BY s",
        // Multi-column group keys take the general (non-code-table) resolve
        // path with dict-coded inputs — the TPC-H Q1 shape (regression:
        // the scalar insert pass once read the empty dict placeholder).
        "SELECT s, c, COUNT(*), SUM(v) FROM t@ GROUP BY s, c",
        "SELECT s, hs, COUNT(*) FROM t@ WHERE hs < 'h0200' GROUP BY s, hs",
        // LIKE over dictionary entries (one match test per distinct value).
        "SELECT COUNT(*) FROM t@ WHERE s LIKE '%a%'",
        "SELECT COUNT(*) FROM t@ WHERE s NOT LIKE '%a%'",
        // High-cardinality strings: per-pack dictionaries differ.
        "SELECT COUNT(*), MIN(hs), MAX(hs) FROM t@ WHERE hs > 'h1500'",
        // RLE-coded clustered int under a range filter (whole-run skips).
        "SELECT c, COUNT(*), SUM(v) FROM t@ WHERE c >= 12 GROUP BY c",
        // Dict-keyed joins: inner, outer, semi (IN), null-aware anti.
        "SELECT COUNT(*) FROM t@ a JOIN r@ b ON a.s = b.s",
        "SELECT a.s, b.w FROM t@ a LEFT JOIN r@ b ON a.s = b.s",
        "SELECT COUNT(*) FROM t@ WHERE s IN (SELECT s FROM r@)",
        "SELECT COUNT(*) FROM t@ WHERE s NOT IN (SELECT s FROM r@ WHERE w > 5)",
    ];

    #[test]
    fn encoded_flat_and_volcano_answers_agree_at_every_dop() {
        for seed in 0..2u64 {
            let db = twin_db(seed, 1200);
            for q in QUERIES {
                let volcano = sort_rows(db.execute(&q.replace('@', "_h")).unwrap().rows().to_vec());
                for dop in [1usize, 4] {
                    db.execute(&format!("SET parallelism = {dop}")).unwrap();
                    for compressed in [1i64, 0] {
                        db.execute(&format!("SET compressed_exec = {compressed}")).unwrap();
                        let got =
                            sort_rows(db.execute(&q.replace('@', "")).unwrap().rows().to_vec());
                        assert_eq!(
                            got, volcano,
                            "compressed_exec={compressed} dop={dop} seed={seed} diverged \
                             from volcano: {q}"
                        );
                    }
                }
            }
            // Sort/TopN is a materialization boundary: encoded batches must
            // inflate before ordering.
            db.execute("SET compressed_exec = 1").unwrap();
            let a = db.execute("SELECT s, v FROM t WHERE v > 500 ORDER BY s, v LIMIT 10").unwrap();
            db.execute("SET compressed_exec = 0").unwrap();
            let b = db.execute("SELECT s, v FROM t WHERE v > 500 ORDER BY s, v LIMIT 10").unwrap();
            assert_eq!(a.rows(), b.rows(), "ORDER BY output differs between encoded and flat");
        }
    }

    #[test]
    fn spilled_encoded_builds_round_trip_and_match_unbounded_answers() {
        let db = twin_db(7, 1500);
        db.execute("SET compressed_exec = 1").unwrap();
        let spill_queries = [
            // Dict-keyed join and GROUP BY whose builds dwarf the budget:
            // staged (still-encoded) batches flatten into spill chunks and
            // must rehydrate to the same answers.
            "SELECT COUNT(*) FROM t a JOIN t b ON a.s = b.s",
            "SELECT s, COUNT(*), SUM(v) FROM t GROUP BY s",
            "SELECT hs, COUNT(*) FROM t GROUP BY hs",
        ];
        let unbounded: Vec<Vec<Vec<Value>>> = spill_queries
            .iter()
            .map(|q| sort_rows(db.execute(q).unwrap().rows().to_vec()))
            .collect();
        let baseline = db.disk().used_bytes();
        for budget in [2 * 1024usize, 16 * 1024] {
            db.execute(&format!("SET mem_budget = {budget}")).unwrap();
            for (q, expect) in spill_queries.iter().zip(&unbounded) {
                let got = sort_rows(db.execute(q).unwrap().rows().to_vec());
                assert_eq!(&got, expect, "spilled encoded run diverged (budget {budget}): {q}");
            }
            assert_eq!(
                db.disk().used_bytes(),
                baseline,
                "temp spill blocks must be reclaimed (budget {budget})"
            );
        }
    }
}

/// Randomized differential tests for the PR's decorrelation and
/// set-operation paths: random NULL-bearing tables, engine SQL across
/// dop {1,4} × optimizer {0,1}, answers checked against naive Rust
/// references that spell out the SQL three-valued semantics row by row.
mod subquery_differential {
    use super::db_with;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;
    use vectorwise::common::Value;
    use vectorwise::core::Database;

    /// Small key domain (forced collisions), ~15% NULLs per column.
    fn random_pairs(rng: &mut SmallRng, n: usize) -> Vec<(Option<i64>, Option<i64>)> {
        (0..n)
            .map(|_| {
                let v = |rng: &mut SmallRng| {
                    if rng.gen_range(0..100) < 15 {
                        None
                    } else {
                        Some(rng.gen_range(0..8i64))
                    }
                };
                (v(rng), v(rng))
            })
            .collect()
    }

    fn load(
        pairs_t: &[(Option<i64>, Option<i64>)],
        pairs_s: &[(Option<i64>, Option<i64>)],
    ) -> Arc<Database> {
        let lit = |v: Option<i64>| v.map_or("NULL".to_string(), |x| x.to_string());
        let values = |pairs: &[(Option<i64>, Option<i64>)]| {
            pairs
                .iter()
                .map(|&(a, b)| format!("({}, {})", lit(a), lit(b)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        db_with(
            "CREATE TABLE t (a BIGINT, b BIGINT); CREATE TABLE s (c BIGINT, d BIGINT)",
            &[
                &format!("INSERT INTO t VALUES {}", values(pairs_t)),
                &format!("INSERT INTO s VALUES {}", values(pairs_s)),
            ],
        )
    }

    fn pair_row(&(a, b): &(Option<i64>, Option<i64>)) -> Vec<Value> {
        let v = |x: Option<i64>| x.map_or(Value::Null, Value::I64);
        vec![v(a), v(b)]
    }

    fn sort_rows(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort_by_key(|r| format!("{r:?}"));
        rows
    }

    /// Run `sql` at every (dop, optimizer) lane and assert each matches
    /// the reference rows.
    fn assert_lanes(db: &Arc<Database>, sql: &str, expect: &[Vec<Value>], ctx: &str) {
        let expect = sort_rows(expect.to_vec());
        for dop in [1usize, 4] {
            for optimizer in [0, 1] {
                db.execute(&format!("SET parallelism = {dop}")).unwrap();
                db.execute(&format!("SET optimizer = {optimizer}")).unwrap();
                let got = sort_rows(db.execute(sql).unwrap().rows().to_vec());
                assert_eq!(
                    got, expect,
                    "{ctx} diverged from reference (dop {dop}, optimizer {optimizer}): {sql}"
                );
            }
        }
    }

    #[test]
    fn correlated_in_agrees_with_naive_reference() {
        for seed in 0..4u64 {
            let mut rng = SmallRng::seed_from_u64(0xc0_11a7 + seed);
            let t = random_pairs(&mut rng, 163);
            let s = random_pairs(&mut rng, 97);
            let db = load(&t, &s);
            // b IN (SELECT d FROM s WHERE c = a): NULLs never compare equal,
            // so a row qualifies only with non-NULL a, b and an exact match.
            let expect: Vec<Vec<Value>> = t
                .iter()
                .filter(|&&(a, b)| {
                    s.iter().any(|&(c, d)| a.is_some() && a == c && b.is_some() && b == d)
                })
                .map(pair_row)
                .collect();
            assert_lanes(
                &db,
                "SELECT a, b FROM t WHERE b IN (SELECT d FROM s WHERE c = a)",
                &expect,
                "correlated IN",
            );
        }
    }

    #[test]
    fn correlated_exists_and_not_exists_agree_with_naive_reference() {
        for seed in 0..4u64 {
            let mut rng = SmallRng::seed_from_u64(0xe7_1575 + seed);
            let t = random_pairs(&mut rng, 151);
            let s = random_pairs(&mut rng, 89);
            let db = load(&t, &s);
            // EXISTS (… WHERE c = a AND d > 3): NULL d makes the conjunct
            // UNKNOWN, which EXISTS treats as no row.
            let hit = |&(a, _): &(Option<i64>, Option<i64>)| {
                s.iter().any(|&(c, d)| a.is_some() && a == c && d.is_some_and(|d| d > 3))
            };
            let expect_e: Vec<Vec<Value>> = t.iter().filter(|r| hit(r)).map(pair_row).collect();
            let expect_ne: Vec<Vec<Value>> = t.iter().filter(|r| !hit(r)).map(pair_row).collect();
            assert_lanes(
                &db,
                "SELECT a, b FROM t WHERE EXISTS (SELECT 1 FROM s WHERE c = a AND d > 3)",
                &expect_e,
                "correlated EXISTS",
            );
            assert_lanes(
                &db,
                "SELECT a, b FROM t WHERE NOT EXISTS (SELECT 1 FROM s WHERE c = a AND d > 3)",
                &expect_ne,
                "correlated NOT EXISTS",
            );
        }
    }

    #[test]
    fn correlated_scalar_agrees_with_naive_reference() {
        for seed in 0..4u64 {
            let mut rng = SmallRng::seed_from_u64(0x5ca1a9 + seed);
            let t = random_pairs(&mut rng, 127);
            let s = random_pairs(&mut rng, 83);
            let db = load(&t, &s);
            // b < (SELECT SUM(d) FROM s WHERE c = a): SUM skips NULL d; a
            // group with no rows (or only NULL d) yields NULL, and a NULL
            // comparison filters the row out.
            let expect: Vec<Vec<Value>> = t
                .iter()
                .filter(|&&(a, b)| {
                    if a.is_none() || b.is_none() {
                        return false;
                    }
                    let matched: Vec<i64> =
                        s.iter().filter(|&&(c, _)| c == a).filter_map(|&(_, d)| d).collect();
                    !matched.is_empty() && b.unwrap() < matched.iter().sum::<i64>()
                })
                .map(pair_row)
                .collect();
            assert_lanes(
                &db,
                "SELECT a, b FROM t WHERE b < (SELECT SUM(d) FROM s WHERE c = a)",
                &expect,
                "correlated scalar SUM",
            );
        }
    }

    #[test]
    fn set_operations_agree_with_naive_reference() {
        for seed in 0..4u64 {
            let mut rng = SmallRng::seed_from_u64(0x5e7_095 + seed);
            let t = random_pairs(&mut rng, 141);
            let s = random_pairs(&mut rng, 117);
            let db = load(&t, &s);
            // Set operations deduplicate with NULL treated as one value
            // (SQL "not distinct from" grouping, unlike `=`).
            let distinct = |rows: &[(Option<i64>, Option<i64>)], left: bool| {
                let mut seen: Vec<Option<i64>> = Vec::new();
                for &(a, b) in rows {
                    let v = if left { a } else { b };
                    if !seen.contains(&v) {
                        seen.push(v);
                    }
                }
                seen
            };
            let tv = distinct(&t, true);
            let sv = distinct(&s, false);
            let to_rows = |vals: Vec<Option<i64>>| -> Vec<Vec<Value>> {
                vals.into_iter().map(|v| vec![v.map_or(Value::Null, Value::I64)]).collect()
            };
            let mut union = tv.clone();
            for &v in &sv {
                if !union.contains(&v) {
                    union.push(v);
                }
            }
            let intersect: Vec<_> = tv.iter().copied().filter(|v| sv.contains(v)).collect();
            let except: Vec<_> = tv.iter().copied().filter(|v| !sv.contains(v)).collect();
            let union_all: Vec<Vec<Value>> = t
                .iter()
                .map(|&(a, _)| vec![a.map_or(Value::Null, Value::I64)])
                .chain(s.iter().map(|&(_, d)| vec![d.map_or(Value::Null, Value::I64)]))
                .collect();
            assert_lanes(&db, "SELECT a FROM t UNION SELECT d FROM s", &to_rows(union), "UNION");
            assert_lanes(&db, "SELECT a FROM t UNION ALL SELECT d FROM s", &union_all, "UNION ALL");
            assert_lanes(
                &db,
                "SELECT a FROM t INTERSECT SELECT d FROM s",
                &to_rows(intersect),
                "INTERSECT",
            );
            assert_lanes(&db, "SELECT a FROM t EXCEPT SELECT d FROM s", &to_rows(except), "EXCEPT");
        }
    }

    #[test]
    fn interval_arithmetic_matches_manual_dates() {
        let db = db_with("CREATE TABLE dt (d DATE)", &["INSERT INTO dt VALUES (DATE '1996-01-31'), (DATE '1996-02-29'), (DATE '1995-12-01')"]);
        // Month arithmetic clamps to end of month; day arithmetic is exact.
        let cases = [
            (
                "SELECT d + INTERVAL '30' DAY AS x FROM dt ORDER BY x",
                vec!["1995-12-31", "1996-03-01", "1996-03-30"],
            ),
            (
                "SELECT d + INTERVAL '1' MONTH AS x FROM dt ORDER BY x",
                vec!["1996-01-01", "1996-02-29", "1996-03-29"],
            ),
            (
                "SELECT d - INTERVAL '1' YEAR AS x FROM dt ORDER BY x",
                vec!["1994-12-01", "1995-01-31", "1995-02-28"],
            ),
        ];
        for (sql, expect) in cases {
            let r = db.execute(sql).unwrap();
            let got: Vec<String> = r.rows().iter().map(|row| row[0].to_string()).collect();
            assert_eq!(got, expect, "{sql}");
        }
        // Folded at bind time: a date-literal ± interval is a plain DATE
        // literal, eligible for scan-range hints.
        let r = db
            .execute("SELECT COUNT(*) FROM dt WHERE d >= DATE '1996-01-01' - INTERVAL '31' DAY")
            .unwrap();
        assert_eq!(r.rows()[0][0], Value::I64(3));
    }
}
