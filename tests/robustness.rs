//! Robustness integration tests: statement timeouts, KILL races, the
//! bounded event log, fault-injected end-to-end queries, and the
//! zero-machinery guarantees for fault-free/no-timeout configurations.
//! The failure model these tests pin down is documented in
//! ARCHITECTURE.md ("Failure model").

use std::sync::Arc;
use std::time::{Duration, Instant};
use vectorwise::common::{ColData, EngineConfig, FaultConfig, Value, VwError};
use vectorwise::core::monitor::QueryState;
use vectorwise::core::{bulk_load, Database};
use vectorwise::exec::MemBudget;
use vectorwise::storage::SimulatedDisk;

/// A table big enough that a self-join at DOP 1 runs for hundreds of ms.
fn slow_db() -> Arc<Database> {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE big (k BIGINT NOT NULL, v BIGINT NOT NULL)").unwrap();
    let n = 200_000i64;
    // 100 matches per key: a ~20M-row join output that runs for hundreds
    // of ms but emits modest per-call batches (cancellation latency is
    // bounded by one vector per stage, so the fan-out per probe batch
    // must stay small for the 2x-deadline bound to be meaningful).
    let k = ColData::I64((0..n).map(|i| i % 2000).collect());
    let v = ColData::I64((0..n).collect());
    bulk_load(&db, "big", &[k, v], &[None, None]).unwrap();
    db
}

const SLOW_JOIN: &str = "SELECT COUNT(*) FROM big a JOIN big b ON a.k = b.k";

#[test]
fn statement_timeout_fires_within_twice_the_deadline_and_reclaims() {
    let db = slow_db();
    let baseline = db.disk().used_bytes();
    // Sanity: the query takes much longer than the deadline we'll set.
    let t0 = Instant::now();
    db.execute(SLOW_JOIN).unwrap();
    let full = t0.elapsed();
    assert!(full > Duration::from_millis(250), "join too fast to test a timeout: {full:?}");

    db.execute("SET statement_timeout = 100").unwrap();
    let t0 = Instant::now();
    let err = db.execute(SLOW_JOIN).unwrap_err();
    let elapsed = t0.elapsed();
    assert!(matches!(err, VwError::Cancelled), "timeout surfaces as Cancelled: {err}");
    assert!(
        elapsed < Duration::from_millis(200),
        "must abort within 2x the 100ms deadline, took {elapsed:?}"
    );
    // Registry distinguishes the timeout from a user KILL and records the
    // configured deadline.
    let q = &db.monitor.list_queries()[0];
    assert_eq!(q.state, QueryState::TimedOut);
    assert_eq!(q.timeout, Some(Duration::from_millis(100)));
    // All resources reclaimed: no spill/temp blocks, no staged build
    // bytes, and the session is immediately usable again.
    assert_eq!(db.disk().used_bytes(), baseline, "no leaked blocks after timeout");
    assert_eq!(MemBudget::global_in_use(), 0, "budget fully uncharged after timeout");
    db.execute("SET statement_timeout = 0").unwrap();
    db.execute(SLOW_JOIN).unwrap();
}

#[test]
fn timeout_under_parallel_spilling_execution_reclaims_everything() {
    let db = slow_db();
    let baseline = db.disk().used_bytes();
    db.execute("SET parallelism = 4").unwrap();
    db.execute("SET mem_budget = 65536").unwrap();
    db.execute("SET statement_timeout = 80").unwrap();
    let t0 = Instant::now();
    let err = db.execute(SLOW_JOIN).unwrap_err();
    assert!(matches!(err, VwError::Cancelled), "got {err}");
    assert!(t0.elapsed() < Duration::from_millis(160), "2x deadline bound at DOP 4");
    assert_eq!(db.monitor.list_queries()[0].state, QueryState::TimedOut);
    assert_eq!(db.disk().used_bytes(), baseline, "spill blocks reclaimed");
    assert_eq!(MemBudget::global_in_use(), 0, "budget uncharged across workers");
}

#[test]
fn queries_without_timeout_carry_no_deadline_machinery() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute("SELECT x FROM t").unwrap();
    // No timeout configured → the registry records none (and no watchdog
    // thread existed: its lifetime is the TimeoutGuard, which
    // `CancelToken` without a deadline never spawns — unit-tested in
    // vw-exec::cancel).
    assert_eq!(db.monitor.list_queries()[0].timeout, None);
    assert_eq!(db.config().statement_timeout_ms, 0);
    // Fault machinery equally absent by default — unless CI's fault lane
    // armed it for the whole suite via the VW_FAULT_* env.
    if std::env::var_os("VW_FAULT_IO_ERR").is_none()
        && std::env::var_os("VW_FAULT_CORRUPT").is_none()
        && std::env::var_os("VW_FAULT_LATENCY_US").is_none()
        && std::env::var_os("VW_FAULT_NTH_WRITE").is_none()
    {
        assert!(!db.config().faults.is_active());
        assert!(!db.disk().faults_armed());
        assert_eq!(db.disk().stats().faults_injected, 0);
    }
}

#[test]
fn kill_of_finished_query_is_a_clean_error_and_state_survives() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    db.execute("SELECT SUM(x) FROM t").unwrap();
    let qid = db.monitor.list_queries()[0].id;
    // The KILL lands after completion: typed Exec error, terminal state
    // untouched, session unaffected.
    let err = db.execute(&format!("KILL {qid}")).unwrap_err();
    assert!(matches!(err, VwError::Exec(_)), "got {err}");
    assert_eq!(
        db.monitor.list_queries().iter().find(|q| q.id == qid).unwrap().state,
        QueryState::Finished
    );
    let err = db.execute("KILL 999999").unwrap_err();
    assert!(matches!(err, VwError::Exec(_)), "unknown id: {err}");
    db.execute("SELECT SUM(x) FROM t").unwrap();
}

#[test]
fn kill_racing_query_completion_never_panics_or_corrupts_state() {
    // Fire short queries while another thread KILLs whatever is listed:
    // every KILL either cancels a running query or returns the typed
    // Exec error — the teardown-vs-registry race must never panic or
    // leave a Running entry behind.
    let db = slow_db();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let killer = {
        let db = db.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut outcomes = (0u32, 0u32); // (cancelled, clean errors)
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                for q in db.monitor.list_queries() {
                    match db.kill(q.id) {
                        Ok(()) => outcomes.0 += 1,
                        Err(VwError::Exec(_)) => outcomes.1 += 1,
                        Err(other) => panic!("KILL race surfaced {other}"),
                    }
                }
                std::thread::sleep(Duration::from_micros(100));
            }
            outcomes
        })
    };
    let mut cancelled = 0;
    for _ in 0..30 {
        match db.execute("SELECT COUNT(*) FROM big WHERE v % 7 = 3") {
            Ok(r) => assert_eq!(r.scalar().unwrap(), &Value::I64(28571)),
            Err(VwError::Cancelled) => cancelled += 1,
            Err(other) => panic!("raced query surfaced {other}"),
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Release);
    let (kills, clean_errors) = killer.join().unwrap();
    // Every registry entry must have reached a terminal state.
    for q in db.monitor.list_queries() {
        assert_ne!(q.state, QueryState::Running, "stuck entry: {q:?}");
    }
    assert!(kills + clean_errors > 0, "the killer thread actually raced");
    let _ = cancelled;
}

#[test]
fn event_log_stays_bounded_through_set() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute("SET event_log_capacity = 10").unwrap();
    // Every failed execution logs one Error event; 50 failures must leave
    // at most 10 entries.
    for i in 0..50 {
        let err = db.execute(&format!("SELECT x / (x - 1) + {i} FROM t")).unwrap_err();
        assert!(matches!(err, VwError::DivideByZero));
    }
    let events = db.monitor.events();
    assert_eq!(events.len(), 10, "ring bound held");
    assert!(events.iter().all(|e| e.message.contains("E_DIV_ZERO")), "only failures retained");
    // Shrinking drops the oldest immediately.
    db.execute("SET event_log_capacity = 3").unwrap();
    assert_eq!(db.monitor.events().len(), 3);
}

#[test]
fn queries_survive_transient_fault_injection_end_to_end() {
    // Low-probability injected faults (read errors + corruption) must be
    // absorbed by the retry policy: answers identical to fault-free,
    // zero errors surfaced, retries visible in the disk stats.
    let faults = FaultConfig {
        seed: 0xBAD5EED,
        read_err: 0.05,
        write_err: 0.05,
        corrupt: 0.05,
        ..Default::default()
    };
    // A 1-byte buffer pool forces every scan to the (faulted) device, so
    // the retry path is exercised on every pack read.
    let mut cfg = EngineConfig::default().with_faults(faults);
    cfg.buffer_pool_bytes = 1;
    let db = Database::open_with(cfg, SimulatedDisk::instant());
    assert!(db.disk().faults_armed());
    db.execute("CREATE TABLE t (g BIGINT NOT NULL, x BIGINT NOT NULL)").unwrap();
    let n = 20_000i64;
    let g = ColData::I64((0..n).map(|i| i % 17).collect());
    let x = ColData::I64((0..n).collect());
    bulk_load(&db, "t", &[g, x], &[None, None]).unwrap();
    for _ in 0..20 {
        let r = db.execute("SELECT SUM(x) FROM t").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::I64(n * (n - 1) / 2));
        let r = db.execute("SELECT COUNT(*) FROM t WHERE g = 0").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::I64(1177));
    }
    let stats = db.disk().stats();
    assert!(stats.faults_injected > 0, "faults actually fired");
    assert!(stats.io_retries > 0, "retries absorbed them");
}

#[test]
fn terminal_write_fault_surfaces_as_typed_error_and_session_survives() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t (x BIGINT NOT NULL)").unwrap();
    bulk_load(&db, "t", &[ColData::I64(vec![1, 2, 3])], &[None]).unwrap();
    let baseline = db.disk().used_bytes();
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(3));
    // Arm a terminal fault on the next device write: the next bulk load's
    // pack write fails with a non-retryable Io error...
    db.disk().arm_faults(FaultConfig { seed: 1, fail_nth_write: Some(1), ..Default::default() });
    let err = bulk_load(&db, "t", &[ColData::I64(vec![4])], &[None]).unwrap_err();
    assert!(matches!(err, VwError::Io { transient: false, .. }), "got {err}");
    db.disk().disarm_faults();
    // ...and the failed load leaked nothing and left the pre-fault rows
    // readable.
    assert_eq!(db.disk().used_bytes(), baseline, "failed write leaked blocks");
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(3), "pre-fault rows intact");
    db.execute("INSERT INTO t VALUES (5)").unwrap();
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM t").unwrap().scalar().unwrap(),
        &Value::I64(4),
        "session fully usable after the fault"
    );
}

#[test]
fn env_overrides_configure_fault_injection() {
    // The VW_FAULT_* env contract: parsed into EngineConfig::default() by
    // FaultConfig::from_env (unit-tested in vw-common); here we pin the
    // builder plumbing end to end through Database::open_with.
    let cfg = EngineConfig::default().with_faults(FaultConfig {
        seed: 42,
        latency_us: 100,
        ..Default::default()
    });
    assert!(cfg.faults.is_active(), "latency alone arms the injector");
    let db = Database::open_with(cfg, SimulatedDisk::instant());
    assert!(db.disk().faults_armed());
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (7)").unwrap();
    let t0 = Instant::now();
    let r = db.execute("SELECT x FROM t").unwrap();
    assert_eq!(r.rows(), &[vec![Value::I64(7)]]);
    assert!(t0.elapsed() >= Duration::from_micros(100), "latency charged");
}
