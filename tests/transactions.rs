//! Cross-crate transaction behaviour: isolation, conflicts, checkpoints,
//! and DML/scan interaction through the PDT merge path.

use vectorwise::common::{Value, VwError};
use vectorwise::core::Database;

#[test]
fn updates_visible_through_merge_scan_before_checkpoint() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t (k BIGINT NOT NULL, v BIGINT)").unwrap();
    let cols = vec![
        vectorwise::common::ColData::I64((0..10_000).collect()),
        vectorwise::common::ColData::I64(vec![1; 10_000]),
    ];
    vectorwise::core::bulk_load(&db, "t", &cols, &[None, None]).unwrap();

    db.execute("UPDATE t SET v = 100 WHERE k < 10").unwrap();
    db.execute("DELETE FROM t WHERE k >= 9990").unwrap();
    db.execute("INSERT INTO t VALUES (20000, 7)").unwrap();

    let r = db.execute("SELECT COUNT(*), SUM(v) FROM t").unwrap();
    // 10000 - 10 deleted + 1 insert = 9991 rows;
    // sum = 9990*1 - 10*1 + 10*100 + 7 = 9990 - 10 + 1000 + 7.
    assert_eq!(r.rows()[0][0], Value::I64(9991));
    assert_eq!(r.rows()[0][1], Value::I64(9980 + 1000 + 7));

    // Checkpoint materializes the same image.
    db.execute("CHECKPOINT t").unwrap();
    let r2 = db.execute("SELECT COUNT(*), SUM(v) FROM t").unwrap();
    assert_eq!(r.rows(), r2.rows());
}

#[test]
fn open_transaction_sees_its_own_writes() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    let mut s = db.session();
    s.execute("BEGIN").unwrap();
    s.execute("INSERT INTO t VALUES (2)").unwrap();
    s.execute("UPDATE t SET x = 10 WHERE x = 1").unwrap();
    // The session's reads run against its private image.
    let r = s.execute("SELECT SUM(x) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(12));
    // Others still see the committed state.
    let r = db.execute("SELECT SUM(x) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(1));
    s.execute("COMMIT").unwrap();
    let r = db.execute("SELECT SUM(x) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(12));
}

#[test]
fn rollback_discards_everything() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    let mut s = db.session();
    s.execute("BEGIN").unwrap();
    s.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    s.execute("ROLLBACK").unwrap();
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(0));
    assert!(matches!(s.execute("COMMIT"), Err(VwError::TxnState(_))));
}

#[test]
fn conflicting_updates_abort_second_writer() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    let mut a = db.session();
    let mut b = db.session();
    a.execute("BEGIN; UPDATE t SET x = 10 WHERE x = 1").unwrap();
    b.execute("BEGIN; UPDATE t SET x = 20 WHERE x = 1").unwrap();
    a.execute("COMMIT").unwrap();
    assert!(matches!(b.execute("COMMIT"), Err(VwError::TxnConflict(_))));
    let r = db.execute("SELECT SUM(x) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(12));
}

#[test]
fn checkpoint_invalidates_inflight_transactions() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t (x BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    let mut s = db.session();
    s.execute("BEGIN; UPDATE t SET x = 5").unwrap();
    db.execute("CHECKPOINT t").unwrap();
    assert!(matches!(s.execute("COMMIT"), Err(VwError::TxnConflict(_))));
    let r = db.execute("SELECT SUM(x) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(1), "aborted txn left no trace");
}

#[test]
fn heavy_delta_workload_stays_consistent() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t (k BIGINT NOT NULL, v BIGINT)").unwrap();
    let n = 5_000i64;
    let cols = vec![
        vectorwise::common::ColData::I64((0..n).collect()),
        vectorwise::common::ColData::I64(vec![0; n as usize]),
    ];
    vectorwise::core::bulk_load(&db, "t", &cols, &[None, None]).unwrap();
    // Interleave DML and checkpoints.
    for round in 0..5 {
        db.execute(&format!("UPDATE t SET v = {round} WHERE k % 10 = {round}")).unwrap();
        db.execute(&format!("DELETE FROM t WHERE k % 100 = {}", 50 + round)).unwrap();
        db.execute(&format!("INSERT INTO t VALUES ({}, -1)", 100_000 + round)).unwrap();
        if round % 2 == 1 {
            db.execute("CHECKPOINT t").unwrap();
        }
        // Invariant: count matches an independent aggregate each round.
        let c1 = db.execute("SELECT COUNT(*) FROM t").unwrap();
        let c2 = db.execute("SELECT COUNT(*) FROM t WHERE k >= 0").unwrap();
        assert_eq!(c1.rows(), c2.rows(), "round {round}");
    }
    let r = db.execute("SELECT COUNT(*) FROM t WHERE v = -1").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(5));
}

#[test]
fn update_set_expressions_only_evaluate_selected_rows() {
    // The SET program runs under the WHERE predicate's selection: a row
    // the predicate excludes must not raise errors from the SET
    // expression (here: division by the excluded row's zero).
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t (a BIGINT, b BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 2), (1, 0)").unwrap();
    let n = db.execute("UPDATE t SET a = 10 / b WHERE b <> 0").unwrap();
    assert_eq!(n.affected, 1);
    let r = db.execute("SELECT a FROM t ORDER BY a").unwrap();
    assert_eq!(r.rows(), &[vec![Value::I64(1)], vec![Value::I64(5)]]);
    // An actually-selected zero denominator still errors.
    assert!(db.execute("UPDATE t SET a = 10 / b WHERE b = 0").is_err());
}

#[test]
fn update_expressions_use_old_row_values() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE t (a BIGINT, b BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
    // Swap-flavored update: both SETs read the pre-update row.
    db.execute("UPDATE t SET a = b, b = a").unwrap();
    let r = db.execute("SELECT a, b FROM t ORDER BY a").unwrap();
    assert_eq!(
        r.rows(),
        &[vec![Value::I64(10), Value::I64(1)], vec![Value::I64(20), Value::I64(2)],]
    );
}
