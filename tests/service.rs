//! Query-service stress suite: many sessions over one engine, a small
//! fixed worker pool, admission control, racing KILLs and tiny statement
//! timeouts — the multi-session counterpart of tests/chaos.rs.
//!
//! The stress test runs N session threads (N > pool workers) over shared
//! read-only OLAP tables plus one private DML table per session, with a
//! helper thread killing running SELECTs. Every successful read-only
//! answer must match a serial fault-free mirror database exactly; every
//! failure must be a typed `Cancelled` or `Admission` error. While the
//! run is in flight the suite samples the two service invariants —
//! admission grants never exceed the global limit, and process thread
//! count stays O(workers), not O(sessions × DOP) — and at the end it
//! checks for leaks: thread count back to baseline, memory budget fully
//! uncharged, admission queue empty.
//!
//! Deterministic companions cover the admission queue (typed E_ADMISSION
//! rejection when the queue is full, KILL dequeuing a queued query
//! cleanly), engine drop with queries mid-flight, and the SHOW
//! SESSIONS / SHOW QUERIES monitor views.
//!
//! The stress run is deterministic per seed; set `VW_SERVICE_SEED` to
//! reproduce (the seed in use is printed at the start).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vectorwise::common::{ColData, EngineConfig, Value, VwError};
use vectorwise::core::monitor::QueryState;
use vectorwise::core::{bulk_load, Database, QueryResult};
use vectorwise::exec::MemBudget;
use vectorwise::storage::SimulatedDisk;

/// Session threads in the stress run — deliberately more than the pool's
/// two workers, so the service multiplexes them.
const SESSIONS: usize = 6;
const STMTS_PER_SESSION: usize = 25;
const DEFAULT_SEED: u64 = 0x5E55_0115;

/// Process-global observables (thread count, `MemBudget::global_in_use`)
/// would cross-talk if the harness ran these tests concurrently; every
/// test takes this lock first.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner())
}

fn service_seed() -> u64 {
    match std::env::var("VW_SERVICE_SEED") {
        Ok(s) => s.trim().parse().unwrap_or_else(|_| panic!("bad VW_SERVICE_SEED: {s:?}")),
        Err(_) => DEFAULT_SEED,
    }
}

/// Current thread count of this process, from /proc/self/status.
fn live_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line in /proc/self/status")
}

/// Rows as a sorted multiset of debug-printed tuples (parallel execution
/// reorders rows; answers compare as sets).
fn row_set(r: &QueryResult) -> Vec<String> {
    let mut v: Vec<String> = r.rows().iter().map(|row| format!("{row:?}")).collect();
    v.sort();
    v
}

/// Wait until `cond` holds, failing the test after `deadline`.
fn wait_until(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Shared read-only OLAP tables, loaded identically on both databases.
fn load_shared_tables(db: &Arc<Database>) {
    db.execute("CREATE TABLE t1 (k BIGINT NOT NULL, v BIGINT NOT NULL)").unwrap();
    db.execute("CREATE TABLE t2 (k BIGINT NOT NULL, w BIGINT NOT NULL)").unwrap();
    let n1 = 4000i64;
    let k1 = ColData::I64((0..n1).map(|i| i % 101).collect());
    let v1 = ColData::I64((0..n1).map(|i| (i * 37) % 1000).collect());
    bulk_load(db, "t1", &[k1, v1], &[None, None]).unwrap();
    let n2 = 2000i64;
    let k2 = ColData::I64((0..n2).map(|i| i % 101).collect());
    let w2 = ColData::I64((0..n2).map(|i| i % 10).collect());
    bulk_load(db, "t2", &[k2, w2], &[None, None]).unwrap();
}

/// A table fat enough that its self-join pins a worker (and its admission
/// grant) for a long, observable window even in debug builds.
fn load_big_table(db: &Arc<Database>) {
    db.execute("CREATE TABLE big (k BIGINT NOT NULL, v BIGINT NOT NULL)").unwrap();
    let n = 20_000i64;
    let k = ColData::I64((0..n).map(|i| i % 211).collect());
    let v = ColData::I64((0..n).map(|i| (i * 7) % 1000).collect());
    bulk_load(db, "big", &[k, v], &[None, None]).unwrap();
}

const HOLDER_SQL: &str = "SELECT COUNT(*) FROM big a JOIN big b ON a.k = b.k";

/// Per-session private DML table (only its owning session writes it, so
/// replaying successful statements on the mirror needs no ordering).
fn load_private_table(db: &Arc<Database>, i: usize) {
    db.execute(&format!("CREATE TABLE p{i} (k BIGINT NOT NULL, v BIGINT NOT NULL)")).unwrap();
    let n = 200i64;
    let k = ColData::I64((0..n).map(|x| x % 17).collect());
    let v = ColData::I64((0..n).map(|x| (x * 13) % 97).collect());
    bulk_load(db, &format!("p{i}"), &[k, v], &[None, None]).unwrap();
}

struct Stmt {
    sql: String,
    /// Mutates the session's private table (replay on the mirror when ok).
    dml: bool,
    /// Run under a 5ms statement timeout.
    timeout: bool,
    /// Run under a tiny memory budget (spilling join/agg path).
    spill: bool,
}

fn pick_statement(rng: &mut SmallRng, session: usize) -> Stmt {
    let roll = rng.gen_range(0..100u32);
    let (sql, dml) = match roll {
        0..=14 => ("SELECT COUNT(*), SUM(v) FROM t1".to_string(), false),
        15..=29 => {
            let m = rng.gen_range(3..10i64);
            let c = rng.gen_range(0..m);
            (format!("SELECT COUNT(*) FROM t1 WHERE v % {m} = {c}"), false)
        }
        30..=44 => {
            ("SELECT COUNT(*), SUM(a.v) FROM t1 a JOIN t2 b ON a.k = b.k".to_string(), false)
        }
        45..=56 => ("SELECT MAX(v) FROM t1 GROUP BY k".to_string(), false),
        57..=66 => (format!("SELECT COUNT(*), SUM(v) FROM p{session}"), false),
        67..=76 => {
            let k = rng.gen_range(0..17i64);
            let v = rng.gen_range(0..97i64);
            (format!("INSERT INTO p{session} VALUES ({k}, {v})"), true)
        }
        77..=86 => {
            let d = rng.gen_range(1..20i64);
            let k = rng.gen_range(0..17i64);
            (format!("UPDATE p{session} SET v = v + {d} WHERE k = {k}"), true)
        }
        _ => {
            let c = rng.gen_range(0..23i64);
            (format!("DELETE FROM p{session} WHERE v % 23 = {c}"), true)
        }
    };
    Stmt {
        sql,
        dml,
        // Only read-only statements race a timeout (a half-applied DML
        // would make the differential ambiguous); the killer thread
        // applies the same filter by SQL prefix.
        timeout: !dml && rng.gen_bool(0.15),
        spill: !dml && rng.gen_bool(0.2),
    }
}

/// N sessions × mixed OLAP/DML/spilling under racing KILLs and 5ms
/// timeouts on a 2-worker pool, differential against a serial mirror.
#[test]
fn stress_sessions_share_pool_and_match_serial_answers() {
    let _x = exclusive();
    let seed = service_seed();
    println!("service seed: {seed} (set VW_SERVICE_SEED={seed} to reproduce)");

    let cfg = EngineConfig::default().with_workers(2).with_global_mem(32 << 20).with_parallelism(4);
    let db = Database::open_with(cfg, SimulatedDisk::instant());
    let mirror = Database::open_in_memory();
    load_shared_tables(&db);
    load_shared_tables(&mirror);
    for i in 0..SESSIONS {
        load_private_table(&db, i);
        load_private_table(&mirror, i);
    }
    let limit = db.admission().expect("global mem configured").limit();

    // Engine threads (pool workers + deadline timer) all exist at open;
    // the only threads this test adds beyond the baseline are its own
    // session threads and the killer.
    let thread_baseline = live_threads();
    let thread_cap = thread_baseline + SESSIONS + 1;

    let stop = Arc::new(AtomicBool::new(false));
    let killer = {
        let (db, stop) = (db.clone(), stop.clone());
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x4B11);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if let Some(q) = db
                    .monitor
                    .list_queries()
                    .iter()
                    .find(|q| q.state == QueryState::Running && q.sql.starts_with("SELECT"))
                {
                    if rng.gen_bool(0.3) {
                        let _ = db.kill(q.id);
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let handles: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let (db, mirror) = (db.clone(), mirror.clone());
            std::thread::Builder::new()
                .name(format!("vw-svc-session-{i}"))
                .spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(i as u64));
                    let mut session = db.session();
                    let (mut ok, mut cancelled, mut admission) = (0u32, 0u32, 0u32);
                    for _ in 0..STMTS_PER_SESSION {
                        let stmt = pick_statement(&mut rng, i);
                        if stmt.spill {
                            session.execute("SET mem_budget = 65536").unwrap();
                        }
                        if stmt.timeout {
                            session.execute("SET statement_timeout = 5").unwrap();
                        }
                        let res = session.execute(&stmt.sql);
                        if stmt.timeout {
                            session.execute("SET statement_timeout = 0").unwrap();
                        }
                        if stmt.spill {
                            session.execute("SET mem_budget = 0").unwrap();
                        }
                        match res {
                            Ok(r) => {
                                ok += 1;
                                if stmt.dml {
                                    // Private-table effect: replay on the
                                    // mirror (only this session writes p{i}).
                                    mirror.execute(&stmt.sql).unwrap_or_else(|e| {
                                        panic!("mirror failed on {:?}: {e}", stmt.sql)
                                    });
                                } else {
                                    let m = mirror.execute(&stmt.sql).unwrap_or_else(|e| {
                                        panic!("mirror failed on {:?}: {e}", stmt.sql)
                                    });
                                    assert_eq!(
                                        row_set(&r),
                                        row_set(&m),
                                        "session {i}: {:?} diverged (seed {seed})",
                                        stmt.sql
                                    );
                                }
                            }
                            Err(VwError::Cancelled) => {
                                assert!(!stmt.dml, "DML is never killed or timed out");
                                cancelled += 1;
                            }
                            Err(VwError::Admission(_)) => admission += 1,
                            Err(e) => {
                                panic!("session {i}: {:?} surfaced {e} (seed {seed})", stmt.sql)
                            }
                        }
                        // In-flight invariants: grants bounded by the global
                        // limit, thread count O(workers) not O(sessions).
                        let in_use = db.admission().unwrap().in_use();
                        assert!(in_use <= limit, "grants {in_use} exceed limit {limit}");
                        let threads = live_threads();
                        assert!(
                            threads <= thread_cap,
                            "{threads} threads live (cap {thread_cap}): pool is not bounding \
                             execution threads"
                        );
                    }
                    (ok, cancelled, admission)
                })
                .unwrap()
        })
        .collect();

    let mut totals = (0u32, 0u32, 0u32);
    for h in handles {
        let (ok, cancelled, admission) = h.join().expect("session thread panicked");
        totals.0 += ok;
        totals.1 += cancelled;
        totals.2 += admission;
    }
    stop.store(true, Ordering::Relaxed);
    killer.join().unwrap();
    println!(
        "service stress: {} ok, {} cancelled, {} admission-rejected (seed {seed})",
        totals.0, totals.1, totals.2
    );
    assert!(
        totals.0 as usize > SESSIONS * STMTS_PER_SESSION / 2,
        "stress should mostly succeed: only {} ok",
        totals.0
    );

    // Final differential: every table image matches the serial mirror.
    for i in 0..SESSIONS {
        let probe = format!("SELECT k, v FROM p{i}");
        let c = db.execute(&probe).unwrap();
        let m = mirror.execute(&probe).unwrap();
        assert_eq!(row_set(&c), row_set(&m), "p{i} diverged (seed {seed})");
    }

    // End-of-run leak checks: nothing charged, nothing queued, no thread
    // beyond the engine's fixed complement.
    assert_eq!(MemBudget::global_in_use(), 0, "memory budget charged at end (seed {seed})");
    let adm = db.admission().unwrap();
    assert_eq!(adm.queued(), 0, "admission queue not drained (seed {seed})");
    assert_eq!(adm.in_use(), 0, "admission grants leaked (seed {seed})");
    wait_until("threads to return to baseline", Duration::from_secs(5), || {
        live_threads() <= thread_baseline
    });

    // Engine teardown joins the pool and timer threads of both databases.
    let both_engines = db.worker_pool().workers() + 1 + mirror.worker_pool().workers() + 1;
    let before_open = thread_baseline - both_engines;
    drop(mirror);
    db.shutdown();
    drop(db);
    wait_until("engine threads to join", Duration::from_secs(5), || live_threads() <= before_open);
}

/// A full admission queue rejects with typed E_ADMISSION — not a panic,
/// not a hang, not a user error.
#[test]
fn admission_queue_overflow_is_typed_error() {
    let _x = exclusive();
    let cfg = EngineConfig::default().with_workers(2).with_global_mem(1 << 20);
    let db = Database::open_with(cfg, SimulatedDisk::instant());
    load_big_table(&db);
    db.execute("SET admission_queue_depth = 0").unwrap();

    // Session 1 takes the whole global grant and holds it for the length
    // of a fat self-join.
    let holder = {
        let db = db.clone();
        std::thread::spawn(move || {
            let mut s = db.session();
            s.execute("SET mem_budget = 1048576").unwrap();
            s.execute(HOLDER_SQL)
        })
    };
    let adm = db.admission().unwrap().clone();
    wait_until("holder to take the full grant", Duration::from_secs(60), || {
        adm.in_use() == adm.limit()
    });

    // No grant available and no queue: immediate typed rejection.
    let mut s2 = db.session();
    s2.execute("SET mem_budget = 1048576").unwrap();
    let err = s2.execute("SELECT COUNT(*) FROM big").unwrap_err();
    assert!(matches!(err, VwError::Admission(_)), "expected admission error, got {err}");
    assert_eq!(err.code(), "E_ADMISSION");

    holder.join().unwrap().expect("holder query should succeed");
    assert_eq!(adm.in_use(), 0, "grant released on completion");
    assert_eq!(adm.queued(), 0);
}

/// KILL of an admission-queued query dequeues it cleanly: the waiter gets
/// `Cancelled`, the queue empties, and the held grant is untouched.
#[test]
fn kill_dequeues_admission_queued_query() {
    let _x = exclusive();
    let cfg = EngineConfig::default().with_workers(2).with_global_mem(1 << 20);
    let db = Database::open_with(cfg, SimulatedDisk::instant());
    load_big_table(&db);

    let holder = {
        let db = db.clone();
        std::thread::spawn(move || {
            let mut s = db.session();
            s.execute("SET mem_budget = 1048576").unwrap();
            s.execute(HOLDER_SQL)
        })
    };
    let adm = db.admission().unwrap().clone();
    wait_until("holder to take the full grant", Duration::from_secs(60), || {
        adm.in_use() == adm.limit()
    });

    // Session 2 queues behind the holder (depth default 16).
    let waiter = {
        let db = db.clone();
        std::thread::spawn(move || {
            let mut s = db.session();
            s.execute("SET mem_budget = 1048576").unwrap();
            s.execute("SELECT COUNT(*) FROM big")
        })
    };
    wait_until("waiter to join the admission queue", Duration::from_secs(60), || adm.queued() == 1);
    let queued = db
        .monitor
        .list_queries()
        .into_iter()
        .find(|q| q.state == QueryState::Queued)
        .expect("queued query visible in the monitor");
    db.kill(queued.id).unwrap();

    let err = waiter.join().unwrap().expect_err("killed while queued");
    assert!(matches!(err, VwError::Cancelled), "expected Cancelled, got {err}");
    assert_eq!(adm.queued(), 0, "KILL removed the queued request");
    assert_eq!(adm.in_use(), adm.limit(), "holder's grant untouched by the dequeue");

    holder.join().unwrap().expect("holder query should succeed");
    assert_eq!(adm.in_use(), 0);
}

/// Dropping the engine with a query mid-flight joins every pool thread —
/// the in-flight query surfaces a typed error, never a hang or a leaked
/// worker (the PR's shutdown regression test).
#[test]
fn drop_with_query_mid_flight_joins_pool_threads() {
    let _x = exclusive();
    let before_open = live_threads();
    let cfg = EngineConfig::default().with_workers(2).with_parallelism(4);
    let db = Database::open_with(cfg, SimulatedDisk::instant());
    load_big_table(&db);

    let runner = {
        let db = db.clone();
        std::thread::spawn(move || db.execute(HOLDER_SQL))
    };
    wait_until("query to start running", Duration::from_secs(60), || {
        db.monitor.list_queries().iter().any(|q| q.state == QueryState::Running)
    });

    db.shutdown();
    match runner.join().expect("runner thread must not panic") {
        Ok(_) => {} // raced to completion before the cancel landed
        Err(VwError::Cancelled) => {}
        Err(e) => panic!("expected Cancelled (or success), got {e}"),
    }
    assert_eq!(MemBudget::global_in_use(), 0, "budget uncharged after shutdown");

    drop(db);
    wait_until("pool and timer threads to join", Duration::from_secs(5), || {
        live_threads() <= before_open
    });
}

/// SHOW SESSIONS reports session ids, states, current query and grant;
/// SHOW QUERIES attributes `Database::execute` statements to the default
/// session (proof that the plain entry point routes through a session).
#[test]
fn show_sessions_and_query_attribution() {
    let _x = exclusive();
    let cfg = EngineConfig::default().with_workers(1).with_global_mem(8 << 20);
    let db = Database::open_with(cfg, SimulatedDisk::instant());
    load_big_table(&db);

    let s1 = db.session();
    let s2 = db.session();
    let session_ids = |r: &QueryResult| -> Vec<i64> {
        r.rows()
            .iter()
            .map(|row| match row[0] {
                Value::I64(id) => id,
                ref v => panic!("session id should be I64, got {v:?}"),
            })
            .collect()
    };
    let shown = db.execute("SHOW SESSIONS").unwrap();
    let ids = session_ids(&shown);
    assert!(ids.contains(&(s1.id() as i64)), "s1 listed");
    assert!(ids.contains(&(s2.id() as i64)), "s2 listed");
    assert!(ids.len() >= 3, "default session listed too");
    for r in shown.rows() {
        assert_eq!(r[1], Value::Str("Idle".into()), "fresh sessions are idle");
    }

    // A session mid-query shows Running with a non-zero grant.
    let s1_id = s1.id();
    let runner = std::thread::spawn(move || {
        let mut s1 = s1;
        s1.execute(HOLDER_SQL)
    });
    wait_until("s1 to show Running in SHOW SESSIONS", Duration::from_secs(60), || {
        let shown = db.execute("SHOW SESSIONS").unwrap();
        shown.rows().iter().any(|r| {
            r[0] == Value::I64(s1_id as i64)
                && r[1] == Value::Str("Running".into())
                && matches!(r[3], Value::I64(g) if g > 0)
        })
    });
    runner.join().unwrap().expect("join query succeeds");

    // Default-session attribution: a plain `db.execute` SELECT lands in
    // SHOW QUERIES with a non-NULL session id, same as session queries.
    db.execute("SELECT COUNT(*) FROM big").unwrap();
    let queries = db.execute("SHOW QUERIES").unwrap();
    let row = queries
        .rows()
        .iter()
        .find(|r| r[2] == Value::Str("SELECT COUNT(*) FROM big".into()))
        .expect("executed query listed")
        .clone();
    assert!(
        matches!(row[5], Value::I64(s) if s > 0),
        "default-session query carries session attribution, got {:?}",
        row[5]
    );

    // Closing a session removes it from the registry.
    let s2_id = s2.id();
    drop(s2);
    let shown = db.execute("SHOW SESSIONS").unwrap();
    assert!(
        !session_ids(&shown).contains(&(s2_id as i64)),
        "closed session no longer listed in SHOW SESSIONS"
    );
}
