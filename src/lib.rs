//! # vectorwise — a Rust reproduction of the X100/Vectorwise system
//!
//! Facade crate re-exporting the whole workspace. See `README.md` for the
//! tour, `DESIGN.md` for the system inventory, and `EXPERIMENTS.md` for the
//! paper-vs-measured record.
//!
//! ```
//! use vectorwise::core::Database;
//!
//! let db = Database::open_in_memory();
//! db.execute("CREATE TABLE t (x BIGINT)").unwrap();
//! db.execute("INSERT INTO t VALUES (41), (1)").unwrap();
//! let r = db.execute("SELECT SUM(x) FROM t").unwrap();
//! assert_eq!(r.scalar().unwrap(), &vectorwise::common::Value::I64(42));
//! ```

pub use vw_common as common;
pub use vw_compress as compress;
pub use vw_coopscan as coopscan;
pub use vw_core as core;
pub use vw_exec as exec;
pub use vw_pdt as pdt;
pub use vw_rewriter as rewriter;
pub use vw_sql as sql;
pub use vw_storage as storage;
pub use vw_volcano as volcano;
